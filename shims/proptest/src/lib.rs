//! Minimal, self-contained stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of the proptest 1.x API its property
//! tests actually use: the [`proptest!`] macro (with optional
//! `#![proptest_config(..)]`), [`strategy::Strategy`] over half-open
//! numeric ranges, [`strategy::Just`], `prop_oneof!`, `bool::ANY`, and
//! the `prop_assert*` / `prop_assume!` macros.
//!
//! Unlike upstream proptest there is no shrinking: a failing case
//! panics immediately with its case number, and cases are generated
//! deterministically from a hash of the test name plus the case index,
//! so every failure reproduces exactly under `cargo test`.

#![forbid(unsafe_code)]

/// Runner plumbing used by the generated test bodies.
pub mod test_runner {
    /// Marker returned (via `Err`) by `prop_assume!` when a case is
    /// rejected; the runner simply skips to the next case.
    #[derive(Debug, Clone, Copy)]
    pub struct Rejected;

    /// Deterministic SplitMix64 generator seeded per test case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the RNG for case `case` of the named test.
        #[must_use]
        pub fn for_case(test_name: &str, case: u64) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut rng = TestRng {
                state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            };
            let _ = rng.next_u64();
            rng
        }

        /// Returns the next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform u64 in `[0, n)`.
        pub fn next_below(&mut self, n: u64) -> u64 {
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }
    }
}

/// Configuration accepted by `#![proptest_config(..)]`.
pub mod config {
    /// The subset of proptest's config the workspace sets.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
        /// Accepted for source compatibility; unused (no shrinking).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A deterministic value generator. Object-safe so `prop_oneof!`
    /// can erase heterogeneous strategies producing the same value.
    pub trait Strategy {
        /// The generated value type.
        type Value;
        /// Draws one value for the current case.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of its value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Boxes a strategy for storage in [`OneOf`].
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct OneOf<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> OneOf<V> {
        /// Builds the union; `options` must be non-empty.
        #[must_use]
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            OneOf { options }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.next_below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let u = rng.next_f64() as $t;
                    self.start + u * (self.end - self.start)
                }
            }
        )*};
    }
    impl_float_strategy!(f32, f64);

    macro_rules! impl_uint_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.next_below(span) as $t
                }
            }
        )*};
    }
    impl_uint_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_int_strategy {
        ($($t:ty => $u:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                    self.start.wrapping_add(rng.next_below(span) as $t)
                }
            }
        )*};
    }
    impl_int_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `true` or `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The `proptest::bool::ANY` strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;
        fn generate(&self, rng: &mut TestRng) -> core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Common re-exports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines deterministic property tests. Each `#[test] fn` inside the
/// block runs `cases` times with values drawn from its strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::config::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::config::ProptestConfig = $cfg;
                for __case in 0..u64::from(__cfg.cases) {
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::Rejected> =
                        (move || {
                            $body;
                            ::std::result::Result::Ok(())
                        })();
                    // Err means prop_assume! rejected the case: skip it.
                    let _ = __outcome;
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+);
    };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, f in -1.0f64..1.0, b in crate::bool::ANY) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            // Exercise the bool strategy; either value is acceptable.
            prop_assert!(matches!(b, true | false));
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert_ne!(v, 0);
            prop_assert!(v == 1 || v == 2);
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x >= 5);
            prop_assert!(x >= 5);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::test_runner::TestRng::for_case("t", 0);
        let mut b = crate::test_runner::TestRng::for_case("t", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_case("t", 1);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
