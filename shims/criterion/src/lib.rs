//! Minimal, self-contained stand-in for the `criterion` benchmark
//! harness.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of the criterion 0.5 API its benches
//! use: [`Criterion::benchmark_group`], [`BenchmarkGroup`]'s
//! `sample_size` / `bench_function` / `bench_with_input` / `finish`,
//! [`Bencher::iter`], [`BenchmarkId::new`], and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! There is no statistical analysis: each benchmark runs its closure
//! `sample_size` times around a warm-up pass and reports mean wall
//! time per iteration. That keeps `cargo bench` functional for
//! eyeballing relative cost without any external dependencies.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level harness handle passed to benchmark functions.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.into().label, self.default_sample_size, &mut f);
        self
    }
}

/// A named set of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into().label, self.sample_size, &mut f);
        self
    }

    /// Runs one benchmark that borrows a shared input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.into().label, self.sample_size, &mut |b| {
            f(b, input);
        });
        self
    }

    /// Ends the group (kept for API parity; reporting is immediate).
    pub fn finish(self) {}
}

fn run_one(group: &str, label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { elapsed_ns: 0, iters: 0 };
    // Warm-up pass, untimed.
    f(&mut bencher);
    bencher.elapsed_ns = 0;
    bencher.iters = 0;
    for _ in 0..samples {
        f(&mut bencher);
    }
    let per_iter = if bencher.iters == 0 {
        0
    } else {
        bencher.elapsed_ns / bencher.iters
    };
    let full = if group.is_empty() {
        label.to_string()
    } else {
        format!("{group}/{label}")
    };
    println!("bench {full:<48} {per_iter:>12} ns/iter ({samples} samples)");
}

/// Times closures inside a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    elapsed_ns: u128,
    iters: u128,
}

impl Bencher {
    /// Times one call of `f`, keeping its output alive via `black_box`.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed_ns += start.elapsed().as_nanos();
        self.iters += 1;
        black_box(out);
    }
}

/// A benchmark identifier with a parameter, e.g. `full_analysis/512`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Combines a function name and a displayed parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
        group.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }
}
