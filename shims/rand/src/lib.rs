//! Minimal, self-contained stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny slice of the `rand` 0.8 API it actually
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over half-open numeric ranges, [`Rng::gen_bool`],
//! and [`seq::SliceRandom`]'s `choose`/`shuffle`.
//!
//! The generator is SplitMix64 — deterministic, seedable, and good
//! enough statistically for synthetic-benchmark generation and test
//! shuffling. Streams differ from upstream `rand`'s ChaCha-based
//! `StdRng`, which is fine: nothing in the workspace depends on the
//! exact byte stream, only on determinism per seed.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, mirroring the subset of `rand::Rng`
/// used by this workspace.
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty, matching upstream behaviour.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        next_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Uniform f64 in `[0, 1)` with 53 bits of precision.
fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform u64 in `[0, n)` via 128-bit multiply (Lemire reduction,
/// without the rejection step; bias is < 2^-64 and irrelevant here).
fn next_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(n)) >> 64) as u64
}

/// Types usable as the argument of [`Rng::gen_range`]. Generic over the
/// output type (like upstream rand) so untyped float/integer literals in
/// range expressions unify with the expected element type.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = next_f64(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + next_below(rng, span) as $t
            }
        }
    )*};
}
impl_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(next_below(rng, span) as $t)
            }
        }
    )*};
}
impl_int_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Deterministic RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64-based stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix once so small consecutive seeds do not produce
            // correlated first draws.
            let mut rng = StdRng { state: seed };
            let _ = rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Slice sampling helpers.
pub mod seq {
    use super::{next_below, RngCore};

    /// The subset of `rand::seq::SliceRandom` used by this workspace.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Returns a uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Returns a uniformly chosen mutable element, or `None` when empty.
        fn choose_mut<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Option<&mut Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = next_below(rng, self.len() as u64) as usize;
                Some(&self[i])
            }
        }

        fn choose_mut<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Option<&mut T> {
            if self.is_empty() {
                None
            } else {
                let i = next_below(rng, self.len() as u64) as usize;
                Some(&mut self[i])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = next_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: Vec<u64> = (0..16).map(|_| c.gen_range(0u64..u64::MAX)).collect();
        let mut d = StdRng::seed_from_u64(9);
        let diff: Vec<u64> = (0..16).map(|_| d.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(same, diff);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let f = rng.gen_range(-5.0f32..5.0);
            assert!((-5.0..5.0).contains(&f));
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let i = rng.gen_range(-4i32..4);
            assert!((-4..4).contains(&i));
        }
    }

    #[test]
    fn gen_bool_rates() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn slice_helpers() {
        let mut rng = StdRng::seed_from_u64(11);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [1, 2, 3, 4];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
        let mut w: Vec<u32> = (0..100).collect();
        w.shuffle(&mut rng);
        let mut sorted = w.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(w, sorted, "shuffle left 100 elements in order");
    }
}
