//! Quickstart: train the GNN framework on a small design and generate a
//! timing macro model for it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use timing_macro_gnn::circuits::CircuitSpec;
use timing_macro_gnn::core::{Framework, FrameworkConfig};
use timing_macro_gnn::macromodel::eval::{evaluate, EvalOptions};
use timing_macro_gnn::sta::graph::ArcGraph;
use timing_macro_gnn::sta::liberty::Library;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic NLDM library and a small clocked design.
    let library = Library::synthetic(7);
    let design = CircuitSpec::new("quickstart")
        .inputs(6)
        .outputs(6)
        .register_banks(2, 6)
        .cloud(3, 8)
        .seed(42)
        .generate(&library)?;
    println!(
        "design `{}`: {} pins, {} cells, {} nets",
        design.name(),
        design.stats().pins,
        design.stats().cells,
        design.stats().nets
    );

    // 2. Train the framework (timing-sensitivity data generation + GNN) on
    //    the design itself, then generate its macro model.
    let mut framework = Framework::new(FrameworkConfig::default());
    let outcome = framework.run_on(&design, &library)?;
    println!(
        "macro model `{}`: kept {} of {} pins ({} serially merged)",
        outcome.model.name(),
        outcome.kept_pins,
        outcome.model.stats().flat_pins,
        outcome.model.stats().reduce.bypassed,
    );
    println!(
        "model file size: {:.1} KiB, GNN inference {:.1} ms",
        outcome.model.file_size_bytes() as f64 / 1024.0,
        outcome.prediction.inference_time.as_secs_f64() * 1e3,
    );

    // 3. Validate accuracy against the flat design under fresh contexts.
    let flat = ArcGraph::from_netlist(&design, &library)?;
    let result = evaluate(&flat, &outcome.model, &EvalOptions::default())?;
    println!(
        "boundary accuracy over {} compared values: avg {:.4} ps, max {:.3} ps",
        result.accuracy.count, result.accuracy.avg, result.accuracy.max
    );
    Ok(())
}
