//! CPPR walkthrough: build a design with a deep clock tree, show the
//! pessimism the early/late corners inject on shared clock paths, the
//! credits CPPR recovers, and why a macro model must keep the clock-tree
//! branch points (the paper's §5.3 `is_CPPR` story).
//!
//! ```text
//! cargo run --release --example cppr_flow
//! ```

use timing_macro_gnn::circuits::CircuitSpec;
use timing_macro_gnn::core::{Framework, FrameworkConfig};
use timing_macro_gnn::macromodel::eval::{evaluate, EvalOptions};
use timing_macro_gnn::sta::constraints::Context;
use timing_macro_gnn::sta::cppr::{cppr_crucial_pins, CpprReport};
use timing_macro_gnn::sta::graph::ArcGraph;
use timing_macro_gnn::sta::liberty::Library;
use timing_macro_gnn::sta::propagate::{Analysis, AnalysisOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let library = Library::synthetic(7);
    let design = CircuitSpec::new("cppr_demo")
        .inputs(6)
        .outputs(6)
        .register_banks(3, 16)
        .cloud(2, 8)
        .clock_fanout(4)
        .seed(7)
        .generate(&library)?;
    let flat = ArcGraph::from_netlist(&design, &library)?;
    let ctx = Context::nominal(&flat);

    // 1. Pessimism without CPPR vs credits with CPPR.
    let plain = Analysis::run(&flat, &ctx)?;
    let cppr = Analysis::run_with_options(&flat, &ctx, AnalysisOptions { cppr: true, ..Default::default() })?;
    let report = CpprReport::from_analysis(&flat, &cppr);
    println!(
        "{} flip-flop checks, {} credited by CPPR, total setup credit {:.2} ps",
        report.checks.len(),
        report.credited_checks(),
        report.total_setup_credit()
    );
    let worst = |an: &Analysis, g: &ArcGraph| {
        g.checks()
            .iter()
            .enumerate()
            .filter_map(|(_, c)| {
                let s = an.slack(c.d).late;
                let v = s.rise.min(s.fall);
                v.is_finite().then_some(v)
            })
            .fold(f64::INFINITY, f64::min)
    };
    println!(
        "worst setup slack: {:.2} ps without CPPR -> {:.2} ps with CPPR",
        worst(&plain, &flat),
        worst(&cppr, &flat)
    );

    // 2. The clock pins CPPR depends on (multiple-fan-out clock pins).
    let crucial = cppr_crucial_pins(&flat);
    println!("\nCPPR-crucial clock branch points: {}", crucial.len());
    for &p in crucial.iter().take(5) {
        println!("  {}", flat.node(p).name);
    }

    // 3. A macro model generated in CPPR mode keeps those pins and stays
    //    accurate under CPPR evaluation.
    let mut framework = Framework::new(FrameworkConfig::cppr());
    let outcome = framework.run_on(&design, &library)?;
    let result = evaluate(
        &flat,
        &outcome.model,
        &EvalOptions { contexts: 4, cppr: true, ..Default::default() },
    )?;
    println!(
        "\nCPPR-mode macro model: {} pins kept, avg err {:.4} ps, max err {:.3} ps",
        outcome.kept_pins, result.accuracy.avg, result.accuracy.max
    );
    let kept_crucial = crucial
        .iter()
        .filter(|&&p| {
            outcome
                .model
                .graph()
                .nodes()
                .iter()
                .any(|n| !n.dead && n.name == flat.node(p).name)
        })
        .count();
    println!("clock branch points retained in the model: {kept_crucial}/{}", crucial.len());
    Ok(())
}
