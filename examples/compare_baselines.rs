//! Side-by-side comparison of every macro-modeling approach in the paper on
//! a single design: the GNN framework, iTimerM-style slew-range selection,
//! LibAbs-style structural tree reduction, and ATM-style ETM collapse.
//!
//! ```text
//! cargo run --release --example compare_baselines
//! ```

use timing_macro_gnn::circuits::CircuitSpec;
use timing_macro_gnn::core::{Framework, FrameworkConfig};
use timing_macro_gnn::macromodel::baselines::{
    generate_atm, generate_itimerm, generate_libabs, ITIMERM_DEFAULT_TOLERANCE,
};
use timing_macro_gnn::macromodel::eval::{evaluate, EvalOptions};
use timing_macro_gnn::macromodel::{MacroModel, MacroModelOptions};
use timing_macro_gnn::sta::graph::ArcGraph;
use timing_macro_gnn::sta::liberty::Library;

fn report(method: &str, flat: &ArcGraph, model: &MacroModel) -> Result<(), Box<dyn std::error::Error>> {
    let r = evaluate(flat, model, &EvalOptions { contexts: 5, ..Default::default() })?;
    println!(
        "{method:<9} {:>6} pins {:>9.1} KiB  avg {:>8.4} ps  max {:>8.3} ps  gen {:>7.3}s",
        r.kept_pins,
        r.model_bytes as f64 / 1024.0,
        r.accuracy.avg,
        r.accuracy.max,
        r.gen_time.as_secs_f64(),
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let library = Library::synthetic(7);
    let design = CircuitSpec::sized("compare", 4000).seed(123).generate(&library)?;
    let flat = ArcGraph::from_netlist(&design, &library)?;
    println!("design: {} pins\n", flat.live_nodes());
    println!(
        "{:<9} {:>6}      {:>9}      {:>8}         {:>8}        {:>7}",
        "method", "kept", "file", "avg err", "max err", "gen"
    );

    let mut framework = Framework::new(FrameworkConfig::default());
    let outcome = framework.run_on(&design, &library)?;
    report("Ours", &flat, &outcome.model)?;

    let itimerm =
        generate_itimerm(&flat, ITIMERM_DEFAULT_TOLERANCE, &MacroModelOptions::default())?;
    report("iTimerM", &flat, &itimerm)?;

    let libabs = generate_libabs(&flat, &MacroModelOptions::default())?;
    report("LibAbs", &flat, &libabs)?;

    let atm = generate_atm(&flat, &MacroModelOptions::default())?;
    report("ATM", &flat, &atm)?;

    println!("\nExpected shape (paper Tables 3/5): Ours ≈ iTimerM accuracy at a smaller");
    println!("file; LibAbs larger and less accurate; ATM tiny but far less accurate and");
    println!("slow to generate.");
    Ok(())
}
