//! Hierarchical and parallel timing analysis (the paper's Fig. 1
//! motivation): a "core" block is analysed once, its macro model is
//! generated once, and the model is re-timed cheaply in many different
//! instantiation contexts — compare wall-clock against re-running the flat
//! analysis each time.
//!
//! ```text
//! cargo run --release --example hierarchical_timing
//! ```

use std::time::Instant;
use timing_macro_gnn::circuits::CircuitSpec;
use timing_macro_gnn::core::{Framework, FrameworkConfig};
use timing_macro_gnn::sta::constraints::ContextSampler;
use timing_macro_gnn::sta::graph::ArcGraph;
use timing_macro_gnn::sta::liberty::Library;
use timing_macro_gnn::sta::propagate::{Analysis, AnalysisOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let library = Library::synthetic(7);
    // The "core" block that appears many times in the top-level design.
    let core_block = CircuitSpec::sized("core_block", 3000).seed(99).generate(&library)?;
    let flat = ArcGraph::from_netlist(&core_block, &library)?;
    println!("core block: {} pins", flat.live_nodes());

    // Generate the macro model once.
    let mut framework = Framework::new(FrameworkConfig::default());
    let t0 = Instant::now();
    let outcome = framework.run_on(&core_block, &library)?;
    println!(
        "one-time cost (train + generate): {:.2}s, model keeps {} pins",
        t0.elapsed().as_secs_f64(),
        outcome.kept_pins
    );

    // The block is instantiated 32 times, each in a different boundary
    // context (different surrounding logic).
    let instances = 32;
    let mut sampler = ContextSampler::new(2024);
    let contexts = sampler.sample_many(&flat, instances);

    let t_flat = Instant::now();
    let mut flat_worst = f64::INFINITY;
    for ctx in &contexts {
        let an = Analysis::run(&flat, ctx)?;
        for po in &an.boundary().po {
            let s = po.slack.late.rise.min(po.slack.late.fall);
            if s.is_finite() {
                flat_worst = flat_worst.min(s);
            }
        }
    }
    let flat_time = t_flat.elapsed();

    let t_macro = Instant::now();
    let mut macro_worst = f64::INFINITY;
    let mut max_err: f64 = 0.0;
    for ctx in &contexts {
        let man = outcome.model.analyze(ctx, AnalysisOptions::default())?;
        let fan = Analysis::run(&flat, ctx)?; // reference for the error only
        max_err = max_err.max(fan.boundary().diff(man.boundary()).max);
        for po in &man.boundary().po {
            let s = po.slack.late.rise.min(po.slack.late.fall);
            if s.is_finite() {
                macro_worst = macro_worst.min(s);
            }
        }
    }
    let macro_time = t_macro.elapsed() - flat_time; // subtract the reference runs

    println!("\n{instances} instantiations:");
    println!("  flat re-analysis : {:>8.1} ms total", flat_time.as_secs_f64() * 1e3);
    println!(
        "  macro model usage: {:>8.1} ms total ({:.1}x faster)",
        macro_time.as_secs_f64().max(1e-6) * 1e3,
        flat_time.as_secs_f64() / macro_time.as_secs_f64().max(1e-6)
    );
    println!(
        "  worst late slack: flat {flat_worst:.2} ps vs macro {macro_worst:.2} ps; max boundary error {max_err:.3} ps"
    );
    Ok(())
}
