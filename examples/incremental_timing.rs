//! Incremental timing: re-time a block across many boundary changes
//! without full recomputation — the workload pattern of hierarchical
//! timing closure, where a macro's context shifts a little on every
//! optimisation step.
//!
//! ```text
//! cargo run --release --example incremental_timing
//! ```

use std::time::Instant;
use timing_macro_gnn::circuits::CircuitSpec;
use timing_macro_gnn::sta::constraints::{Context, PiConstraint};
use timing_macro_gnn::sta::graph::ArcGraph;
use timing_macro_gnn::sta::incremental::IncrementalTimer;
use timing_macro_gnn::sta::liberty::Library;
use timing_macro_gnn::sta::propagate::{Analysis, AnalysisOptions};
use timing_macro_gnn::sta::report::slack_summary;
use timing_macro_gnn::sta::split::Split;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let library = Library::synthetic(7);
    let design = CircuitSpec::sized("inc_demo", 6000).seed(55).generate(&library)?;
    let flat = ArcGraph::from_netlist(&design, &library)?;
    println!("design: {} pins, {} arcs", flat.live_nodes(), flat.live_arcs());

    let ctx = Context::nominal(&flat);
    let mut timer = IncrementalTimer::new(&flat, ctx.clone(), AnalysisOptions::default())?;

    // An optimisation loop nudges one output load and one input slew per
    // iteration — the classic ECO pattern.
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let iterations = 200;

    let t_inc = Instant::now();
    for _ in 0..iterations {
        let po = rng.gen_range(0..flat.primary_outputs().len());
        timer.set_po_load(po, rng.gen_range(1.0..48.0))?;
        let pi = rng.gen_range(0..flat.primary_inputs().len());
        let base = rng.gen_range(0.0..100.0);
        timer.set_pi(pi, PiConstraint { at: Split::new(base, base + 10.0), slew: rng.gen_range(6.0..150.0) })?;
    }
    let inc_time = t_inc.elapsed();
    let final_summary = slack_summary(&timer.analysis());

    // The same sequence with full recomputation each step.
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut full_ctx = ctx;
    let t_full = Instant::now();
    let mut last = None;
    for _ in 0..iterations {
        let po = rng.gen_range(0..flat.primary_outputs().len());
        full_ctx.po[po].load = rng.gen_range(1.0..48.0);
        let pi = rng.gen_range(0..flat.primary_inputs().len());
        let base = rng.gen_range(0.0..100.0);
        full_ctx.pi[pi] =
            PiConstraint { at: Split::new(base, base + 10.0), slew: rng.gen_range(6.0..150.0) };
        last = Some(Analysis::run(&flat, &full_ctx)?);
    }
    let full_time = t_full.elapsed();

    let stats = timer.stats();
    println!("\n{iterations} boundary-change iterations (2 edits each):");
    println!("  full recompute : {:>8.1} ms", full_time.as_secs_f64() * 1e3);
    println!(
        "  incremental    : {:>8.1} ms ({:.1}x faster)",
        inc_time.as_secs_f64() * 1e3,
        full_time.as_secs_f64() / inc_time.as_secs_f64().max(1e-9)
    );
    println!(
        "  work: {} forward + {} backward node updates vs {} full-graph passes",
        stats.forward_recomputed,
        stats.backward_recomputed,
        iterations * 2,
    );
    let Some(last) = last else {
        return Err("no iterations ran".into());
    };
    let reference = slack_summary(&last);
    println!(
        "  final WNS agrees: incremental {:.3} ps vs full {:.3} ps",
        final_summary.wns, reference.wns
    );
    assert_eq!(final_summary.wns.to_bits(), reference.wns.to_bits());
    Ok(())
}
