//! The paper's inductive claim (§5.3): train on *small* designs, predict on
//! a much larger unseen design. GraphSAGE aggregates local structure, so
//! the learned "is this pin timing-variant?" rule transfers across design
//! sizes.
//!
//! ```text
//! cargo run --release --example train_and_transfer
//! ```

use timing_macro_gnn::circuits::designs::{suite_library, training_suite};
use timing_macro_gnn::circuits::CircuitSpec;
use timing_macro_gnn::core::{Framework, FrameworkConfig};
use timing_macro_gnn::macromodel::eval::{evaluate, EvalOptions};
use timing_macro_gnn::sta::graph::ArcGraph;
use timing_macro_gnn::sta::netlist::Netlist;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let library = suite_library();

    // 1. Train on the six small training designs (hundreds of pins each).
    let suite = training_suite(&library)?;
    let designs: Vec<(String, Netlist)> = suite
        .iter()
        .map(|e| (e.name.clone(), e.netlist.clone()))
        .collect();
    println!("training designs:");
    for (name, netlist) in &designs {
        println!("  {:<14} {:>6} pins", name, netlist.stats().pins);
    }
    let mut framework = Framework::new(FrameworkConfig::default());
    let summary = framework.train(&designs, &library)?;
    println!(
        "trained: loss {:.4}, variant-pin recall {:.3}, precision {:.3} (data {:.1}s, gnn {:.1}s)",
        summary.final_loss,
        summary.train_metrics.recall(),
        summary.train_metrics.precision(),
        summary.data_time.as_secs_f64(),
        summary.train_time.as_secs_f64(),
    );

    // 2. Apply to a 10× larger unseen design.
    let big = CircuitSpec::sized("unseen_big", 12_000).seed(777).generate(&library)?;
    let flat = ArcGraph::from_netlist(&big, &library)?;
    println!("\nunseen design: {} pins", flat.live_nodes());
    let outcome = framework.generate_macro(&flat)?;
    println!(
        "inference {:.1} ms, kept {} pins ({} predicted variant, {} hard-kept)",
        outcome.prediction.inference_time.as_secs_f64() * 1e3,
        outcome.kept_pins,
        outcome.prediction.predicted_variant,
        outcome.prediction.hard_kept,
    );
    let result = evaluate(&flat, &outcome.model, &EvalOptions { contexts: 5, ..Default::default() })?;
    println!(
        "accuracy on the unseen design: avg {:.4} ps, max {:.3} ps over {} values",
        result.accuracy.avg, result.accuracy.max, result.accuracy.count
    );
    Ok(())
}
