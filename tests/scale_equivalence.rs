//! Scale-up equivalence properties for the million-pin path.
//!
//! The level-parallel propagation, the budget-chunked TS sweep, and the
//! budget-bounded View merge are only admissible because each is
//! bit-identical to its serial / unbounded counterpart. These properties
//! are exercised here over randomly sized designs (via
//! [`CircuitSpec::sized`], the same generator the scale sweep uses), and —
//! under `--ignored` — on a 100k-pin design, which CI's scale-smoke job
//! runs in release mode.

// Integration-test harness code: the clippy.toml test exemptions do not
// reach helper fns outside #[test], so state the exemption explicitly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use std::sync::Arc;
use timing_macro_gnn::circuits::CircuitSpec;
use timing_macro_gnn::macromodel::{MacroModel, MacroModelOptions, ReduceEngine};
use timing_macro_gnn::sensitivity::{
    evaluate_ts_with_core, ts_min_chunked_contexts, TsEngine, TsOptions,
};
use timing_macro_gnn::sta::constraints::Context;
use timing_macro_gnn::sta::graph::ArcGraph;
use timing_macro_gnn::sta::liberty::Library;
use timing_macro_gnn::sta::propagate::{Analysis, AnalysisOptions};
use timing_macro_gnn::sta::split::mode_edge_iter;
use timing_macro_gnn::sta::view::{DesignCore, GraphView};

fn sized_design(target_pins: usize, seed: u64) -> ArcGraph {
    let lib = Library::synthetic(55);
    let netlist = CircuitSpec::sized("scaleq", target_pins)
        .seed(seed)
        .generate(&lib)
        .unwrap();
    ArcGraph::from_netlist(&netlist, &lib).unwrap()
}

/// Asserts two analyses agree bit-for-bit on AT, slew, and RAT for every
/// node of `graph`.
fn assert_analyses_identical(graph: &ArcGraph, a: &Analysis, b: &Analysis, what: &str) {
    use timing_macro_gnn::sta::graph::NodeId;
    for i in 0..graph.nodes().len() {
        let n = NodeId(u32::try_from(i).unwrap());
        for (m, e) in mode_edge_iter() {
            let pairs = [
                (a.at(n), b.at(n), "at"),
                (a.slew(n), b.slew(n), "slew"),
                (a.rat(n), b.rat(n), "rat"),
            ];
            for (x, y, which) in pairs {
                assert_eq!(
                    x.get(m).get(e).to_bits(),
                    y.get(m).get(e).to_bits(),
                    "{what}: {which} differs at node {i} ({m:?}/{e:?})"
                );
            }
        }
    }
}

/// Full cross-engine sweep at one design size: level-parallel analysis
/// (1 and 2 workers, ArcGraph and SoA view) against the serial reference,
/// budget-chunked TS against the unbounded sweep, and budget-bounded View
/// merging against in-place reduction.
fn check_all_engines_at(graph: &ArcGraph, ts_budget_mb: usize, merge_budget_mb: usize) {
    let ctx = Context::nominal(graph);
    let opts = AnalysisOptions::default();

    // -- analysis: serial reference vs level-parallel on both storages.
    let reference = Analysis::run(graph, &ctx).unwrap();
    for threads in [1usize, 2] {
        let leveled = Analysis::run_leveled(graph, &ctx, opts, threads).unwrap();
        assert_analyses_identical(graph, &reference, &leveled, "arcgraph leveled");
    }
    let core: Arc<DesignCore> = DesignCore::freeze(graph);
    let view = GraphView::new(Arc::clone(&core));
    for threads in [1usize, 2] {
        let leveled = Analysis::run_leveled(&view, &ctx, opts, threads).unwrap();
        assert_analyses_identical(graph, &reference, &leveled, "soa view leveled");
    }

    // -- TS: unbounded vs budget-chunked, serial and parallel. The context
    // count is raised until the budget provably splits the sweep.
    let contexts = ts_min_chunked_contexts(&core, ts_budget_mb).max(3);
    let cand: Vec<bool> = (0..graph.node_count())
        .map(|i| i % 7 == 3) // sparse deterministic probe set
        .collect();
    let base = TsOptions {
        contexts,
        threads: 1,
        engine: TsEngine::View,
        ..Default::default()
    };
    let unbounded = evaluate_ts_with_core(&core, &cand, &base).unwrap();
    for threads in [1usize, 2] {
        let chunked = evaluate_ts_with_core(
            &core,
            &cand,
            &TsOptions { mem_budget_mb: ts_budget_mb, threads, ..base },
        )
        .unwrap();
        assert_eq!(unbounded.evaluated, chunked.evaluated);
        assert_eq!(unbounded.skipped, chunked.skipped);
        assert_eq!(unbounded.failures.len(), chunked.failures.len());
        for (i, (x, y)) in unbounded.ts.iter().zip(&chunked.ts).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "ts[{i}] with {threads} thread(s)");
        }
    }

    // -- macro: in-place reference vs View engine, unbounded and budgeted.
    let keep: Vec<bool> = (0..graph.node_count())
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            (h >> 60) == 0 // keep ~1/16 of internals
        })
        .collect();
    let in_place = MacroModel::generate(
        graph,
        &keep,
        &MacroModelOptions { reduce_engine: ReduceEngine::InPlace, ..Default::default() },
    )
    .unwrap();
    for mem_budget_mb in [0usize, merge_budget_mb] {
        let via_view = MacroModel::generate(
            graph,
            &keep,
            &MacroModelOptions {
                reduce_engine: ReduceEngine::View,
                mem_budget_mb,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            via_view.stats().reduce,
            in_place.stats().reduce,
            "reduce stats with budget {mem_budget_mb} MiB"
        );
        assert_eq!(
            via_view.serialize(),
            in_place.serialize(),
            "macro bytes with budget {mem_budget_mb} MiB"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// Every engine variant agrees bit-for-bit on randomly sized designs.
    /// A 1 MiB budget maximises chunking pressure: TS degrades to the
    /// smallest context groups the design allows, and the View merge
    /// flushes its overlay as often as the flush floor permits.
    #[test]
    fn engines_bit_identical_on_random_sizes(
        target_pins in 400usize..3_000,
        seed in 0u64..1_000,
    ) {
        let graph = sized_design(target_pins, seed);
        check_all_engines_at(&graph, 1, 1);
    }
}

/// The same property at 100k pins with realistic budgets. Too slow for a
/// debug-build tier-1 run; CI's scale-smoke job runs it in release via
/// `cargo test --release --test scale_equivalence -- --ignored`.
#[test]
#[ignore = "100k-pin design: run in release via scale-smoke (-- --ignored)"]
fn engines_bit_identical_at_100k_pins() {
    let graph = sized_design(100_000, 7);
    assert!(graph.node_count() >= 100_000, "generator undershot the pin target");
    check_all_engines_at(&graph, 64, 64);
}
