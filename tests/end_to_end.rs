//! End-to-end integration: the full pipeline from netlist generation
//! through TS data, GNN training, macro generation and evaluation, spanning
//! every crate in the workspace.

// Integration-test harness code: the clippy.toml test exemptions do not
// reach helper fns outside #[test], so state the exemption explicitly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use timing_macro_gnn::circuits::CircuitSpec;
use timing_macro_gnn::core::{Framework, FrameworkConfig};
use timing_macro_gnn::gnn::TrainConfig;
use timing_macro_gnn::macromodel::baselines::{generate_itimerm, ITIMERM_DEFAULT_TOLERANCE};
use timing_macro_gnn::macromodel::eval::{evaluate, EvalOptions};
use timing_macro_gnn::macromodel::MacroModelOptions;
use timing_macro_gnn::sensitivity::TsOptions;
use timing_macro_gnn::sta::graph::ArcGraph;
use timing_macro_gnn::sta::liberty::Library;
use timing_macro_gnn::sta::netlist::Netlist;

fn quick_config() -> FrameworkConfig {
    FrameworkConfig {
        train: TrainConfig { epochs: 80, ..Default::default() },
        ts: TsOptions { contexts: 2, ..Default::default() },
        ..Default::default()
    }
}

fn design(seed: u64, pins: usize, lib: &Library) -> Netlist {
    CircuitSpec::sized(format!("e2e_{seed}"), pins).seed(seed).generate(lib).unwrap()
}

#[test]
fn full_pipeline_small_to_large_transfer() {
    let lib = Library::synthetic(20);
    // Train on two small designs.
    let train: Vec<(String, Netlist)> = (1..=2)
        .map(|s| (format!("t{s}"), design(s, 400, &lib)))
        .collect();
    let mut fw = Framework::new(quick_config());
    let summary = fw.train(&train, &lib).unwrap();
    assert!(summary.final_loss.is_finite());
    assert!(
        summary.train_metrics.recall() > 0.7,
        "variant-pin recall {} too low to trust the keep-set",
        summary.train_metrics.recall()
    );

    // Apply to a 5x larger unseen design.
    let big = design(99, 2000, &lib);
    let flat = ArcGraph::from_netlist(&big, &lib).unwrap();
    let outcome = fw.generate_macro(&flat).unwrap();
    assert!(outcome.kept_pins < flat.live_nodes() / 2, "model must be much smaller");
    let result =
        evaluate(&flat, &outcome.model, &EvalOptions { contexts: 4, ..Default::default() })
            .unwrap();
    assert!(result.accuracy.count > 0);
    assert!(
        result.accuracy.max < 80.0,
        "transfer accuracy out of the expected regime: {} ps",
        result.accuracy.max
    );
}

#[test]
fn ours_is_smaller_than_itimerm_at_comparable_accuracy() {
    let lib = Library::synthetic(21);
    let d = design(7, 1500, &lib);
    let flat = ArcGraph::from_netlist(&d, &lib).unwrap();

    let mut fw = Framework::new(quick_config());
    let outcome = fw.run_on(&d, &lib).unwrap();
    let ours =
        evaluate(&flat, &outcome.model, &EvalOptions { contexts: 4, ..Default::default() })
            .unwrap();

    let itm_model =
        generate_itimerm(&flat, ITIMERM_DEFAULT_TOLERANCE, &MacroModelOptions::default())
            .unwrap();
    let itm =
        evaluate(&flat, &itm_model, &EvalOptions { contexts: 4, ..Default::default() }).unwrap();

    // The paper's headline: same accuracy level, smaller model.
    assert!(
        ours.model_bytes < itm.model_bytes,
        "ours {} bytes should undercut iTimerM {} bytes",
        ours.model_bytes,
        itm.model_bytes
    );
    assert!(
        ours.accuracy.max < itm.accuracy.max * 2.5,
        "accuracy must stay at the same level: ours {} vs iTimerM {}",
        ours.accuracy.max,
        itm.accuracy.max
    );
}

#[test]
fn generated_macro_is_reusable_across_contexts() {
    // The Fig. 1 motivation: one model, many instantiation contexts.
    let lib = Library::synthetic(22);
    let d = design(3, 800, &lib);
    let flat = ArcGraph::from_netlist(&d, &lib).unwrap();
    let mut fw = Framework::new(quick_config());
    let outcome = fw.run_on(&d, &lib).unwrap();

    use timing_macro_gnn::sta::constraints::ContextSampler;
    use timing_macro_gnn::sta::propagate::{Analysis, AnalysisOptions};
    let mut sampler = ContextSampler::new(555);
    for ctx in sampler.sample_many(&flat, 6) {
        let reference = Analysis::run(&flat, &ctx).unwrap();
        let macro_an = outcome.model.analyze(&ctx, AnalysisOptions::default()).unwrap();
        let d = reference.boundary().diff(macro_an.boundary());
        assert!(d.count > 0, "boundaries must be comparable");
        assert!(d.max < 100.0, "context-specific blow-up: {} ps", d.max);
    }
}
