//! Crash-safety of the `tmm` CLI, end to end over real processes: a
//! `tmm model` run killed at a seeded checkpoint transition and resumed
//! with `--resume` must produce a byte-identical macro model; resuming
//! under a different configuration must be a classed refusal (exit 4);
//! a hung stage must trip the deadline watchdog (exit 6); and the
//! built-in `tmm ckptcheck` harness must pass its own sweep.

// Integration-test harness code: the clippy.toml test exemptions do not
// reach helper fns outside #[test], so state the exemption explicitly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;
use std::process::{Command, Output};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tmm-crash-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawns the real `tmm` binary with a scrubbed crash-injection
/// environment plus the given overrides.
fn tmm(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_tmm"));
    cmd.args(args);
    cmd.env_remove("TMM_CRASH_AT");
    cmd.env_remove("TMM_CKPT_TALLY_OUT");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn tmm")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).to_string()
}

/// Generates a small clocked design + library into `dir`, returning the
/// two file paths.
fn gen_design(dir: &std::path::Path) -> (String, String) {
    let design = dir.join("d.tmm").to_string_lossy().to_string();
    let lib = dir.join("l.tmm").to_string_lossy().to_string();
    let out = tmm(
        &["gen", "--name", "crashy", "--pins", "60", "--seed", "11", "--out", &design,
          "--lib-out", &lib],
        &[],
    );
    assert!(out.status.success(), "gen failed: {}", stderr_of(&out));
    (design, lib)
}

#[test]
fn killed_run_resumes_byte_identical_and_stale_resume_is_refused() {
    let dir = scratch("kill-resume");
    let (design, lib) = gen_design(&dir);
    let ckpt = dir.join("ckpt").to_string_lossy().to_string();
    let model = dir.join("m.tmm").to_string_lossy().to_string();
    let tally = dir.join("tally.tmm").to_string_lossy().to_string();

    // Uninterrupted baseline, enumerating the crash points as it runs.
    let base_args =
        ["model", "--design", &design, "--lib", &lib, "--out", &model, "--checkpoint-dir", &ckpt];
    let out = tmm(&base_args, &[("TMM_CKPT_TALLY_OUT", tally.as_str())]);
    assert!(out.status.success(), "baseline failed: {}", stderr_of(&out));
    let baseline = std::fs::read_to_string(&model).unwrap();
    let total: u64 = std::fs::read_to_string(&tally)
        .unwrap()
        .lines()
        .find_map(|l| l.strip_prefix("total "))
        .unwrap()
        .parse()
        .unwrap();
    assert!(total > 0, "a checkpointed run must hit crash points");

    // Kill a fresh run mid-pipeline, then resume it.
    let ckpt2 = dir.join("ckpt-killed").to_string_lossy().to_string();
    let model2 = dir.join("m2.tmm").to_string_lossy().to_string();
    let kill_args =
        ["model", "--design", &design, "--lib", &lib, "--out", &model2, "--checkpoint-dir", &ckpt2];
    let spec = format!("*:{}", (total / 2).max(1));
    let killed = tmm(&kill_args, &[("TMM_CRASH_AT", spec.as_str())]);
    assert!(
        !killed.status.success(),
        "run armed with TMM_CRASH_AT={spec} must abort (total {total} points)"
    );
    let resumed = tmm(
        &["model", "--design", &design, "--lib", &lib, "--out", &model2, "--checkpoint-dir",
          &ckpt2, "--resume"],
        &[],
    );
    assert!(resumed.status.success(), "resume failed: {}", stderr_of(&resumed));
    let resumed_bytes = std::fs::read_to_string(&model2).unwrap();
    assert_eq!(resumed_bytes, baseline, "resumed model must be byte-identical to the baseline");

    // Stale-checkpoint guard: the same directory under a flipped
    // configuration is a classed validation refusal, never a reuse.
    let stale = tmm(
        &["model", "--design", &design, "--lib", &lib, "--out", &model2, "--checkpoint-dir",
          &ckpt2, "--resume", "--cppr"],
        &[],
    );
    assert_eq!(
        stale.status.code(),
        Some(4),
        "flipped config must exit 4, got {:?}: {}",
        stale.status.code(),
        stderr_of(&stale)
    );
    assert!(
        stderr_of(&stale).contains("refusing to resume"),
        "refusal must say why: {}",
        stderr_of(&stale)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ckptcheck_harness_passes_its_own_sweep() {
    let dir = scratch("ckptcheck");
    let (design, lib) = gen_design(&dir);
    let out_dir = dir.join("ck").to_string_lossy().to_string();
    let out = tmm(
        &["ckptcheck", "--design", &design, "--lib", &lib, "--out-dir", &out_dir, "--kills", "2"],
        &[],
    );
    assert!(out.status.success(), "ckptcheck failed: {}", stderr_of(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("byte-identical"), "unexpected ckptcheck output: {stdout}");
    assert!(stdout.contains("stale-checkpoint probe"), "probe missing from: {stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn silent_stage_trips_the_deadline_exit_code() {
    // Per-design diffcheck work takes well over a millisecond and only
    // beats the heartbeat at design boundaries, so a 1 ms deadline is
    // guaranteed to fire — deterministically exercising exit code 6.
    let out = tmm(&["diffcheck", "--designs", "2", "--deadline-ms", "1"], &[]);
    assert_eq!(
        out.status.code(),
        Some(6),
        "deadline watchdog must exit 6, got {:?}: {}",
        out.status.code(),
        stderr_of(&out)
    );
    assert!(
        stderr_of(&out).contains("deadline"),
        "watchdog must report the deadline: {}",
        stderr_of(&out)
    );
}
