//! CPPR integration: pessimism removal must survive macro modeling — the
//! generality claim the paper validates in Tables 3/4.

// Integration-test harness code: the clippy.toml test exemptions do not
// reach helper fns outside #[test], so state the exemption explicitly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use timing_macro_gnn::circuits::CircuitSpec;
use timing_macro_gnn::core::{Framework, FrameworkConfig};
use timing_macro_gnn::gnn::TrainConfig;
use timing_macro_gnn::macromodel::eval::{evaluate, EvalOptions};
use timing_macro_gnn::macromodel::{MacroModel, MacroModelOptions};
use timing_macro_gnn::sensitivity::TsOptions;
use timing_macro_gnn::sta::constraints::Context;
use timing_macro_gnn::sta::cppr::{cppr_crucial_pins, CpprReport};
use timing_macro_gnn::sta::graph::{ArcGraph, ArcTiming, NodeId};
use timing_macro_gnn::sta::liberty::TimingSense;
use timing_macro_gnn::sta::liberty::Library;
use timing_macro_gnn::sta::netlist::Netlist;
use timing_macro_gnn::sta::propagate::{Analysis, AnalysisOptions};

fn clocked_design(lib: &Library) -> Netlist {
    CircuitSpec::new("cppr_it")
        .inputs(5)
        .outputs(5)
        .register_banks(3, 12)
        .cloud(2, 7)
        .clock_fanout(3)
        .seed(31)
        .generate(lib)
        .unwrap()
}

#[test]
fn cppr_credits_are_positive_and_bounded_by_clock_path_gap() {
    let lib = Library::synthetic(40);
    let flat = ArcGraph::from_netlist(&clocked_design(&lib), &lib).unwrap();
    let ctx = Context::nominal(&flat);
    let an = Analysis::run_with_options(&flat, &ctx, AnalysisOptions { cppr: true, ..Default::default() }).unwrap();
    let report = CpprReport::from_analysis(&flat, &an);
    assert!(report.credited_checks() > 0, "a shared clock tree must yield credits");
    // A credit can never exceed the full late/early gap at the capture pin.
    for (check, cppr) in flat.checks().iter().zip(&report.checks) {
        let gap = an.at(check.ck).late.rise - an.at(check.ck).early.rise;
        assert!(
            cppr.setup_credit <= gap + 1e-9,
            "{}: credit {} exceeds clock gap {}",
            check.name,
            cppr.setup_credit,
            gap
        );
        assert!(cppr.setup_credit >= 0.0);
    }
}

/// A reconvergent (mesh-style) clock network: redundant fast paths from
/// the clock source straight to the capture buffers, alongside the
/// buffered tree. The common point of a launch/capture pair is then no
/// longer unique as a *graph* property — CPPR must follow the critical
/// clock parents and credit the late/early gap at the *deepest* common
/// point of those, never going negative.
#[test]
fn reconvergent_clock_mesh_credit_at_deepest_common_point_stays_nonnegative() {
    let lib = Library::synthetic(40);
    let netlist = clocked_design(&lib);
    let mut flat = ArcGraph::from_netlist(&netlist, &lib).unwrap();
    let src = flat.clock_source().unwrap();
    let ctx = Context::nominal(&flat);
    let cppr_on = AnalysisOptions { cppr: true, ..Default::default() };

    // Baseline tree analysis locates each capture pin's driving buffer.
    let base = Analysis::run_with_options(&flat, &ctx, cppr_on).unwrap();
    let base_credit = CpprReport::from_analysis(&flat, &base).total_setup_credit();
    let tree_parents = base.clock_parents().to_vec();
    let capture_pins: Vec<NodeId> = flat.checks().iter().map(|c| c.ck).collect();

    // Mesh the clock: one redundant fast wire from the source to every
    // distinct capture buffer (faster than the buffered path, so the late
    // critical tree is untouched while early arrivals reconverge).
    let mut meshed = std::collections::HashSet::new();
    for ck in capture_pins {
        let buffer = tree_parents[ck.index()];
        if buffer != u32::MAX && NodeId(buffer) != src && meshed.insert(buffer) {
            flat.add_arc(
                src,
                NodeId(buffer),
                TimingSense::PositiveUnate,
                ArcTiming::Wire { delay: 0.5, degrade: 1.0 },
                true,
            );
        }
    }
    assert!(meshed.len() >= 2, "mesh needs redundant paths to distinct buffers");
    flat.rebuild_topo().unwrap();
    flat.mark_clock_network();

    let an = Analysis::run_with_options(&flat, &ctx, cppr_on).unwrap();
    let report = CpprReport::from_analysis(&flat, &an);
    assert!(report.credited_checks() > 0, "mesh must not erase all credits");

    // Non-negative, finite credit at every common point, both edges.
    for credit in an.credits() {
        for c in [credit.setup.rise, credit.setup.fall, credit.hold.rise, credit.hold.fall] {
            assert!(c.is_finite() && c >= 0.0, "credit {c} out of range");
        }
    }

    // Each setup credit equals the late/early rise gap at the DEEPEST
    // common point of the launch/capture critical-parent chains —
    // recomputed independently from the mesh-aware analysis.
    let parents = an.clock_parents();
    let mut verified = 0usize;
    for (ci, cp) in report.checks.iter().enumerate() {
        let Some(launch) = cp.launch_ck else { continue };
        let mut launch_chain = Vec::new();
        let mut cur = launch.index() as u32;
        while cur != u32::MAX {
            launch_chain.push(cur);
            cur = parents[cur as usize];
        }
        let mut expected = 0.0f64;
        let mut cur = cp.capture_ck.index() as u32;
        while cur != u32::MAX {
            if launch_chain.contains(&cur) {
                let q = an.at(NodeId(cur));
                if q.late.rise.is_finite() && q.early.rise.is_finite() {
                    expected = (q.late.rise - q.early.rise).max(0.0);
                }
                break;
            }
            cur = parents[cur as usize];
        }
        assert!(
            (an.credits()[ci].setup.rise - expected).abs() < 1e-12,
            "check {}: credit {} != gap {} at deepest common point",
            cp.name,
            an.credits()[ci].setup.rise,
            expected
        );
        verified += 1;
    }
    assert!(verified > 0, "at least one launch/capture pair must exist");

    // The fast redundant paths widen the early/late divergence along the
    // shared prefixes, so meshing can only increase the recovered credit.
    assert!(
        report.total_setup_credit() >= base_credit - 1e-9,
        "meshing shrank total credit: {} -> {}",
        base_credit,
        report.total_setup_credit()
    );

    // Pessimism removal still only ever *improves* slacks on the mesh.
    let plain = Analysis::run(&flat, &ctx).unwrap();
    for (c, p) in an.boundary().checks.iter().zip(&plain.boundary().checks) {
        for (with, without) in [
            (c.setup_slack.rise, p.setup_slack.rise),
            (c.setup_slack.fall, p.setup_slack.fall),
            (c.hold_slack.rise, p.hold_slack.rise),
            (c.hold_slack.fall, p.hold_slack.fall),
        ] {
            if with.is_finite() && without.is_finite() {
                assert!(
                    with >= without - 1e-9,
                    "check {}: CPPR degraded a slack: {} -> {}",
                    c.name,
                    without,
                    with
                );
            }
        }
    }
}

#[test]
fn keeping_clock_branch_points_preserves_cppr_accuracy() {
    let lib = Library::synthetic(40);
    let netlist = clocked_design(&lib);
    let flat = ArcGraph::from_netlist(&netlist, &lib).unwrap();
    let crucial = cppr_crucial_pins(&flat);
    assert!(!crucial.is_empty());

    // Model A keeps the branch points, model B does not (everything else
    // fully collapsed in both).
    let mut keep_with = vec![false; flat.node_count()];
    for &p in &crucial {
        keep_with[p.index()] = true;
    }
    let keep_without = vec![false; flat.node_count()];
    let opts = MacroModelOptions { compress_luts: false, ..Default::default() };
    let with = MacroModel::generate(&flat, &keep_with, &opts).unwrap();
    let without = MacroModel::generate(&flat, &keep_without, &opts).unwrap();

    let eval_opts = EvalOptions { contexts: 4, cppr: true, ..Default::default() };
    let r_with = evaluate(&flat, &with, &eval_opts).unwrap();
    let r_without = evaluate(&flat, &without, &eval_opts).unwrap();
    assert!(
        r_with.accuracy.max <= r_without.accuracy.max + 1e-9,
        "dropping clock branch points must not improve CPPR accuracy: {} vs {}",
        r_with.accuracy.max,
        r_without.accuracy.max
    );
}

#[test]
fn cppr_framework_model_accurate_under_cppr_evaluation() {
    let lib = Library::synthetic(40);
    let netlist = clocked_design(&lib);
    let flat = ArcGraph::from_netlist(&netlist, &lib).unwrap();
    let mut fw = Framework::new(FrameworkConfig {
        cppr_mode: true,
        with_cppr_feature: true,
        train: TrainConfig { epochs: 80, ..Default::default() },
        ts: TsOptions { contexts: 2, ..Default::default() },
        ..Default::default()
    });
    let outcome = fw.run_on(&netlist, &lib).unwrap();
    let r = evaluate(
        &flat,
        &outcome.model,
        &EvalOptions { contexts: 4, cppr: true, ..Default::default() },
    )
    .unwrap();
    assert!(r.accuracy.count > 0);
    assert!(
        r.accuracy.max < 80.0,
        "CPPR-mode macro accuracy out of regime: {} ps",
        r.accuracy.max
    );
}

#[test]
fn cppr_mode_on_and_off_agree_when_no_credit_exists() {
    // A design with a single flip-flop has no launch/capture pair, so CPPR
    // must be a no-op.
    let lib = Library::synthetic(41);
    let netlist = CircuitSpec::new("single_ff")
        .inputs(3)
        .outputs(3)
        .register_banks(1, 1)
        .cloud(1, 3)
        .seed(2)
        .generate(&lib)
        .unwrap();
    let flat = ArcGraph::from_netlist(&netlist, &lib).unwrap();
    let ctx = Context::nominal(&flat);
    let plain = Analysis::run(&flat, &ctx).unwrap();
    let cppr = Analysis::run_with_options(&flat, &ctx, AnalysisOptions { cppr: true, ..Default::default() }).unwrap();
    let d = plain.boundary().diff(cppr.boundary());
    assert!(d.max < 1e-9, "no pair, no credit, no difference: {}", d.max);
}
