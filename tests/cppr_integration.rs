//! CPPR integration: pessimism removal must survive macro modeling — the
//! generality claim the paper validates in Tables 3/4.

// Integration-test harness code: the clippy.toml test exemptions do not
// reach helper fns outside #[test], so state the exemption explicitly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use timing_macro_gnn::circuits::CircuitSpec;
use timing_macro_gnn::core::{Framework, FrameworkConfig};
use timing_macro_gnn::gnn::TrainConfig;
use timing_macro_gnn::macromodel::eval::{evaluate, EvalOptions};
use timing_macro_gnn::macromodel::{MacroModel, MacroModelOptions};
use timing_macro_gnn::sensitivity::TsOptions;
use timing_macro_gnn::sta::constraints::Context;
use timing_macro_gnn::sta::cppr::{cppr_crucial_pins, CpprReport};
use timing_macro_gnn::sta::graph::ArcGraph;
use timing_macro_gnn::sta::liberty::Library;
use timing_macro_gnn::sta::netlist::Netlist;
use timing_macro_gnn::sta::propagate::{Analysis, AnalysisOptions};

fn clocked_design(lib: &Library) -> Netlist {
    CircuitSpec::new("cppr_it")
        .inputs(5)
        .outputs(5)
        .register_banks(3, 12)
        .cloud(2, 7)
        .clock_fanout(3)
        .seed(31)
        .generate(lib)
        .unwrap()
}

#[test]
fn cppr_credits_are_positive_and_bounded_by_clock_path_gap() {
    let lib = Library::synthetic(40);
    let flat = ArcGraph::from_netlist(&clocked_design(&lib), &lib).unwrap();
    let ctx = Context::nominal(&flat);
    let an = Analysis::run_with_options(&flat, &ctx, AnalysisOptions { cppr: true, ..Default::default() }).unwrap();
    let report = CpprReport::from_analysis(&flat, &an);
    assert!(report.credited_checks() > 0, "a shared clock tree must yield credits");
    // A credit can never exceed the full late/early gap at the capture pin.
    for (check, cppr) in flat.checks().iter().zip(&report.checks) {
        let gap = an.at(check.ck).late.rise - an.at(check.ck).early.rise;
        assert!(
            cppr.setup_credit <= gap + 1e-9,
            "{}: credit {} exceeds clock gap {}",
            check.name,
            cppr.setup_credit,
            gap
        );
        assert!(cppr.setup_credit >= 0.0);
    }
}

#[test]
fn keeping_clock_branch_points_preserves_cppr_accuracy() {
    let lib = Library::synthetic(40);
    let netlist = clocked_design(&lib);
    let flat = ArcGraph::from_netlist(&netlist, &lib).unwrap();
    let crucial = cppr_crucial_pins(&flat);
    assert!(!crucial.is_empty());

    // Model A keeps the branch points, model B does not (everything else
    // fully collapsed in both).
    let mut keep_with = vec![false; flat.node_count()];
    for &p in &crucial {
        keep_with[p.index()] = true;
    }
    let keep_without = vec![false; flat.node_count()];
    let opts = MacroModelOptions { compress_luts: false, ..Default::default() };
    let with = MacroModel::generate(&flat, &keep_with, &opts).unwrap();
    let without = MacroModel::generate(&flat, &keep_without, &opts).unwrap();

    let eval_opts = EvalOptions { contexts: 4, cppr: true, ..Default::default() };
    let r_with = evaluate(&flat, &with, &eval_opts).unwrap();
    let r_without = evaluate(&flat, &without, &eval_opts).unwrap();
    assert!(
        r_with.accuracy.max <= r_without.accuracy.max + 1e-9,
        "dropping clock branch points must not improve CPPR accuracy: {} vs {}",
        r_with.accuracy.max,
        r_without.accuracy.max
    );
}

#[test]
fn cppr_framework_model_accurate_under_cppr_evaluation() {
    let lib = Library::synthetic(40);
    let netlist = clocked_design(&lib);
    let flat = ArcGraph::from_netlist(&netlist, &lib).unwrap();
    let mut fw = Framework::new(FrameworkConfig {
        cppr_mode: true,
        with_cppr_feature: true,
        train: TrainConfig { epochs: 80, ..Default::default() },
        ts: TsOptions { contexts: 2, ..Default::default() },
        ..Default::default()
    });
    let outcome = fw.run_on(&netlist, &lib).unwrap();
    let r = evaluate(
        &flat,
        &outcome.model,
        &EvalOptions { contexts: 4, cppr: true, ..Default::default() },
    )
    .unwrap();
    assert!(r.accuracy.count > 0);
    assert!(
        r.accuracy.max < 80.0,
        "CPPR-mode macro accuracy out of regime: {} ps",
        r.accuracy.max
    );
}

#[test]
fn cppr_mode_on_and_off_agree_when_no_credit_exists() {
    // A design with a single flip-flop has no launch/capture pair, so CPPR
    // must be a no-op.
    let lib = Library::synthetic(41);
    let netlist = CircuitSpec::new("single_ff")
        .inputs(3)
        .outputs(3)
        .register_banks(1, 1)
        .cloud(1, 3)
        .seed(2)
        .generate(&lib)
        .unwrap();
    let flat = ArcGraph::from_netlist(&netlist, &lib).unwrap();
    let ctx = Context::nominal(&flat);
    let plain = Analysis::run(&flat, &ctx).unwrap();
    let cppr = Analysis::run_with_options(&flat, &ctx, AnalysisOptions { cppr: true, ..Default::default() }).unwrap();
    let d = plain.boundary().diff(cppr.boundary());
    assert!(d.max < 1e-9, "no pair, no credit, no difference: {}", d.max);
}
