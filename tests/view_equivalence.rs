//! Cross-engine equivalence properties for the DesignCore/GraphView split.
//!
//! The copy-on-write view machinery is only admissible because it changes
//! *nothing* observable: TS probed through a [`GraphView`] + cone-limited
//! retime must equal the legacy clone-per-pin sweep bit-for-bit (under any
//! thread count), and macro models merged through a view must serialise to
//! the exact bytes the in-place reducer produces. These properties are
//! exercised here over randomly generated designs and seeds.

// Integration-test harness code: the clippy.toml test exemptions do not
// reach helper fns outside #[test], so state the exemption explicitly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use timing_macro_gnn::circuits::CircuitSpec;
use timing_macro_gnn::macromodel::{
    extract_ilm, MacroModel, MacroModelOptions, ReduceEngine,
};
use timing_macro_gnn::sensitivity::{
    evaluate_ts, filter_insensitive, FilterOptions, TsEngine, TsOptions,
};
use timing_macro_gnn::sta::graph::ArcGraph;
use timing_macro_gnn::sta::liberty::Library;

fn generated_ilm(seed: u64, banks: usize, depth: usize) -> ArcGraph {
    let lib = Library::synthetic(55);
    let netlist = CircuitSpec::new("veq")
        .inputs(4)
        .outputs(4)
        .register_banks(banks, 3)
        .cloud(depth, 5)
        .seed(seed)
        .generate(&lib)
        .unwrap();
    let flat = ArcGraph::from_netlist(&netlist, &lib).unwrap();
    extract_ilm(&flat).unwrap().0
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// View-engine TS equals clone-engine TS bit-exactly — sequentially and
    /// with worker threads — on any generated design.
    #[test]
    fn view_ts_equals_clone_ts_bit_exactly(
        seed in 0u64..500,
        banks in 1usize..3,
        depth in 1usize..3,
        cppr in proptest::bool::ANY,
    ) {
        let ilm = generated_ilm(seed, banks, depth);
        let filter = filter_insensitive(&ilm, &FilterOptions::default()).unwrap();
        for threads in [1usize, 2] {
            let base = TsOptions { contexts: 2, threads, cppr, ..Default::default() };
            let clone_ts = evaluate_ts(
                &ilm,
                &filter.survivors,
                &TsOptions { engine: TsEngine::Clone, ..base },
            )
            .unwrap();
            let view_ts = evaluate_ts(
                &ilm,
                &filter.survivors,
                &TsOptions { engine: TsEngine::View, ..base },
            )
            .unwrap();
            prop_assert_eq!(clone_ts.evaluated, view_ts.evaluated);
            prop_assert_eq!(clone_ts.skipped, view_ts.skipped);
            prop_assert_eq!(clone_ts.failures.len(), view_ts.failures.len());
            for (a, b) in clone_ts.ts.iter().zip(&view_ts.ts) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// Macro models merged through a GraphView serialise byte-identically
    /// to in-place reduction, for random keep masks.
    #[test]
    fn view_merging_serializes_byte_identically(
        seed in 0u64..500,
        banks in 1usize..3,
        depth in 1usize..3,
        keep_bias in 0.0f64..1.0,
    ) {
        let lib = Library::synthetic(55);
        let netlist = CircuitSpec::new("veq")
            .inputs(4)
            .outputs(4)
            .register_banks(banks, 3)
            .cloud(depth, 5)
            .seed(seed)
            .generate(&lib)
            .unwrap();
        let flat = ArcGraph::from_netlist(&netlist, &lib).unwrap();
        // Deterministic pseudo-random keep mask derived from the node index.
        let keep: Vec<bool> = (0..flat.node_count())
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed;
                ((h >> 32) as f64) / f64::from(u32::MAX) < keep_bias
            })
            .collect();
        let via_view = MacroModel::generate(
            &flat,
            &keep,
            &MacroModelOptions { reduce_engine: ReduceEngine::View, ..Default::default() },
        )
        .unwrap();
        let in_place = MacroModel::generate(
            &flat,
            &keep,
            &MacroModelOptions { reduce_engine: ReduceEngine::InPlace, ..Default::default() },
        )
        .unwrap();
        prop_assert_eq!(via_view.stats().reduce, in_place.stats().reduce);
        prop_assert_eq!(via_view.serialize(), in_place.serialize());
    }
}
