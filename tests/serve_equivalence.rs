//! Session-isolation properties for the `tmm-serve` what-if engine.
//!
//! The serving layer is only admissible because concurrency changes
//! *nothing* observable: N sessions with interleaved edits over one
//! shared [`DesignCore`] must answer every query with exactly the bits a
//! fresh single-threaded replay produces, and a session's final state
//! must equal an independently reconstructed `GraphView` + `Context`
//! analysed from scratch. These properties are exercised here over
//! random designs, random op scripts, and random worker counts.

// Integration-test harness code: the clippy.toml test exemptions do not
// reach helper fns outside #[test], so state the exemption explicitly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use std::sync::Arc;
use timing_macro_gnn::circuits::CircuitSpec;
use timing_macro_gnn::faults::eco::{EcoEdit, EcoStream};
use timing_macro_gnn::serve::{
    format_quad, DesignEntry, DesignPool, EngineOptions, QueryKind, ServeEngine, Session,
};
use timing_macro_gnn::sta::constraints::{Context, PiConstraint};
use timing_macro_gnn::sta::graph::ArcGraph;
use timing_macro_gnn::sta::liberty::Library;
use timing_macro_gnn::sta::propagate::{Analysis, AnalysisOptions};
use timing_macro_gnn::sta::split::Split;
use timing_macro_gnn::sta::view::{GraphView, TimingGraph};

/// One scripted session operation (mirrors the wire commands the engine
/// executes, but kept structured so the reference replay is trivial).
#[derive(Debug, Clone)]
enum ScriptOp {
    Query(QueryKind, String),
    SetPi(usize, f64, f64, f64),
    SetPoLoad(usize, f64),
    Eco(EcoEdit),
}

/// Deterministic per-session op script: mostly queries, some boundary
/// re-constraints, a few prefix-ordered ECO edits.
fn build_script(
    entry: &Arc<DesignEntry>,
    graph: &ArcGraph,
    seed: u64,
    steps: usize,
) -> Vec<ScriptOp> {
    let pins: Vec<String> =
        graph.topo_order().iter().map(|&n| graph.node_name(n).to_string()).collect();
    let eco = EcoStream::generate(&entry.core, 8, seed).edits().to_vec();
    let mut eco_cursor = 0usize;
    let pi_count = entry.ctx.pi.len();
    let po_count = entry.ctx.po.len();
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = || {
        // SplitMix-ish mixer; the exact stream does not matter, only that
        // it is deterministic in `seed`.
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^ (z >> 31)
    };
    let mut ops = Vec::with_capacity(steps);
    for _ in 0..steps {
        let roll = next() % 10;
        let op = match roll {
            0..=5 => {
                let kind = match next() % 4 {
                    0 => QueryKind::At,
                    1 => QueryKind::Rat,
                    2 => QueryKind::Slack,
                    _ => QueryKind::Slew,
                };
                ScriptOp::Query(kind, pins[(next() as usize) % pins.len()].clone())
            }
            6 | 7 if pi_count > 0 => {
                let idx = (next() as usize) % pi_count;
                let e = (next() % 200) as f64 / 10.0;
                ScriptOp::SetPi(idx, e, e + (next() % 100) as f64 / 10.0, 5.0 + (next() % 400) as f64 / 10.0)
            }
            8 if po_count > 0 => {
                ScriptOp::SetPoLoad((next() as usize) % po_count, 1.0 + (next() % 300) as f64 / 10.0)
            }
            _ => {
                if eco_cursor < eco.len() {
                    eco_cursor += 1;
                    ScriptOp::Eco(eco[eco_cursor - 1].clone())
                } else {
                    ScriptOp::Query(QueryKind::Slack, pins[(next() as usize) % pins.len()].clone())
                }
            }
        };
        ops.push(op);
    }
    ops
}

fn wire_line(sid: u64, op: &ScriptOp) -> String {
    use timing_macro_gnn::serve::protocol::{format_command, Command};
    let cmd = match op {
        ScriptOp::Query(kind, pin) => {
            Command::Query { sid, kind: *kind, pin: pin.clone() }
        }
        ScriptOp::SetPi(idx, e, l, s) => Command::SetPi {
            sid,
            idx: *idx,
            at_early: *e,
            at_late: *l,
            slew: *s,
        },
        ScriptOp::SetPoLoad(idx, load) => Command::SetPoLoad { sid, idx: *idx, load: *load },
        ScriptOp::Eco(edit) => Command::Eco { sid, edit: edit.clone() },
    };
    format_command(&cmd)
}

/// Replays one script on a fresh single-threaded [`Session`] and returns
/// the expected response line per op.
fn serial_reference(entry: &Arc<DesignEntry>, sid: u64, script: &[ScriptOp]) -> Vec<String> {
    let mut session = Session::open(sid, Arc::clone(entry));
    script
        .iter()
        .map(|op| match op {
            ScriptOp::Query(kind, pin) => {
                format!("ok {}", format_quad(session.query(*kind, pin).unwrap()))
            }
            ScriptOp::SetPi(idx, e, l, s) => {
                session.set_pi(*idx, *e, *l, *s).unwrap();
                "ok".to_string()
            }
            ScriptOp::SetPoLoad(idx, load) => {
                session.set_po_load(*idx, *load).unwrap();
                "ok".to_string()
            }
            ScriptOp::Eco(edit) => {
                session.apply_eco(edit).unwrap();
                "ok".to_string()
            }
        })
        .collect()
}

/// Rebuilds a session's end state from first principles — an edited
/// `GraphView` plus a mutated `Context`, analysed from scratch with the
/// batch `Analysis` engine (no serve/session/incremental code involved).
fn scratch_final_slack(
    entry: &Arc<DesignEntry>,
    script: &[ScriptOp],
    pin: &str,
) -> String {
    let mut view = GraphView::new(Arc::clone(&entry.core));
    let mut ctx = entry.ctx.clone();
    for op in script {
        match op {
            ScriptOp::Query(..) => {}
            ScriptOp::SetPi(idx, e, l, s) => {
                ctx.pi[*idx] = PiConstraint { at: Split::new(*e, *l), slew: *s };
            }
            ScriptOp::SetPoLoad(idx, load) => ctx.po[*idx].load = *load,
            ScriptOp::Eco(edit) => edit.apply(&mut view).unwrap(),
        }
    }
    let analysis = Analysis::run_with_options(&view, &ctx, entry.options).unwrap();
    let n = (0..view.node_count())
        .map(|i| timing_macro_gnn::sta::graph::NodeId(i as u32))
        .find(|&n| !view.node_dead(n) && view.node_name(n) == pin)
        .unwrap();
    format!("ok {}", format_quad(analysis.slack(n)))
}

fn built_design(seed: u64, pins: usize) -> (ArcGraph, Library) {
    let lib = Library::synthetic(7);
    let netlist =
        CircuitSpec::sized("serve_eq", pins).seed(seed).generate(&lib).unwrap();
    let graph = ArcGraph::from_netlist(&netlist, &lib).unwrap();
    (graph, lib)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

    /// N concurrent sessions with interleaved edit/query scripts on one
    /// shared core answer bit-identically to fresh single-threaded
    /// replays of the same scripts — for any worker count.
    #[test]
    fn concurrent_sessions_match_serial_replay_bit_exactly(
        seed in 0u64..300,
        sessions in 2usize..5,
        workers in 1usize..4,
        steps in 6usize..14,
    ) {
        let (graph, _lib) = built_design(seed, 220);
        let entry = DesignEntry::new(
            &graph,
            Context::nominal(&graph),
            AnalysisOptions::default(),
            None,
        );
        let mut pool = DesignPool::new();
        pool.insert(Arc::clone(&entry));
        let engine = ServeEngine::new(Arc::new(pool), EngineOptions { workers });

        let opens = "open serve_eq\n".repeat(sessions);
        let sids: Vec<u64> = engine
            .submit_lines(&opens)
            .lines()
            .map(|l| l.strip_prefix("ok ").unwrap().parse().unwrap())
            .collect();
        prop_assert_eq!(sids.len(), sessions);

        let scripts: Vec<Vec<ScriptOp>> = sids
            .iter()
            .map(|sid| build_script(&entry, &graph, seed ^ (sid * 0x51_7c_c1), steps))
            .collect();

        // Interleave the sessions' ops round-robin into one submission so
        // different shards genuinely run concurrently, then demultiplex
        // the response lines back per session.
        let mut body = String::new();
        let mut line_owner = Vec::new();
        for step in 0..steps {
            for (si, script) in scripts.iter().enumerate() {
                body.push_str(&wire_line(sids[si], &script[step]));
                body.push('\n');
                line_owner.push((si, step));
            }
        }
        let responses: Vec<String> =
            engine.submit_lines(&body).lines().map(str::to_string).collect();
        prop_assert_eq!(responses.len(), line_owner.len());

        for (si, sid) in sids.iter().enumerate() {
            let expected = serial_reference(&entry, *sid, &scripts[si]);
            for (line, &(owner, step)) in responses.iter().zip(&line_owner) {
                if owner == si {
                    prop_assert_eq!(
                        line,
                        &expected[step],
                        "sid {} step {} diverged from serial replay",
                        sid,
                        step
                    );
                }
            }
        }
    }

    /// A session's final answer equals a from-scratch batch analysis of
    /// an independently reconstructed overlay + context (no session or
    /// incremental machinery involved in the reference).
    #[test]
    fn session_end_state_matches_from_scratch_analysis(
        seed in 0u64..300,
        steps in 4usize..12,
    ) {
        let (graph, _lib) = built_design(seed, 200);
        let entry = DesignEntry::new(
            &graph,
            Context::nominal(&graph),
            AnalysisOptions::default(),
            None,
        );
        let script = build_script(&entry, &graph, seed ^ 0xABCD, steps);
        let probe = graph.node_name(graph.topo_order()[graph.topo_order().len() / 2]).to_string();

        let mut session = Session::open(1, Arc::clone(&entry));
        for op in &script {
            match op {
                ScriptOp::Query(kind, pin) => {
                    let _ = session.query(*kind, pin).unwrap();
                }
                ScriptOp::SetPi(idx, e, l, s) => session.set_pi(*idx, *e, *l, *s).unwrap(),
                ScriptOp::SetPoLoad(idx, load) => session.set_po_load(*idx, *load).unwrap(),
                ScriptOp::Eco(edit) => session.apply_eco(edit).unwrap(),
            }
        }
        let got = format!("ok {}", format_quad(session.query(QueryKind::Slack, &probe).unwrap()));
        let want = scratch_final_slack(&entry, &script, &probe);
        prop_assert_eq!(got, want);
    }
}
