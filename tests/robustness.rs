//! Robustness integration: the hardened pipeline must survive corrupted
//! inputs (quarantine), forced training divergence (backoff / rollback),
//! and an unhealthy model (pure-ILM degraded fallback) — all with the
//! outcome recorded in the returned summaries, never a panic or a wedged
//! framework.

// Integration-test harness code: the clippy.toml test exemptions do not
// reach helper fns outside #[test], so state the exemption explicitly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use timing_macro_gnn::circuits::CircuitSpec;
use timing_macro_gnn::core::{Framework, FrameworkConfig, Stage};
use timing_macro_gnn::faults::{corrupt_text, FaultOp};
use timing_macro_gnn::gnn::TrainConfig;
use timing_macro_gnn::sensitivity::TsOptions;
use timing_macro_gnn::sta::graph::ArcGraph;
use timing_macro_gnn::sta::liberty::Library;
use timing_macro_gnn::sta::netlist::{Netlist, NetlistBuilder};

fn quick_config() -> FrameworkConfig {
    FrameworkConfig {
        train: TrainConfig { epochs: 40, ..Default::default() },
        ts: TsOptions { contexts: 2, ..Default::default() },
        ..Default::default()
    }
}

fn design(name: &str, seed: u64, lib: &Library) -> Netlist {
    CircuitSpec::sized(name, 400).seed(seed).generate(lib).unwrap()
}

/// A netlist that parses and builds but cannot be lowered to a timing
/// graph: two inverters wired into a combinational loop.
fn cyclic_design(lib: &Library) -> Netlist {
    let mut b = NetlistBuilder::new("cyclic", lib);
    let pi = b.input("in").unwrap();
    let po = b.output("out").unwrap();
    let buf = b.cell("u0", "BUFX1").unwrap();
    let i1 = b.cell("i1", "INVX1").unwrap();
    let i2 = b.cell("i2", "INVX1").unwrap();
    let buf_a = b.pin_of(buf, "A").unwrap();
    let buf_z = b.pin_of(buf, "Z").unwrap();
    let i1_a = b.pin_of(i1, "A").unwrap();
    let i1_z = b.pin_of(i1, "Z").unwrap();
    let i2_a = b.pin_of(i2, "A").unwrap();
    let i2_z = b.pin_of(i2, "Z").unwrap();
    b.connect("n_in", pi, &[buf_a]).unwrap();
    b.connect("n_out", buf_z, &[po]).unwrap();
    b.connect("n1", i1_z, &[i2_a]).unwrap();
    b.connect("n2", i2_z, &[i1_a]).unwrap();
    b.finish().unwrap()
}

#[test]
fn training_quarantines_broken_design_and_still_converges() {
    let lib = Library::synthetic(17);
    let designs = vec![
        ("good_a".to_string(), design("good_a", 1, &lib)),
        ("broken".to_string(), cyclic_design(&lib)),
        ("good_b".to_string(), design("good_b", 2, &lib)),
    ];
    let mut fw = Framework::new(quick_config());
    let summary = fw.train(&designs, &lib).unwrap();

    assert_eq!(summary.quarantined.len(), 1, "exactly the broken design is skipped");
    assert_eq!(summary.quarantined[0].name, "broken");
    assert_eq!(summary.quarantined[0].stage, Stage::DataGeneration);
    assert_eq!(summary.design_positive_rates.len(), 2, "both healthy designs trained");
    assert!(fw.is_trained());
    assert!(!fw.is_degraded());
    assert!(summary.final_loss.is_finite());

    // The surviving model still drives macro generation on unseen input.
    let unseen = design("unseen", 9, &lib);
    let flat = ArcGraph::from_netlist(&unseen, &lib).unwrap();
    let outcome = fw.generate_macro(&flat).unwrap();
    assert!(!outcome.degraded);
    assert!(outcome.kept_pins > 0);
}

#[test]
fn corrupted_model_import_fails_with_staged_error_or_degrades() {
    let lib = Library::synthetic(17);
    let designs = vec![("t".to_string(), design("t", 3, &lib))];
    let mut fw = Framework::new(quick_config());
    fw.train(&designs, &lib).unwrap();
    let text = fw.export_model().unwrap();

    // A sanity anchor: the pristine export must import cleanly.
    let clean = Framework::import_model(quick_config(), &text).unwrap();
    assert!(!clean.is_degraded());

    // Every corruption operator, over many seeds, must either be caught
    // at import (a structured `Stage::Import` error), import as a model
    // the validator flags unhealthy (degraded framework), or happen to
    // leave the text semantically intact — never panic, never hand back
    // a framework that silently trusts poisoned weights.
    for op in FaultOp::ALL {
        for seed in 0..32u64 {
            let bad = corrupt_text(op, &text, seed);
            match Framework::import_model(quick_config(), &bad) {
                Err(e) => assert_eq!(e.stage, Stage::Import),
                Ok(imported) => {
                    let unseen = design("unseen", 4, &lib);
                    let flat = ArcGraph::from_netlist(&unseen, &lib).unwrap();
                    let outcome = imported.generate_macro(&flat).unwrap();
                    assert_eq!(outcome.degraded, imported.is_degraded());
                }
            }
        }
    }
}

#[test]
fn forced_divergence_degrades_to_pure_ilm_fallback() {
    let lib = Library::synthetic(17);
    let designs = vec![("t".to_string(), design("t", 5, &lib))];
    let mut fw = Framework::new(FrameworkConfig {
        train: TrainConfig { epochs: 10, lr: 1e30, max_retries: 0, ..Default::default() },
        ts: TsOptions { contexts: 2, ..Default::default() },
        ..Default::default()
    });
    let summary = fw.train(&designs, &lib).unwrap();
    assert!(summary.diverged, "an absurd learning rate must diverge");
    assert!(summary.degraded);
    assert!(fw.is_degraded());

    // Degraded prediction keeps every live ILM pin instead of trusting
    // the poisoned GNN, and says so.
    let unseen = design("unseen", 6, &lib);
    let flat = ArcGraph::from_netlist(&unseen, &lib).unwrap();
    let outcome = fw.generate_macro(&flat).unwrap();
    assert!(outcome.degraded);
    assert_eq!(outcome.prediction.predicted_variant, 0);
    assert!(outcome.kept_pins > 0);
}

#[test]
fn divergence_with_retries_recovers_or_records_degradation() {
    let lib = Library::synthetic(17);
    let designs = vec![("t".to_string(), design("t", 7, &lib))];
    // A learning rate high enough to blow up, with backoff retries
    // enabled: the framework must either recover to a finite, usable
    // model or degrade — and the summary must say which happened.
    let mut fw = Framework::new(FrameworkConfig {
        train: TrainConfig {
            epochs: 20,
            lr: 1e6,
            max_retries: 2,
            lr_backoff: 1e-4,
            ..Default::default()
        },
        ts: TsOptions { contexts: 2, ..Default::default() },
        ..Default::default()
    });
    let summary = fw.train(&designs, &lib).unwrap();
    assert_eq!(summary.degraded, fw.is_degraded());
    if summary.degraded {
        assert!(summary.diverged);
    } else {
        assert!(summary.final_loss.is_finite());
        assert!(summary.retries > 0 || !summary.diverged);
    }

    // Whichever path was taken, the framework still produces a model.
    let unseen = design("unseen", 8, &lib);
    let flat = ArcGraph::from_netlist(&unseen, &lib).unwrap();
    let outcome = fw.generate_macro(&flat).unwrap();
    assert_eq!(outcome.degraded, summary.degraded);
    assert!(outcome.kept_pins > 0);
}
