//! Reproducibility: every stage of the pipeline is seeded, so identical
//! inputs must yield bit-identical outputs — the property that makes the
//! experiment tables rerunnable.

// Integration-test harness code: the clippy.toml test exemptions do not
// reach helper fns outside #[test], so state the exemption explicitly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use timing_macro_gnn::circuits::designs::{suite_library, training_suite};
use timing_macro_gnn::circuits::CircuitSpec;
use timing_macro_gnn::core::{Framework, FrameworkConfig};
use timing_macro_gnn::gnn::TrainConfig;
use timing_macro_gnn::macromodel::baselines::itimerm_keep_mask;
use timing_macro_gnn::sensitivity::{build_dataset, DatasetOptions, TsOptions};
use timing_macro_gnn::macromodel::extract_ilm;
use timing_macro_gnn::sta::graph::ArcGraph;

#[test]
fn library_and_suites_are_bit_reproducible() {
    let a = suite_library();
    let b = suite_library();
    let na = training_suite(&a).unwrap();
    let nb = training_suite(&b).unwrap();
    for (x, y) in na.iter().zip(&nb) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.netlist.stats(), y.netlist.stats());
        let ga = ArcGraph::from_netlist(&x.netlist, &a).unwrap();
        let gb = ArcGraph::from_netlist(&y.netlist, &b).unwrap();
        assert_eq!(ga.live_arcs(), gb.live_arcs());
    }
}

#[test]
fn dataset_and_keep_masks_are_reproducible() {
    let lib = suite_library();
    let d = CircuitSpec::sized("det", 500).seed(9).generate(&lib).unwrap();
    let flat = ArcGraph::from_netlist(&d, &lib).unwrap();
    let (ilm, _) = extract_ilm(&flat).unwrap();
    let opts = DatasetOptions {
        ts: TsOptions { contexts: 2, ..Default::default() },
        ..Default::default()
    };
    let ds1 = build_dataset(&ilm, &opts).unwrap();
    let ds2 = build_dataset(&ilm, &opts).unwrap();
    assert_eq!(ds1.sample.labels, ds2.sample.labels);

    let m1 = itimerm_keep_mask(&flat, 2.0).unwrap();
    let m2 = itimerm_keep_mask(&flat, 2.0).unwrap();
    assert_eq!(m1, m2);
}

#[test]
fn trained_framework_predictions_are_reproducible() {
    let lib = suite_library();
    let d = CircuitSpec::sized("det2", 400).seed(5).generate(&lib).unwrap();
    let run = || {
        let mut fw = Framework::new(FrameworkConfig {
            train: TrainConfig { epochs: 30, ..Default::default() },
            ts: TsOptions { contexts: 2, ..Default::default() },
            ..Default::default()
        });
        let outcome = fw.run_on(&d, &lib).unwrap();
        (outcome.kept_pins, outcome.model.file_size_bytes())
    };
    assert_eq!(run(), run());
}
