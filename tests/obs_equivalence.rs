//! Observability must be free: with tracing and metrics compiled in but
//! disabled the pipeline allocates nothing for them, and with them
//! *enabled* every numerical output is byte-identical — instrumentation
//! is read-only and never feeds back into computation.

// Integration-test harness code: the clippy.toml test exemptions do not
// reach helper fns outside #[test], so state the exemption explicitly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use timing_macro_gnn::circuits::designs::suite_library;
use timing_macro_gnn::circuits::CircuitSpec;
use timing_macro_gnn::core::{Framework, FrameworkConfig};
use timing_macro_gnn::gnn::TrainConfig;
use timing_macro_gnn::obs;
use timing_macro_gnn::sensitivity::TsOptions;

/// Runs the full pipeline (train + generate) on one seeded design and
/// returns the serialized macro-model bytes plus the kept-pin count.
fn run_pipeline() -> (String, usize) {
    let lib = suite_library();
    let d = CircuitSpec::sized("obs_eq", 400).seed(7).generate(&lib).unwrap();
    let mut fw = Framework::new(FrameworkConfig {
        train: TrainConfig { epochs: 30, ..Default::default() },
        ts: TsOptions { contexts: 2, ..Default::default() },
        ..Default::default()
    });
    let outcome = fw.run_on(&d, &lib).unwrap();
    (outcome.model.serialize(), outcome.kept_pins)
}

/// The single test controls enable/disable ordering itself: the obs
/// switches are process-global, so the comparison must run in one test
/// body (this file is its own test binary — no other tests share the
/// process).
#[test]
fn tracing_and_metrics_do_not_change_macro_bytes() {
    // Baseline: everything off (the default).
    assert!(!obs::tracing_enabled());
    assert!(!obs::metrics_enabled());
    let (baseline_bytes, baseline_kept) = run_pipeline();

    // Instrumented: tracing + metrics on, exactly as `--trace-out` and
    // `--metrics-out` configure them.
    obs::enable_tracing();
    obs::enable_metrics();
    let (instrumented_bytes, instrumented_kept) = run_pipeline();

    assert_eq!(baseline_kept, instrumented_kept);
    assert_eq!(
        baseline_bytes, instrumented_bytes,
        "enabling observability must not perturb the macro model"
    );

    // The instrumented run's artifacts must be valid and complete: a
    // Chrome trace covering all four pipeline stages, and a Prometheus
    // exposition with a meaningful number of series.
    let trace = obs::export_trace();
    let (events, stages) = obs::validate_trace_json(&trace).expect("valid Chrome trace");
    assert!(events > 4, "expected nested spans, got {events}");
    for stage in ["data_generation", "training", "prediction", "macro_generation"] {
        assert!(stages.iter().any(|s| s == stage), "missing stage span `{stage}`");
    }

    let metrics = obs::export_metrics();
    let series = obs::validate_metrics_text(&metrics).expect("valid Prometheus text");
    assert!(series >= 12, "expected >= 12 metric series, got {series}");

    // And the run report built from those recordings parses as one.
    let mut report = obs::RunReport::new("test");
    report.capture_environment();
    obs::validate_run_report(&report.to_json()).expect("valid run report");
    assert_eq!(report.stages.len(), 4, "one StageTime per pipeline stage");

    obs::disable_tracing();
    obs::disable_metrics();
}
