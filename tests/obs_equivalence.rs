//! Observability must be free: with tracing and metrics compiled in but
//! disabled the pipeline allocates nothing for them, and with them
//! *enabled* every numerical output is byte-identical — instrumentation
//! is read-only and never feeds back into computation.

// Integration-test harness code: the clippy.toml test exemptions do not
// reach helper fns outside #[test], so state the exemption explicitly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use timing_macro_gnn::circuits::designs::suite_library;
use timing_macro_gnn::circuits::CircuitSpec;
use timing_macro_gnn::core::{Framework, FrameworkConfig};
use timing_macro_gnn::gnn::TrainConfig;
use timing_macro_gnn::obs;
use timing_macro_gnn::sensitivity::TsOptions;

/// Runs the full pipeline (train + generate) on one seeded design and
/// returns the serialized macro-model bytes plus the kept-pin count.
fn run_pipeline() -> (String, usize) {
    let lib = suite_library();
    let d = CircuitSpec::sized("obs_eq", 400).seed(7).generate(&lib).unwrap();
    let mut fw = Framework::new(FrameworkConfig {
        train: TrainConfig { epochs: 30, ..Default::default() },
        ts: TsOptions { contexts: 2, ..Default::default() },
        ..Default::default()
    });
    let outcome = fw.run_on(&d, &lib).unwrap();
    (outcome.model.serialize(), outcome.kept_pins)
}

/// The single test controls enable/disable ordering itself: the obs
/// switches are process-global, so the comparison must run in one test
/// body (this file is its own test binary — no other tests share the
/// process).
#[test]
fn tracing_and_metrics_do_not_change_macro_bytes() {
    // Baseline: everything off (the default).
    assert!(!obs::tracing_enabled());
    assert!(!obs::metrics_enabled());
    let (baseline_bytes, baseline_kept) = run_pipeline();

    // Instrumented: tracing + metrics on, exactly as `--trace-out` and
    // `--metrics-out` configure them.
    obs::enable_tracing();
    obs::enable_metrics();
    let (instrumented_bytes, instrumented_kept) = run_pipeline();

    assert_eq!(baseline_kept, instrumented_kept);
    assert_eq!(
        baseline_bytes, instrumented_bytes,
        "enabling observability must not perturb the macro model"
    );

    // The instrumented run's artifacts must be valid and complete: a
    // Chrome trace covering all four pipeline stages, and a Prometheus
    // exposition with a meaningful number of series.
    let trace = obs::export_trace();
    let (events, stages) = obs::validate_trace_json(&trace).expect("valid Chrome trace");
    assert!(events > 4, "expected nested spans, got {events}");
    for stage in ["data_generation", "training", "prediction", "macro_generation"] {
        assert!(stages.iter().any(|s| s == stage), "missing stage span `{stage}`");
    }

    let metrics = obs::export_metrics();
    let series = obs::validate_metrics_text(&metrics).expect("valid Prometheus text");
    assert!(series >= 12, "expected >= 12 metric series, got {series}");

    // And the run report built from those recordings parses as one.
    let mut report = obs::RunReport::new("test");
    report.capture_environment();
    obs::validate_run_report(&report.to_json()).expect("valid run report");
    assert_eq!(report.stages.len(), 4, "one StageTime per pipeline stage");

    obs::disable_tracing();
    obs::disable_metrics();
}

/// Runs the `tmm` binary with `args` in `dir`, requiring success.
fn tmm_in(dir: &std::path::Path, args: &[&str]) -> std::process::Output {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_tmm"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("spawn tmm");
    assert!(
        out.status.success(),
        "tmm {:?} failed: {}",
        args,
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// A scratch directory unique to this test process.
fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tmm_obs_eq_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn read(dir: &std::path::Path, name: &str) -> String {
    std::fs::read_to_string(dir.join(name)).unwrap_or_else(|e| panic!("{name}: {e}"))
}

/// The streaming ECO pipeline must produce byte-identical models whether
/// it runs dark or under the full observability stack — tracing, metrics,
/// run report, live status endpoint, and a tight span-buffer cap all at
/// once. Child processes keep the global obs switches isolated per run.
#[test]
fn eco_stream_byte_identical_under_full_observability() {
    let dir = scratch("eco");
    tmm_in(
        &dir,
        &["gen", "--name", "eco_eq", "--pins", "400", "--seed", "7", "--out", "d.tmm",
          "--lib-out", "l.tmm"],
    );
    tmm_in(
        &dir,
        &["eco", "--design", "d.tmm", "--lib", "l.tmm", "--edits", "3", "--seed", "5",
          "--out", "plain.tmm"],
    );
    tmm_in(
        &dir,
        &["eco", "--design", "d.tmm", "--lib", "l.tmm", "--edits", "3", "--seed", "5",
          "--out", "obs.tmm", "--trace-out", "t.json", "--metrics-out", "m.prom",
          "--report-out", "r.json", "--status-addr", "127.0.0.1:0",
          "--span-buffer-cap", "64", "--log-level", "error"],
    );
    assert_eq!(
        read(&dir, "plain.tmm"),
        read(&dir, "obs.tmm"),
        "ECO models must be byte-identical with observability enabled"
    );
    // Live-only series stay on the live endpoint: the exported metrics
    // artifact must not pick up sliding-window or status-endpoint series.
    let metrics = read(&dir, "m.prom");
    assert!(
        !metrics.contains("_per_sec") && !metrics.contains("tmm_live_"),
        "live-only series leaked into --metrics-out:\n{metrics}"
    );
    obs::validate_metrics_text(&metrics).expect("valid exported metrics");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A budgeted multi-threaded `tmm model` run under `--status-addr` must
/// write the same model bytes as a dark run: the heartbeat slots, rate
/// windows, and RSS sampler never feed back into computation.
#[test]
fn budgeted_model_run_byte_identical_under_status_endpoint() {
    let dir = scratch("budget");
    tmm_in(
        &dir,
        &["gen", "--name", "budget_eq", "--pins", "400", "--seed", "11", "--out", "d.tmm",
          "--lib-out", "l.tmm"],
    );
    tmm_in(
        &dir,
        &["model", "--design", "d.tmm", "--lib", "l.tmm", "--out", "plain.tmm",
          "--mem-budget-mb", "1", "--threads", "2"],
    );
    tmm_in(
        &dir,
        &["model", "--design", "d.tmm", "--lib", "l.tmm", "--out", "obs.tmm",
          "--mem-budget-mb", "1", "--threads", "2", "--status-addr", "127.0.0.1:0",
          "--metrics-out", "m.prom", "--log-level", "error"],
    );
    assert_eq!(
        read(&dir, "plain.tmm"),
        read(&dir, "obs.tmm"),
        "budgeted model must be byte-identical under the status endpoint"
    );
    // The budgeted run must surface the backfilled budget metrics in the
    // exported artifact (they are part of the stable registry, not
    // live-only series).
    let metrics = read(&dir, "m.prom");
    assert!(
        metrics.contains("tmm_mem_budget_flushes_total"),
        "budget flush counter missing from exported metrics:\n{metrics}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
