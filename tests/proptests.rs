//! Property-based tests on cross-crate invariants, driven by `proptest`.

// Integration-test harness code: the clippy.toml test exemptions do not
// reach helper fns outside #[test], so state the exemption explicitly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use timing_macro_gnn::circuits::CircuitSpec;
use timing_macro_gnn::gnn::{Matrix, NeighborMode, NodeGraph};
use timing_macro_gnn::macromodel::{reduce_graph, ReducePolicy};
use timing_macro_gnn::sta::constraints::ContextSampler;
use timing_macro_gnn::sta::graph::ArcGraph;
use timing_macro_gnn::sta::liberty::{Library, Lut2};
use timing_macro_gnn::sta::propagate::Analysis;
use timing_macro_gnn::sta::split::{Edge, Mode};

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Any generated design lowers to a valid DAG whose analysis produces
    /// finite, ordered (early ≤ late) arrivals at every primary output.
    #[test]
    fn generated_designs_always_analyze(
        seed in 0u64..500,
        inputs in 2usize..8,
        banks in 0usize..3,
        depth in 1usize..4,
        width in 3usize..9,
    ) {
        let lib = Library::synthetic(99);
        let netlist = CircuitSpec::new("prop")
            .inputs(inputs)
            .outputs(inputs)
            .register_banks(banks, 4)
            .cloud(depth, width)
            .seed(seed)
            .generate(&lib)
            .unwrap();
        let graph = ArcGraph::from_netlist(&netlist, &lib).unwrap();
        graph.validate().unwrap();
        let mut sampler = ContextSampler::new(seed);
        let ctx = sampler.sample(&graph);
        let an = Analysis::run(&graph, &ctx).unwrap();
        for &po in graph.primary_outputs() {
            for edge in Edge::ALL {
                let early = an.at(po)[Mode::Early][edge];
                let late = an.at(po)[Mode::Late][edge];
                prop_assert!(early.is_finite() && late.is_finite());
                prop_assert!(early <= late + 1e-9, "early {early} > late {late}");
                prop_assert!(an.slew(po)[Mode::Late][edge] > 0.0);
            }
        }
    }

    /// Reduction with a random keep mask never breaks graph invariants and
    /// never touches ports or flip-flop pins.
    #[test]
    fn random_keep_masks_reduce_safely(seed in 0u64..300, keep_bias in 0.0f64..1.0) {
        let lib = Library::synthetic(98);
        let netlist = CircuitSpec::new("prop2")
            .inputs(4)
            .outputs(4)
            .register_banks(1, 3)
            .cloud(2, 5)
            .seed(seed)
            .generate(&lib)
            .unwrap();
        let mut graph = ArcGraph::from_netlist(&netlist, &lib).unwrap();
        let ports = graph.primary_inputs().len() + graph.primary_outputs().len();
        let checks = graph.checks().len();
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let keep: Vec<bool> =
            (0..graph.node_count()).map(|_| rng.gen_bool(keep_bias)).collect();
        reduce_graph(&mut graph, &keep, &ReducePolicy::default()).unwrap();
        graph.validate().unwrap();
        prop_assert_eq!(
            graph.primary_inputs().len() + graph.primary_outputs().len(),
            ports
        );
        for check in graph.checks().iter().take(checks) {
            prop_assert!(!graph.node(check.ck).dead, "FF clock pins are untouchable");
        }
    }

    /// Bilinear LUT evaluation is exact on linear surfaces and bounded by
    /// the corner values inside each cell for monotone data.
    #[test]
    fn lut_interpolation_reproduces_linear_surfaces(
        a in -5.0f64..5.0,
        b in -5.0f64..5.0,
        c in -50.0f64..50.0,
        s in 6.0f64..300.0,
        l in 1.5f64..60.0,
    ) {
        let lut = Lut2::from_fn(
            vec![5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0],
            vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0],
            |slew, load| a * slew + b * load + c,
        ).unwrap();
        let want = a * s + b * l + c;
        prop_assert!((lut.value(s, l) - want).abs() < 1e-9 * want.abs().max(1.0));
    }

    /// The mean-aggregation adjoint satisfies <Ax, y> == <x, Aᵀy> for any
    /// random graph and vectors (the identity backprop depends on).
    #[test]
    fn aggregation_adjoint_identity(
        nodes in 2usize..30,
        edge_seed in 0u64..1000,
        vec_seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(edge_seed);
        let n_edges = rng.gen_range(1..nodes * 2);
        let edges: Vec<(u32, u32)> = (0..n_edges)
            .map(|_| {
                (rng.gen_range(0..nodes) as u32, rng.gen_range(0..nodes) as u32)
            })
            .collect();
        let graph = NodeGraph::from_edges(nodes, &edges, NeighborMode::Undirected);
        let mut vrng = rand::rngs::StdRng::seed_from_u64(vec_seed);
        let x = Matrix::from_fn(nodes, 2, |_, _| vrng.gen_range(-1.0f32..1.0));
        let y = Matrix::from_fn(nodes, 2, |_, _| vrng.gen_range(-1.0f32..1.0));
        let ax = graph.mean_aggregate(&x);
        let aty = graph.mean_aggregate_adjoint(&y);
        let dot = |p: &Matrix, q: &Matrix| -> f32 {
            p.data().iter().zip(q.data()).map(|(u, v)| u * v).sum()
        };
        prop_assert!((dot(&ax, &y) - dot(&x, &aty)).abs() < 1e-3);
    }
}
