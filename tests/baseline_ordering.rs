//! Cross-method shape assertions: the qualitative orderings the paper's
//! Tables 3 and 5 report must hold on our substrate too.

// Integration-test harness code: the clippy.toml test exemptions do not
// reach helper fns outside #[test], so state the exemption explicitly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use timing_macro_gnn::circuits::CircuitSpec;
use timing_macro_gnn::macromodel::baselines::{
    generate_atm, generate_itimerm, generate_libabs, ITIMERM_DEFAULT_TOLERANCE,
};
use timing_macro_gnn::macromodel::eval::{evaluate, EvalOptions, EvalResult};
use timing_macro_gnn::macromodel::MacroModelOptions;
use timing_macro_gnn::sta::graph::ArcGraph;
use timing_macro_gnn::sta::liberty::Library;

fn setup() -> (ArcGraph, Library) {
    let lib = Library::synthetic(30);
    let d = CircuitSpec::sized("order", 1800).seed(4).generate(&lib).unwrap();
    (ArcGraph::from_netlist(&d, &lib).unwrap(), lib)
}

fn run(flat: &ArcGraph, which: &str) -> EvalResult {
    let opts = MacroModelOptions::default();
    let model = match which {
        "itimerm" => generate_itimerm(flat, ITIMERM_DEFAULT_TOLERANCE, &opts).unwrap(),
        "libabs" => generate_libabs(flat, &opts).unwrap(),
        "atm" => generate_atm(flat, &opts).unwrap(),
        _ => unreachable!(),
    };
    evaluate(flat, &model, &EvalOptions { contexts: 4, ..Default::default() }).unwrap()
}

#[test]
fn atm_is_smallest_but_least_accurate() {
    let (flat, _) = setup();
    let itm = run(&flat, "itimerm");
    let atm = run(&flat, "atm");
    assert!(atm.model_bytes < itm.model_bytes, "ETM must be smaller");
    assert!(
        atm.accuracy.max > 2.0 * itm.accuracy.max,
        "ETM must pay in accuracy: {} vs {}",
        atm.accuracy.max,
        itm.accuracy.max
    );
    assert!(
        atm.accuracy.avg > itm.accuracy.avg,
        "ETM average error must be worse too"
    );
    assert!(
        atm.gen_time > itm.gen_time,
        "total collapse must be slower to generate: {:?} vs {:?}",
        atm.gen_time,
        itm.gen_time
    );
}

#[test]
fn libabs_is_larger_and_less_accurate_than_itimerm() {
    let (flat, _) = setup();
    let itm = run(&flat, "itimerm");
    let lab = run(&flat, "libabs");
    assert!(
        lab.model_bytes > itm.model_bytes,
        "structural reduction keeps the wrong pins and more of them: {} vs {}",
        lab.model_bytes,
        itm.model_bytes
    );
    assert!(
        lab.accuracy.max >= itm.accuracy.max,
        "structural reduction drops variant chain pins: {} vs {}",
        lab.accuracy.max,
        itm.accuracy.max
    );
}

#[test]
fn itimerm_tolerance_trades_size_for_accuracy() {
    let (flat, _) = setup();
    // Disable LUT compression so the comparison isolates the keep-set
    // effect: with compression on, every *kept* arc pays its own small
    // resampling error, which can mask the trade-off when the extra kept
    // pins are mostly invariant.
    let opts = MacroModelOptions { compress_luts: false, ..Default::default() };
    let eval_opts = EvalOptions { contexts: 4, ..Default::default() };
    let tight = generate_itimerm(&flat, 0.5, &opts).unwrap();
    let loose = generate_itimerm(&flat, 25.0, &opts).unwrap();
    let r_tight = evaluate(&flat, &tight, &eval_opts).unwrap();
    let r_loose = evaluate(&flat, &loose, &eval_opts).unwrap();
    assert!(r_tight.model_bytes > r_loose.model_bytes);
    // Accuracy is near-monotone in the keep-set; allow a small slop because
    // resampling noise on composed arcs is not strictly ordered.
    assert!(
        r_tight.accuracy.avg <= r_loose.accuracy.avg * 1.15 + 1e-9,
        "tighter tolerance cannot be meaningfully less accurate: {} vs {}",
        r_tight.accuracy.avg,
        r_loose.accuracy.avg
    );
    assert!(r_tight.accuracy.max <= r_loose.accuracy.max * 1.25 + 1e-9);
}

#[test]
fn every_method_beats_no_model_at_nothing() {
    // Sanity floor: every generated model keeps the boundary comparable —
    // all POs present, all kept checks named like the flat design's.
    let (flat, _) = setup();
    for which in ["itimerm", "libabs", "atm"] {
        let r = run(&flat, which);
        assert!(r.accuracy.count > 0, "{which} produced an incomparable model");
        assert!(r.model_bytes > 0);
        assert!(r.usage_memory > 0);
    }
}
