//! Property-based tests of the benchmark generator.

// Integration-test harness code: the clippy.toml test exemptions do not
// reach helper fns outside #[test], so state the exemption explicitly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use tmm_circuits::CircuitSpec;
use tmm_sta::constraints::ContextSampler;
use tmm_sta::graph::ArcGraph;
use tmm_sta::liberty::Library;
use tmm_sta::propagate::{Analysis, AnalysisOptions};
use tmm_sta::split::{Edge, Mode};

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Every spec in a broad parameter box generates a structurally valid,
    /// fully connected design: all ports wired, all POs reachable, all FF
    /// clock pins reached by the clock tree.
    #[test]
    fn all_specs_generate_connected_designs(
        seed in 0u64..400,
        inputs in 1usize..10,
        outputs in 1usize..10,
        banks in 0usize..4,
        regs in 1usize..12,
        depth in 1usize..5,
        width in 1usize..12,
        fanout in 2usize..7,
    ) {
        let lib = Library::synthetic(2);
        let netlist = CircuitSpec::new("prop")
            .inputs(inputs)
            .outputs(outputs)
            .register_banks(banks, regs)
            .cloud(depth, width)
            .clock_fanout(fanout)
            .seed(seed)
            .generate(&lib)
            .unwrap();
        let graph = ArcGraph::from_netlist(&netlist, &lib).unwrap();
        graph.validate().unwrap();
        let ctx = tmm_sta::constraints::Context::nominal(&graph);
        let an = Analysis::run(&graph, &ctx).unwrap();
        for &po in graph.primary_outputs() {
            prop_assert!(
                an.at(po)[Mode::Late][Edge::Rise].is_finite(),
                "unreachable PO {}",
                graph.node(po).name
            );
        }
        for check in graph.checks() {
            prop_assert!(
                an.at(check.ck)[Mode::Late][Edge::Rise].is_finite(),
                "unclocked register {}",
                check.name
            );
        }
    }

    /// Generation is a pure function of (spec, seed): stats, arc counts and
    /// even analysis results agree across calls.
    #[test]
    fn generation_is_pure(seed in 0u64..300) {
        let lib = Library::synthetic(2);
        let spec = CircuitSpec::new("pure").register_banks(1, 4).cloud(2, 6).seed(seed);
        let a = spec.generate(&lib).unwrap();
        let b = spec.generate(&lib).unwrap();
        prop_assert_eq!(a.stats(), b.stats());
        let ga = ArcGraph::from_netlist(&a, &lib).unwrap();
        let gb = ArcGraph::from_netlist(&b, &lib).unwrap();
        let ctx = tmm_sta::constraints::Context::nominal(&ga);
        let aa = Analysis::run(&ga, &ctx).unwrap();
        let ab = Analysis::run(&gb, &ctx).unwrap();
        prop_assert_eq!(aa.boundary().diff(ab.boundary()).max, 0.0);
    }

    /// CPPR on generated clocked designs is sound: credited slacks are never
    /// more pessimistic than uncredited ones.
    #[test]
    fn cppr_never_hurts_generated_designs(seed in 0u64..100) {
        let lib = Library::synthetic(2);
        let netlist = CircuitSpec::new("cp")
            .register_banks(2, 6)
            .cloud(2, 5)
            .seed(seed)
            .generate(&lib)
            .unwrap();
        let graph = ArcGraph::from_netlist(&netlist, &lib).unwrap();
        let mut sampler = ContextSampler::new(seed);
        let ctx = sampler.sample(&graph);
        let plain = Analysis::run(&graph, &ctx).unwrap();
        let cppr = Analysis::run_with_options(
            &graph,
            &ctx,
            AnalysisOptions { cppr: true, ..Default::default() },
        )
        .unwrap();
        for (p, c) in plain.boundary().checks.iter().zip(&cppr.boundary().checks) {
            for edge in Edge::ALL {
                if p.setup_slack[edge].is_finite() && c.setup_slack[edge].is_finite() {
                    prop_assert!(
                        c.setup_slack[edge] >= p.setup_slack[edge] - 1e-9,
                        "{}: CPPR worsened setup slack {} -> {}",
                        p.name,
                        p.setup_slack[edge],
                        c.setup_slack[edge]
                    );
                }
            }
        }
    }
}
