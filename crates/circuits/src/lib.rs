//! Synthetic benchmark circuits mirroring the TAU 2016/2017 contest suite.
//!
//! The DAC 2022 paper evaluates on industrial contest benchmarks
//! (`leon2`, `netcard`, `vga_lcd`, …) that are not redistributable. This
//! crate substitutes a deterministic, seeded generator producing designs
//! with the same *structure* — primary I/O boundary, buffered clock trees,
//! register banks, multi-stage reconvergent combinational clouds — at a
//! scale that runs on a single machine (see `DESIGN.md` for the
//! substitution rationale).
//!
//! - [`generator`] — parameterised circuit synthesis ([`generator::CircuitSpec`]).
//! - [`designs`] — the named training and evaluation suites used by every
//!   experiment binary.
//!
//! # Example
//!
//! ```
//! use tmm_circuits::generator::CircuitSpec;
//! use tmm_sta::liberty::Library;
//!
//! # fn main() -> Result<(), tmm_sta::StaError> {
//! let lib = Library::synthetic(7);
//! let netlist = CircuitSpec::new("demo")
//!     .inputs(4)
//!     .outputs(3)
//!     .register_banks(2, 6)
//!     .cloud(3, 8)
//!     .seed(42)
//!     .generate(&lib)?;
//! assert!(netlist.stats().cells > 10);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod designs;
pub mod generator;

pub use designs::{eval_suite, training_suite, SuiteEntry};
pub use generator::{CircuitSpec, SpecParams, SPEC_DIMS};
