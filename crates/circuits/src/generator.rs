//! Parameterised synthetic circuit generation.
//!
//! [`CircuitSpec`] describes a design shape — I/O counts, register banks,
//! combinational cloud depth/width, clock-tree fanout — and
//! [`CircuitSpec::generate`] synthesises a reproducible [`Netlist`] from it:
//!
//! ```text
//! PIs ──cloud──▶ bank₀ ──cloud──▶ bank₁ ─ … ─▶ bankₙ ──cloud──▶ POs
//!                  ▲                ▲                ▲
//!                  └────────── buffered clock tree ──┘
//! ```
//!
//! Clouds are random layered DAGs with reconvergent fan-in, so shielding
//! (Fig. 7 of the paper) and non-trivial timing-sensitivity distributions
//! emerge naturally.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use tmm_sta::liberty::Library;
use tmm_sta::netlist::{CellId, Netlist, NetlistBuilder, PinId};
use tmm_sta::parasitics::NetParasitics;
use tmm_sta::{Result, StaError};

/// Shape description of a synthetic design. Use the builder-style methods
/// and finish with [`CircuitSpec::generate`].
#[derive(Debug, Clone)]
pub struct CircuitSpec {
    name: String,
    inputs: usize,
    outputs: usize,
    banks: usize,
    regs_per_bank: usize,
    cloud_depth: usize,
    cloud_width: usize,
    clock_fanout: usize,
    seed: u64,
}

/// Flat numeric view of a [`CircuitSpec`] shape: the generator's parameter
/// vector. Differential testing samples specs by filling this struct from a
/// seeded RNG and shrinks failing designs by walking each dimension toward
/// its floor, so the mapping must be total — [`CircuitSpec::from_params`]
/// re-applies the same floors the builder methods enforce, and any vector
/// (however mangled by a shrinker) yields a valid spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecParams {
    /// Primary inputs (floor 1).
    pub inputs: usize,
    /// Primary outputs (floor 1).
    pub outputs: usize,
    /// Register banks (floor 0 = combinational).
    pub banks: usize,
    /// Registers per bank (floor 1; irrelevant when `banks == 0`).
    pub regs_per_bank: usize,
    /// Combinational-cloud depth in layers (floor 1).
    pub cloud_depth: usize,
    /// Gates per cloud layer (floor 1).
    pub cloud_width: usize,
    /// Maximum clock-buffer fanout (floor 2).
    pub clock_fanout: usize,
    /// Generator seed (free dimension; never shrunk).
    pub seed: u64,
}

/// Number of shrinkable structural dimensions in [`SpecParams`]
/// (everything except `seed`).
pub const SPEC_DIMS: usize = 7;

impl SpecParams {
    /// The structural dimensions as `(name, value, floor)` triples, in a
    /// stable order. Delta-debugging iterates this list.
    #[must_use]
    pub fn dims(&self) -> [(&'static str, usize, usize); SPEC_DIMS] {
        [
            ("inputs", self.inputs, 1),
            ("outputs", self.outputs, 1),
            ("banks", self.banks, 0),
            ("regs_per_bank", self.regs_per_bank, 1),
            ("cloud_depth", self.cloud_depth, 1),
            ("cloud_width", self.cloud_width, 1),
            ("clock_fanout", self.clock_fanout, 2),
        ]
    }

    /// Returns a copy with structural dimension `i` (index into
    /// [`SpecParams::dims`]) set to `value`. Out-of-range indices return
    /// the vector unchanged.
    #[must_use]
    pub fn with_dim(mut self, i: usize, value: usize) -> Self {
        match i {
            0 => self.inputs = value,
            1 => self.outputs = value,
            2 => self.banks = value,
            3 => self.regs_per_bank = value,
            4 => self.cloud_depth = value,
            5 => self.cloud_width = value,
            6 => self.clock_fanout = value,
            _ => {}
        }
        self
    }
}

impl CircuitSpec {
    /// Starts a spec with small defaults (4 inputs, 4 outputs, one bank of
    /// 4 registers, 2×6 clouds).
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        CircuitSpec {
            name: name.into(),
            inputs: 4,
            outputs: 4,
            banks: 1,
            regs_per_bank: 4,
            cloud_depth: 2,
            cloud_width: 6,
            clock_fanout: 4,
            seed: 0,
        }
    }

    /// Number of primary inputs (minimum 1).
    #[must_use]
    pub fn inputs(mut self, n: usize) -> Self {
        self.inputs = n.max(1);
        self
    }

    /// Number of primary outputs (minimum 1).
    #[must_use]
    pub fn outputs(mut self, n: usize) -> Self {
        self.outputs = n.max(1);
        self
    }

    /// Number of register banks and registers per bank. Zero banks yields a
    /// purely combinational (unclocked) design.
    #[must_use]
    pub fn register_banks(mut self, banks: usize, regs_per_bank: usize) -> Self {
        self.banks = banks;
        self.regs_per_bank = regs_per_bank.max(1);
        self
    }

    /// Depth (layers) and width (gates per layer) of each combinational
    /// cloud.
    #[must_use]
    pub fn cloud(mut self, depth: usize, width: usize) -> Self {
        self.cloud_depth = depth.max(1);
        self.cloud_width = width.max(1);
        self
    }

    /// Maximum fanout of each clock-tree buffer.
    #[must_use]
    pub fn clock_fanout(mut self, fanout: usize) -> Self {
        self.clock_fanout = fanout.max(2);
        self
    }

    /// Random seed; the same spec and seed always generate the same netlist.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Derives a spec whose generated design has roughly `target_pins` pins.
    /// Used to scale the named suites to the relative sizes of the paper's
    /// Table 2.
    #[must_use]
    pub fn sized(name: impl Into<String>, target_pins: usize) -> Self {
        // A generated cell averages ≈ 3.2 pins; ports add a few more.
        let cells = (target_pins as f64 / 3.2).max(12.0);
        // Allocate ~12% of cells to registers, the rest to cloud gates.
        let regs = ((cells * 0.12) as usize).max(4);
        let banks = (regs / 24).clamp(1, 8);
        let regs_per_bank = (regs / banks).max(2);
        let cloud_cells = cells as usize - regs;
        let clouds = banks + 1;
        let per_cloud = (cloud_cells / clouds).max(4);
        // Aim for depth ≈ sqrt(per_cloud)/1.5 to get multi-level logic.
        let depth = ((per_cloud as f64).sqrt() / 1.5).round().clamp(2.0, 12.0) as usize;
        let width = (per_cloud / depth).max(2);
        CircuitSpec::new(name)
            .inputs((width / 2).clamp(3, 64))
            .outputs((width / 2).clamp(3, 64))
            .register_banks(banks, regs_per_bank)
            .cloud(depth, width)
            .clock_fanout(4)
    }

    /// The spec's parameter vector (see [`SpecParams`]).
    #[must_use]
    pub fn params(&self) -> SpecParams {
        SpecParams {
            inputs: self.inputs,
            outputs: self.outputs,
            banks: self.banks,
            regs_per_bank: self.regs_per_bank,
            cloud_depth: self.cloud_depth,
            cloud_width: self.cloud_width,
            clock_fanout: self.clock_fanout,
            seed: self.seed,
        }
    }

    /// Rebuilds a spec from a parameter vector, re-applying every builder
    /// floor, so `CircuitSpec::from_params(name, &spec.params())` round-trips
    /// and arbitrary shrunk vectors stay generatable.
    #[must_use]
    pub fn from_params(name: impl Into<String>, p: &SpecParams) -> Self {
        CircuitSpec::new(name)
            .inputs(p.inputs)
            .outputs(p.outputs)
            .register_banks(p.banks, p.regs_per_bank)
            .cloud(p.cloud_depth, p.cloud_width)
            .clock_fanout(p.clock_fanout)
            .seed(p.seed)
    }

    /// Synthesises the netlist.
    ///
    /// # Errors
    ///
    /// Propagates [`tmm_sta::StaError`] from netlist construction; a valid
    /// spec against the synthetic library never fails in practice.
    pub fn generate(&self, library: &Library) -> Result<Netlist> {
        Generator::new(self, library).run()
    }
}

/// Internal stateful generator.
struct Generator<'a> {
    spec: &'a CircuitSpec,
    library: &'a Library,
    rng: StdRng,
    builder: NetlistBuilder<'a>,
    /// Deferred net construction: driver pin -> sink pins.
    edges: HashMap<PinId, Vec<PinId>>,
    counter: usize,
    one_in: Vec<String>,
    two_in: Vec<String>,
    three_in: Vec<String>,
}

impl<'a> Generator<'a> {
    fn new(spec: &'a CircuitSpec, library: &'a Library) -> Self {
        let one_in: Vec<String> =
            library.combinational_with_inputs(1).into_iter().map(String::from).collect();
        let two_in: Vec<String> =
            library.combinational_with_inputs(2).into_iter().map(String::from).collect();
        let three_in: Vec<String> =
            library.combinational_with_inputs(3).into_iter().map(String::from).collect();
        Generator {
            spec,
            library,
            rng: StdRng::seed_from_u64(spec.seed ^ 0xd151_c0de),
            builder: NetlistBuilder::new(spec.name.clone(), library),
            edges: HashMap::new(),
            counter: 0,
            one_in,
            two_in,
            three_in,
        }
    }

    fn fresh(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("{prefix}_{}", self.counter)
    }

    fn wire(&mut self, driver: PinId, sink: PinId) {
        self.edges.entry(driver).or_default().push(sink);
    }

    /// Creates one random gate with inputs drawn from `pool`; returns its
    /// output pin.
    fn random_gate(&mut self, pool: &[PinId]) -> Result<PinId> {
        let Some(&fallback_src) = pool.first() else {
            return Err(StaError::BadDriver("gate input pool is empty".into()));
        };
        let n_in = if pool.len() >= 3 {
            [1usize, 2, 2, 2, 3, 3].choose(&mut self.rng).copied().unwrap_or(2)
        } else if pool.len() == 2 {
            [1usize, 2, 2].choose(&mut self.rng).copied().unwrap_or(2)
        } else {
            1
        };
        let names = match n_in {
            1 => &self.one_in,
            2 => &self.two_in,
            _ => &self.three_in,
        };
        let Some(template) = names.choose(&mut self.rng).cloned() else {
            return Err(StaError::UnknownCell(format!("no {n_in}-input gates in library")));
        };
        let inst = self.fresh("g");
        let cell = self.builder.cell(&inst, &template)?;
        let tmpl = self
            .library
            .template(&template)
            .ok_or_else(|| StaError::UnknownCell(template.clone()))?;
        let input_indices: Vec<usize> = tmpl.input_pins().collect();
        // Draw distinct sources where possible.
        let mut chosen: Vec<PinId> = Vec::with_capacity(n_in);
        for _ in 0..n_in {
            let src = pool.choose(&mut self.rng).copied().unwrap_or(fallback_src);
            chosen.push(src);
        }
        for (k, &pin_idx) in input_indices.iter().enumerate().take(n_in) {
            let pin_name = tmpl.pins[pin_idx].name.clone();
            let sink = self.builder.pin_of(cell, &pin_name)?;
            self.wire(chosen[k], sink);
        }
        let out_idx = tmpl.output_pins().next().ok_or_else(|| StaError::UnknownPin {
            cell: template.clone(),
            pin: "<output>".into(),
        })?;
        let out_name = tmpl.pins[out_idx].name.clone();
        self.builder.pin_of(cell, &out_name)
    }

    /// Builds a layered reconvergent cloud from `sources`, returning
    /// `n_outputs` output pins.
    fn cloud(&mut self, sources: &[PinId], n_outputs: usize) -> Result<Vec<PinId>> {
        let mut pool: Vec<PinId> = sources.to_vec();
        let window = (self.spec.cloud_width * 2).max(8);
        for _layer in 0..self.spec.cloud_depth {
            let mut layer_outs = Vec::with_capacity(self.spec.cloud_width);
            for _ in 0..self.spec.cloud_width {
                // Bias input selection to recent signals but keep long
                // reconvergent edges possible.
                let lo = pool.len().saturating_sub(window);
                let slice = if self.rng.gen_bool(0.85) { &pool[lo..] } else { &pool[..] };
                let out = self.random_gate(slice)?;
                layer_outs.push(out);
            }
            pool.extend(layer_outs);
        }
        // Final selection layer: exactly n_outputs gates drawing from the
        // whole pool, so every requested output exists and is driven.
        let mut outs = Vec::with_capacity(n_outputs);
        for _ in 0..n_outputs {
            let out = self.random_gate(&pool)?;
            outs.push(out);
        }
        Ok(outs)
    }

    /// Builds one register bank; returns `(d_pins, q_pins, ck_pins)`.
    fn bank(&mut self, idx: usize) -> Result<(Vec<PinId>, Vec<PinId>, Vec<PinId>)> {
        let mut d = Vec::new();
        let mut q = Vec::new();
        let mut ck = Vec::new();
        for r in 0..self.spec.regs_per_bank {
            let inst = format!("ff_b{idx}_{r}");
            let cell = self.builder.cell(&inst, "DFFX1")?;
            d.push(self.builder.pin_of(cell, "D")?);
            q.push(self.builder.pin_of(cell, "Q")?);
            ck.push(self.builder.pin_of(cell, "CK")?);
        }
        Ok((d, q, ck))
    }

    /// Recursively builds a buffered clock tree from `driver` to `sinks`.
    fn clock_tree(&mut self, driver: PinId, sinks: &[PinId]) -> Result<()> {
        if sinks.len() <= self.spec.clock_fanout {
            for &s in sinks {
                self.wire(driver, s);
            }
            return Ok(());
        }
        let groups = self.spec.clock_fanout.min(sinks.len());
        let chunk = sinks.len().div_ceil(groups);
        for part in sinks.chunks(chunk) {
            let inst = self.fresh("ckb");
            let buf_name = if part.len() > 8 { "CLKBUFX4" } else { "CLKBUFX2" };
            let cell: CellId = self.builder.cell(&inst, buf_name)?;
            let a = self.builder.pin_of(cell, "A")?;
            let z = self.builder.pin_of(cell, "Z")?;
            self.wire(driver, a);
            self.clock_tree(z, part)?;
        }
        Ok(())
    }

    fn run(mut self) -> Result<Netlist> {
        let spec = self.spec.clone();
        // Boundary ports.
        let pis: Vec<PinId> =
            (0..spec.inputs).map(|i| self.builder.input(&format!("in{i}"))).collect::<Result<_>>()?;
        let pos: Vec<PinId> = (0..spec.outputs)
            .map(|i| self.builder.output(&format!("out{i}")))
            .collect::<Result<_>>()?;
        let clk = if spec.banks > 0 { Some(self.builder.clock_input("clk")?) } else { None };

        // Register banks.
        let mut banks = Vec::with_capacity(spec.banks);
        for b in 0..spec.banks {
            banks.push(self.bank(b)?);
        }

        // Clock tree to every CK pin. The sink order is shuffled before the
        // tree is partitioned: physical clock trees group registers by
        // placement, not by logical bank, so launch/capture pairs of
        // bank-to-bank paths share deep tree prefixes — which is what makes
        // CPPR credits non-trivial.
        if let Some(clk) = clk {
            let mut all_ck: Vec<PinId> =
                banks.iter().flat_map(|(_, _, ck)| ck.iter().copied()).collect();
            all_ck.shuffle(&mut self.rng);
            self.clock_tree(clk, &all_ck)?;
        }

        // Data path: PIs -> cloud -> bank0; bank_i -> cloud -> bank_{i+1};
        // last bank -> cloud -> POs. Purely combinational designs connect
        // PIs straight through one cloud to POs.
        if spec.banks == 0 {
            let outs = self.cloud(&pis, spec.outputs)?;
            for (o, po) in outs.into_iter().zip(pos.iter()) {
                self.wire(o, *po);
            }
        } else {
            let first_d = banks[0].0.clone();
            let outs = self.cloud(&pis, first_d.len())?;
            for (o, d) in outs.into_iter().zip(first_d) {
                self.wire(o, d);
            }
            for b in 1..spec.banks {
                let srcs = banks[b - 1].1.clone();
                let dsts = banks[b].0.clone();
                let outs = self.cloud(&srcs, dsts.len())?;
                for (o, d) in outs.into_iter().zip(dsts) {
                    self.wire(o, d);
                }
            }
            let last_q = banks[spec.banks - 1].1.clone();
            // Mix a slice of PIs into the output cloud so some PI→PO paths
            // bypass the registers (interface logic in ILM terms).
            let mut srcs = last_q;
            srcs.extend(pis.iter().take(spec.inputs / 2).copied());
            let outs = self.cloud(&srcs, spec.outputs)?;
            for (o, po) in outs.into_iter().zip(pos.iter()) {
                self.wire(o, *po);
            }
        }

        // Random clouds may not sample every PI; tie unused inputs to a
        // buffer so every port is legally connected (its output floats,
        // mirroring dangling logic in real netlists).
        for &pi in &pis {
            if !self.edges.contains_key(&pi) {
                let inst = self.fresh("tie");
                let cell = self.builder.cell(&inst, "BUFX1")?;
                let a = self.builder.pin_of(cell, "A")?;
                self.wire(pi, a);
            }
        }

        // Materialise deferred nets with seeded parasitics.
        let edges = std::mem::take(&mut self.edges);
        let mut sorted: Vec<(PinId, Vec<PinId>)> = edges.into_iter().collect();
        sorted.sort_by_key(|(d, _)| *d);
        for (driver, sinks) in sorted {
            let name = self.fresh("n");
            let fanout = sinks.len();
            let para = NetParasitics {
                wire_cap: self.rng.gen_range(0.3..1.2) * fanout as f64,
                sink_delays: (0..fanout).map(|_| self.rng.gen_range(0.2..1.8)).collect(),
                slew_degrade: 1.0 + self.rng.gen_range(0.0..0.01) * fanout as f64,
            };
            self.builder.connect_with(&name, driver, &sinks, para)?;
        }
        self.builder.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmm_sta::constraints::Context;
    use tmm_sta::graph::ArcGraph;
    use tmm_sta::propagate::Analysis;
    use tmm_sta::split::{Edge, Mode};

    fn lib() -> Library {
        Library::synthetic(1)
    }

    #[test]
    fn generation_is_deterministic() {
        let lib = lib();
        let spec = CircuitSpec::new("d").inputs(5).outputs(5).register_banks(2, 4).cloud(3, 7).seed(9);
        let a = spec.generate(&lib).unwrap();
        let b = spec.generate(&lib).unwrap();
        assert_eq!(a.stats(), b.stats());
        let c = spec.clone().seed(10).generate(&lib).unwrap();
        // Different seeds virtually always give different cell mixes.
        let kinds = |n: &Netlist| -> Vec<usize> { n.cells().iter().map(|c| c.template).collect() };
        assert_ne!(kinds(&a), kinds(&c));
    }

    #[test]
    fn generated_design_lowers_and_analyzes() {
        let lib = lib();
        let n = CircuitSpec::new("d").register_banks(2, 4).cloud(3, 8).seed(3).generate(&lib).unwrap();
        let g = ArcGraph::from_netlist(&n, &lib).unwrap();
        g.validate().unwrap();
        let ctx = Context::nominal(&g);
        let an = Analysis::run(&g, &ctx).unwrap();
        for &po in g.primary_outputs() {
            assert!(
                an.at(po)[Mode::Late][Edge::Rise].is_finite(),
                "PO {} unreachable",
                g.node(po).name
            );
        }
        assert!(!g.checks().is_empty());
    }

    #[test]
    fn clock_tree_reaches_every_ff() {
        let lib = lib();
        let n = CircuitSpec::new("d").register_banks(3, 9).cloud(2, 6).seed(5).generate(&lib).unwrap();
        let g = ArcGraph::from_netlist(&n, &lib).unwrap();
        let ctx = Context::nominal(&g);
        let an = Analysis::run(&g, &ctx).unwrap();
        for check in g.checks() {
            assert!(
                an.at(check.ck)[Mode::Late][Edge::Rise].is_finite(),
                "clock missing at {}",
                check.name
            );
        }
        // tree depth > 1: at least one clock buffer instantiated
        assert!(n.cells().iter().any(|c| c.name.starts_with("ckb")));
    }

    #[test]
    fn combinational_design_has_no_clock() {
        let lib = lib();
        let n = CircuitSpec::new("comb").register_banks(0, 1).cloud(3, 6).seed(2).generate(&lib).unwrap();
        assert!(n.clock_port().is_none());
        let g = ArcGraph::from_netlist(&n, &lib).unwrap();
        assert!(g.checks().is_empty());
    }

    #[test]
    fn sized_spec_hits_target_within_factor_two() {
        let lib = lib();
        for target in [300usize, 1200, 5000] {
            let n = CircuitSpec::sized("s", target).seed(1).generate(&lib).unwrap();
            let pins = n.stats().pins;
            assert!(
                pins > target / 2 && pins < target * 2,
                "target {target}, got {pins}"
            );
        }
    }

    #[test]
    fn params_round_trip_and_floors() {
        let spec = CircuitSpec::new("p").inputs(7).outputs(3).register_banks(2, 5).cloud(4, 9).seed(11);
        let p = spec.params();
        assert_eq!(p.inputs, 7);
        assert_eq!(p.seed, 11);
        let back = CircuitSpec::from_params("p", &p);
        assert_eq!(back.params(), p);
        // Mangled vectors are clamped to the builder floors.
        let zeroed = SpecParams {
            inputs: 0,
            outputs: 0,
            banks: 0,
            regs_per_bank: 0,
            cloud_depth: 0,
            cloud_width: 0,
            clock_fanout: 0,
            seed: 0,
        };
        let clamped = CircuitSpec::from_params("z", &zeroed).params();
        assert_eq!(clamped.inputs, 1);
        assert_eq!(clamped.outputs, 1);
        assert_eq!(clamped.banks, 0);
        assert_eq!(clamped.regs_per_bank, 1);
        assert_eq!(clamped.cloud_depth, 1);
        assert_eq!(clamped.cloud_width, 1);
        assert_eq!(clamped.clock_fanout, 2);
        // The floored minimal spec actually generates.
        let lib = lib();
        let n = CircuitSpec::from_params("z", &zeroed).generate(&lib).unwrap();
        assert!(n.stats().cells >= 1);
    }

    #[test]
    fn with_dim_walks_every_dimension() {
        let p = CircuitSpec::new("d").params();
        for (i, (name, _, floor)) in p.dims().iter().enumerate() {
            let q = p.with_dim(i, *floor);
            assert_eq!(q.dims()[i].1, *floor, "dim {name}");
        }
        assert_eq!(p.with_dim(SPEC_DIMS, 99), p, "out-of-range index is a no-op");
    }

    #[test]
    fn some_pi_to_po_paths_bypass_registers() {
        // Interface logic exists: with one bank, a PI contributes to the
        // output cloud directly.
        let lib = lib();
        let n = CircuitSpec::new("d").inputs(6).register_banks(1, 4).cloud(2, 6).seed(8).generate(&lib).unwrap();
        let g = ArcGraph::from_netlist(&n, &lib).unwrap();
        let levels = g.levels_to_outputs();
        let direct = g
            .primary_inputs()
            .iter()
            .filter(|&&pi| levels[pi.index()] != u32::MAX)
            .count();
        assert!(direct > 0, "at least one PI reaches an endpoint combinationally");
    }
}
