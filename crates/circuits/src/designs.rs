//! Named training and evaluation design suites.
//!
//! The evaluation suite mirrors the eleven designs of the paper's Table 2 at
//! ~1/500 scale (the substitution documented in `DESIGN.md`); the training
//! suite mirrors the paper's setup of training on *small* designs
//! (`systemcaes`, `fft_ispd`, …) and testing on much larger unseen ones
//! (§5.3).

use crate::generator::CircuitSpec;
use tmm_sta::liberty::Library;
use tmm_sta::netlist::Netlist;
use tmm_sta::Result;

/// A named design of a suite.
#[derive(Debug, Clone)]
pub struct SuiteEntry {
    /// Design name (TAU benchmark name for the eval suite).
    pub name: String,
    /// The generated netlist.
    pub netlist: Netlist,
    /// Pin count of the original TAU benchmark (0 for training designs);
    /// reported alongside our scaled size in Table 2.
    pub paper_pins: usize,
}

/// `(name, paper #pins, paper #cells, paper #nets)` rows of the paper's
/// Table 2.
pub const PAPER_TABLE2: [(&str, usize, usize, usize); 11] = [
    ("mgc_edit_dist_iccad_eval", 581_319, 224_113, 224_101),
    ("vga_lcd_iccad_eval", 768_050, 286_597, 286_498),
    ("leon3mp_iccad_eval", 4_167_632, 1_534_489, 1_534_410),
    ("netcard_iccad_eval", 4_458_141, 1_630_171, 1_630_161),
    ("leon2_iccad_eval", 5_179_094, 1_892_757, 1_892_672),
    ("mgc_edit_dist_iccad", 450_354, 164_266, 164_254),
    ("vga_lcd_iccad", 679_258, 259_251, 259_152),
    ("leon3mp_iccad", 3_376_832, 1_248_058, 1_247_979),
    ("netcard_iccad", 3_999_174, 1_498_565, 1_498_555),
    ("leon2_iccad", 4_328_255, 1_617_069, 1_616_984),
    ("mgc_matrix_mult_iccad", 492_568, 176_084, 174_484),
];

/// Downscaling factor from the TAU benchmark sizes to our generated sizes.
pub const SCALE: usize = 500;

/// Names of the training designs (small, per §5.3 of the paper).
pub const TRAINING_NAMES: [&str; 6] =
    ["systemcaes", "fft_ispd", "aes_core", "usb_phy", "pci_bridge32", "tv80"];

fn training_target(name: &str) -> usize {
    match name {
        "systemcaes" => 700,
        "fft_ispd" => 900,
        "aes_core" => 520,
        "usb_phy" => 360,
        "pci_bridge32" => 620,
        "tv80" => 820,
        _ => 400,
    }
}

/// Generates one training design by name. Unknown names yield a small
/// default design (handy for doc examples).
///
/// # Errors
///
/// Propagates netlist-construction errors (never for valid specs).
pub fn training_design(name: &str, seed: u64) -> Result<Netlist> {
    let library = Library::synthetic(library_seed());
    CircuitSpec::sized(name, training_target(name)).seed(seed).generate(&library)
}

/// The library seed shared by every suite so all designs are timed against
/// one consistent cell library, as in the contests.
#[must_use]
pub fn library_seed() -> u64 {
    20_220_710 // DAC'22 conference date
}

/// The shared synthetic library every suite design is built against.
#[must_use]
pub fn suite_library() -> Library {
    Library::synthetic(library_seed())
}

/// Generates the training suite: six small clocked designs.
///
/// # Errors
///
/// Propagates netlist-construction errors (never for valid specs).
pub fn training_suite(library: &Library) -> Result<Vec<SuiteEntry>> {
    TRAINING_NAMES
        .iter()
        .enumerate()
        .map(|(i, &name)| {
            let netlist = CircuitSpec::sized(name, training_target(name))
                .seed(1000 + i as u64)
                .generate(library)?;
            Ok(SuiteEntry { name: name.to_string(), netlist, paper_pins: 0 })
        })
        .collect()
}

/// Generates the evaluation suite: the eleven Table 2 designs scaled by
/// [`SCALE`].
///
/// # Errors
///
/// Propagates netlist-construction errors (never for valid specs).
pub fn eval_suite(library: &Library) -> Result<Vec<SuiteEntry>> {
    PAPER_TABLE2
        .iter()
        .enumerate()
        .map(|(i, &(name, pins, _, _))| {
            let netlist = CircuitSpec::sized(name, pins / SCALE)
                .seed(2000 + i as u64)
                .generate(library)?;
            Ok(SuiteEntry { name: name.to_string(), netlist, paper_pins: pins })
        })
        .collect()
}

/// Generates a single evaluation design by its TAU name.
///
/// # Errors
///
/// Returns [`tmm_sta::StaError::UnknownPort`] for unknown names (reusing the
/// name-lookup error variant) or propagates construction errors.
pub fn eval_design(name: &str, library: &Library) -> Result<Netlist> {
    let (i, &(_, pins, _, _)) = PAPER_TABLE2
        .iter()
        .enumerate()
        .find(|(_, row)| row.0 == name)
        .ok_or_else(|| tmm_sta::StaError::UnknownPort(name.to_string()))?;
    CircuitSpec::sized(name, pins / SCALE).seed(2000 + i as u64).generate(library)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_suite_designs_are_small_and_clocked() {
        let lib = suite_library();
        let suite = training_suite(&lib).unwrap();
        assert_eq!(suite.len(), 6);
        for e in &suite {
            let s = e.netlist.stats();
            assert!(s.pins < 2500, "{}: {} pins", e.name, s.pins);
            assert!(e.netlist.clock_port().is_some(), "{} must be clocked", e.name);
        }
    }

    #[test]
    fn eval_suite_preserves_relative_sizes() {
        let lib = suite_library();
        let suite = eval_suite(&lib).unwrap();
        assert_eq!(suite.len(), 11);
        let by_name = |n: &str| suite.iter().find(|e| e.name == n).unwrap().netlist.stats().pins;
        // leon2_eval is the biggest in the paper; must also be biggest here.
        let leon2 = by_name("leon2_iccad_eval");
        let edit = by_name("mgc_edit_dist_iccad_eval");
        assert!(leon2 > 4 * edit, "leon2 {leon2} vs edit_dist {edit}");
    }

    #[test]
    fn eval_design_lookup() {
        let lib = suite_library();
        assert!(eval_design("vga_lcd_iccad", &lib).is_ok());
        assert!(eval_design("not_a_design", &lib).is_err());
    }

    #[test]
    fn training_design_default_for_unknown_name() {
        let n = training_design("s27_like", 42).unwrap();
        assert!(n.stats().pins > 50);
    }

    #[test]
    fn suites_are_reproducible() {
        let lib = suite_library();
        let a = eval_suite(&lib).unwrap();
        let b = eval_suite(&lib).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.netlist.stats(), y.netlist.stats());
        }
    }
}
