//! Lookup-table index selection (iTimerM §5.2, reused by the paper's
//! Fig. 9 step 3).
//!
//! Composed arcs inherit dense characterisation axes; most of their entries
//! are redundant because the composed functions are near-piecewise-linear.
//! This module picks the subset of axis indices that minimises the linear
//! interpolation error — a classic O(n²k) dynamic program per axis — and
//! resamples every table of an arc on the selected grid, shrinking the
//! serialised model.

use tmm_sta::graph::{ArcGraph, ArcId, ArcTiming};
use tmm_sta::liberty::{ArcTables, Lut2};
use tmm_sta::split::{Split, TransPair};
use std::sync::Arc;

/// Total absolute interpolation error of approximating `profile` on the
/// closed segment `[i, j]` of `axis` by the straight line through its
/// endpoints.
fn segment_error(axis: &[f64], profile: &[f64], i: usize, j: usize) -> f64 {
    let (x0, y0) = (axis[i], profile[i]);
    let (x1, y1) = (axis[j], profile[j]);
    let span = x1 - x0;
    let mut err = 0.0;
    for m in i + 1..j {
        // Duplicate axis values make the segment vertical (span == 0); the
        // division would yield NaN and poison the whole DP. Pin such points
        // to the left endpoint instead, charging |y0 - y_m| — conservative
        // and finite.
        let t = if span == 0.0 { 0.0 } else { (axis[m] - x0) / span };
        let interp = y0 + t * (y1 - y0);
        err += (interp - profile[m]).abs();
    }
    err
}

/// Selects `k` indices of `axis` (always including both endpoints) that
/// minimise the total linear-interpolation error against `profile`.
///
/// Degenerate axes are handled explicitly: an empty or single-point axis
/// returns all of its indices (`usize::clamp(2, 1)` would panic because
/// min > max, so the clamp below is only reached with `n >= 2`), and axes
/// with duplicate values never produce NaN segment errors (see
/// [`segment_error`]).
///
/// # Panics
///
/// Panics if `axis.len() != profile.len()`.
#[must_use]
pub fn select_axis_indices(axis: &[f64], profile: &[f64], k: usize) -> Vec<usize> {
    assert_eq!(axis.len(), profile.len());
    let n = axis.len();
    if n <= 2 {
        // Nothing to choose: single-point (and empty) axes keep their only
        // entries, two-point axes keep both endpoints.
        return (0..n).collect();
    }
    let k = k.clamp(2, n);
    if k == n {
        return (0..n).collect();
    }
    // dp[j][c] = min error covering [0, j] using c chosen points ending at j.
    let inf = f64::INFINITY;
    let mut dp = vec![vec![inf; k + 1]; n];
    let mut parent = vec![vec![usize::MAX; k + 1]; n];
    dp[0][1] = 0.0;
    for j in 1..n {
        for c in 2..=k {
            for i in 0..j {
                if dp[i][c - 1] == inf {
                    continue;
                }
                let cand = dp[i][c - 1] + segment_error(axis, profile, i, j);
                if cand < dp[j][c] {
                    dp[j][c] = cand;
                    parent[j][c] = i;
                }
            }
        }
    }
    let mut picks = Vec::with_capacity(k);
    let mut j = n - 1;
    let mut c = k;
    while j != usize::MAX && c >= 1 {
        picks.push(j);
        let p = parent[j][c];
        if c == 1 {
            break;
        }
        j = p;
        c -= 1;
    }
    picks.reverse();
    debug_assert_eq!(picks.first(), Some(&0));
    debug_assert_eq!(picks.last(), Some(&(n - 1)));
    picks
}

/// Average of each slew-axis row (profile used to pick slew indices).
fn slew_profile(lut: &Lut2) -> Vec<f64> {
    let cols = lut.load_axis().len();
    lut.values().chunks(cols).map(|row| row.iter().sum::<f64>() / cols as f64).collect()
}

/// Average of each load-axis column (profile used to pick load indices).
fn load_profile(lut: &Lut2) -> Vec<f64> {
    let cols = lut.load_axis().len();
    let rows = lut.slew_axis().len();
    (0..cols)
        .map(|c| (0..rows).map(|r| lut.values()[r * cols + c]).sum::<f64>() / rows as f64)
        .collect()
}

/// Resamples one table on the selected axis indices (values at selected
/// grid points are exact).
fn resample_on(lut: &Lut2, slew_idx: &[usize], load_idx: &[usize]) -> Lut2 {
    let sa: Vec<f64> = slew_idx.iter().map(|&i| lut.slew_axis()[i]).collect();
    let la: Vec<f64> = load_idx.iter().map(|&i| lut.load_axis()[i]).collect();
    // Indices selected in increasing order from a valid axis stay
    // strictly increasing, so no re-validation is needed.
    Lut2::from_fn_unchecked(sa, la, |s, l| lut.value(s, l))
}

/// Compresses one arc's tables to at most `ks × kl` entries per table,
/// selecting indices from the late rise-delay profile (all eight tables of
/// the arc share axes so the model stays consistent).
#[must_use]
pub fn compress_tables(
    tables: &Split<Arc<ArcTables>>,
    ks: usize,
    kl: usize,
) -> Split<Arc<ArcTables>> {
    let reference = &tables.late.delay.rise;
    let slew_idx =
        select_axis_indices(reference.slew_axis(), &slew_profile(reference), ks);
    let load_idx =
        select_axis_indices(reference.load_axis(), &load_profile(reference), kl);
    Split::from_fn(|mode| {
        let t = &tables[mode];
        Arc::new(ArcTables {
            delay: TransPair::new(
                resample_on(&t.delay.rise, &slew_idx, &load_idx),
                resample_on(&t.delay.fall, &slew_idx, &load_idx),
            ),
            slew: TransPair::new(
                resample_on(&t.slew.rise, &slew_idx, &load_idx),
                resample_on(&t.slew.fall, &slew_idx, &load_idx),
            ),
        })
    })
}

/// Applies LUT index selection to every live table-bearing arc of a graph.
/// Returns the number of arcs rewritten.
pub fn compress_graph_luts(graph: &mut ArcGraph, ks: usize, kl: usize) -> usize {
    let mut rewritten = 0usize;
    let arc_count = graph.arcs().len();
    for idx in 0..arc_count {
        let id = ArcId(idx as u32);
        let arc = graph.arc(id);
        if arc.dead {
            continue;
        }
        let Some(tables) = arc.timing.tables() else { continue };
        let ref_lut = &tables.late.delay.rise;
        if ref_lut.slew_axis().len() <= ks && ref_lut.load_axis().len() <= kl {
            continue;
        }
        let compressed = compress_tables(tables, ks, kl);
        let was_composed = matches!(arc.timing, ArcTiming::Composed(_));
        graph.arc_mut(id).timing = if was_composed {
            ArcTiming::Composed(compressed)
        } else {
            ArcTiming::Table(compressed)
        };
        rewritten += 1;
    }
    rewritten
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_profile_needs_only_endpoints() {
        let axis: Vec<f64> = (0..7).map(|i| i as f64).collect();
        let profile: Vec<f64> = axis.iter().map(|x| 2.0 * x + 1.0).collect();
        let picks = select_axis_indices(&axis, &profile, 2);
        assert_eq!(picks, vec![0, 6]);
        // a 2-point selection of a linear profile has zero error
        assert_eq!(segment_error(&axis, &profile, 0, 6), 0.0);
    }

    #[test]
    fn kink_is_captured_by_third_point() {
        let axis = [0.0, 1.0, 2.0, 3.0, 4.0];
        // piecewise linear with a kink at x=2
        let profile = [0.0, 1.0, 2.0, 10.0, 18.0];
        let picks = select_axis_indices(&axis, &profile, 3);
        assert_eq!(picks, vec![0, 2, 4], "the kink index must be selected");
    }

    #[test]
    fn k_clamps_to_axis_length() {
        let axis = [0.0, 1.0];
        let profile = [5.0, 6.0];
        assert_eq!(select_axis_indices(&axis, &profile, 10), vec![0, 1]);
    }

    #[test]
    fn single_point_axis_is_kept_verbatim() {
        // Scalar characterisation: one axis entry. The old
        // `assert!(n >= 2)` + `k.clamp(2, 1)` both panicked here.
        assert_eq!(select_axis_indices(&[3.5], &[7.0], 4), vec![0]);
        assert_eq!(select_axis_indices(&[3.5], &[7.0], 0), vec![0]);
        let empty: Vec<usize> = Vec::new();
        assert_eq!(select_axis_indices(&[], &[], 2), empty);
    }

    #[test]
    fn duplicate_axis_values_never_produce_nan() {
        // A composed arc can inherit an axis with repeated grid points;
        // the vertical segment must not yield NaN errors (which would
        // poison every DP comparison and derail index selection).
        let axis = [0.0, 1.0, 1.0, 2.0, 3.0];
        let profile = [0.0, 1.0, 5.0, 2.0, 3.0];
        for k in 2..=5 {
            let picks = select_axis_indices(&axis, &profile, k);
            assert_eq!(*picks.first().unwrap(), 0);
            assert_eq!(*picks.last().unwrap(), 4);
            assert!(picks.len() <= k.max(2));
            assert!(picks.windows(2).all(|w| w[0] < w[1]), "strictly increasing picks");
        }
        // The degenerate segment error itself is finite.
        assert!(segment_error(&axis, &profile, 1, 2).is_finite());
        let e = segment_error(&[1.0, 1.0, 1.0], &[0.0, 4.0, 0.0], 0, 2);
        assert_eq!(e, 4.0, "vertical segment charges |y0 - y_m|");
    }

    #[test]
    fn compress_preserves_values_at_selected_points() {
        let lut = Lut2::from_fn(
            vec![5.0, 10.0, 20.0, 40.0, 80.0],
            vec![1.0, 2.0, 4.0, 8.0],
            |s, l| 3.0 + 0.2 * s + 1.5 * l,
        )
        .unwrap();
        let tables = Split::uniform(Arc::new(ArcTables {
            delay: TransPair::uniform(lut.clone()),
            slew: TransPair::uniform(lut.clone()),
        }));
        let small = compress_tables(&tables, 3, 2);
        let c = &small.late.delay.rise;
        assert_eq!(c.slew_axis().len(), 3);
        assert_eq!(c.load_axis().len(), 2);
        // endpoints exact; a linear function is reproduced everywhere
        for (s, l) in [(5.0, 1.0), (80.0, 8.0), (20.0, 4.0), (40.0, 2.0)] {
            assert!((c.value(s, l) - lut.value(s, l)).abs() < 1e-9, "({s},{l})");
        }
    }

    #[test]
    fn graph_compression_shrinks_lut_entries() {
        use tmm_circuits::CircuitSpec;
        use tmm_sta::graph::ArcGraph;
        use tmm_sta::liberty::Library;
        let lib = Library::synthetic(3);
        let n = CircuitSpec::new("c").cloud(2, 5).register_banks(0, 1).seed(4).generate(&lib).unwrap();
        let mut g = ArcGraph::from_netlist(&n, &lib).unwrap();
        let before = g.lut_entries();
        let rewritten = compress_graph_luts(&mut g, 4, 4);
        assert!(rewritten > 0);
        assert!(g.lut_entries() < before, "{} -> {}", before, g.lut_entries());
        g.validate().unwrap();
    }
}
