//! Keep-set-driven graph reduction: the paper's serial and parallel merging
//! (§5.2, Fig. 9 step 2).
//!
//! Given the interface logic netlist and a per-pin keep decision (from the
//! GNN prediction or a baseline heuristic), every non-kept internal pin is
//! bypassed (serial merging) and duplicate arcs between the same endpoints
//! are folded (parallel merging). Parallel merging happens *incrementally*
//! after each bypass so the arc count stays bounded by kept-pin pairs even
//! under ETM-style total collapse.

use std::sync::Arc;
use tmm_sta::graph::{ArcGraph, NodeId, NodeKind};
use tmm_sta::view::{DesignCore, GraphView, TimingGraph};
use tmm_sta::Result;

/// Which editing engine drives the reduction. Both engines make identical
/// merge decisions in identical order and allocate replacement arcs the
/// same ids, so the resulting graphs — and the serialised macro models —
/// are byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReduceEngine {
    /// Record edits on a copy-on-write [`GraphView`] over a frozen core and
    /// materialise once at the end (default; the ILM is never cloned).
    #[default]
    View,
    /// Mutate the [`ArcGraph`] in place (the pre-refactor behaviour; kept
    /// as the byte-identity oracle).
    InPlace,
}

/// Counters describing one reduction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReduceStats {
    /// Pins removed by serial merging.
    pub bypassed: usize,
    /// Pins that were slated for removal but refused (fan-in × fan-out
    /// exceeded the budget, or the merge would have grown the model under a
    /// no-growth policy); they stay in the model.
    pub refused: usize,
    /// Arcs folded by parallel merging.
    pub parallel_merged: usize,
    /// Dangling pins pruned after merging.
    pub pruned: usize,
}

/// How aggressively serial merging may restructure the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReducePolicy {
    /// Fan-in × fan-out budget per bypass.
    pub max_bypass: usize,
    /// Permit merges that *increase* the arc count (`fi·fo > fi+fo`).
    /// ILM-based modelers keep such branch pins — removing them inflates the
    /// model — while ETM-style total collapse (ATM) allows the growth and
    /// relies on parallel merging to fold the blow-up back down.
    pub allow_growth: bool,
}

impl Default for ReducePolicy {
    fn default() -> Self {
        ReducePolicy { max_bypass: 64, allow_growth: false }
    }
}

/// Reduces `graph` in place: every live [`NodeKind::Internal`] node `i` with
/// `keep[i] == false` is serially merged away (policy permitting), with
/// incremental parallel merging; dangling internals are pruned last.
/// Under a no-growth policy, passes repeat until a fixpoint because chain
/// merges can make previously growth-refused pins eligible.
///
/// # Errors
///
/// Returns an error when the reduced graph fails to re-toposort — a graph
/// invariant violation that reduction of a valid DAG cannot produce, but
/// which corrupted input graphs can.
///
/// # Panics
///
/// Panics if `keep.len() != graph.node_count()`.
pub fn reduce_graph(
    graph: &mut ArcGraph,
    keep: &[bool],
    policy: &ReducePolicy,
) -> Result<ReduceStats> {
    assert_eq!(keep.len(), graph.node_count(), "keep mask size mismatch");
    let mut stats = ReduceStats::default();
    let order: Vec<NodeId> = graph.topo_order().to_vec();
    for _pass in 0..4 {
        let mut progressed = false;
        stats.refused = 0;
        for &n in &order {
            let node = graph.node(n);
            if node.dead || node.kind != NodeKind::Internal || keep[n.index()] {
                continue;
            }
            let fi = graph.in_degree(n);
            let fo = graph.out_degree(n);
            let grows = fi * fo > fi + fo;
            if !graph.can_bypass_with_limit(n, policy.max_bypass)
                || (grows && !policy.allow_growth)
            {
                stats.refused += 1;
                continue;
            }
            let sources: Vec<NodeId> = graph.fanin(n).map(|a| graph.arc(a).from).collect();
            let targets: Vec<NodeId> = graph.fanout(n).map(|a| graph.arc(a).to).collect();
            if graph.bypass_node_with_limit(n, policy.max_bypass).is_err() {
                // Eligibility was checked above, so this is a graph in a
                // state the editor refuses to touch; keep the pin instead
                // of panicking.
                stats.refused += 1;
                continue;
            }
            stats.bypassed += 1;
            progressed = true;
            for &u in &sources {
                for &v in &targets {
                    stats.parallel_merged += graph.coalesce_parallel(u, v);
                }
            }
        }
        if !progressed {
            break;
        }
    }
    // Final sweep for any parallel arcs created between kept nodes by
    // distinct bypasses that shared no endpoint pair at merge time.
    let node_ids: Vec<NodeId> =
        (0..graph.node_count() as u32).map(NodeId).filter(|&n| !graph.node(n).dead).collect();
    for &u in &node_ids {
        let mut targets: Vec<NodeId> = graph.fanout(u).map(|a| graph.arc(a).to).collect();
        targets.sort_unstable();
        targets.dedup();
        for v in targets {
            stats.parallel_merged += graph.coalesce_parallel(u, v);
        }
    }
    // Prune dangling internal pins until fixpoint — but never pins the
    // keep-set asked to preserve (keep-all must be the identity).
    loop {
        let mut removed = 0usize;
        for i in 0..graph.node_count() {
            if !keep[i] && graph.prune_dangling(NodeId(i as u32)) {
                removed += 1;
            }
        }
        if removed == 0 {
            break;
        }
        stats.pruned += removed;
    }
    graph.rebuild_topo()?;
    Ok(stats)
}

/// Outcome of a view-driven reduction.
#[derive(Debug)]
pub struct ViewReduction {
    /// The materialised reduced graph.
    pub graph: ArcGraph,
    /// Merge counters (identical to what [`reduce_graph`] reports).
    pub stats: ReduceStats,
    /// Bytes of copy-on-write overlay the reduction held when it finished
    /// (post-flush under a memory budget) — the only per-reduction memory
    /// besides the shared core.
    pub overlay_bytes: usize,
    /// Mid-reduction materialise+refreeze cycles forced by the memory
    /// budget (0 when unbudgeted or the overlay never outgrew it).
    pub flushes: usize,
}

/// Reduces a design through a copy-on-write [`GraphView`] over its frozen
/// `core`, materialising the result once at the end. Mirrors
/// [`reduce_graph`] decision-for-decision (same visit order, same budget
/// checks, same replacement-arc ids), so the materialised graph is
/// byte-identical to in-place reduction of the same graph.
///
/// # Errors
///
/// Returns an error when the materialised graph fails to re-toposort —
/// impossible for reductions of a valid DAG.
///
/// # Panics
///
/// Panics if `keep.len() != core.node_count()`.
pub fn reduce_graph_via_view(
    core: &Arc<DesignCore>,
    keep: &[bool],
    policy: &ReducePolicy,
) -> Result<ViewReduction> {
    reduce_via_view_impl(core, keep, policy, 0, None)
}

/// [`reduce_graph_via_view`] under a peak-memory budget (MiB, 0 =
/// unbounded): whenever the copy-on-write overlay outgrows what the budget
/// leaves beside the frozen core, the view is materialised and refrozen
/// mid-reduction and editing continues over the new core with an empty
/// overlay. Replacement-arc ids keep counting from where they were, so
/// the final graph is byte-identical to an unbudgeted reduction — only
/// peak RSS (and [`ViewReduction::flushes`]) differ.
///
/// # Errors
///
/// As [`reduce_graph_via_view`].
///
/// # Panics
///
/// Panics if `keep.len() != core.node_count()`.
pub fn reduce_graph_via_view_budget(
    core: &Arc<DesignCore>,
    keep: &[bool],
    policy: &ReducePolicy,
    mem_budget_mb: usize,
) -> Result<ViewReduction> {
    reduce_via_view_impl(core, keep, policy, mem_budget_mb, None)
}

/// [`reduce_graph_via_view`] with crash-safe pass checkpointing: after
/// each merge pass its *decision trace* (bypassed node list in order,
/// refused count, progress flag) is persisted to `store` under `stage`;
/// on resume, recorded passes are replayed — the same edits in the same
/// order, skipping the eligibility scans — before live merging continues.
/// A resumed reduction is byte-identical to an uninterrupted one.
///
/// # Errors
///
/// As [`reduce_graph_via_view`]; checkpoint-layer failures (unwritable
/// store, corrupt trace, a trace that does not replay on this graph)
/// surface as [`tmm_sta::StaError::Validation`] with artifact
/// `"checkpoint"`.
///
/// # Panics
///
/// Panics if `keep.len() != core.node_count()`.
pub fn reduce_graph_via_view_ckpt(
    core: &Arc<DesignCore>,
    keep: &[bool],
    policy: &ReducePolicy,
    store: &mut dyn tmm_ckpt::StageStore,
    stage: &str,
) -> Result<ViewReduction> {
    reduce_via_view_impl(core, keep, policy, 0, Some((store, stage)))
}

/// [`reduce_graph_via_view_ckpt`] under a peak-memory budget — see
/// [`reduce_graph_via_view_budget`]. Flush points are not recorded in the
/// trace (they change no decision), so a run may resume under a different
/// budget and still produce the identical graph.
///
/// # Errors
///
/// As [`reduce_graph_via_view_ckpt`].
///
/// # Panics
///
/// Panics if `keep.len() != core.node_count()`.
pub fn reduce_graph_via_view_budget_ckpt(
    core: &Arc<DesignCore>,
    keep: &[bool],
    policy: &ReducePolicy,
    mem_budget_mb: usize,
    store: &mut dyn tmm_ckpt::StageStore,
    stage: &str,
) -> Result<ViewReduction> {
    reduce_via_view_impl(core, keep, policy, mem_budget_mb, Some((store, stage)))
}

/// Maps a checkpoint-layer failure into the STA error domain so merge
/// callers keep a single error channel.
fn ckpt_to_sta(e: tmm_ckpt::CkptError) -> tmm_sta::StaError {
    tmm_sta::StaError::Validation { artifact: "checkpoint", errors: 1, first: e.to_string() }
}

/// One recorded merge pass (`mergepass v1`).
struct MergeTrace {
    refused: usize,
    progressed: bool,
    bypassed: Vec<u32>,
}

fn render_merge_pass(pass: usize, trace: &MergeTrace) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "mergepass v1 pass {pass} refused {} progressed {} bypassed {}\n",
        trace.refused,
        u8::from(trace.progressed),
        trace.bypassed.len()
    );
    for id in &trace.bypassed {
        let _ = writeln!(out, "{id}");
    }
    out
}

fn parse_merge_pass(payload: &str, expect_pass: usize) -> std::result::Result<MergeTrace, String> {
    fn word<'a>(
        t: &mut impl Iterator<Item = &'a str>,
        kw: &str,
    ) -> std::result::Result<(), String> {
        match t.next() {
            Some(w) if w == kw => Ok(()),
            other => Err(format!("expected `{kw}`, found {other:?}")),
        }
    }
    fn num<'a>(
        t: &mut impl Iterator<Item = &'a str>,
        what: &str,
    ) -> std::result::Result<usize, String> {
        t.next()
            .ok_or_else(|| format!("missing {what}"))?
            .parse::<usize>()
            .map_err(|e| format!("bad {what}: {e}"))
    }
    let mut t = payload.split_whitespace();
    word(&mut t, "mergepass")?;
    word(&mut t, "v1")?;
    word(&mut t, "pass")?;
    let pass = num(&mut t, "pass index")?;
    if pass != expect_pass {
        return Err(format!("trace records pass {pass}, expected pass {expect_pass}"));
    }
    word(&mut t, "refused")?;
    let refused = num(&mut t, "refused count")?;
    word(&mut t, "progressed")?;
    let progressed = match num(&mut t, "progressed flag")? {
        0 => false,
        1 => true,
        other => return Err(format!("bad progressed flag {other}")),
    };
    word(&mut t, "bypassed")?;
    let count = num(&mut t, "bypassed count")?;
    let mut bypassed = Vec::with_capacity(count);
    for i in 0..count {
        let id = t
            .next()
            .ok_or_else(|| format!("trace truncated: {i} of {count} node ids"))?
            .parse::<u32>()
            .map_err(|e| format!("bad node id: {e}"))?;
        bypassed.push(id);
    }
    if t.next().is_some() {
        return Err("trailing tokens after bypassed node list".into());
    }
    Ok(MergeTrace { refused, progressed, bypassed })
}

/// Replays one recorded merge pass on `view`: the same bypasses and
/// incremental parallel merges, in the same order, without re-running the
/// eligibility scans. Counter updates mirror the live pass exactly.
fn replay_merge_pass(
    view: &mut GraphView,
    trace: &MergeTrace,
    policy: &ReducePolicy,
    stats: &mut ReduceStats,
    mem_budget_mb: usize,
    allowance: &mut Option<usize>,
    flushes: &mut usize,
) -> std::result::Result<(), String> {
    stats.refused = trace.refused;
    for &id in &trace.bypassed {
        let n = NodeId(id);
        if n.index() >= view.node_count() {
            return Err(format!("trace bypasses node {id}, graph has {}", view.node_count()));
        }
        let sources: Vec<NodeId> = view.fanin(n).map(|a| view.arc(a).from).collect();
        let targets: Vec<NodeId> = view.fanout(n).map(|a| view.arc(a).to).collect();
        view.bypass_node_with_limit(n, policy.max_bypass)
            .map_err(|e| format!("recorded bypass of node {id} does not replay: {e}"))?;
        stats.bypassed += 1;
        for &u in &sources {
            for &v in &targets {
                stats.parallel_merged += view.coalesce_parallel(u, v);
            }
        }
        flush_if_over_budget(view, mem_budget_mb, allowance, flushes)
            .map_err(|e| format!("budget flush during replay: {e}"))?;
    }
    Ok(())
}

/// Minimum overlay the budget always allows: below this a flush costs more
/// (a full materialise + refreeze) than the bytes it frees, and a budget
/// smaller than the core itself would otherwise thrash on every edit.
const MERGE_FLUSH_MIN_OVERLAY: usize = 64 * 1024;

/// Materialises and refreezes `view` in place when its overlay has
/// outgrown what `mem_budget_mb` leaves beside the frozen core. Editing
/// then continues over the new core with an empty overlay. Replacement
/// arc ids keep counting from `core.arc_count()` (the refrozen core
/// absorbed exactly the arcs the overlay held, in id order) and merges
/// never insert nodes, so a flushed reduction materialises the identical
/// graph an unflushed one would — this is what bounds peak RSS without
/// cloning the whole design.
fn flush_if_over_budget(
    view: &mut GraphView,
    mem_budget_mb: usize,
    allowance: &mut Option<usize>,
    flushes: &mut usize,
) -> Result<()> {
    if mem_budget_mb == 0 {
        return Ok(());
    }
    // The core only changes at a flush, so its O(nodes+arcs) estimate is
    // cached between flushes — this check runs after every bypass and must
    // stay O(1) (the overlay estimate itself is counter-maintained).
    let cap = match *allowance {
        Some(cap) => cap,
        None => {
            let budget = mem_budget_mb.saturating_mul(1024 * 1024);
            let core_bytes = view.core().memory_estimate();
            // Never flush before the overlay has grown to a quarter of the
            // core: a flush costs one O(core + overlay) materialise +
            // refreeze, so this floor amortises total flush work to O(total
            // overlay produced). Without it a budget at or below the core
            // size would flush after nearly every bypass — quadratic — to
            // honour a bound the core alone already exceeds. The budget is
            // best-effort: peak working set stays within
            // max(budget, 1.25 × core).
            let cap = budget
                .saturating_sub(core_bytes)
                .max(core_bytes / 4)
                .max(MERGE_FLUSH_MIN_OVERLAY);
            *allowance = Some(cap);
            cap
        }
    };
    if view.memory_estimate() <= cap {
        return Ok(());
    }
    let graph = view.materialize()?;
    *view = GraphView::new(DesignCore::freeze(&graph));
    *allowance = None;
    *flushes += 1;
    // PR 8 landed budget flushes without a series; the rate window feeds
    // the live endpoint's flushes/s, the counter the registry.
    tmm_obs::counter_add("tmm_mem_budget_flushes_total", &[], 1);
    tmm_obs::rate_add("tmm_merge_flushes", 1);
    Ok(())
}

fn reduce_via_view_impl(
    core: &Arc<DesignCore>,
    keep: &[bool],
    policy: &ReducePolicy,
    mem_budget_mb: usize,
    mut ckpt: Option<(&mut dyn tmm_ckpt::StageStore, &str)>,
) -> Result<ViewReduction> {
    assert_eq!(keep.len(), core.node_count(), "keep mask size mismatch");
    let mut view = GraphView::new(core.clone());
    let mut stats = ReduceStats::default();
    let mut flushes = 0usize;
    let mut allowance: Option<usize> = None;
    // The visit order is captured from the ORIGINAL core and survives
    // budget flushes — a refrozen core re-toposorts, and switching to its
    // order mid-run would change the bypass sequence.
    let order: Vec<NodeId> = core.topo_order().to_vec();
    // Live heartbeat: up to 4 passes over the same visit order. `done`
    // only ever advances (complete() snaps to total on early fixpoint),
    // so /progress stays monotonic across passes.
    let heartbeat = tmm_obs::progress_start("macro_merge", "", (order.len() * 4) as u64);
    for pass in 0..4 {
        // A recorded pass replays verbatim: the checkpoint stores only the
        // decision trace, never graph state, so a resumed reduction walks
        // the identical edit sequence and lands on the identical overlay.
        if let Some((store, stage)) = ckpt.as_mut() {
            let seq = pass as u64;
            if let Some(payload) = store.load(stage, seq).map_err(ckpt_to_sta)? {
                let trace = parse_merge_pass(&payload, pass).map_err(|m| {
                    ckpt_to_sta(tmm_ckpt::CkptError::Corrupt(format!(
                        "merge trace {stage}/{seq}: {m}"
                    )))
                })?;
                replay_merge_pass(
                    &mut view,
                    &trace,
                    policy,
                    &mut stats,
                    mem_budget_mb,
                    &mut allowance,
                    &mut flushes,
                )
                .map_err(|m| {
                    ckpt_to_sta(tmm_ckpt::CkptError::Corrupt(format!(
                        "merge trace {stage}/{seq}: {m}"
                    )))
                })?;
                tmm_ckpt::heartbeat();
                heartbeat.add(order.len() as u64);
                if !trace.progressed {
                    break;
                }
                continue;
            }
        }
        let mut progressed = false;
        stats.refused = 0;
        let mut trace_nodes: Vec<u32> = Vec::new();
        for &n in &order {
            heartbeat.add(1);
            if view.node_dead(n) || view.node_kind(n) != NodeKind::Internal || keep[n.index()]
            {
                continue;
            }
            let fi = view.in_degree(n);
            let fo = view.out_degree(n);
            let grows = fi * fo > fi + fo;
            if !view.can_bypass_with_limit(n, policy.max_bypass)
                || (grows && !policy.allow_growth)
            {
                stats.refused += 1;
                continue;
            }
            let sources: Vec<NodeId> = view.fanin(n).map(|a| view.arc(a).from).collect();
            let targets: Vec<NodeId> = view.fanout(n).map(|a| view.arc(a).to).collect();
            if view.bypass_node_with_limit(n, policy.max_bypass).is_err() {
                // Eligibility was checked above, so this is a graph in a
                // state the editor refuses to touch; keep the pin instead
                // of panicking.
                stats.refused += 1;
                continue;
            }
            stats.bypassed += 1;
            progressed = true;
            if ckpt.is_some() {
                trace_nodes.push(n.0);
            }
            for &u in &sources {
                for &v in &targets {
                    stats.parallel_merged += view.coalesce_parallel(u, v);
                }
            }
            flush_if_over_budget(&mut view, mem_budget_mb, &mut allowance, &mut flushes)?;
        }
        if let Some((store, stage)) = ckpt.as_mut() {
            let trace =
                MergeTrace { refused: stats.refused, progressed, bypassed: trace_nodes };
            store
                .save(stage, pass as u64, &render_merge_pass(pass, &trace))
                .map_err(ckpt_to_sta)?;
            tmm_ckpt::heartbeat();
        }
        if !progressed {
            break;
        }
    }
    if let Some((store, stage)) = ckpt.as_mut() {
        store.mark_done(stage).map_err(ckpt_to_sta)?;
    }
    // Final sweep for any parallel arcs created between kept nodes by
    // distinct bypasses that shared no endpoint pair at merge time.
    let node_ids: Vec<NodeId> = (0..core.node_count() as u32)
        .map(NodeId)
        .filter(|&n| !view.node_dead(n))
        .collect();
    for &u in &node_ids {
        let mut targets: Vec<NodeId> = view.fanout(u).map(|a| view.arc(a).to).collect();
        targets.sort_unstable();
        targets.dedup();
        for v in targets {
            stats.parallel_merged += view.coalesce_parallel(u, v);
        }
    }
    // Prune dangling internal pins until fixpoint — but never pins the
    // keep-set asked to preserve (keep-all must be the identity).
    loop {
        let mut removed = 0usize;
        for (i, &kept) in keep.iter().enumerate() {
            if !kept && view.prune_dangling(NodeId(i as u32)) {
                removed += 1;
            }
        }
        if removed == 0 {
            break;
        }
        stats.pruned += removed;
    }
    heartbeat.complete();
    let overlay_bytes = view.memory_estimate();
    let graph = view.materialize()?;
    Ok(ViewReduction { graph, stats, overlay_bytes, flushes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmm_circuits::CircuitSpec;
    use tmm_sta::constraints::Context;
    use tmm_sta::liberty::Library;
    use tmm_sta::propagate::Analysis;

    fn small_graph() -> ArcGraph {
        let lib = Library::synthetic(2);
        let n = CircuitSpec::new("r")
            .inputs(4)
            .outputs(4)
            .register_banks(1, 4)
            .cloud(3, 6)
            .seed(21)
            .generate(&lib)
            .unwrap();
        ArcGraph::from_netlist(&n, &lib).unwrap()
    }

    #[test]
    fn keep_all_is_identity() {
        let mut g = small_graph();
        let before = (g.live_nodes(), g.live_arcs());
        let keep = vec![true; g.node_count()];
        let stats = reduce_graph(&mut g, &keep, &ReducePolicy::default()).unwrap();
        assert_eq!(stats.bypassed, 0);
        assert_eq!((g.live_nodes(), g.live_arcs()), before);
    }

    #[test]
    fn keep_none_collapses_internals() {
        let mut g = small_graph();
        let nodes_before = g.live_nodes();
        let keep = vec![false; g.node_count()];
        let stats = reduce_graph(&mut g, &keep, &ReducePolicy { max_bypass: 4096, allow_growth: true }).unwrap();
        assert!(stats.bypassed > 0);
        assert!(g.live_nodes() < nodes_before);
        // Only ports, FF pins and refused/clock-kept pins remain internal.
        let internals = (0..g.node_count() as u32)
            .map(NodeId)
            .filter(|&n| !g.node(n).dead && g.node(n).kind == NodeKind::Internal)
            .count();
        assert!(
            internals <= stats.refused,
            "all non-refused internals gone: {internals} vs refused {stats:?}"
        );
        g.validate().unwrap();
    }

    #[test]
    fn full_collapse_error_stays_in_the_ps_regime() {
        // Collapsing *everything* removes timing-variant pins, so error is
        // expected (that is the point of the TS metric) — but it must stay
        // bounded: the frozen internal loads match the nominal context, so
        // only max/min crossings in non-unate merges deviate.
        let g0 = small_graph();
        let mut g = g0.clone();
        let keep = vec![false; g.node_count()];
        reduce_graph(&mut g, &keep, &ReducePolicy { max_bypass: 4096, allow_growth: true }).unwrap();
        let ctx = Context::nominal(&g0);
        let flat = Analysis::run(&g0, &ctx).unwrap();
        let red = Analysis::run(&g, &ctx).unwrap();
        let d = flat.boundary().diff(red.boundary());
        assert!(d.count > 0);
        assert!(d.max > 0.0, "full collapse of variant pins cannot be exact");
        assert!(d.max < 500.0, "error must stay in the ps regime, got {}", d.max);
    }

    #[test]
    fn keeping_pins_reduces_collapse_error() {
        // Keeping every pin is exact; keeping none incurs interpolation
        // error. Error must be monotone in that direction.
        let g0 = small_graph();
        let ctx = Context::nominal(&g0);
        let flat = Analysis::run(&g0, &ctx).unwrap();

        let mut g_none = g0.clone();
        reduce_graph(&mut g_none, &vec![false; g0.node_count()], &ReducePolicy { max_bypass: 4096, allow_growth: true }).unwrap();
        let err_none =
            flat.boundary().diff(Analysis::run(&g_none, &ctx).unwrap().boundary()).max;

        let mut g_all = g0.clone();
        reduce_graph(&mut g_all, &vec![true; g0.node_count()], &ReducePolicy { max_bypass: 4096, allow_growth: true }).unwrap();
        let err_all =
            flat.boundary().diff(Analysis::run(&g_all, &ctx).unwrap().boundary()).max;

        assert!(err_all <= err_none + 1e-12, "{err_all} vs {err_none}");
        assert_eq!(err_all, 0.0);
    }

    #[test]
    fn view_reduction_matches_in_place_reduction_exactly() {
        let g0 = small_graph();
        let n = g0.node_count();
        let keep_alternating: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        let cases: Vec<(Vec<bool>, ReducePolicy)> = vec![
            (vec![false; n], ReducePolicy { max_bypass: 4096, allow_growth: true }),
            (vec![false; n], ReducePolicy::default()),
            (vec![true; n], ReducePolicy::default()),
            (keep_alternating, ReducePolicy::default()),
        ];
        for (keep, policy) in cases {
            let mut in_place = g0.clone();
            let stats_a = reduce_graph(&mut in_place, &keep, &policy).unwrap();
            let core = DesignCore::freeze(&g0);
            let via_view = reduce_graph_via_view(&core, &keep, &policy).unwrap();
            assert_eq!(stats_a, via_view.stats, "merge counters must agree");
            let v = &via_view.graph;
            assert_eq!(in_place.node_count(), v.node_count());
            assert_eq!(in_place.arcs().len(), v.arcs().len(), "same arc id allocation");
            for (a, b) in in_place.nodes().iter().zip(v.nodes()) {
                assert_eq!(a.dead, b.dead, "node liveness must agree ({})", a.name);
            }
            for (i, (a, b)) in in_place.arcs().iter().zip(v.arcs()).enumerate() {
                assert_eq!((a.from, a.to, a.dead), (b.from, b.to, b.dead), "arc {i}");
                assert_eq!(a.is_clock, b.is_clock, "arc {i} clock flag");
            }
            assert_eq!(in_place.topo_order(), v.topo_order());
            let ctx = Context::nominal(&g0);
            let x = Analysis::run(&in_place, &ctx).unwrap();
            let y = Analysis::run(v, &ctx).unwrap();
            assert_eq!(x.boundary().diff(y.boundary()).max, 0.0, "bit-identical timing");
        }
    }

    #[test]
    fn view_reduction_overlay_is_accounted() {
        let g0 = small_graph();
        let core = DesignCore::freeze(&g0);
        let keep = vec![false; g0.node_count()];
        let r = reduce_graph_via_view(
            &core,
            &keep,
            &ReducePolicy { max_bypass: 4096, allow_growth: true },
        )
        .unwrap();
        assert!(r.overlay_bytes > 0, "a reducing run must record overlay edits");
        // A pristine (keep-everything, nothing-merged) view costs almost
        // nothing next to the shared core: that is the point of the split.
        let keep_all = vec![true; g0.node_count()];
        let pristine =
            reduce_graph_via_view(&core, &keep_all, &ReducePolicy::default()).unwrap();
        assert!(
            pristine.overlay_bytes < core.memory_estimate() / 4,
            "near-pristine overlay ({}) must be small next to the core ({})",
            pristine.overlay_bytes,
            core.memory_estimate()
        );
    }

    #[test]
    fn budgeted_reduction_is_identical_and_actually_flushes() {
        // A tiny budget must force at least one mid-merge flush, and the
        // flushed run must produce the exact same graph and counters as the
        // unbudgeted one: a flush re-freezes the view but never changes a
        // merge decision or an arc id.
        let lib = Library::synthetic(2);
        let n = CircuitSpec::sized("bud", 1500).seed(33).generate(&lib).unwrap();
        let g0 = ArcGraph::from_netlist(&n, &lib).unwrap();
        let core = DesignCore::freeze(&g0);
        let keep = vec![false; g0.node_count()];
        let policy = ReducePolicy { max_bypass: 4096, allow_growth: true };
        let plain = reduce_graph_via_view(&core, &keep, &policy).unwrap();
        assert_eq!(plain.flushes, 0, "no budget, no flushing");
        let budgeted = reduce_graph_via_view_budget(&core, &keep, &policy, 1).unwrap();
        assert!(budgeted.flushes > 0, "a 1 MiB budget must trigger flushes");
        assert_eq!(plain.stats, budgeted.stats, "flushing must not change decisions");
        assert_eq!(plain.graph.node_count(), budgeted.graph.node_count());
        assert_eq!(plain.graph.arcs().len(), budgeted.graph.arcs().len());
        for (a, b) in plain.graph.nodes().iter().zip(budgeted.graph.nodes()) {
            assert_eq!((a.dead, &a.name), (b.dead, &b.name));
        }
        for (i, (a, b)) in plain.graph.arcs().iter().zip(budgeted.graph.arcs()).enumerate() {
            assert_eq!((a.from, a.to, a.dead, a.is_clock), (b.from, b.to, b.dead, b.is_clock), "arc {i}");
        }
        let ctx = Context::nominal(&g0);
        let x = Analysis::run(&plain.graph, &ctx).unwrap();
        let y = Analysis::run(&budgeted.graph, &ctx).unwrap();
        assert_eq!(x.boundary().diff(y.boundary()).max, 0.0, "bit-identical timing");
    }

    #[test]
    fn merge_pass_trace_round_trips() {
        let trace = MergeTrace { refused: 3, progressed: true, bypassed: vec![7, 0, 42] };
        let text = render_merge_pass(2, &trace);
        let back = parse_merge_pass(&text, 2).unwrap();
        assert_eq!(back.refused, trace.refused);
        assert_eq!(back.progressed, trace.progressed);
        assert_eq!(back.bypassed, trace.bypassed);
        // wrong pass index is rejected (stale trace from another pass)
        assert!(parse_merge_pass(&text, 1).is_err());
        // Torn payloads that lose tokens are rejected, never half-applied.
        // (A cut *inside* the final integer can still tokenise — that tear
        // is caught by the artifact checksum the store verifies on load.)
        for cut in [text.len() / 3, text.len() - 3] {
            assert!(parse_merge_pass(&text[..cut], 2).is_err(), "cut at {cut}");
        }
        assert!(parse_merge_pass(&format!("{text} 9"), 2).is_err(), "trailing tokens");
    }

    #[test]
    fn checkpointed_reduction_resume_is_bit_identical() {
        use tmm_ckpt::{MemStore, StageStore};
        let g0 = small_graph();
        let n = g0.node_count();
        let keep_alternating: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        let cases: Vec<(Vec<bool>, ReducePolicy)> = vec![
            (vec![false; n], ReducePolicy { max_bypass: 4096, allow_growth: true }),
            (vec![false; n], ReducePolicy::default()),
            (keep_alternating, ReducePolicy::default()),
        ];
        let serialize = |g: &ArcGraph| {
            let mut s = String::new();
            for node in g.nodes() {
                s.push_str(&format!("{} {} {:?}\n", node.name, node.dead, node.kind));
            }
            for a in g.arcs() {
                s.push_str(&format!("{} {} {} {}\n", a.from.0, a.to.0, a.dead, a.is_clock));
            }
            s
        };
        for (keep, policy) in cases {
            let core = DesignCore::freeze(&g0);
            let plain = reduce_graph_via_view(&core, &keep, &policy).unwrap();

            let mut full = MemStore::default();
            let ckpted =
                reduce_graph_via_view_ckpt(&core, &keep, &policy, &mut full, "merge").unwrap();
            assert_eq!(plain.stats, ckpted.stats, "checkpointing must not change decisions");
            assert_eq!(serialize(&plain.graph), serialize(&ckpted.graph));
            assert!(full.is_done("merge"));
            let saves = full.saves();
            assert!(saves >= 1, "at least one pass trace must be recorded");

            // Kill after every prefix of saved passes; resume must land on
            // the identical graph and counters.
            for kept_saves in 0..=saves {
                let mut store = full.truncated(kept_saves);
                let resumed =
                    reduce_graph_via_view_ckpt(&core, &keep, &policy, &mut store, "merge")
                        .unwrap();
                assert_eq!(plain.stats, resumed.stats, "kept_saves={kept_saves}");
                assert_eq!(
                    serialize(&plain.graph),
                    serialize(&resumed.graph),
                    "kept_saves={kept_saves}: resumed reduction must be bit-identical"
                );
                assert!(store.is_done("merge"));
            }
        }
    }

    #[test]
    fn stale_merge_trace_for_different_keep_set_is_rejected_or_replayed_consistently() {
        use tmm_ckpt::{MemStore, StageStore};
        // A trace recorded under keep-none replayed against a keep-set that
        // preserves the traced nodes: the bypass of a *kept* node must not
        // silently happen — the classed checkpoint error surfaces (replay
        // refuses) or, where the edit is still legal, the caller's manifest
        // fingerprint (enforced a layer up) is the guard. Here we check the
        // hard failure path: a trace naming a node id beyond the graph.
        let g0 = small_graph();
        let core = DesignCore::freeze(&g0);
        let keep = vec![false; g0.node_count()];
        let mut store = MemStore::default();
        let bogus = MergeTrace {
            refused: 0,
            progressed: true,
            bypassed: vec![g0.node_count() as u32 + 5],
        };
        store.save("merge", 0, &render_merge_pass(0, &bogus)).unwrap();
        let err = reduce_graph_via_view_ckpt(
            &core,
            &keep,
            &ReducePolicy::default(),
            &mut store,
            "merge",
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("checkpoint"), "classed as a checkpoint failure: {msg}");
    }

    #[test]
    fn stats_are_consistent() {
        let mut g = small_graph();
        let keep = vec![false; g.node_count()];
        let live_before = g.live_nodes();
        let stats = reduce_graph(&mut g, &keep, &ReducePolicy { max_bypass: 4096, allow_growth: true }).unwrap();
        assert_eq!(
            live_before - g.live_nodes(),
            stats.bypassed + stats.pruned,
            "every vanished node is accounted for"
        );
    }
}
