//! Model-accuracy and performance evaluation (the paper's Fig. 2 flow).
//!
//! A macro model is judged by re-timing it under *fresh* random boundary
//! contexts and comparing every boundary-visible quantity against the flat
//! design: max/avg error in ps, model file size, generation runtime/memory,
//! and usage runtime/memory — the columns of Tables 3–6.

use crate::model::MacroModel;
use std::time::{Duration, Instant};
use tmm_sta::compare::DiffStats;
use tmm_sta::constraints::ContextSampler;
use tmm_sta::graph::ArcGraph;
use tmm_sta::propagate::{Analysis, AnalysisOptions};
use tmm_sta::Result;

/// Options controlling the evaluation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalOptions {
    /// Number of fresh random contexts.
    pub contexts: usize,
    /// Sampler seed (distinct from any training seed).
    pub seed: u64,
    /// Evaluate with CPPR enabled.
    pub cppr: bool,
    /// Evaluate with AOCV derating enabled.
    pub aocv: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions { contexts: 6, seed: 0xe7a1, cppr: false, aocv: false }
    }
}

/// Complete evaluation record of one model on one design.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EvalResult {
    /// Boundary error statistics across all contexts (ps).
    pub accuracy: DiffStats,
    /// Serialised model size in bytes.
    pub model_bytes: usize,
    /// Generation wall-clock time.
    pub gen_time: Duration,
    /// Estimated generation memory in bytes.
    pub gen_memory: usize,
    /// Total model-usage (macro timing) wall-clock time across contexts.
    pub usage_time: Duration,
    /// Estimated model-usage memory in bytes.
    pub usage_memory: usize,
    /// Total flat (reference) timing wall-clock time across contexts.
    pub flat_time: Duration,
    /// Pins kept in the model.
    pub kept_pins: usize,
}

/// Evaluates `model` against the flat design it was generated from.
///
/// # Errors
///
/// Propagates analysis errors (infallible for valid graphs).
pub fn evaluate(flat: &ArcGraph, model: &MacroModel, opts: &EvalOptions) -> Result<EvalResult> {
    let mut sampler = ContextSampler::new(opts.seed);
    let analysis_opts = AnalysisOptions { cppr: opts.cppr, aocv: opts.aocv };
    let mut accuracy = DiffStats::default();
    let mut usage_time = Duration::ZERO;
    let mut flat_time = Duration::ZERO;
    for ctx in sampler.sample_many(flat, opts.contexts) {
        let t0 = Instant::now();
        let reference = Analysis::run_with_options(flat, &ctx, analysis_opts)?;
        flat_time += t0.elapsed();
        let t1 = Instant::now();
        let macro_an = model.analyze(&ctx, analysis_opts)?;
        usage_time += t1.elapsed();
        accuracy = accuracy.merged(reference.boundary().diff(macro_an.boundary()));
    }
    Ok(EvalResult {
        accuracy,
        model_bytes: model.file_size_bytes(),
        gen_time: model.stats().gen_time,
        gen_memory: model.stats().gen_memory,
        usage_time,
        usage_memory: model.usage_memory(),
        flat_time,
        kept_pins: model.stats().kept_pins,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MacroModelOptions;
    use tmm_circuits::CircuitSpec;
    use tmm_sta::liberty::Library;

    fn flat() -> ArcGraph {
        let lib = Library::synthetic(8);
        let n = CircuitSpec::new("e")
            .inputs(4)
            .outputs(4)
            .register_banks(2, 4)
            .cloud(2, 6)
            .seed(55)
            .generate(&lib)
            .unwrap();
        ArcGraph::from_netlist(&n, &lib).unwrap()
    }

    #[test]
    fn keep_all_model_evaluates_exactly_without_compression() {
        let g = flat();
        let model = MacroModel::generate(
            &g,
            &vec![true; g.node_count()],
            &MacroModelOptions { compress_luts: false, ..Default::default() },
        )
        .unwrap();
        let r = evaluate(&g, &model, &EvalOptions { contexts: 3, ..Default::default() }).unwrap();
        assert!(r.accuracy.count > 0);
        assert!(r.accuracy.max < 1e-9, "exact model, got {}", r.accuracy.max);
        assert!(r.model_bytes > 0);
        assert!(r.usage_memory > 0);
    }

    #[test]
    fn collapsed_model_has_nonzero_but_bounded_error() {
        let g = flat();
        let model =
            MacroModel::generate(&g, &vec![false; g.node_count()], &MacroModelOptions::default())
                .unwrap();
        let r = evaluate(&g, &model, &EvalOptions { contexts: 4, ..Default::default() }).unwrap();
        assert!(r.accuracy.max > 0.0, "baked internals must cost accuracy");
        assert!(r.accuracy.max < 500.0, "but stay in the ps regime: {}", r.accuracy.max);
        assert!(r.accuracy.avg <= r.accuracy.max);
    }

    #[test]
    fn cppr_mode_compares_check_slacks() {
        let g = flat();
        let model = MacroModel::generate(
            &g,
            &vec![true; g.node_count()],
            &MacroModelOptions { compress_luts: false, ..Default::default() },
        )
        .unwrap();
        let r = evaluate(
            &g,
            &model,
            &EvalOptions { contexts: 2, cppr: true, ..Default::default() },
        )
        .unwrap();
        assert!(r.accuracy.max < 1e-9, "exact model stays exact under CPPR: {}", r.accuracy.max);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let g = flat();
        let model =
            MacroModel::generate(&g, &vec![false; g.node_count()], &MacroModelOptions::default())
                .unwrap();
        let opts = EvalOptions { contexts: 3, ..Default::default() };
        let a = evaluate(&g, &model, &opts).unwrap();
        let b = evaluate(&g, &model, &opts).unwrap();
        assert_eq!(a.accuracy.max, b.accuracy.max);
        assert_eq!(a.accuracy.avg, b.accuracy.avg);
    }
}
