//! The timing macro model container and its generation pipeline.
//!
//! [`MacroModel::generate`] runs the paper's Fig. 9 flow: ILM extraction →
//! keep-set-driven serial/parallel merging → LUT index selection → model.
//! The result is itself an [`ArcGraph`], so *using* the model is just
//! running the standard analysis on it — exactly how hierarchical timers
//! consume macro models.

use crate::ilm::extract_ilm;
use crate::lut_select::compress_graph_luts;
use crate::reduce::{reduce_graph, ReduceEngine, ReducePolicy, ReduceStats};
use std::fmt::Write as _;
use std::time::{Duration, Instant};
use tmm_sta::constraints::Context;
use tmm_sta::graph::{ArcGraph, ArcTiming, NodeKind};
use tmm_sta::io;
use tmm_sta::propagate::{Analysis, AnalysisOptions};
use tmm_sta::split::Mode;
use tmm_sta::validate::{validate_arc_graph, ValidationReport};
use tmm_sta::Result;

/// Options controlling macro model generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacroModelOptions {
    /// Slew-axis points kept per table after index selection.
    pub lut_slew_points: usize,
    /// Load-axis points kept per table after index selection.
    pub lut_load_points: usize,
    /// Fan-in × fan-out budget for serial merging; pins exceeding it are
    /// kept (ETM-style generation raises this dramatically).
    pub max_bypass: usize,
    /// Permit merges that grow the arc count (`fi·fo > fi+fo`). ILM-based
    /// methods leave this off — removing a branch pin would inflate the
    /// model — while ETM-style total collapse turns it on.
    pub allow_growth: bool,
    /// Skip LUT index selection (ablation hook).
    pub compress_luts: bool,
    /// How merges are executed: [`ReduceEngine::View`] edits a copy-on-write
    /// overlay over a frozen [`tmm_sta::view::DesignCore`] and materialises
    /// once at the end; [`ReduceEngine::InPlace`] mutates the ILM clone
    /// directly. Both produce byte-identical models.
    pub reduce_engine: ReduceEngine,
    /// Soft working-memory budget in MiB for the [`ReduceEngine::View`]
    /// merge (0 = unbounded). When the copy-on-write overlay outgrows
    /// `budget − core`, the view is materialised and re-frozen mid-merge so
    /// peak RSS stays near the budget. Flushing never changes a merge
    /// decision — the model stays byte-identical.
    pub mem_budget_mb: usize,
}

impl Default for MacroModelOptions {
    fn default() -> Self {
        MacroModelOptions {
            lut_slew_points: 4,
            lut_load_points: 4,
            max_bypass: 64,
            allow_growth: false,
            compress_luts: true,
            reduce_engine: ReduceEngine::View,
            mem_budget_mb: 0,
        }
    }
}

/// Generation statistics reported by the experiment tables.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GenStats {
    /// Wall-clock generation time.
    pub gen_time: Duration,
    /// Pins surviving in the model.
    pub kept_pins: usize,
    /// Pins of the flat design (for reduction-ratio reporting).
    pub flat_pins: usize,
    /// Serial/parallel merge counters.
    pub reduce: ReduceStats,
    /// Peak estimated working memory during generation in bytes (a
    /// documented substitution for the paper's RSS numbers). Under
    /// [`ReduceEngine::InPlace`] this is flat graph + ILM clone; under
    /// [`ReduceEngine::View`] the frozen core is counted once and the
    /// copy-on-write overlay is added on top.
    pub gen_memory: usize,
}

/// A generated timing macro model.
#[derive(Debug, Clone)]
pub struct MacroModel {
    name: String,
    graph: ArcGraph,
    stats: GenStats,
}

impl MacroModel {
    /// Runs the full generation pipeline on a flat design graph with a
    /// per-node keep mask (indices match `flat`'s nodes; `true` pins are
    /// preserved).
    ///
    /// # Errors
    ///
    /// Propagates graph-edit errors from ILM extraction (effectively
    /// infallible for valid graphs).
    ///
    /// # Panics
    ///
    /// Panics if `keep.len() != flat.node_count()`.
    pub fn generate(
        flat: &ArcGraph,
        keep: &[bool],
        options: &MacroModelOptions,
    ) -> Result<MacroModel> {
        Self::generate_impl(flat, keep, options, None, None)
    }

    /// [`MacroModel::generate`] with the LUT-fitting stage routed through a
    /// [`crate::lut_cache::LutCache`] — the incremental (ECO) regeneration
    /// entry point. Merging re-runs in full (it is cheap and
    /// order-sensitive), but every arc whose uncompressed tables match a
    /// previous generation replays its fitted LUTs from the cache instead
    /// of re-running the selection DP. The result is byte-identical to
    /// [`MacroModel::generate`]; only the wall time changes.
    ///
    /// # Errors
    ///
    /// As [`MacroModel::generate`].
    ///
    /// # Panics
    ///
    /// Panics if `keep.len() != flat.node_count()`.
    pub fn generate_patched(
        flat: &ArcGraph,
        keep: &[bool],
        options: &MacroModelOptions,
        cache: &mut crate::lut_cache::LutCache,
    ) -> Result<MacroModel> {
        Self::generate_impl(flat, keep, options, None, Some(cache))
    }

    /// [`MacroModel::generate`] with crash-safe merge checkpointing: on the
    /// [`ReduceEngine::View`] engine, each merge pass persists its decision
    /// trace into `store` under `stage` (via
    /// [`crate::reduce::reduce_graph_via_view_ckpt`]), so a killed
    /// generation resumes mid-merge and produces a byte-identical model.
    /// The [`ReduceEngine::InPlace`] oracle ignores the store.
    ///
    /// # Errors
    ///
    /// As [`MacroModel::generate`]; checkpoint-layer failures surface as
    /// [`tmm_sta::StaError::Validation`] with artifact `"checkpoint"`.
    ///
    /// # Panics
    ///
    /// Panics if `keep.len() != flat.node_count()`.
    pub fn generate_ckpt(
        flat: &ArcGraph,
        keep: &[bool],
        options: &MacroModelOptions,
        store: &mut dyn tmm_ckpt::StageStore,
        stage: &str,
    ) -> Result<MacroModel> {
        Self::generate_impl(flat, keep, options, Some((store, stage)), None)
    }

    fn generate_impl(
        flat: &ArcGraph,
        keep: &[bool],
        options: &MacroModelOptions,
        ckpt: Option<(&mut dyn tmm_ckpt::StageStore, &str)>,
        lut_cache: Option<&mut crate::lut_cache::LutCache>,
    ) -> Result<MacroModel> {
        assert_eq!(keep.len(), flat.node_count(), "keep mask size mismatch");
        let mut span = tmm_obs::span("macro_generate", "macromodel");
        let start = Instant::now();
        let (mut graph, _mask) = extract_ilm(flat)?;
        let policy =
            ReducePolicy { max_bypass: options.max_bypass, allow_growth: options.allow_growth };
        let (gen_memory, reduce) = match options.reduce_engine {
            ReduceEngine::View => {
                // The frozen core is shared (counted once); edits live in a
                // small overlay until a single materialisation at the end.
                let core = tmm_sta::view::DesignCore::freeze(&graph);
                let vr = match ckpt {
                    Some((store, stage)) => crate::reduce::reduce_graph_via_view_budget_ckpt(
                        &core,
                        keep,
                        &policy,
                        options.mem_budget_mb,
                        store,
                        stage,
                    )?,
                    None => crate::reduce::reduce_graph_via_view_budget(
                        &core,
                        keep,
                        &policy,
                        options.mem_budget_mb,
                    )?,
                };
                let mem = flat.memory_estimate() + core.memory_estimate() + vr.overlay_bytes;
                graph = vr.graph;
                (mem, vr.stats)
            }
            ReduceEngine::InPlace => {
                let mem = flat.memory_estimate() + graph.memory_estimate();
                let reduce = reduce_graph(&mut graph, keep, &policy)?;
                (mem, reduce)
            }
        };
        if options.compress_luts {
            match lut_cache {
                Some(cache) => {
                    let before = cache.hits();
                    crate::lut_cache::compress_graph_luts_cached(
                        &mut graph,
                        options.lut_slew_points,
                        options.lut_load_points,
                        cache,
                    );
                    tmm_obs::counter_add(
                        "tmm_macro_lut_cache_hits_total",
                        &[],
                        cache.hits() - before,
                    );
                }
                None => {
                    compress_graph_luts(
                        &mut graph,
                        options.lut_slew_points,
                        options.lut_load_points,
                    );
                }
            }
            tmm_obs::counter_add("tmm_macro_lut_compressions_total", &[], 1);
        }
        graph.set_name(format!("{}_macro", flat.name()));
        let stats = GenStats {
            gen_time: start.elapsed(),
            kept_pins: graph.live_nodes(),
            flat_pins: flat.live_nodes(),
            reduce,
            gen_memory,
        };
        tmm_obs::counter_add("tmm_macro_pins_bypassed_total", &[], reduce.bypassed as u64);
        tmm_obs::counter_add("tmm_macro_merges_refused_total", &[], reduce.refused as u64);
        tmm_obs::counter_add(
            "tmm_macro_arcs_parallel_merged_total",
            &[],
            reduce.parallel_merged as u64,
        );
        span.arg_f64("kept_pins", stats.kept_pins as f64);
        span.arg_f64("flat_pins", stats.flat_pins as f64);
        Ok(MacroModel { name: graph.name().to_string(), graph, stats })
    }

    /// Model name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The reduced timing graph backing the model.
    #[must_use]
    pub fn graph(&self) -> &ArcGraph {
        &self.graph
    }

    /// Generation statistics.
    #[must_use]
    pub fn stats(&self) -> &GenStats {
        &self.stats
    }

    /// Times the model under a boundary context — model *usage* in the
    /// paper's terminology.
    ///
    /// # Errors
    ///
    /// Propagates analysis errors (infallible for generated models).
    pub fn analyze(&self, ctx: &Context, options: AnalysisOptions) -> Result<Analysis> {
        Analysis::run_with_options(&self.graph, ctx, options)
    }

    /// Estimated resident memory of using the model, in bytes.
    #[must_use]
    pub fn usage_memory(&self) -> usize {
        self.graph.memory_estimate()
    }

    /// Serialises the model into its text library format; the byte length
    /// of this string is the paper's "model file size" metric, and
    /// [`MacroModel::parse`] reconstructs an identical model from it
    /// (hierarchical flows hand exactly this file to the top-level timer).
    #[must_use]
    pub fn serialize(&self) -> String {
        let mut out = String::with_capacity(64 * 1024);
        let g = &self.graph;
        let _ = writeln!(out, "macro_model \"{}\" {{", self.name);
        for (i, node) in g.nodes().iter().enumerate() {
            if node.dead {
                continue;
            }
            let kind = match node.kind {
                NodeKind::PrimaryInput(p) => format!("pi {p}"),
                NodeKind::PrimaryOutput(p) => format!("po {p}"),
                NodeKind::ClockSource => "clock_source".to_string(),
                // FfData's check index is re-derived from check records.
                NodeKind::FfData(_) => "ff_d".to_string(),
                NodeKind::FfClock => "ff_ck".to_string(),
                NodeKind::FfOutput => "ff_q".to_string(),
                NodeKind::Internal => "internal".to_string(),
            };
            let _ = write!(
                out,
                "  pin {i} \"{}\" {kind} load {:e} clock {} po_loads [",
                node.name,
                node.base_load,
                u8::from(node.is_clock_network)
            );
            for p in &node.po_loads {
                let _ = write!(out, " {p}");
            }
            let _ = writeln!(out, " ];");
        }
        for check in g.checks() {
            if g.node(check.d).dead || g.node(check.ck).dead {
                continue;
            }
            // An input-interface flip-flop can lose its (unused) output pin
            // to ILM extraction while its capture check stays; `q none`
            // marks that case.
            let q = if g.node(check.q).dead {
                "none".to_string()
            } else {
                check.q.0.to_string()
            };
            let _ = writeln!(
                out,
                "  check \"{}\" d {} ck {} q {q} setup {:e} hold {:e};",
                check.name, check.d.0, check.ck.0, check.setup, check.hold
            );
        }
        for arc in g.arcs() {
            if arc.dead {
                continue;
            }
            let clock_flag = u8::from(arc.is_clock);
            match &arc.timing {
                ArcTiming::Wire { delay, degrade } => {
                    let _ = writeln!(
                        out,
                        "  wire {} -> {} delay {delay:e} degrade {degrade:e} clock {clock_flag};",
                        arc.from.0, arc.to.0
                    );
                }
                ArcTiming::Table(t) | ArcTiming::Composed(t) => {
                    let composed = matches!(arc.timing, ArcTiming::Composed(_));
                    let _ = writeln!(
                        out,
                        "  arc {} -> {} {} {} clock {clock_flag} {{",
                        arc.from.0,
                        arc.to.0,
                        io::sense_name(arc.sense),
                        if composed { "composed" } else { "table" },
                    );
                    for mode in Mode::ALL {
                        let _ = writeln!(out, "    corner {mode} {{");
                        io::write_lut(&mut out, "      ", "delay rise", &t[mode].delay.rise);
                        io::write_lut(&mut out, "      ", "delay fall", &t[mode].delay.fall);
                        io::write_lut(&mut out, "      ", "slew rise", &t[mode].slew.rise);
                        io::write_lut(&mut out, "      ", "slew fall", &t[mode].slew.fall);
                        let _ = writeln!(out, "    }}");
                    }
                    let _ = writeln!(out, "  }}");
                }
            }
        }
        let _ = writeln!(out, "}}");
        out
    }

    /// Reconstructs a model from [`MacroModel::serialize`] output. Node ids
    /// in the file are remapped to a compact graph; generation statistics
    /// are not stored in the file and come back as defaults.
    ///
    /// # Errors
    ///
    /// Returns [`tmm_sta::StaError::ParseFormat`] on malformed input.
    pub fn parse(src: &str) -> Result<MacroModel> {
        use std::collections::HashMap;
        use tmm_sta::graph::{ArcGraph, Check, NodeId};
        use tmm_sta::io::Lexer;
        use tmm_sta::liberty::ArcTables;
        use tmm_sta::split::Split;
        use tmm_sta::StaError;

        let mut lx = Lexer::new(src)?;
        lx.expect_ident("macro_model")?;
        let name = lx.string()?;
        lx.expect_punct('{')?;
        let mut graph = ArcGraph::empty(name.clone());
        let mut remap: HashMap<u64, NodeId> = HashMap::new();
        let resolve = |remap: &HashMap<u64, NodeId>, old: u64, lx: &Lexer| {
            remap
                .get(&old)
                .copied()
                .ok_or_else(|| lx.error(format!("unknown pin id {old}")))
        };
        while !lx.eat_punct('}') {
            match lx.ident()?.as_str() {
                "pin" => {
                    let old_id = lx.number()? as u64;
                    let pname = lx.string()?;
                    let kind = match lx.ident()?.as_str() {
                        "pi" => NodeKind::PrimaryInput(lx.number()? as u32),
                        "po" => NodeKind::PrimaryOutput(lx.number()? as u32),
                        "clock_source" => NodeKind::ClockSource,
                        "ff_d" => NodeKind::Internal, // patched by check records
                        "ff_ck" => NodeKind::FfClock,
                        "ff_q" => NodeKind::FfOutput,
                        "internal" => NodeKind::Internal,
                        other => return Err(lx.error(format!("unknown pin kind `{other}`"))),
                    };
                    lx.expect_ident("load")?;
                    let load = lx.number()?;
                    lx.expect_ident("clock")?;
                    let is_clock = lx.number()? != 0.0;
                    lx.expect_ident("po_loads")?;
                    let po_loads: Vec<u32> =
                        lx.number_list()?.into_iter().map(|v| v as u32).collect();
                    lx.expect_punct(';')?;
                    let id = graph.add_node(pname, kind);
                    let node = graph.node_mut(id);
                    node.base_load = load;
                    node.is_clock_network = is_clock;
                    node.po_loads = po_loads;
                    remap.insert(old_id, id);
                }
                "check" => {
                    let cname = lx.string()?;
                    lx.expect_ident("d")?;
                    let d = resolve(&remap, lx.number()? as u64, &lx)?;
                    lx.expect_ident("ck")?;
                    let ck = resolve(&remap, lx.number()? as u64, &lx)?;
                    lx.expect_ident("q")?;
                    // `q none` marks a launch pin dropped by ILM extraction;
                    // the data pin stands in (it is a terminal node, so it
                    // never anchors a launch tag).
                    let q = if lx.eat_ident("none") {
                        d
                    } else {
                        resolve(&remap, lx.number()? as u64, &lx)?
                    };
                    lx.expect_ident("setup")?;
                    let setup = lx.number()?;
                    lx.expect_ident("hold")?;
                    let hold = lx.number()?;
                    lx.expect_punct(';')?;
                    graph.add_check(Check { name: cname, d, ck, q, setup, hold });
                }
                "wire" => {
                    let from = resolve(&remap, lx.number()? as u64, &lx)?;
                    lx.expect_punct('-')?;
                    lx.expect_punct('>')?;
                    let to = resolve(&remap, lx.number()? as u64, &lx)?;
                    lx.expect_ident("delay")?;
                    let delay = lx.number()?;
                    lx.expect_ident("degrade")?;
                    let degrade = lx.number()?;
                    lx.expect_ident("clock")?;
                    let is_clock = lx.number()? != 0.0;
                    lx.expect_punct(';')?;
                    graph.add_arc(
                        from,
                        to,
                        tmm_sta::liberty::TimingSense::PositiveUnate,
                        ArcTiming::Wire { delay, degrade },
                        is_clock,
                    );
                }
                "arc" => {
                    let from = resolve(&remap, lx.number()? as u64, &lx)?;
                    lx.expect_punct('-')?;
                    lx.expect_punct('>')?;
                    let to = resolve(&remap, lx.number()? as u64, &lx)?;
                    let sense = io::parse_sense(&mut lx)?;
                    let composed = match lx.ident()?.as_str() {
                        "composed" => true,
                        "table" => false,
                        other => return Err(lx.error(format!("unknown arc kind `{other}`"))),
                    };
                    lx.expect_ident("clock")?;
                    let is_clock = lx.number()? != 0.0;
                    lx.expect_punct('{')?;
                    let mut early: Option<ArcTables> = None;
                    let mut late: Option<ArcTables> = None;
                    while !lx.eat_punct('}') {
                        lx.expect_ident("corner")?;
                        match lx.ident()?.as_str() {
                            "early" => early = Some(io::parse_corner(&mut lx)?),
                            "late" => late = Some(io::parse_corner(&mut lx)?),
                            other => return Err(lx.error(format!("unknown corner `{other}`"))),
                        }
                    }
                    let early = early.ok_or_else(|| lx.error("arc missing early corner"))?;
                    let late = late.ok_or_else(|| lx.error("arc missing late corner"))?;
                    let tables =
                        Split::new(std::sync::Arc::new(early), std::sync::Arc::new(late));
                    let timing = if composed {
                        ArcTiming::Composed(tables)
                    } else {
                        ArcTiming::Table(tables)
                    };
                    graph.add_arc(from, to, sense, timing, is_clock);
                }
                other => {
                    return Err(StaError::ParseFormat {
                        line: 0,
                        message: format!("unknown macro-model item `{other}`"),
                    })
                }
            }
        }
        if !lx.at_end() {
            return Err(lx.error("trailing content after macro model"));
        }
        graph.rebuild_topo()?;
        let stats = GenStats {
            kept_pins: graph.live_nodes(),
            flat_pins: graph.live_nodes(),
            ..Default::default()
        };
        Ok(MacroModel { name, graph, stats })
    }

    /// Byte length of the serialised model (the "model file size" column).
    #[must_use]
    pub fn file_size_bytes(&self) -> usize {
        self.serialize().len()
    }

    /// Validates the model: structural/semantic checks on its timing
    /// graph plus serialisation round-trip integrity. The serialised
    /// text must parse back and re-serialise to a fixed point (the
    /// first round may legitimately compact node ids, so the comparison
    /// is between the first and second reparse).
    #[must_use]
    pub fn validate(&self) -> ValidationReport {
        let mut report = ValidationReport::new("macro model");
        report.merge(validate_arc_graph(&self.graph));
        let text = self.serialize();
        match MacroModel::parse(&text) {
            Err(e) => {
                report.error("round-trip-parse", format!("serialised model failed to parse: {e}"));
            }
            Ok(first) => {
                let canonical = first.serialize();
                match MacroModel::parse(&canonical) {
                    Err(e) => report.error(
                        "round-trip-parse",
                        format!("re-serialised model failed to parse: {e}"),
                    ),
                    Ok(second) => {
                        if second.serialize() != canonical {
                            report.error(
                                "round-trip-mismatch",
                                "serialised model does not reach a round-trip fixed point",
                            );
                        }
                    }
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmm_circuits::CircuitSpec;
    use tmm_sta::liberty::Library;

    fn flat() -> ArcGraph {
        let lib = Library::synthetic(5);
        let n = CircuitSpec::new("m")
            .inputs(4)
            .outputs(4)
            .register_banks(2, 4)
            .cloud(3, 6)
            .seed(31)
            .generate(&lib)
            .unwrap();
        ArcGraph::from_netlist(&n, &lib).unwrap()
    }

    #[test]
    fn generate_keep_all_matches_flat_exactly() {
        let g = flat();
        let keep = vec![true; g.node_count()];
        let opts = MacroModelOptions { compress_luts: false, ..Default::default() };
        let model = MacroModel::generate(&g, &keep, &opts).unwrap();
        let ctx = Context::nominal(&g);
        let fa = Analysis::run(&g, &ctx).unwrap();
        let ma = model.analyze(&ctx, AnalysisOptions::default()).unwrap();
        let d = fa.boundary().diff(ma.boundary());
        assert!(d.max < 1e-9, "keep-all ILM model is exact, got {}", d.max);
    }

    #[test]
    fn smaller_keep_set_gives_smaller_file() {
        let g = flat();
        let all = MacroModel::generate(&g, &vec![true; g.node_count()], &MacroModelOptions::default())
            .unwrap();
        let none =
            MacroModel::generate(&g, &vec![false; g.node_count()], &MacroModelOptions::default())
                .unwrap();
        assert!(
            none.file_size_bytes() < all.file_size_bytes(),
            "{} vs {}",
            none.file_size_bytes(),
            all.file_size_bytes()
        );
        assert!(none.stats().kept_pins < all.stats().kept_pins);
    }

    #[test]
    fn lut_compression_shrinks_file() {
        let g = flat();
        let keep = vec![false; g.node_count()];
        let with = MacroModel::generate(
            &g,
            &keep,
            &MacroModelOptions { compress_luts: true, ..Default::default() },
        )
        .unwrap();
        let without = MacroModel::generate(
            &g,
            &keep,
            &MacroModelOptions { compress_luts: false, ..Default::default() },
        )
        .unwrap();
        assert!(with.file_size_bytes() < without.file_size_bytes());
    }

    #[test]
    fn validate_is_clean_for_generated_models() {
        let g = flat();
        for keep_all in [true, false] {
            let model = MacroModel::generate(
                &g,
                &vec![keep_all; g.node_count()],
                &MacroModelOptions::default(),
            )
            .unwrap();
            let report = model.validate();
            assert!(report.is_clean(), "keep_all={keep_all}: {report}");
        }
    }

    #[test]
    fn serialization_contains_ports_and_checks() {
        let g = flat();
        let model =
            MacroModel::generate(&g, &vec![true; g.node_count()], &MacroModelOptions::default())
                .unwrap();
        let text = model.serialize();
        assert!(text.contains("macro_model"));
        assert!(text.contains(" pi "));
        assert!(text.contains(" po "));
        assert!(text.contains("check "));
        assert!(text.contains("arc "));
        assert_eq!(text.len(), model.file_size_bytes());
    }

    #[test]
    fn serialize_parse_round_trip_is_timing_exact() {
        let g = flat();
        let keep = vec![false; g.node_count()];
        let model = MacroModel::generate(&g, &keep, &MacroModelOptions::default()).unwrap();
        let text = model.serialize();
        let back = MacroModel::parse(&text).unwrap();
        assert_eq!(back.name(), model.name());
        assert_eq!(back.graph().live_nodes(), model.graph().live_nodes());
        assert_eq!(back.graph().live_arcs(), model.graph().live_arcs());
        // The reloaded model must time identically under several contexts.
        use tmm_sta::constraints::ContextSampler;
        let mut sampler = ContextSampler::new(12);
        for ctx in sampler.sample_many(model.graph(), 3) {
            let a = model.analyze(&ctx, AnalysisOptions::default()).unwrap();
            let b = back.analyze(&ctx, AnalysisOptions::default()).unwrap();
            let d = a.boundary().diff(b.boundary());
            assert_eq!(d.max, 0.0, "reloaded model must match exactly");
            assert!(d.count > 0);
        }
    }

    #[test]
    fn parse_round_trip_preserves_checks_and_cppr() {
        let g = flat();
        let model = MacroModel::generate(
            &g,
            &vec![true; g.node_count()],
            &MacroModelOptions { compress_luts: false, ..Default::default() },
        )
        .unwrap();
        let back = MacroModel::parse(&model.serialize()).unwrap();
        let live_checks = |g: &ArcGraph| {
            g.checks()
                .iter()
                .filter(|c| !g.node(c.d).dead && !g.node(c.ck).dead)
                .count()
        };
        assert_eq!(live_checks(back.graph()), live_checks(model.graph()));
        let ctx = Context::nominal(model.graph());
        let a = model.analyze(&ctx, AnalysisOptions { cppr: true, ..Default::default() }).unwrap();
        let b = back.analyze(&ctx, AnalysisOptions { cppr: true, ..Default::default() }).unwrap();
        let d = a.boundary().diff(b.boundary());
        assert_eq!(d.max, 0.0, "CPPR credits must survive the round trip");
    }

    #[test]
    fn parse_rejects_malformed_models() {
        assert!(MacroModel::parse("not_a_model").is_err());
        assert!(MacroModel::parse("macro_model \"x\" { pin 0 \"a\" bogus 0; }").is_err());
        // dangling arc reference
        let src = "macro_model \"x\" { wire 0 -> 1 delay 1e0 degrade 1e0 clock 0; }";
        assert!(MacroModel::parse(src).is_err());
    }

    #[test]
    fn parse_never_panics_on_truncated_or_corrupt_input() {
        use tmm_faults::{corrupt_text, FaultOp};
        let g = flat();
        let model =
            MacroModel::generate(&g, &vec![false; g.node_count()], &MacroModelOptions::default())
                .unwrap();
        let text = model.serialize();
        let check = |hurt: String, what: String| {
            let outcome =
                std::panic::catch_unwind(move || MacroModel::parse(&hurt).map(|_| ()));
            let parsed = outcome.unwrap_or_else(|_| panic!("parse panicked on {what}"));
            // Either a classed parse error or a complete, reloadable model
            // (a cut in trailing whitespace is benign) — never partial
            // state: `parse` returns a value only after the whole body and
            // the re-toposort succeed.
            if let Err(e) = parsed {
                let msg = e.to_string();
                assert!(!msg.is_empty(), "{what}: error must carry a message");
            }
        };
        // The fault crate's truncation operator (seeded cut points) …
        for seed in 0..48u64 {
            check(
                corrupt_text(FaultOp::TruncateText, &text, seed),
                format!("truncate-text seed {seed}"),
            );
        }
        // … plus deterministic byte-boundary cuts across the whole file,
        // including cuts inside multi-byte tokens and mid-LUT.
        let step = text.len() / 97 + 1;
        for cut in (0..text.len()).step_by(step) {
            check(text[..cut].to_string(), format!("byte cut at {cut}"));
        }
        // Structured corruption: swapped punctuation and injected garbage.
        check(text.replace("->", "«"), "arrow replaced".to_string());
        check(text.replace('{', ";"), "braces replaced".to_string());
        check(format!("{text}\nwire 0 -> 99999 delay"), "dangling tail".to_string());
    }

    #[test]
    fn generate_ckpt_resume_yields_byte_identical_serialized_model() {
        use tmm_ckpt::{MemStore, StageStore};
        let g = flat();
        let keep = vec![false; g.node_count()];
        let opts = MacroModelOptions::default();
        let plain = MacroModel::generate(&g, &keep, &opts).unwrap();

        let mut full = MemStore::default();
        let ckpted = MacroModel::generate_ckpt(&g, &keep, &opts, &mut full, "merge").unwrap();
        assert_eq!(plain.serialize(), ckpted.serialize());
        assert!(full.is_done("merge"));

        for kept_saves in 0..=full.saves() {
            let mut store = full.truncated(kept_saves);
            let resumed =
                MacroModel::generate_ckpt(&g, &keep, &opts, &mut store, "merge").unwrap();
            assert_eq!(
                plain.serialize(),
                resumed.serialize(),
                "kept_saves={kept_saves}: resumed generation must serialize identically"
            );
            assert_eq!(plain.stats().reduce, resumed.stats().reduce);
        }
    }

    #[test]
    fn view_engine_serializes_byte_identically_to_in_place() {
        let g = flat();
        for keep_all in [true, false] {
            let keep = vec![keep_all; g.node_count()];
            for compress in [true, false] {
                let view_model = MacroModel::generate(
                    &g,
                    &keep,
                    &MacroModelOptions {
                        compress_luts: compress,
                        reduce_engine: ReduceEngine::View,
                        ..Default::default()
                    },
                )
                .unwrap();
                let in_place_model = MacroModel::generate(
                    &g,
                    &keep,
                    &MacroModelOptions {
                        compress_luts: compress,
                        reduce_engine: ReduceEngine::InPlace,
                        ..Default::default()
                    },
                )
                .unwrap();
                assert_eq!(view_model.stats().reduce, in_place_model.stats().reduce);
                assert_eq!(
                    view_model.serialize(),
                    in_place_model.serialize(),
                    "keep_all={keep_all} compress={compress}: engines must agree byte-for-byte"
                );
            }
        }
    }

    #[test]
    fn patched_generation_is_byte_identical_and_hits_cache_on_regen() {
        let g = flat();
        let keep = vec![false; g.node_count()];
        let opts = MacroModelOptions::default();
        let scratch = MacroModel::generate(&g, &keep, &opts).unwrap();
        let mut cache = crate::lut_cache::LutCache::new();
        let first = MacroModel::generate_patched(&g, &keep, &opts, &mut cache).unwrap();
        assert_eq!(first.serialize(), scratch.serialize(), "cold cache must not change bytes");
        assert!(cache.misses() > 0);
        let misses = cache.misses();
        let again = MacroModel::generate_patched(&g, &keep, &opts, &mut cache).unwrap();
        assert_eq!(again.serialize(), scratch.serialize(), "warm cache must not change bytes");
        assert_eq!(cache.misses(), misses, "unchanged design re-fits nothing");
        assert!(cache.hits() > 0);
    }

    #[test]
    fn stats_record_timing_and_sizes() {
        let g = flat();
        let model =
            MacroModel::generate(&g, &vec![false; g.node_count()], &MacroModelOptions::default())
                .unwrap();
        let s = model.stats();
        assert!(s.flat_pins > s.kept_pins);
        assert!(s.reduce.bypassed > 0);
        assert!(s.gen_memory > 0);
        assert!(model.usage_memory() > 0);
        assert!(model.usage_memory() < s.gen_memory);
    }
}
