//! Fingerprint-keyed memoisation of LUT index selection, the fitting
//! stage of incremental (ECO) macro regeneration.
//!
//! The per-arc index-selection DP ([`crate::lut_select::compress_tables`])
//! is a pure function of the uncompressed tables and the point budget.
//! After a small ECO edit, almost every merged arc of the regenerated
//! model carries tables byte-identical to the previous generation, so a
//! cache keyed on the *exact* table contents replays the previous result
//! instead of re-running the DP — and, because the key is the full bit
//! pattern (no lossy hashing), the patched model is byte-identical to a
//! from-scratch generation by construction. Only arcs whose merge cone
//! actually changed miss the cache and re-fit.

use crate::lut_select::compress_tables;
use std::collections::HashMap;
use std::sync::Arc;
use tmm_sta::graph::{ArcGraph, ArcId, ArcTiming};
use tmm_sta::liberty::ArcTables;
use tmm_sta::split::{Mode, Split};

/// Appends a length-prefixed exact-bit encoding of `vals` to `key`.
fn push_f64s(key: &mut Vec<u8>, vals: &[f64]) {
    key.extend_from_slice(&(vals.len() as u64).to_le_bytes());
    for v in vals {
        key.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

/// Exact fingerprint of one arc's uncompressed tables plus the point
/// budget: every axis and value of all eight LUTs, bit-for-bit. Two arcs
/// share a fingerprint iff the DP would produce identical output for
/// them.
fn fingerprint(tables: &Split<Arc<ArcTables>>, ks: usize, kl: usize) -> Vec<u8> {
    let mut key = Vec::with_capacity(512);
    key.extend_from_slice(&(ks as u64).to_le_bytes());
    key.extend_from_slice(&(kl as u64).to_le_bytes());
    for mode in Mode::ALL {
        let t = &tables[mode];
        for lut in [&t.delay.rise, &t.delay.fall, &t.slew.rise, &t.slew.fall] {
            push_f64s(&mut key, lut.slew_axis());
            push_f64s(&mut key, lut.load_axis());
            push_f64s(&mut key, lut.values());
        }
    }
    key
}

/// Memoises [`compress_tables`] across macro generations. Carry one cache
/// through a stream of ECO edits: each regeneration re-fits only the arcs
/// whose uncompressed tables actually changed and replays the rest.
#[derive(Debug, Default)]
pub struct LutCache {
    map: HashMap<Vec<u8>, Split<Arc<ArcTables>>>,
    hits: u64,
    misses: u64,
}

impl LutCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// [`compress_tables`], served from the cache when these exact tables
    /// (at this exact budget) were compressed before. The returned tables
    /// are bit-identical to a fresh DP run either way.
    pub fn compress(
        &mut self,
        tables: &Split<Arc<ArcTables>>,
        ks: usize,
        kl: usize,
    ) -> Split<Arc<ArcTables>> {
        let key = fingerprint(tables, ks, kl);
        if let Some(hit) = self.map.get(&key) {
            self.hits += 1;
            return hit.clone();
        }
        self.misses += 1;
        let out = compress_tables(tables, ks, kl);
        self.map.insert(key, out.clone());
        out
    }

    /// Cache hits since construction.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (fresh DP runs) since construction.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of distinct fingerprints held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// [`crate::lut_select::compress_graph_luts`] with every per-arc DP routed
/// through `cache` — identical skip rules, identical output, returns the
/// number of arcs rewritten.
pub fn compress_graph_luts_cached(
    graph: &mut ArcGraph,
    ks: usize,
    kl: usize,
    cache: &mut LutCache,
) -> usize {
    let mut rewritten = 0usize;
    let arc_count = graph.arcs().len();
    for idx in 0..arc_count {
        let id = ArcId(idx as u32);
        let arc = graph.arc(id);
        if arc.dead {
            continue;
        }
        let Some(tables) = arc.timing.tables() else { continue };
        let ref_lut = &tables.late.delay.rise;
        if ref_lut.slew_axis().len() <= ks && ref_lut.load_axis().len() <= kl {
            continue;
        }
        let compressed = cache.compress(tables, ks, kl);
        let was_composed = matches!(arc.timing, ArcTiming::Composed(_));
        graph.arc_mut(id).timing = if was_composed {
            ArcTiming::Composed(compressed)
        } else {
            ArcTiming::Table(compressed)
        };
        rewritten += 1;
    }
    rewritten
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lut_select::compress_graph_luts;
    use tmm_circuits::CircuitSpec;
    use tmm_sta::liberty::Library;

    fn cloudy_graph(seed: u64) -> ArcGraph {
        let lib = Library::synthetic(5);
        let n = CircuitSpec::new("lutcache")
            .inputs(3)
            .outputs(3)
            .register_banks(1, 3)
            .cloud(2, 6)
            .seed(seed)
            .generate(&lib)
            .unwrap();
        ArcGraph::from_netlist(&n, &lib).unwrap()
    }

    #[test]
    fn cached_compression_is_identical_and_replays_on_second_pass() {
        let base = cloudy_graph(21);
        let mut plain = base.clone();
        let n1 = compress_graph_luts(&mut plain, 4, 4);

        let mut cache = LutCache::new();
        let mut cached = base.clone();
        let n2 = compress_graph_luts_cached(&mut cached, 4, 4, &mut cache);
        assert_eq!(n1, n2);
        assert!(cache.misses() > 0);
        assert_eq!(cache.hits() + cache.misses(), n2 as u64);
        for (a, b) in plain.arcs().iter().zip(cached.arcs()) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "cached output must be identical");
        }

        // Second pass over the same (uncompressed) graph: everything hits.
        let misses_before = cache.misses();
        let mut again = base.clone();
        compress_graph_luts_cached(&mut again, 4, 4, &mut cache);
        assert_eq!(cache.misses(), misses_before, "no fresh DP runs on a replay");
        assert!(cache.hits() > 0);
    }

    #[test]
    fn budget_is_part_of_the_fingerprint() {
        let base = cloudy_graph(22);
        let mut cache = LutCache::new();
        let mut a = base.clone();
        compress_graph_luts_cached(&mut a, 4, 4, &mut cache);
        let misses_44 = cache.misses();
        let mut b = base.clone();
        compress_graph_luts_cached(&mut b, 3, 3, &mut cache);
        assert!(cache.misses() > misses_44, "a different budget must not hit");
        let mut plain = base.clone();
        compress_graph_luts(&mut plain, 3, 3);
        for (x, y) in plain.arcs().iter().zip(b.arcs()) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
    }
}
