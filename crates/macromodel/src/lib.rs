//! ILM-based timing macro model generation and the baselines the DAC 2022
//! paper compares against.
//!
//! - [`ilm`] — interface logic extraction (exact at the boundary).
//! - [`reduce`] — keep-set-driven serial/parallel merging (§5.2).
//! - [`lut_select`] — lookup-table index selection minimising interpolation
//!   error (from iTimerM, reused by the paper).
//! - [`model`] — the [`model::MacroModel`] container: generation pipeline,
//!   text serialisation (model file size), usage-as-a-timer.
//! - [`baselines`] — iTimerM \[5\], LibAbs/\[4\], and ATM \[6\] style generators.
//! - [`eval`] — the Fig. 2 accuracy/performance evaluation harness.
//!
//! # Example
//!
//! ```
//! use tmm_circuits::CircuitSpec;
//! use tmm_macromodel::eval::{evaluate, EvalOptions};
//! use tmm_macromodel::model::{MacroModel, MacroModelOptions};
//! use tmm_sta::graph::ArcGraph;
//! use tmm_sta::liberty::Library;
//!
//! # fn main() -> Result<(), tmm_sta::StaError> {
//! let lib = Library::synthetic(7);
//! let netlist = CircuitSpec::new("demo").register_banks(2, 4).seed(3).generate(&lib)?;
//! let flat = ArcGraph::from_netlist(&netlist, &lib)?;
//! // Keep every pin and skip LUT compression: the model is exact (and large).
//! let keep = vec![true; flat.node_count()];
//! let options = MacroModelOptions { compress_luts: false, ..Default::default() };
//! let model = MacroModel::generate(&flat, &keep, &options)?;
//! let result = evaluate(&flat, &model, &EvalOptions::default())?;
//! assert!(result.accuracy.max < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod eval;
pub mod ilm;
pub mod lut_cache;
pub mod lut_select;
pub mod model;
pub mod reduce;

pub use eval::{evaluate, EvalOptions, EvalResult};
pub use ilm::{extract_ilm, IlmMask, IlmRegion};
pub use lut_cache::{compress_graph_luts_cached, LutCache};
pub use model::{GenStats, MacroModel, MacroModelOptions};
pub use reduce::{
    reduce_graph, reduce_graph_via_view, reduce_graph_via_view_budget,
    reduce_graph_via_view_budget_ckpt, reduce_graph_via_view_ckpt, ReduceEngine, ReducePolicy,
    ReduceStats, ViewReduction,
};
