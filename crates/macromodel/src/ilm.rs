//! Interface logic model (ILM) extraction.
//!
//! The ILM keeps exactly the logic visible from the block boundary: the
//! combinational cones from primary inputs to the first register stage, from
//! the last register stage to primary outputs, the interface registers
//! themselves, and the clock network driving them. Register-to-register
//! internals are dropped wholesale. Every approach compared in the paper
//! except ATM starts from this netlist (§5.2, Fig. 9 step 1).

use tmm_sta::graph::{ArcGraph, NodeId, NodeKind};
use tmm_sta::Result;

/// Classification of why a node is kept in the interface logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IlmRegion {
    /// Not part of the interface logic (removed).
    Dropped,
    /// On a combinational path from a primary input.
    InputCone,
    /// On a combinational path to a primary output.
    OutputCone,
    /// Pin of an interface register.
    InterfaceRegister,
    /// Clock-network pin driving an interface register.
    ClockNetwork,
    /// Boundary port.
    Port,
}

/// Per-node ILM classification for a graph.
#[derive(Debug, Clone)]
pub struct IlmMask {
    regions: Vec<IlmRegion>,
}

impl IlmMask {
    /// Computes the interface-logic classification of every node.
    #[must_use]
    pub fn compute(graph: &ArcGraph) -> Self {
        let n = graph.node_count();
        let mut regions = vec![IlmRegion::Dropped; n];

        // Forward cone from primary inputs (combinational only: traversal
        // never passes a flip-flop because FfData has no outgoing arcs and
        // FfOutput is only entered through its clock arc).
        let mut stack: Vec<NodeId> = graph.primary_inputs().to_vec();
        let mut in_cone = vec![false; n];
        while let Some(u) = stack.pop() {
            if in_cone[u.index()] || graph.node(u).dead {
                continue;
            }
            in_cone[u.index()] = true;
            if !matches!(graph.node(u).kind, NodeKind::FfData(_)) {
                for a in graph.fanout(u) {
                    stack.push(graph.arc(a).to);
                }
            }
        }

        // Backward cone from primary outputs, stopping at FF outputs.
        let mut out_cone = vec![false; n];
        let mut stack: Vec<NodeId> = graph.primary_outputs().to_vec();
        while let Some(u) = stack.pop() {
            if out_cone[u.index()] || graph.node(u).dead {
                continue;
            }
            out_cone[u.index()] = true;
            if !matches!(graph.node(u).kind, NodeKind::FfOutput) {
                for a in graph.fanin(u) {
                    stack.push(graph.arc(a).from);
                }
            }
        }

        for i in 0..n {
            if graph.node(NodeId(i as u32)).dead {
                continue;
            }
            if in_cone[i] {
                regions[i] = IlmRegion::InputCone;
            }
            if out_cone[i] {
                regions[i] = IlmRegion::OutputCone;
            }
        }

        // Interface registers: capture FFs whose D lies in the input cone,
        // launch FFs whose Q lies in the output cone.
        let mut kept_cks: Vec<NodeId> = Vec::new();
        for check in graph.checks() {
            let capture = in_cone[check.d.index()];
            let launch = out_cone[check.q.index()];
            if capture {
                regions[check.d.index()] = IlmRegion::InterfaceRegister;
            }
            if launch {
                regions[check.q.index()] = IlmRegion::InterfaceRegister;
            }
            if capture || launch {
                regions[check.ck.index()] = IlmRegion::InterfaceRegister;
                kept_cks.push(check.ck);
            }
        }

        // Clock network backward from kept clock pins to the source.
        let mut stack = kept_cks;
        while let Some(u) = stack.pop() {
            for a in graph.fanin(u) {
                let f = graph.arc(a).from;
                let node = graph.node(f);
                if node.dead || !node.is_clock_network {
                    continue;
                }
                if regions[f.index()] != IlmRegion::ClockNetwork
                    && regions[f.index()] != IlmRegion::InterfaceRegister
                {
                    regions[f.index()] = IlmRegion::ClockNetwork;
                    stack.push(f);
                }
            }
        }

        // Ports always survive (their region overrides cones for clarity).
        for &p in graph.primary_inputs().iter().chain(graph.primary_outputs()) {
            regions[p.index()] = IlmRegion::Port;
        }
        if let Some(c) = graph.clock_source() {
            regions[c.index()] = IlmRegion::Port;
        }

        IlmMask { regions }
    }

    /// Region of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn region(&self, i: NodeId) -> IlmRegion {
        self.regions[i.index()]
    }

    /// `true` when the node survives ILM extraction.
    #[must_use]
    pub fn keeps(&self, i: NodeId) -> bool {
        self.regions[i.index()] != IlmRegion::Dropped
    }

    /// Boolean keep mask indexed by node.
    #[must_use]
    pub fn as_keep_mask(&self) -> Vec<bool> {
        self.regions.iter().map(|&r| r != IlmRegion::Dropped).collect()
    }

    /// Number of kept nodes.
    #[must_use]
    pub fn kept_count(&self) -> usize {
        self.regions.iter().filter(|&&r| r != IlmRegion::Dropped).count()
    }
}

/// Extracts the interface logic netlist: clones `graph` and removes every
/// node outside the ILM regions.
///
/// # Errors
///
/// Propagates graph-edit errors (the mask is always well-formed, so this is
/// effectively infallible for valid graphs).
pub fn extract_ilm(graph: &ArcGraph) -> Result<(ArcGraph, IlmMask)> {
    let mask = IlmMask::compute(graph);
    let mut ilm = graph.clone();
    ilm.retain_nodes(&mask.as_keep_mask())?;
    ilm.set_name(format!("{}_ilm", graph.name()));
    Ok((ilm, mask))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmm_circuits::CircuitSpec;
    use tmm_sta::constraints::Context;
    use tmm_sta::liberty::Library;
    use tmm_sta::propagate::Analysis;

    fn pipeline_graph(banks: usize) -> (ArcGraph, Library) {
        let lib = Library::synthetic(4);
        let n = CircuitSpec::new("p")
            .inputs(5)
            .outputs(5)
            .register_banks(banks, 5)
            .cloud(3, 7)
            .seed(17)
            .generate(&lib)
            .unwrap();
        (ArcGraph::from_netlist(&n, &lib).unwrap(), lib)
    }

    #[test]
    fn ilm_drops_internal_registers_with_three_banks() {
        let (g, _) = pipeline_graph(3);
        let (ilm, mask) = extract_ilm(&g).unwrap();
        assert!(ilm.live_nodes() < g.live_nodes(), "something must be dropped");
        // Middle-bank FFs are neither capture-from-PI nor launch-to-PO.
        let dropped_ffs = g
            .checks()
            .iter()
            .filter(|c| !mask.keeps(c.d) && !mask.keeps(c.q))
            .count();
        assert!(dropped_ffs > 0, "middle bank registers should be dropped");
        ilm.validate().unwrap();
    }

    #[test]
    fn ilm_preserves_boundary_timing_exactly() {
        // ILM removes only logic invisible from the boundary, so boundary
        // timing must match the flat design bit-for-bit.
        let (g, _) = pipeline_graph(3);
        let (ilm, _) = extract_ilm(&g).unwrap();
        let ctx = Context::nominal(&g);
        let flat = Analysis::run(&g, &ctx).unwrap();
        let reduced = Analysis::run(&ilm, &ctx).unwrap();
        let d = flat.boundary().diff(reduced.boundary());
        assert!(d.count > 0);
        assert!(d.max < 1e-9, "ILM must be exact, got max err {}", d.max);
    }

    #[test]
    fn ports_and_clock_source_always_kept() {
        let (g, _) = pipeline_graph(2);
        let (_, mask) = extract_ilm(&g).unwrap();
        for &p in g.primary_inputs().iter().chain(g.primary_outputs()) {
            assert_eq!(mask.region(p), IlmRegion::Port);
        }
        let c = g.clock_source().unwrap();
        assert_eq!(mask.region(c), IlmRegion::Port);
    }

    #[test]
    fn clock_network_to_interface_ffs_survives() {
        let (g, _) = pipeline_graph(2);
        let (ilm, mask) = extract_ilm(&g).unwrap();
        // every kept check still has a live clock path
        let ctx = Context::nominal(&ilm);
        let an = Analysis::run(&ilm, &ctx).unwrap();
        for check in ilm.checks() {
            if ilm.node(check.d).dead || ilm.node(check.ck).dead {
                continue;
            }
            assert!(
                an.at(check.ck)[tmm_sta::Mode::Late][tmm_sta::Edge::Rise].is_finite(),
                "clock must reach kept register {}",
                check.name
            );
            assert!(mask.keeps(check.ck));
        }
    }

    #[test]
    fn single_bank_design_keeps_everything_reachable() {
        // With one bank, every register is interface (capture from PI and
        // launch to PO), so almost nothing is dropped.
        let (g, _) = pipeline_graph(1);
        let (_, mask) = extract_ilm(&g).unwrap();
        let dropped = (0..g.node_count())
            .filter(|&i| !g.node(NodeId(i as u32)).dead && !mask.keeps(NodeId(i as u32)))
            .count();
        // Dangling cells can still be dropped, but registers cannot.
        for c in g.checks() {
            assert!(mask.keeps(c.ck), "bank-1 register {} must stay", c.name);
        }
        let total = g.live_nodes();
        assert!(dropped < total / 4, "dropped {dropped} of {total}");
    }
}
