//! Baseline macro-modeling approaches the paper compares against.
//!
//! - [`itimerm_keep_mask`] — iTimerM \[5\]: propagate extreme boundary slews
//!   and keep pins whose slew *range* exceeds a user tolerance (the
//!   threshold-tuning burden the paper criticises in §1).
//! - [`libabs_keep_mask`] — LibAbs/\[4\]-style structural tree reduction:
//!   keep tree roots/leaves (multi-fan-in or multi-fan-out pins) regardless
//!   of their timing behaviour.
//! - [`generate_atm`] — ATM \[6\]-style ETM: collapse *every* internal pin
//!   under a huge merge budget, producing tiny context-baked port-to-port
//!   models with higher error and slow generation.

use crate::model::{MacroModel, MacroModelOptions};
use tmm_sta::constraints::Context;
use tmm_sta::graph::{ArcGraph, NodeId, NodeKind};
use tmm_sta::propagate::Analysis;
use tmm_sta::split::{mode_edge_iter, Split};
use tmm_sta::view::TimingGraph;
use tmm_sta::Result;

/// Pins that every ILM-based method must keep regardless of sensitivity:
/// pins driving a net connected to a primary output (their delay depends on
/// the context output load) and pins directly feeding a primary output.
#[must_use]
pub fn output_variant_pins<G: TimingGraph>(graph: &G) -> Vec<bool> {
    let mut keep = vec![false; graph.node_count()];
    for (i, k) in keep.iter_mut().enumerate() {
        let n = NodeId(i as u32);
        if !graph.node_dead(n) && !graph.node_po_loads(n).is_empty() {
            *k = true;
        }
    }
    for &po in graph.primary_outputs() {
        for a in graph.fanin(po) {
            keep[graph.arc(a).from.index()] = true;
        }
    }
    keep
}

/// Per-pin slew range under extreme boundary contexts: the iTimerM variant
/// metric. Returns the max over modes/edges of `|slew_hi − slew_lo|` in ps.
///
/// # Errors
///
/// Propagates analysis errors (infallible for valid graphs).
pub fn slew_range<G: TimingGraph>(graph: &G) -> Result<Vec<f64>> {
    let mut lo = Context::nominal(graph);
    for pi in &mut lo.pi {
        pi.slew = 5.0;
    }
    for po in &mut lo.po {
        po.load = 1.0;
    }
    let mut hi = Context::nominal(graph);
    for pi in &mut hi.pi {
        pi.slew = 150.0;
    }
    for po in &mut hi.po {
        po.load = 48.0;
    }
    let a_lo = Analysis::run(graph, &lo)?;
    let a_hi = Analysis::run(graph, &hi)?;
    let mut range = vec![0.0f64; graph.node_count()];
    for i in 0..graph.node_count() {
        let n = NodeId(i as u32);
        if graph.node_dead(n) {
            continue;
        }
        let (sl, sh) = (a_lo.slew(n), a_hi.slew(n));
        let mut r: f64 = 0.0;
        for (m, e) in mode_edge_iter() {
            let (a, b) = (sl[m][e], sh[m][e]);
            if a.is_finite() && b.is_finite() {
                r = r.max((b - a).abs());
            }
        }
        range[i] = r;
    }
    Ok(range)
}

/// iTimerM-style keep mask: slew range above `tolerance_ps`, plus the
/// output-variant pins.
///
/// # Errors
///
/// Propagates analysis errors from the range propagation.
pub fn itimerm_keep_mask(graph: &ArcGraph, tolerance_ps: f64) -> Result<Vec<bool>> {
    let range = slew_range(graph)?;
    let mut keep = output_variant_pins(graph);
    for (i, &r) in range.iter().enumerate() {
        if r > tolerance_ps {
            keep[i] = true;
        }
    }
    Ok(keep)
}

/// Default iTimerM tolerance used by the experiment tables (ps).
pub const ITIMERM_DEFAULT_TOLERANCE: f64 = 2.0;

/// Generates an iTimerM-style macro model.
///
/// # Errors
///
/// Propagates analysis and generation errors.
pub fn generate_itimerm(
    flat: &ArcGraph,
    tolerance_ps: f64,
    options: &MacroModelOptions,
) -> Result<MacroModel> {
    let keep = itimerm_keep_mask(flat, tolerance_ps)?;
    MacroModel::generate(flat, &keep, options)
}

/// LibAbs/\[4\]-style structural keep mask: pins that are roots or leaves of
/// maximal trees (fan-in > 1 or fan-out > 1) are kept; pure chain pins are
/// merged regardless of how timing-variant they are.
#[must_use]
pub fn libabs_keep_mask(graph: &ArcGraph) -> Vec<bool> {
    let mut keep = output_variant_pins(graph);
    for i in 0..graph.node_count() {
        let n = NodeId(i as u32);
        let node = graph.node(n);
        if node.dead || node.kind != NodeKind::Internal {
            continue;
        }
        if graph.in_degree(n) > 1 || graph.out_degree(n) > 1 {
            keep[i] = true;
        }
    }
    keep
}

/// Generates a LibAbs-style macro model.
///
/// # Errors
///
/// Propagates generation errors.
pub fn generate_libabs(flat: &ArcGraph, options: &MacroModelOptions) -> Result<MacroModel> {
    let keep = libabs_keep_mask(flat);
    MacroModel::generate(flat, &keep, options)
}

/// Generates an ATM-style extracted timing model: every internal pin is
/// merged away under a large budget, leaving near-port-to-port arcs with
/// context-baked internals. Mirrors the paper's observed trade-off: tiny
/// models, faster usage, markedly worse accuracy, much slower generation.
///
/// # Errors
///
/// Propagates generation errors.
pub fn generate_atm(flat: &ArcGraph, options: &MacroModelOptions) -> Result<MacroModel> {
    let keep = vec![false; flat.node_count()];
    let opts = MacroModelOptions {
        max_bypass: options.max_bypass.max(4096),
        allow_growth: true,
        lut_slew_points: options.lut_slew_points.min(2),
        lut_load_points: options.lut_load_points.min(2),
        compress_luts: true,
        reduce_engine: options.reduce_engine,
        mem_budget_mb: options.mem_budget_mb,
    };
    MacroModel::generate(flat, &keep, &opts)
}

/// Per-pin split of the slew ranges for early/late (used by the sensitivity
/// filter's standardisation tests and diagnostics).
///
/// # Errors
///
/// Propagates analysis errors.
pub fn slew_range_split<G: TimingGraph>(graph: &G) -> Result<Vec<Split<f64>>> {
    let range = slew_range(graph)?;
    Ok(range.into_iter().map(Split::uniform).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmm_circuits::CircuitSpec;
    use tmm_sta::constraints::ContextSampler;
    use tmm_sta::liberty::Library;
    use tmm_sta::propagate::AnalysisOptions;

    fn flat() -> ArcGraph {
        let lib = Library::synthetic(6);
        let n = CircuitSpec::new("b")
            .inputs(5)
            .outputs(5)
            .register_banks(2, 5)
            .cloud(3, 7)
            .seed(77)
            .generate(&lib)
            .unwrap();
        ArcGraph::from_netlist(&n, &lib).unwrap()
    }

    #[test]
    fn slew_range_decays_with_depth() {
        // Shielding (paper Fig. 7): pins near the PIs see a larger slew
        // range than pins deep in the logic.
        let g = flat();
        let range = slew_range(&g).unwrap();
        let levels = g.levels_from_inputs();
        let mut shallow = Vec::new();
        let mut deep = Vec::new();
        for i in 0..g.node_count() {
            if g.node(NodeId(i as u32)).dead {
                continue;
            }
            if levels[i] != u32::MAX && levels[i] <= 2 {
                shallow.push(range[i]);
            } else if levels[i] != u32::MAX && levels[i] >= 6 {
                deep.push(range[i]);
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(!shallow.is_empty() && !deep.is_empty());
        assert!(
            avg(&shallow) > avg(&deep),
            "shielding: shallow {} vs deep {}",
            avg(&shallow),
            avg(&deep)
        );
    }

    #[test]
    fn itimerm_tolerance_controls_model_size() {
        let g = flat();
        let tight = itimerm_keep_mask(&g, 0.5).unwrap();
        let loose = itimerm_keep_mask(&g, 20.0).unwrap();
        let count = |m: &[bool]| m.iter().filter(|&&b| b).count();
        assert!(count(&tight) > count(&loose), "{} vs {}", count(&tight), count(&loose));
    }

    #[test]
    fn atm_model_is_much_smaller_but_less_accurate() {
        let g = flat();
        let itm =
            generate_itimerm(&g, ITIMERM_DEFAULT_TOLERANCE, &MacroModelOptions::default()).unwrap();
        let atm = generate_atm(&g, &MacroModelOptions::default()).unwrap();
        assert!(
            atm.file_size_bytes() < itm.file_size_bytes(),
            "ATM {} vs iTimerM {}",
            atm.file_size_bytes(),
            itm.file_size_bytes()
        );
        // accuracy comparison over fresh contexts
        let mut sampler = ContextSampler::new(5);
        let mut err_itm: f64 = 0.0;
        let mut err_atm: f64 = 0.0;
        for ctx in sampler.sample_many(&g, 4) {
            let fa = Analysis::run(&g, &ctx).unwrap();
            let mi = itm.analyze(&ctx, AnalysisOptions::default()).unwrap();
            let ma = atm.analyze(&ctx, AnalysisOptions::default()).unwrap();
            err_itm = err_itm.max(fa.boundary().diff(mi.boundary()).max);
            err_atm = err_atm.max(fa.boundary().diff(ma.boundary()).max);
        }
        assert!(
            err_atm > err_itm,
            "ATM should be less accurate: {err_atm} vs {err_itm}"
        );
    }

    #[test]
    fn libabs_keeps_structural_pins() {
        let g = flat();
        let mask = libabs_keep_mask(&g);
        for i in 0..g.node_count() {
            let n = NodeId(i as u32);
            let node = g.node(n);
            if node.dead || node.kind != NodeKind::Internal {
                continue;
            }
            if g.out_degree(n) > 1 {
                assert!(mask[i], "multi-fanout pin {} must be kept", node.name);
            }
        }
    }

    #[test]
    fn output_variant_pins_cover_po_drivers() {
        let g = flat();
        let keep = output_variant_pins(&g);
        for &po in g.primary_outputs() {
            for a in g.fanin(po) {
                assert!(keep[g.arc(a).from.index()]);
            }
        }
    }
}
