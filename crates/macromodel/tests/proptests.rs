//! Property-based tests of macro-model generation invariants.

// Integration-test harness code: the clippy.toml test exemptions do not
// reach helper fns outside #[test], so state the exemption explicitly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use tmm_circuits::CircuitSpec;
use tmm_macromodel::eval::{evaluate, EvalOptions};
use tmm_macromodel::{extract_ilm, MacroModel, MacroModelOptions};
use tmm_sta::graph::{ArcGraph, NodeKind};
use tmm_sta::liberty::Library;
use tmm_sta::propagate::AnalysisOptions;

fn design(seed: u64) -> (ArcGraph, Library) {
    let lib = Library::synthetic(5);
    let n = CircuitSpec::new("pm")
        .inputs(4)
        .outputs(4)
        .register_banks(1, 3)
        .cloud(2, 5)
        .seed(seed)
        .generate(&lib)
        .unwrap();
    (ArcGraph::from_netlist(&n, &lib).unwrap(), lib)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Any keep mask produces a structurally valid, analyzable model whose
    /// boundary stays comparable to the flat design, with ports and clock
    /// always preserved.
    #[test]
    fn any_keep_mask_yields_valid_model(seed in 0u64..100, bias in 0.0f64..1.0) {
        use rand::{Rng, SeedableRng};
        let (flat, _) = design(seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xabcd);
        let keep: Vec<bool> = (0..flat.node_count()).map(|_| rng.gen_bool(bias)).collect();
        let model = MacroModel::generate(&flat, &keep, &MacroModelOptions::default()).unwrap();
        model.graph().validate().unwrap();
        prop_assert_eq!(model.graph().primary_inputs().len(), flat.primary_inputs().len());
        prop_assert_eq!(model.graph().primary_outputs().len(), flat.primary_outputs().len());
        prop_assert_eq!(model.graph().clock_source().is_some(), flat.clock_source().is_some());
        let r = evaluate(&flat, &model, &EvalOptions { contexts: 2, ..Default::default() }).unwrap();
        prop_assert!(r.accuracy.count > 0, "boundary must remain comparable");
        prop_assert!(r.accuracy.max.is_finite());
    }

    /// ILM extraction is always boundary-exact, regardless of design seed.
    #[test]
    fn ilm_is_always_exact(seed in 0u64..100) {
        let (flat, _) = design(seed);
        let (ilm, mask) = extract_ilm(&flat).unwrap();
        prop_assert!(mask.kept_count() <= flat.live_nodes());
        let ctx = tmm_sta::constraints::Context::nominal(&flat);
        let a = tmm_sta::propagate::Analysis::run(&flat, &ctx).unwrap();
        let b = tmm_sta::propagate::Analysis::run(&ilm, &ctx).unwrap();
        prop_assert!(a.boundary().diff(b.boundary()).max < 1e-9);
    }

    /// Serialize → parse round trips are timing-exact for any keep mask.
    #[test]
    fn serialization_round_trip(seed in 0u64..50, bias in 0.0f64..1.0) {
        use rand::{Rng, SeedableRng};
        let (flat, _) = design(seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let keep: Vec<bool> = (0..flat.node_count()).map(|_| rng.gen_bool(bias)).collect();
        let model = MacroModel::generate(&flat, &keep, &MacroModelOptions::default()).unwrap();
        let back = MacroModel::parse(&model.serialize()).unwrap();
        let ctx = tmm_sta::constraints::Context::nominal(model.graph());
        let a = model.analyze(&ctx, AnalysisOptions::default()).unwrap();
        let b = back.analyze(&ctx, AnalysisOptions::default()).unwrap();
        prop_assert_eq!(a.boundary().diff(b.boundary()).max, 0.0);
    }

    /// Flip-flop pins and boundary ports never appear as merged-away nodes.
    #[test]
    fn protected_pins_survive_generation(seed in 0u64..100) {
        let (flat, _) = design(seed);
        let keep = vec![false; flat.node_count()];
        let model = MacroModel::generate(&flat, &keep, &MacroModelOptions::default()).unwrap();
        // every live FF check in the ILM region keeps its d and ck pins
        for check in model.graph().checks() {
            if !model.graph().node(check.d).dead {
                prop_assert!(matches!(
                    model.graph().node(check.d).kind,
                    NodeKind::FfData(_)
                ));
                prop_assert!(!model.graph().node(check.ck).dead);
            }
        }
    }
}
