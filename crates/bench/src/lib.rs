//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the paper's evaluation section (see `DESIGN.md` for the
//! experiment index).
//!
//! Each binary (`table2` … `table6`, `fig6`, `fig7`, `fig10`) trains the
//! framework on the small training suite, applies it and the baselines to
//! the scaled TAU-style evaluation suite, and prints rows shaped like the
//! paper's tables. Absolute numbers differ from the paper (different
//! substrate, 1/500-scale designs) but the comparative shape — who wins,
//! by roughly what factor — is the reproduction target.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchdiff;

use std::time::Duration;
use tmm_circuits::designs::{suite_library, training_suite, SuiteEntry};
use tmm_core::{Framework, FrameworkConfig};
use tmm_macromodel::baselines::{
    generate_atm, generate_itimerm, generate_libabs, ITIMERM_DEFAULT_TOLERANCE,
};
use tmm_macromodel::eval::{evaluate, EvalOptions, EvalResult};
use tmm_macromodel::{MacroModel, MacroModelOptions};
use tmm_sta::graph::ArcGraph;
use tmm_sta::liberty::Library;
use tmm_sta::Result;

/// One row of a results table: one method on one design.
#[derive(Debug, Clone)]
pub struct MethodRow {
    /// Design name.
    pub design: String,
    /// Method name (`Ours`, `iTimerM`, `LibAbs`, `ATM`).
    pub method: String,
    /// Average boundary error in ps.
    pub avg_err_ps: f64,
    /// Maximum boundary error in ps.
    pub max_err_ps: f64,
    /// Model file size in KiB.
    pub file_kib: f64,
    /// Model generation wall-clock seconds.
    pub gen_time_s: f64,
    /// Estimated generation memory in MiB.
    pub gen_mem_mib: f64,
    /// Model usage wall-clock seconds (all evaluation contexts).
    pub usage_time_s: f64,
    /// Estimated usage memory in MiB.
    pub usage_mem_mib: f64,
    /// Pins kept in the model.
    pub kept_pins: usize,
}

impl MethodRow {
    /// Builds a row from an evaluation result.
    #[must_use]
    pub fn from_eval(design: &str, method: &str, r: &EvalResult) -> Self {
        MethodRow {
            design: design.to_string(),
            method: method.to_string(),
            avg_err_ps: r.accuracy.avg,
            max_err_ps: r.accuracy.max,
            file_kib: r.model_bytes as f64 / 1024.0,
            gen_time_s: as_secs(r.gen_time),
            gen_mem_mib: r.gen_memory as f64 / (1024.0 * 1024.0),
            usage_time_s: as_secs(r.usage_time),
            usage_mem_mib: r.usage_memory as f64 / (1024.0 * 1024.0),
            kept_pins: r.kept_pins,
        }
    }
}

fn as_secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// Ratio summary of a comparison method against `ours` (the paper's
/// "Ratio = compared / ours" convention; errors use differences).
#[derive(Debug, Clone, Copy, Default)]
pub struct RatioSummary {
    /// `other.avg_err − ours.avg_err` in ps.
    pub avg_err_diff: f64,
    /// `other.max_err − ours.max_err` in ps.
    pub max_err_diff: f64,
    /// File-size ratio.
    pub file_ratio: f64,
    /// Generation-time ratio.
    pub gen_time_ratio: f64,
    /// Generation-memory ratio.
    pub gen_mem_ratio: f64,
    /// Usage-time ratio.
    pub usage_time_ratio: f64,
    /// Usage-memory ratio.
    pub usage_mem_ratio: f64,
}

/// Averages `other / ours` ratios over paired rows (matched by position).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn ratio_summary(ours: &[MethodRow], other: &[MethodRow]) -> RatioSummary {
    assert_eq!(ours.len(), other.len(), "row sets must pair up");
    let n = ours.len().max(1) as f64;
    let mut s = RatioSummary::default();
    let guard = |x: f64| if x.abs() < 1e-12 { 1e-12 } else { x };
    for (a, b) in ours.iter().zip(other) {
        s.avg_err_diff += (b.avg_err_ps - a.avg_err_ps) / n;
        s.max_err_diff += (b.max_err_ps - a.max_err_ps) / n;
        s.file_ratio += b.file_kib / guard(a.file_kib) / n;
        s.gen_time_ratio += b.gen_time_s / guard(a.gen_time_s) / n;
        s.gen_mem_ratio += b.gen_mem_mib / guard(a.gen_mem_mib) / n;
        s.usage_time_ratio += b.usage_time_s / guard(a.usage_time_s) / n;
        s.usage_mem_ratio += b.usage_mem_mib / guard(a.usage_mem_mib) / n;
    }
    s
}

/// Prints the standard table header used by every results binary.
pub fn print_header(title: &str) {
    println!("{title}");
    println!(
        "{:<26} {:<8} {:>10} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "Design",
        "Method",
        "AvgErr ps",
        "MaxErr ps",
        "File KiB",
        "Gen s",
        "Gen MiB",
        "Use s",
        "Use MiB",
        "Pins"
    );
    println!("{}", "-".repeat(116));
}

/// Prints one row.
pub fn print_row(r: &MethodRow) {
    println!(
        "{:<26} {:<8} {:>10.4} {:>10.3} {:>10.1} {:>9.3} {:>9.2} {:>9.4} {:>9.2} {:>7}",
        r.design,
        r.method,
        r.avg_err_ps,
        r.max_err_ps,
        r.file_kib,
        r.gen_time_s,
        r.gen_mem_mib,
        r.usage_time_s,
        r.usage_mem_mib,
        r.kept_pins
    );
}

/// Prints a ratio summary line.
pub fn print_ratio(label: &str, s: &RatioSummary) {
    println!(
        "{label}: dAvgErr {:+.4} ps, dMaxErr {:+.3} ps, file x{:.3}, gen x{:.3}, genMem x{:.3}, use x{:.3}, useMem x{:.3}",
        s.avg_err_diff,
        s.max_err_diff,
        s.file_ratio,
        s.gen_time_ratio,
        s.gen_mem_ratio,
        s.usage_time_ratio,
        s.usage_mem_ratio
    );
}

/// Trains the framework on the standard training suite.
///
/// # Errors
///
/// Propagates training errors.
pub fn train_standard(mut config: FrameworkConfig, library: &Library) -> Result<Framework> {
    // TS evaluation parallelises perfectly and stays bit-deterministic.
    config.ts.threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let suite = training_suite(library)?;
    let designs: Vec<(String, tmm_sta::netlist::Netlist)> =
        suite.into_iter().map(|e| (e.name, e.netlist)).collect();
    let mut fw = Framework::new(config);
    let summary = fw.train(&designs, library)?;
    tmm_obs::info(
        &[
            ("stage", "training"),
            ("data_s", &format!("{:.1}", summary.data_time.as_secs_f64())),
            ("gnn_s", &format!("{:.1}", summary.train_time.as_secs_f64())),
            ("loss", &format!("{:.4}", summary.final_loss)),
            ("recall", &format!("{:.3}", summary.train_metrics.recall())),
            ("precision", &format!("{:.3}", summary.train_metrics.precision())),
        ],
        "training complete",
    );
    Ok(fw)
}

/// Evaluates the trained framework on one design.
///
/// # Errors
///
/// Propagates analysis errors.
pub fn eval_ours(
    fw: &Framework,
    entry: &SuiteEntry,
    library: &Library,
    opts: &EvalOptions,
) -> Result<MethodRow> {
    let flat = ArcGraph::from_netlist(&entry.netlist, library)?;
    let outcome = fw.generate_macro(&flat)?;
    let r = evaluate(&flat, &outcome.model, opts)?;
    Ok(MethodRow::from_eval(&entry.name, "Ours", &r))
}

/// Evaluates the iTimerM baseline on one design.
///
/// # Errors
///
/// Propagates analysis errors.
pub fn eval_itimerm(
    entry: &SuiteEntry,
    library: &Library,
    opts: &EvalOptions,
) -> Result<MethodRow> {
    let flat = ArcGraph::from_netlist(&entry.netlist, library)?;
    let model =
        generate_itimerm(&flat, ITIMERM_DEFAULT_TOLERANCE, &MacroModelOptions::default())?;
    let r = evaluate(&flat, &model, opts)?;
    Ok(MethodRow::from_eval(&entry.name, "iTimerM", &r))
}

/// Alias of [`eval_itimerm`] that reads better at call sites passing
/// non-default evaluation options (CPPR/AOCV modes).
///
/// # Errors
///
/// Propagates analysis errors.
pub fn eval_itimerm_with(
    entry: &SuiteEntry,
    library: &Library,
    opts: &EvalOptions,
) -> Result<MethodRow> {
    eval_itimerm(entry, library, opts)
}

/// Evaluates the LibAbs-style baseline on one design.
///
/// # Errors
///
/// Propagates analysis errors.
pub fn eval_libabs(
    entry: &SuiteEntry,
    library: &Library,
    opts: &EvalOptions,
) -> Result<MethodRow> {
    let flat = ArcGraph::from_netlist(&entry.netlist, library)?;
    let model = generate_libabs(&flat, &MacroModelOptions::default())?;
    let r = evaluate(&flat, &model, opts)?;
    Ok(MethodRow::from_eval(&entry.name, "LibAbs", &r))
}

/// Evaluates the ATM-style ETM baseline on one design.
///
/// # Errors
///
/// Propagates analysis errors.
pub fn eval_atm(entry: &SuiteEntry, library: &Library, opts: &EvalOptions) -> Result<MethodRow> {
    let flat = ArcGraph::from_netlist(&entry.netlist, library)?;
    let model = generate_atm(&flat, &MacroModelOptions::default())?;
    let r = evaluate(&flat, &model, opts)?;
    Ok(MethodRow::from_eval(&entry.name, "ATM", &r))
}

/// Evaluates a caller-generated model on one design (Table 6 style runs).
///
/// # Errors
///
/// Propagates analysis errors.
pub fn eval_model(
    entry: &SuiteEntry,
    library: &Library,
    model: &MacroModel,
    method: &str,
    opts: &EvalOptions,
) -> Result<MethodRow> {
    let flat = ArcGraph::from_netlist(&entry.netlist, library)?;
    let r = evaluate(&flat, model, opts)?;
    Ok(MethodRow::from_eval(&entry.name, method, &r))
}

/// The shared library every experiment binary uses.
#[must_use]
pub fn library() -> Library {
    suite_library()
}

/// Renders an ASCII histogram (used by the figure binaries).
#[must_use]
pub fn ascii_histogram(values: &[f64], buckets: &[(f64, f64, &str)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let total = values.len().max(1);
    for &(lo, hi, label) in buckets {
        let count = values.iter().filter(|&&v| v >= lo && v < hi).count();
        let frac = count as f64 / total as f64;
        let bar = "#".repeat((frac * 60.0).round() as usize);
        let _ = writeln!(out, "{label:>14} | {bar:<60} {count:>6} ({:.1}%)", frac * 100.0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(file: f64, err: f64) -> MethodRow {
        MethodRow {
            design: "d".into(),
            method: "m".into(),
            avg_err_ps: err / 10.0,
            max_err_ps: err,
            file_kib: file,
            gen_time_s: 1.0,
            gen_mem_mib: 2.0,
            usage_time_s: 0.5,
            usage_mem_mib: 1.0,
            kept_pins: 10,
        }
    }

    #[test]
    fn ratio_summary_computes_paper_conventions() {
        let ours = vec![row(100.0, 1.0), row(200.0, 2.0)];
        let other = vec![row(110.0, 1.0), row(220.0, 2.0)];
        let s = ratio_summary(&ours, &other);
        assert!((s.file_ratio - 1.1).abs() < 1e-9);
        assert!(s.max_err_diff.abs() < 1e-9);
        assert!((s.gen_time_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ascii_histogram_counts_and_formats() {
        let values = vec![0.0, 0.0, 0.5, 1.5];
        let h = ascii_histogram(&values, &[(0.0, 0.1, "zero"), (0.1, 2.0, "rest")]);
        assert!(h.contains("zero"));
        assert!(h.contains("2 (50.0%)") || h.contains(" 2 "), "histogram: {h}");
    }

    #[test]
    fn method_row_from_eval_scales_units() {
        let r = EvalResult {
            model_bytes: 2048,
            gen_time: Duration::from_millis(1500),
            gen_memory: 3 * 1024 * 1024,
            usage_time: Duration::from_millis(250),
            usage_memory: 1024 * 1024,
            kept_pins: 42,
            ..Default::default()
        };
        let row = MethodRow::from_eval("d", "Ours", &r);
        assert!((row.file_kib - 2.0).abs() < 1e-9);
        assert!((row.gen_time_s - 1.5).abs() < 1e-9);
        assert!((row.gen_mem_mib - 3.0).abs() < 1e-9);
        assert_eq!(row.kept_pins, 42);
    }
}
