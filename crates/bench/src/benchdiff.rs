//! `tmm benchdiff`: perf-regression gating over the `BENCH_*.json`
//! artifact families.
//!
//! Loads a baseline and a current artifact (single files or whole
//! directories of `BENCH_*.json`), matches records by `{stage, design}`
//! (duplicates — e.g. one record per ECO edit — are summed into one
//! total per key), applies per-stage noise thresholds, and renders a
//! markdown table. A stage regresses when its wall time grew by more
//! than the stage's percentage threshold **and** by more than the
//! absolute noise floor — short stages jitter by whole multiples of
//! their runtime, so a pure percentage gate would flap.
//!
//! Two artifact schemas are understood:
//!
//! * `tmm-bench/v1` (`BENCH_pipeline.json`, `BENCH_eco.json`,
//!   `BENCH_scale.json`) — `records: [{stage, design, wall_ms,
//!   throughput}]`.
//! * the flat `BENCH_gnn_train.json` kernel comparison — its
//!   `*_seconds` fields are synthesised into records
//!   (`gnn_kernels_naive_1t` etc.) so the same gate covers it.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use tmm_obs::json::{self, Value};
use tmm_obs::BenchRecord;

/// Noise thresholds for the regression gate.
#[derive(Debug, Clone, Copy)]
pub struct Thresholds {
    /// Maximum tolerated wall-time growth, percent (base→current).
    pub max_regress_pct: f64,
    /// Absolute noise floor in milliseconds: stages whose delta is below
    /// this never regress regardless of percentage.
    pub min_delta_ms: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds { max_regress_pct: 25.0, min_delta_ms: 5.0 }
    }
}

impl Thresholds {
    /// The percentage threshold for `stage`. Per-edit ECO records,
    /// microsecond-scale kernel stages, and serve latency percentiles are
    /// noisier than long pipeline stages, so they run at twice the
    /// configured tolerance.
    #[must_use]
    pub fn stage_pct(&self, stage: &str) -> f64 {
        if stage.starts_with("eco_")
            || stage.starts_with("gnn_kernels_")
            || stage.starts_with("serve_")
        {
            self.max_regress_pct * 2.0
        } else {
            self.max_regress_pct
        }
    }
}

/// Verdict for one `{stage, design}` key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffStatus {
    /// Within thresholds.
    Ok,
    /// Got faster by more than the stage threshold.
    Improved,
    /// Got slower by more than the stage threshold AND the noise floor.
    Regressed,
    /// Present only in the baseline artifact.
    BaselineOnly,
    /// Present only in the current artifact.
    CurrentOnly,
}

impl DiffStatus {
    /// Table/label text.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DiffStatus::Ok => "ok",
            DiffStatus::Improved => "improved",
            DiffStatus::Regressed => "REGRESSED",
            DiffStatus::BaselineOnly => "baseline-only",
            DiffStatus::CurrentOnly => "current-only",
        }
    }
}

/// One row of the diff table.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// Stage name.
    pub stage: String,
    /// Design name.
    pub design: String,
    /// Summed baseline wall time, ms (`None` for current-only keys).
    pub base_ms: Option<f64>,
    /// Summed current wall time, ms (`None` for baseline-only keys).
    pub cur_ms: Option<f64>,
    /// Wall-time growth percent, when both sides exist.
    pub delta_pct: Option<f64>,
    /// The verdict.
    pub status: DiffStatus,
}

/// The complete comparison of one baseline/current pair (or directory
/// family).
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Every compared key, regressions first, then by stage/design.
    pub rows: Vec<DiffRow>,
    /// Artifact files that contributed records.
    pub files: Vec<String>,
}

impl DiffReport {
    /// Rows that regressed.
    #[must_use]
    pub fn regressions(&self) -> Vec<&DiffRow> {
        self.rows.iter().filter(|r| r.status == DiffStatus::Regressed).collect()
    }

    /// Keys present in the baseline but missing from the candidate run —
    /// a stage that silently stopped being measured is a gate failure,
    /// not a pass.
    #[must_use]
    pub fn removed(&self) -> Vec<&DiffRow> {
        self.rows.iter().filter(|r| r.status == DiffStatus::BaselineOnly).collect()
    }

    /// Renders the markdown diff table (regressions sort first).
    #[must_use]
    pub fn to_markdown(&self, thresholds: &Thresholds) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# benchdiff");
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "Gate: wall time may grow at most {:.0}% (noisy stages {:.0}%) and {:.1} ms.",
            thresholds.max_regress_pct,
            thresholds.max_regress_pct * 2.0,
            thresholds.min_delta_ms
        );
        if !self.files.is_empty() {
            let _ = writeln!(out, "Artifacts: {}.", self.files.join(", "));
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "| stage | design | base ms | current ms | delta | verdict |");
        let _ = writeln!(out, "|---|---|---:|---:|---:|---|");
        for r in &self.rows {
            let fmt_ms = |v: Option<f64>| match v {
                Some(ms) => format!("{ms:.2}"),
                None => "-".to_string(),
            };
            let delta = match r.delta_pct {
                Some(pct) => format!("{pct:+.1}%"),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} |",
                r.stage,
                r.design,
                fmt_ms(r.base_ms),
                fmt_ms(r.cur_ms),
                delta,
                r.status.label()
            );
        }
        let regressed = self.regressions().len();
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{} key(s) compared, {} regression(s).",
            self.rows.len(),
            regressed
        );
        out
    }
}

/// Parses one artifact's records. Accepts `tmm-bench/v1` and the flat
/// `BENCH_gnn_train.json` kernel-comparison schema.
///
/// # Errors
///
/// Returns a description of the first structural problem.
pub fn parse_bench_records(src: &str, origin: &str) -> Result<Vec<BenchRecord>, String> {
    let doc = json::parse(src).map_err(|e| format!("{origin}: not valid JSON: {e}"))?;
    match doc.get("schema").and_then(Value::as_str) {
        Some("tmm-bench/v1") => {
            let records = doc
                .get("records")
                .and_then(Value::as_array)
                .ok_or_else(|| format!("{origin}: missing `records`"))?;
            let mut out = Vec::with_capacity(records.len());
            for (i, r) in records.iter().enumerate() {
                let field_str = |key: &str| {
                    r.get(key)
                        .and_then(Value::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| format!("{origin}: record {i} missing string `{key}`"))
                };
                let field_num = |key: &str| {
                    r.get(key)
                        .and_then(Value::as_f64)
                        .ok_or_else(|| format!("{origin}: record {i} missing numeric `{key}`"))
                };
                out.push(BenchRecord {
                    stage: field_str("stage")?,
                    design: field_str("design")?,
                    wall_ms: field_num("wall_ms")?,
                    throughput: field_num("throughput")?,
                });
            }
            Ok(out)
        }
        Some(other) => Err(format!("{origin}: unsupported schema `{other}`")),
        None => parse_gnn_train(&doc, origin),
    }
}

/// Synthesises records from the flat `BENCH_gnn_train.json` document so
/// the kernel comparison participates in the same gate.
fn parse_gnn_train(doc: &Value, origin: &str) -> Result<Vec<BenchRecord>, String> {
    let bench = doc
        .get("bench")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{origin}: neither `schema` nor `bench` present"))?;
    let mut out = Vec::new();
    for (field, stage) in [
        ("naive_seconds", "gnn_kernels_naive_1t"),
        ("blocked_seconds_1t", "gnn_kernels_blocked_1t"),
        ("blocked_seconds_4t", "gnn_kernels_blocked_4t"),
    ] {
        let secs = doc
            .get(field)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{origin}: missing numeric `{field}`"))?;
        out.push(BenchRecord {
            stage: stage.to_string(),
            design: bench.to_string(),
            wall_ms: secs * 1e3,
            throughput: 0.0,
        });
    }
    Ok(out)
}

/// Sums wall time per `{stage, design}` key (one ECO stream emits one
/// record per edit; the gate compares stream totals).
fn totals(records: &[BenchRecord]) -> Vec<(String, String, f64)> {
    let mut keys: Vec<(String, String, f64)> = Vec::new();
    for r in records {
        match keys.iter_mut().find(|(s, d, _)| *s == r.stage && *d == r.design) {
            Some((_, _, ms)) => *ms += r.wall_ms,
            None => keys.push((r.stage.clone(), r.design.clone(), r.wall_ms)),
        }
    }
    keys
}

/// Diffs two record sets under `thresholds`.
#[must_use]
pub fn diff_records(
    baseline: &[BenchRecord],
    current: &[BenchRecord],
    thresholds: &Thresholds,
) -> Vec<DiffRow> {
    let base = totals(baseline);
    let cur = totals(current);
    let mut rows: Vec<DiffRow> = Vec::new();
    for (stage, design, base_ms) in &base {
        let row = match cur.iter().find(|(s, d, _)| s == stage && d == design) {
            None => DiffRow {
                stage: stage.clone(),
                design: design.clone(),
                base_ms: Some(*base_ms),
                cur_ms: None,
                delta_pct: None,
                status: DiffStatus::BaselineOnly,
            },
            Some((_, _, cur_ms)) => {
                let delta_ms = cur_ms - base_ms;
                let pct = if *base_ms > 0.0 { delta_ms / base_ms * 100.0 } else { 0.0 };
                let status = if pct > thresholds.stage_pct(stage)
                    && delta_ms > thresholds.min_delta_ms
                {
                    DiffStatus::Regressed
                } else if pct < -thresholds.stage_pct(stage)
                    && -delta_ms > thresholds.min_delta_ms
                {
                    DiffStatus::Improved
                } else {
                    DiffStatus::Ok
                };
                DiffRow {
                    stage: stage.clone(),
                    design: design.clone(),
                    base_ms: Some(*base_ms),
                    cur_ms: Some(*cur_ms),
                    delta_pct: Some(pct),
                    status,
                }
            }
        };
        rows.push(row);
    }
    for (stage, design, cur_ms) in &cur {
        if !base.iter().any(|(s, d, _)| s == stage && d == design) {
            rows.push(DiffRow {
                stage: stage.clone(),
                design: design.clone(),
                base_ms: None,
                cur_ms: Some(*cur_ms),
                delta_pct: None,
                status: DiffStatus::CurrentOnly,
            });
        }
    }
    rows.sort_by(|a, b| {
        let sev = |r: &DiffRow| match r.status {
            DiffStatus::Regressed => 0,
            _ => 1,
        };
        sev(a)
            .cmp(&sev(b))
            .then_with(|| a.stage.cmp(&b.stage))
            .then_with(|| a.design.cmp(&b.design))
    });
    rows
}

/// The `BENCH_*.json` files under `dir`, sorted by name.
fn bench_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(std::result::Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    Ok(files)
}

/// Error classes of [`diff_paths`], mirroring the CLI exit classes.
#[derive(Debug)]
pub enum DiffError {
    /// A file or directory could not be read.
    Io(String),
    /// An artifact failed to parse or carried an unknown schema.
    Parse(String),
    /// The inputs produced nothing to compare (e.g. directories sharing
    /// no `BENCH_*.json` family).
    Empty(String),
}

impl std::fmt::Display for DiffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffError::Io(m) | DiffError::Parse(m) | DiffError::Empty(m) => f.write_str(m),
        }
    }
}

fn load_path_records(path: &Path) -> Result<Vec<BenchRecord>, DiffError> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| DiffError::Io(format!("{}: {e}", path.display())))?;
    parse_bench_records(&src, &path.display().to_string()).map_err(DiffError::Parse)
}

/// Compares `baseline` and `current`: two artifact files, or two
/// directories (every `BENCH_*.json` family present in **both** is
/// compared; families present in only one side are listed in the report
/// header but not gated).
///
/// # Errors
///
/// [`DiffError::Io`] on unreadable inputs, [`DiffError::Parse`] on
/// malformed artifacts, [`DiffError::Empty`] when nothing is comparable.
pub fn diff_paths(
    baseline: &Path,
    current: &Path,
    thresholds: &Thresholds,
) -> Result<DiffReport, DiffError> {
    let mut report = DiffReport::default();
    if baseline.is_dir() && current.is_dir() {
        let base_files =
            bench_files(baseline).map_err(|e| DiffError::Io(format!("{}: {e}", baseline.display())))?;
        let mut compared = 0usize;
        for bf in &base_files {
            let Some(name) = bf.file_name().and_then(|n| n.to_str()) else { continue };
            let cf = current.join(name);
            let base = load_path_records(bf)?;
            if cf.is_file() {
                let cur = load_path_records(&cf)?;
                report.rows.extend(diff_records(&base, &cur, thresholds));
                report.files.push(name.to_string());
                compared += 1;
            } else {
                // A whole family present in the baseline but absent from
                // the candidate run: every one of its keys is a removed
                // stage. Diffing against an empty record set synthesises
                // the BaselineOnly rows instead of silently dropping them.
                report.rows.extend(diff_records(&base, &[], thresholds));
                report.files.push(format!("{name} (baseline only)"));
            }
        }
        if compared == 0 && report.rows.is_empty() {
            return Err(DiffError::Empty(format!(
                "no BENCH_*.json family present in both {} and {}",
                baseline.display(),
                current.display()
            )));
        }
        // Re-sort across families so regressions lead the merged table.
        report.rows.sort_by(|a, b| {
            let sev = |r: &DiffRow| match r.status {
                DiffStatus::Regressed => 0,
                _ => 1,
            };
            sev(a)
                .cmp(&sev(b))
                .then_with(|| a.stage.cmp(&b.stage))
                .then_with(|| a.design.cmp(&b.design))
        });
    } else if baseline.is_file() && current.is_file() {
        let base = load_path_records(baseline)?;
        let cur = load_path_records(current)?;
        report.rows = diff_records(&base, &cur, thresholds);
        report.files.push(
            current
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("current")
                .to_string(),
        );
    } else {
        return Err(DiffError::Io(format!(
            "baseline and current must both be files or both directories \
             (got {} and {})",
            baseline.display(),
            current.display()
        )));
    }
    if report.rows.is_empty() {
        return Err(DiffError::Empty("artifacts contain no records".into()));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(stage: &str, design: &str, wall_ms: f64) -> BenchRecord {
        BenchRecord {
            stage: stage.to_string(),
            design: design.to_string(),
            wall_ms,
            throughput: 0.0,
        }
    }

    #[test]
    fn identical_artifacts_pass_clean() {
        let base = vec![rec("training", "suite", 1000.0), rec("ts_sweep", "d1", 400.0)];
        let rows = diff_records(&base, &base, &Thresholds::default());
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.status == DiffStatus::Ok));
    }

    #[test]
    fn injected_twenty_percent_slowdown_is_caught() {
        let th = Thresholds { max_regress_pct: 15.0, min_delta_ms: 5.0 };
        let base = vec![rec("macro_merge", "d1", 1000.0), rec("training", "suite", 500.0)];
        let cur = vec![rec("macro_merge", "d1", 1200.0), rec("training", "suite", 500.0)];
        let rows = diff_records(&base, &cur, &th);
        let bad: Vec<_> =
            rows.iter().filter(|r| r.status == DiffStatus::Regressed).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].stage, "macro_merge", "the slowed stage is named");
        assert_eq!(rows[0].stage, "macro_merge", "regressions sort first");
    }

    #[test]
    fn noise_floor_suppresses_tiny_deltas() {
        let th = Thresholds { max_regress_pct: 10.0, min_delta_ms: 5.0 };
        // +100% but only +2 ms: below the floor, not a regression.
        let base = vec![rec("fast_stage", "d", 2.0)];
        let cur = vec![rec("fast_stage", "d", 4.0)];
        let rows = diff_records(&base, &cur, &th);
        assert_eq!(rows[0].status, DiffStatus::Ok);
    }

    #[test]
    fn eco_stages_get_doubled_tolerance_and_are_summed() {
        let th = Thresholds { max_regress_pct: 20.0, min_delta_ms: 1.0 };
        // Two 100 ms edits vs two 130 ms edits: +30% < the 40% eco gate.
        let base = vec![rec("eco_incremental_resize", "d", 100.0); 2];
        let cur = vec![rec("eco_incremental_resize", "d", 130.0); 2];
        let rows = diff_records(&base, &cur, &th);
        assert_eq!(rows.len(), 1, "per-edit records collapse to one key");
        assert!((rows[0].base_ms.unwrap() - 200.0).abs() < 1e-9);
        assert_eq!(rows[0].status, DiffStatus::Ok);
        // +50% exceeds even the doubled gate.
        let cur = vec![rec("eco_incremental_resize", "d", 150.0); 2];
        let rows = diff_records(&base, &cur, &th);
        assert_eq!(rows[0].status, DiffStatus::Regressed);
    }

    #[test]
    fn only_keys_are_reported_not_gated() {
        let base = vec![rec("gone", "d", 10.0)];
        let cur = vec![rec("new", "d", 10.0)];
        let rows = diff_records(&base, &cur, &Thresholds::default());
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().any(|r| r.status == DiffStatus::BaselineOnly));
        assert!(rows.iter().any(|r| r.status == DiffStatus::CurrentOnly));
        assert!(rows.iter().all(|r| r.status != DiffStatus::Regressed));
    }

    #[test]
    fn parses_bench_v1_and_gnn_train_schemas() {
        let v1 = r#"{"schema":"tmm-bench/v1","records":[
            {"stage":"training","design":"suite","wall_ms":12.5,"throughput":100.0}]}"#;
        let recs = parse_bench_records(v1, "t").expect("v1 parses");
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].stage, "training");

        let gnn = r#"{"bench":"gnn_train","naive_seconds":2.0,
            "blocked_seconds_1t":1.0,"blocked_seconds_4t":0.5,
            "speedup_1t":2.0,"speedup_4t":4.0}"#;
        let recs = parse_bench_records(gnn, "t").expect("gnn_train parses");
        assert_eq!(recs.len(), 3);
        assert!((recs[0].wall_ms - 2000.0).abs() < 1e-9);
        assert_eq!(recs[2].stage, "gnn_kernels_blocked_4t");

        assert!(parse_bench_records("{}", "t").is_err());
        assert!(parse_bench_records(r#"{"schema":"nope"}"#, "t").is_err());
    }

    #[test]
    fn serve_stages_get_doubled_tolerance() {
        let th = Thresholds { max_regress_pct: 20.0, min_delta_ms: 1.0 };
        // +30% on a serve percentile: inside the doubled 40% gate.
        let base = vec![rec("serve_slack_p99", "d", 100.0)];
        let cur = vec![rec("serve_slack_p99", "d", 130.0)];
        let rows = diff_records(&base, &cur, &th);
        assert_eq!(rows[0].status, DiffStatus::Ok);
        // +50% exceeds it.
        let cur = vec![rec("serve_slack_p99", "d", 150.0)];
        let rows = diff_records(&base, &cur, &th);
        assert_eq!(rows[0].status, DiffStatus::Regressed);
    }

    fn write_bench(dir: &Path, name: &str, stage: &str, wall_ms: f64) {
        let body = format!(
            r#"{{"schema":"tmm-bench/v1","records":[{{"stage":"{stage}","design":"d","wall_ms":{wall_ms},"throughput":0.0}}]}}"#
        );
        std::fs::write(dir.join(name), body).unwrap();
    }

    #[test]
    fn directory_mode_reports_families_missing_from_candidate() {
        let root = std::env::temp_dir()
            .join(format!("tmm-benchdiff-removed-{}", std::process::id()));
        let (base_dir, cur_dir) = (root.join("base"), root.join("cur"));
        std::fs::create_dir_all(&base_dir).unwrap();
        std::fs::create_dir_all(&cur_dir).unwrap();
        write_bench(&base_dir, "BENCH_pipeline.json", "training", 100.0);
        write_bench(&base_dir, "BENCH_serve.json", "serve_overall", 50.0);
        write_bench(&cur_dir, "BENCH_pipeline.json", "training", 100.0);
        // BENCH_serve.json exists only in the baseline: its keys must
        // surface as removed stages, not vanish from the table.
        let report =
            diff_paths(&base_dir, &cur_dir, &Thresholds::default()).expect("diff runs");
        let removed = report.removed();
        assert_eq!(removed.len(), 1, "{:?}", report.rows);
        assert_eq!(removed[0].stage, "serve_overall");
        assert_eq!(removed[0].status, DiffStatus::BaselineOnly);
        assert!(
            report.files.iter().any(|f| f.contains("BENCH_serve.json (baseline only)")),
            "{:?}",
            report.files
        );
        let md = report.to_markdown(&Thresholds::default());
        assert!(md.contains("| serve_overall | d |"), "{md}");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn removed_accessor_flags_baseline_only_keys() {
        let base = vec![rec("gone", "d", 10.0), rec("kept", "d", 10.0)];
        let cur = vec![rec("kept", "d", 10.0)];
        let report = DiffReport {
            rows: diff_records(&base, &cur, &Thresholds::default()),
            files: vec![],
        };
        assert_eq!(report.removed().len(), 1);
        assert_eq!(report.removed()[0].stage, "gone");
        assert!(report.regressions().is_empty());
    }

    #[test]
    fn markdown_names_the_regressed_stage() {
        let th = Thresholds::default();
        let base = vec![rec("ts_sweep", "d1", 100.0)];
        let cur = vec![rec("ts_sweep", "d1", 200.0)];
        let report = DiffReport {
            rows: diff_records(&base, &cur, &th),
            files: vec!["BENCH_pipeline.json".to_string()],
        };
        let md = report.to_markdown(&th);
        assert!(md.contains("| ts_sweep | d1 |"), "{md}");
        assert!(md.contains("REGRESSED"), "{md}");
        assert!(md.contains("1 regression(s)"), "{md}");
    }
}
