//! Generality experiment beyond the paper's tables (motivated by §1/§5.3):
//! the same framework retargeted to **AOCV** analysis — training data is
//! regenerated under depth-based derating, the GNN retrains, and the
//! resulting models are evaluated with AOCV enabled, against an
//! AOCV-evaluated iTimerM baseline.
//!
//! Expected shape: the framework needs *no algorithmic change* — only the
//! analysis-mode switch — and still matches iTimerM's accuracy at a smaller
//! model size, mirroring the CPPR result.

// Experiment driver: aborting with a message on a broken setup is the
// intended failure mode (the clippy gate targets library code paths).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use tmm_bench::{
    eval_itimerm_with, eval_ours, library, print_header, print_ratio, print_row, ratio_summary,
    train_standard,
};
use tmm_circuits::designs::eval_suite;
use tmm_core::FrameworkConfig;
use tmm_macromodel::eval::EvalOptions;

fn main() {
    let lib = library();
    let config = FrameworkConfig { aocv_mode: true, ..Default::default() };
    let fw = train_standard(config, &lib).expect("training succeeds");
    let suite = eval_suite(&lib).expect("suite generation");
    let opts = EvalOptions { contexts: 5, aocv: true, ..Default::default() };

    print_header("AOCV generality: framework retargeted to depth-derated analysis");
    let mut ours = Vec::new();
    let mut itm = Vec::new();
    for entry in suite.iter().filter(|e| !e.name.ends_with("_eval")) {
        let o = eval_ours(&fw, entry, &lib, &opts).expect("eval ours");
        let i = eval_itimerm_with(entry, &lib, &opts).expect("eval itimerm");
        print_row(&o);
        print_row(&i);
        ours.push(o);
        itm.push(i);
    }
    println!();
    print_ratio("AOCV average (iTimerM vs Ours)", &ratio_summary(&ours, &itm));
}
