//! Regenerates **Table 3**: TAU 2016 + TAU 2017 benchmarks *with CPPR* —
//! Ours vs iTimerM \[5\] vs the compressed-ILM work \[4\] (LibAbs family).
//!
//! Paper shape to reproduce: Ours ties iTimerM on max error while cutting
//! model size ~10 %; the LibAbs-style baseline has markedly worse max error
//! (~9×) and ~1.8× larger models. \[4\] was only evaluated on TAU 2016 in its
//! paper, so the LibAbs rows cover that group.

// Experiment driver: aborting with a message on a broken setup is the
// intended failure mode (the clippy gate targets library code paths).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use tmm_bench::{
    eval_itimerm, eval_libabs, eval_ours, library, print_header, print_ratio, print_row,
    ratio_summary, train_standard, MethodRow,
};
use tmm_circuits::designs::eval_suite;
use tmm_core::FrameworkConfig;
use tmm_macromodel::eval::EvalOptions;

fn main() {
    let lib = library();
    let fw = train_standard(FrameworkConfig::cppr(), &lib).expect("training succeeds");
    let suite = eval_suite(&lib).expect("suite generation");
    let opts = EvalOptions { contexts: 5, cppr: true, ..Default::default() };

    let tau16: Vec<_> = suite.iter().filter(|e| e.name.ends_with("_eval")).collect();
    let tau17: Vec<_> = suite
        .iter()
        .filter(|e| !e.name.ends_with("_eval") && !e.name.contains("matrix_mult"))
        .collect();

    print_header("Table 3: TAU 2016 + TAU 2017 with CPPR");
    let mut ours16 = Vec::new();
    let mut itm16 = Vec::new();
    let mut lib16 = Vec::new();
    for entry in &tau16 {
        let o = eval_ours(&fw, entry, &lib, &opts).expect("eval ours");
        let i = eval_itimerm(entry, &lib, &opts).expect("eval itimerm");
        let l = eval_libabs(entry, &lib, &opts).expect("eval libabs");
        print_row(&o);
        print_row(&i);
        print_row(&l);
        ours16.push(o);
        itm16.push(i);
        lib16.push(l);
    }
    println!();
    let mut ours17: Vec<MethodRow> = Vec::new();
    let mut itm17 = Vec::new();
    for entry in &tau17 {
        let o = eval_ours(&fw, entry, &lib, &opts).expect("eval ours");
        let i = eval_itimerm(entry, &lib, &opts).expect("eval itimerm");
        print_row(&o);
        print_row(&i);
        ours17.push(o);
        itm17.push(i);
    }
    println!();
    print_ratio("TAU2016 avg (iTimerM vs Ours)", &ratio_summary(&ours16, &itm16));
    print_ratio("TAU2016 avg (LibAbs  vs Ours)", &ratio_summary(&ours16, &lib16));
    print_ratio("TAU2017 avg (iTimerM vs Ours)", &ratio_summary(&ours17, &itm17));
}
