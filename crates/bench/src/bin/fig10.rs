//! Regenerates **Figure 10**: timing sensitivities of `systemcaes` pins
//! split by the insensitive-pin filter's verdict. Filtered-out pins should
//! be overwhelmingly zero-TS; the surviving pins carry the non-zero mass —
//! the consistency that justifies using the filter to accelerate training
//! data generation.

// Experiment driver: aborting with a message on a broken setup is the
// intended failure mode (the clippy gate targets library code paths).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use tmm_bench::ascii_histogram;
use tmm_circuits::designs::{suite_library, training_design};
use tmm_macromodel::extract_ilm;
use tmm_sensitivity::{evaluate_ts, filter_insensitive, FilterOptions, TsOptions};
use tmm_sta::graph::{ArcGraph, NodeId, NodeKind};

fn main() {
    let lib = suite_library();
    let netlist = training_design("systemcaes", 1000).expect("generation");
    let flat = ArcGraph::from_netlist(&netlist, &lib).expect("lowering");
    let (ilm, _) = extract_ilm(&flat).expect("ilm");

    let filter = filter_insensitive(&ilm, &FilterOptions::default()).expect("filter");
    // TS for *all* internal pins so both histograms are exact.
    let candidates: Vec<bool> = (0..ilm.node_count())
        .map(|i| {
            let n = NodeId(i as u32);
            !ilm.node(n).dead && ilm.node(n).kind == NodeKind::Internal
        })
        .collect();
    let ts = evaluate_ts(&ilm, &candidates, &TsOptions { contexts: 4, ..Default::default() })
        .expect("ts");

    let mut filtered = Vec::new();
    let mut remained = Vec::new();
    for i in 0..ilm.node_count() {
        if !ts.ts[i].is_finite() {
            continue;
        }
        if filter.survivors[i] {
            remained.push(ts.ts[i]);
        } else {
            filtered.push(ts.ts[i]);
        }
    }
    let buckets = [
        (0.0, 1e-7, "0"),
        (1e-7, 1e-4, "(0,1e-4)"),
        (1e-4, 1e-2, "[1e-4,1e-2)"),
        (1e-2, f64::MAX, ">=1e-2"),
    ];
    println!(
        "Figure 10: systemcaes TS split by filter verdict (filter rate {:.1}%)",
        100.0 * filter.filter_rate()
    );
    println!("\nFiltered-out pins ({}):", filtered.len());
    print!("{}", ascii_histogram(&filtered, &buckets));
    println!("\nRemained pins ({}):", remained.len());
    print!("{}", ascii_histogram(&remained, &buckets));

    let filtered_zero = filtered.iter().filter(|&&t| t <= 1e-7).count();
    let remained_nonzero = remained.iter().filter(|&&t| t > 1e-7).count();
    println!(
        "\nfiltered-out zero-TS share: {:.1}%  |  remained non-zero-TS share: {:.1}%",
        100.0 * filtered_zero as f64 / filtered.len().max(1) as f64,
        100.0 * remained_nonzero as f64 / remained.len().max(1) as f64
    );
}
