//! Regenerates **Table 5**: TAU 2017 benchmarks *without CPPR* — Ours vs
//! iTimerM \[5\] vs the ETM-based ATM \[6\], including `mgc_matrix_mult`.
//!
//! Paper shape to reproduce: ATM's models are dramatically smaller
//! (ratio ≈ 0.03) and faster to use, but its max error is ~9× and its avg
//! error ~25× worse, and its generation is ~17× slower. Ours matches
//! iTimerM's accuracy at ~9 % smaller size.

// Experiment driver: aborting with a message on a broken setup is the
// intended failure mode (the clippy gate targets library code paths).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use tmm_bench::{
    eval_atm, eval_itimerm, eval_ours, library, print_header, print_ratio, print_row,
    ratio_summary, train_standard,
};
use tmm_circuits::designs::eval_suite;
use tmm_core::FrameworkConfig;
use tmm_macromodel::eval::EvalOptions;

fn main() {
    let lib = library();
    let fw = train_standard(FrameworkConfig::default(), &lib).expect("training succeeds");
    let suite = eval_suite(&lib).expect("suite generation");
    let opts = EvalOptions { contexts: 5, cppr: false, ..Default::default() };

    let tau17: Vec<_> = suite.iter().filter(|e| !e.name.ends_with("_eval")).collect();

    print_header("Table 5: TAU 2017 without CPPR (incl. mgc_matrix_mult)");
    let mut ours = Vec::new();
    let mut itm = Vec::new();
    let mut atm = Vec::new();
    for entry in &tau17 {
        let o = eval_ours(&fw, entry, &lib, &opts).expect("eval ours");
        let i = eval_itimerm(entry, &lib, &opts).expect("eval itimerm");
        let a = eval_atm(entry, &lib, &opts).expect("eval atm");
        print_row(&o);
        print_row(&i);
        print_row(&a);
        ours.push(o);
        itm.push(i);
        atm.push(a);
    }
    println!();
    print_ratio("Average (iTimerM vs Ours)", &ratio_summary(&ours, &itm));
    print_ratio("Average (ATM     vs Ours)", &ratio_summary(&ours, &atm));
}
