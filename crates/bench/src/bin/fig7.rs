//! Regenerates **Figure 7**: the shielding effect — the slew difference
//! injected at the primary inputs decays as it propagates through logic
//! levels, which is why deep pins are timing-insensitive and why the
//! slew-difference filter works.

// Experiment driver: aborting with a message on a broken setup is the
// intended failure mode (the clippy gate targets library code paths).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use tmm_circuits::designs::{suite_library, training_design};
use tmm_macromodel::baselines::slew_range;
use tmm_sta::graph::{ArcGraph, NodeId};

fn main() {
    let lib = suite_library();
    let netlist = training_design("systemcaes", 1000).expect("generation");
    let graph = ArcGraph::from_netlist(&netlist, &lib).expect("lowering");

    // slew_range propagates extreme boundary slews (5 ps vs 150 ps) and
    // reports the per-pin difference — exactly the Fig. 7 experiment.
    let sd = slew_range(&graph).expect("propagation");
    let levels = graph.levels_from_inputs();
    let max_level = levels
        .iter()
        .filter(|&&l| l != u32::MAX)
        .max()
        .copied()
        .unwrap_or(0);

    println!("Figure 7: slew difference vs logic level (shielding effect)");
    println!("{:>6} {:>10} {:>14} {:>10}", "level", "#pins", "avg SD (ps)", "max SD");
    let mut prev_avg = f64::INFINITY;
    let mut monotone_breaks = 0usize;
    for level in 0..=max_level {
        let pins: Vec<f64> = (0..graph.node_count())
            .filter(|&i| levels[i] == level && !graph.node(NodeId(i as u32)).dead)
            .map(|i| sd[i])
            .collect();
        if pins.is_empty() {
            continue;
        }
        let avg = pins.iter().sum::<f64>() / pins.len() as f64;
        let max = pins.iter().fold(0.0f64, |a, &b| a.max(b));
        println!("{level:>6} {:>10} {avg:>14.3} {max:>10.3}", pins.len());
        if avg > prev_avg && level > 1 {
            monotone_breaks += 1;
        }
        prev_avg = avg;
    }
    println!("(local increases along the decay: {monotone_breaks} — reconvergence noise; the trend is the shield)");
}
