//! Regenerates **Table 4**: ablation of the dedicated CPPR feature
//! (`is_CPPR`, §5.3) — the framework trained with the 8 basic features
//! versus the 9-feature variant, both evaluated with CPPR enabled and
//! reported as ratios against iTimerM.
//!
//! Paper shape to reproduce: the basic features already match iTimerM's
//! accuracy with a smaller model (size ratio ≈ 1.06); the dedicated feature
//! improves the size ratio further (≈ 1.08–1.12).

// Experiment driver: aborting with a message on a broken setup is the
// intended failure mode (the clippy gate targets library code paths).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use tmm_bench::{
    eval_itimerm, eval_ours, library, print_header, print_ratio, print_row, ratio_summary,
    train_standard,
};
use tmm_circuits::designs::eval_suite;
use tmm_core::FrameworkConfig;
use tmm_macromodel::eval::EvalOptions;

fn main() {
    let lib = library();
    let fw_before =
        train_standard(FrameworkConfig::cppr_without_feature(), &lib).expect("train before");
    let fw_after = train_standard(FrameworkConfig::cppr(), &lib).expect("train after");
    let suite = eval_suite(&lib).expect("suite generation");
    let opts = EvalOptions { contexts: 5, cppr: true, ..Default::default() };

    for (group, filt) in [
        ("TAU2016", true),
        ("TAU2017", false),
    ] {
        let designs: Vec<_> = suite
            .iter()
            .filter(|e| e.name.ends_with("_eval") == filt && !e.name.contains("matrix_mult"))
            .collect();
        print_header(&format!("Table 4 ({group}): with vs without the is_CPPR feature"));
        let mut before = Vec::new();
        let mut after = Vec::new();
        let mut itm = Vec::new();
        for entry in &designs {
            let mut b = eval_ours(&fw_before, entry, &lib, &opts).expect("eval before");
            b.method = "Before".into();
            let mut a = eval_ours(&fw_after, entry, &lib, &opts).expect("eval after");
            a.method = "After".into();
            let i = eval_itimerm(entry, &lib, &opts).expect("eval itimerm");
            print_row(&b);
            print_row(&a);
            print_row(&i);
            before.push(b);
            after.push(a);
            itm.push(i);
        }
        print_ratio(
            &format!("{group} ratio before (iTimerM vs Ours w/o is_CPPR)"),
            &ratio_summary(&before, &itm),
        );
        print_ratio(
            &format!("{group} ratio after  (iTimerM vs Ours w/  is_CPPR)"),
            &ratio_summary(&after, &itm),
        );
        println!();
    }
}
