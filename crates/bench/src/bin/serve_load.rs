//! Seeded closed-loop load generator for the `tmm-serve` what-if service.
//!
//! Drives a mixed stream of point queries, boundary re-constraints, ECO
//! edits, and macro evaluations across N concurrent sessions, either
//! against an in-process [`ServeEngine`] (default; this is the acceptance
//! configuration) or over the wire against a running `tmm serve`
//! (`--addr`). Every client thread keeps a single-threaded mirror
//! [`Session`] per server session and replays the identical operation
//! stream into it; sampled responses are compared **bit for bit** against
//! the mirror — any divergence is a determinism bug and fails the run.
//!
//! Batches are homogeneous per query class so latency percentiles
//! attribute cleanly; the results land in `BENCH_serve.json`
//! (`serve_<class>_p50|p95|p99` records carry the percentile as
//! `wall_ms`, `serve_overall` carries total wall time plus commands/s as
//! `throughput`) and are gated in CI by `tmm benchdiff`.

// Experiment driver: aborting with a message on a broken setup is the
// intended failure mode (the clippy gate targets library code paths).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use tmm_circuits::CircuitSpec;
use tmm_faults::eco::{EcoEdit, EcoStream};
use tmm_macromodel::baselines::generate_libabs;
use tmm_macromodel::MacroModelOptions;
use tmm_serve::{
    format_f64, format_quad, DesignEntry, DesignPool, EngineOptions, QueryKind, ServeEngine,
    Session,
};
use tmm_sta::constraints::Context;
use tmm_sta::graph::ArcGraph;
use tmm_sta::liberty::Library;
use tmm_sta::propagate::AnalysisOptions;
use tmm_sta::view::TimingGraph;

/// Value of `--name <v>` in `argv`, if present.
fn arg_value(argv: &[String], name: &str) -> Option<String> {
    argv.iter().position(|a| a == name).and_then(|i| argv.get(i + 1).cloned())
}

fn parsed_arg<T: std::str::FromStr>(argv: &[String], name: &str, default: T) -> T
where
    T::Err: std::fmt::Display,
{
    match arg_value(argv, name) {
        Some(v) => match v.parse() {
            Ok(x) => x,
            Err(e) => {
                eprintln!("bad value for {name}: {e}");
                std::process::exit(1);
            }
        },
        None => default,
    }
}

/// How a batch travels: straight into the engine, or over HTTP.
enum Transport {
    Local(Arc<ServeEngine>),
    Http(SocketAddr),
}

impl Transport {
    fn submit(&self, body: &str) -> String {
        match self {
            Transport::Local(engine) => engine.submit_lines(body),
            Transport::Http(addr) => {
                let (status, resp) = tmm_obs::http_request(*addr, "POST", "/v1", body)
                    .unwrap_or_else(|e| panic!("POST /v1 failed: {e}"));
                assert_eq!(status, 200, "POST /v1 returned {status}: {resp}");
                resp
            }
        }
    }
}

/// The query classes the generator mixes (also the BENCH stage names).
const CLASSES: [&str; 4] = ["query", "reconstrain", "eco", "macroeval"];

/// Per-class batch latencies (ms), merged across client threads.
#[derive(Default)]
struct Latencies {
    by_class: [Vec<f64>; 4],
}

fn class_index(name: &str) -> usize {
    CLASSES.iter().position(|c| *c == name).unwrap()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One client thread's slice of the work: the sessions it owns plus the
/// mirror state that shadows them.
struct ClientSession {
    sid: u64,
    mirror: Session,
    eco: Vec<EcoEdit>,
    eco_cursor: usize,
}

#[allow(clippy::too_many_lines)]
fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let design_name = arg_value(&argv, "--design-name").unwrap_or_else(|| "serve_load".into());
    let pins: usize = parsed_arg(&argv, "--pins", 600);
    let seed: u64 = parsed_arg(&argv, "--seed", 1);
    let sessions: usize = parsed_arg(&argv, "--sessions", 8);
    let threads: usize = parsed_arg(&argv, "--threads", 4).max(1);
    let target: u64 = parsed_arg(&argv, "--queries", 1_000_000);
    let batch: usize = parsed_arg(&argv, "--batch", 256).max(1);
    let sample_every: usize = parsed_arg(&argv, "--sample-every", 256).max(1);
    let workers: usize = parsed_arg(&argv, "--workers", 4);
    let out = arg_value(&argv, "--out").unwrap_or_else(|| "BENCH_serve.json".into());
    let with_model = argv.iter().any(|a| a == "--with-model");
    let addr = arg_value(&argv, "--addr");

    // The mirror is built from the same seeded spec `tmm gen` uses, so an
    // HTTP run against `tmm serve --design <generated>` shadows the exact
    // same design (same name, pins, seed → same netlist bytes).
    let library = Library::synthetic(7);
    let netlist = CircuitSpec::sized(&design_name, pins)
        .seed(seed)
        .generate(&library)
        .expect("netlist generation");
    let graph = ArcGraph::from_netlist(&netlist, &library).expect("graph build");
    let model = if with_model {
        Some(generate_libabs(&graph, &MacroModelOptions::default()).expect("libabs model"))
    } else {
        None
    };
    let make_entry = |model| {
        DesignEntry::new(&graph, Context::nominal(&graph), AnalysisOptions::default(), model)
    };
    // Mirrors need their own entry (sessions take the Arc); generation is
    // deterministic, so the server-side copy is semantically identical.
    let mirror_entry = make_entry(if with_model {
        Some(generate_libabs(&graph, &MacroModelOptions::default()).expect("libabs model"))
    } else {
        None
    });

    let transport = match addr {
        Some(a) => {
            let sa = a
                .to_socket_addrs()
                .ok()
                .and_then(|mut it| it.next())
                .unwrap_or_else(|| panic!("cannot resolve --addr {a}"));
            Transport::Http(sa)
        }
        None => {
            let mut pool = DesignPool::new();
            pool.insert(make_entry(model));
            Transport::Local(Arc::new(ServeEngine::new(
                Arc::new(pool),
                EngineOptions { workers },
            )))
        }
    };

    // Candidate pins for point queries: live names over the base graph.
    let pin_names: Vec<String> =
        graph.topo_order().iter().map(|&n| graph.node_name(n).to_string()).collect();
    let pi_count = Context::nominal(&graph).pi.len();
    let po_count = Context::nominal(&graph).po.len();

    // Open all sessions up front (deterministic ids 1..=sessions), then
    // deal them round-robin to the client threads.
    let open_body = format!("open {design_name}\n").repeat(sessions);
    let opened = transport.submit(&open_body);
    let sids: Vec<u64> = opened
        .lines()
        .map(|l| {
            l.strip_prefix("ok ")
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("open failed: {l}"))
        })
        .collect();
    assert_eq!(sids.len(), sessions, "expected {sessions} sessions: {opened}");

    let mut per_thread: Vec<Vec<ClientSession>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, &sid) in sids.iter().enumerate() {
        per_thread[i % threads].push(ClientSession {
            sid,
            mirror: Session::open(sid, Arc::clone(&mirror_entry)),
            eco: EcoStream::generate(&mirror_entry.core, 64, seed ^ sid).edits().to_vec(),
            eco_cursor: 0,
        });
    }

    let issued = AtomicU64::new(0);
    let compared = AtomicU64::new(0);
    let diverged = AtomicU64::new(0);
    let latencies = Mutex::new(Latencies::default());
    let t0 = Instant::now();

    std::thread::scope(|scope| {
        for (tid, mut owned) in per_thread.into_iter().enumerate() {
            let transport = &transport;
            let issued = &issued;
            let compared = &compared;
            let diverged = &diverged;
            let latencies = &latencies;
            let pin_names = &pin_names;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ 0xC11E_47 ^ (tid as u64) << 32);
                let mut local = Latencies::default();
                let mut round = 0usize;
                while issued.load(Ordering::Relaxed) < target {
                    let slot = round % owned.len();
                    let cs = &mut owned[slot];
                    round += 1;
                    // Class mix: mostly point queries; re-constraints are
                    // common; topology edits and macro evals are rare
                    // (each ECO forces a full repropagation).
                    let roll: u32 = rng.gen_range(0..100u32);
                    let class = if roll < 78 {
                        "query"
                    } else if roll < 96 {
                        "reconstrain"
                    } else if roll < 98 && cs.eco_cursor < cs.eco.len() {
                        "eco"
                    } else if cs.mirror.design().model.is_some() {
                        "macroeval"
                    } else {
                        "reconstrain"
                    };
                    let (body, expected) =
                        build_batch(class, cs, &mut rng, pin_names, pi_count, po_count, batch);
                    if body.is_empty() {
                        continue;
                    }
                    let sent = body.lines().count() as u64;
                    let t = Instant::now();
                    let resp = transport.submit(&body);
                    let ms = t.elapsed().as_secs_f64() * 1e3;
                    local.by_class[class_index(class)].push(ms);
                    issued.fetch_add(sent, Ordering::Relaxed);
                    // Bit-compare against the single-threaded mirror. The mirror
                    // replays every operation anyway (it must track state),
                    // so full comparison costs only the string equality;
                    // `--sample-every` thins the expensive query compares.
                    for (i, (got, want)) in resp.lines().zip(expected.iter()).enumerate() {
                        let Some(want) = want else { continue };
                        if want.starts_with("ok 0x") && i % sample_every != 0 && i != 0 {
                            continue;
                        }
                        compared.fetch_add(1, Ordering::Relaxed);
                        if got != want {
                            diverged.fetch_add(1, Ordering::Relaxed);
                            eprintln!(
                                "DIVERGENCE sid {} line {i}: server `{got}` mirror `{want}`",
                                cs.sid
                            );
                        }
                    }
                }
                let mut merged = latencies.lock().unwrap();
                for (dst, src) in merged.by_class.iter_mut().zip(local.by_class) {
                    dst.extend(src);
                }
            });
        }
    });

    let wall = t0.elapsed();
    let close_body: String = sids.iter().map(|sid| format!("close {sid}\n")).collect();
    transport.submit(&close_body);

    let total = issued.load(Ordering::Relaxed);
    let checks = compared.load(Ordering::Relaxed);
    let bad = diverged.load(Ordering::Relaxed);
    let qps = total as f64 / wall.as_secs_f64().max(1e-9);

    let mut report = tmm_obs::RunReport::new("serve_load");
    report.fact("commands", total);
    report.fact("sessions", sessions);
    report.fact("threads", threads);
    report.fact("bit_compares", checks);
    report.fact("divergences", bad);
    report.capture_environment();

    let mut records = Vec::new();
    let merged = latencies.into_inner().unwrap();
    for (ci, class) in CLASSES.iter().enumerate() {
        let mut xs = merged.by_class[ci].clone();
        if xs.is_empty() {
            continue;
        }
        xs.sort_by(f64::total_cmp);
        for (tag, p) in [("p50", 50.0), ("p95", 95.0), ("p99", 99.0)] {
            records.push(tmm_obs::BenchRecord {
                stage: format!("serve_{class}_{tag}"),
                design: design_name.clone(),
                wall_ms: percentile(&xs, p),
                throughput: 0.0,
            });
        }
        println!(
            "{class:<12} {:>7} batches  p50 {:>8.3} ms  p95 {:>8.3} ms  p99 {:>8.3} ms",
            xs.len(),
            percentile(&xs, 50.0),
            percentile(&xs, 95.0),
            percentile(&xs, 99.0)
        );
    }
    records.push(tmm_obs::BenchRecord {
        stage: "serve_overall".into(),
        design: design_name.clone(),
        wall_ms: wall.as_secs_f64() * 1e3,
        throughput: qps,
    });
    let doc = tmm_obs::render_bench_json("serve", &records, &report);
    if let Err(e) = tmm_ckpt::atomic_write_str(&out, &doc) {
        eprintln!("warning: could not write {out}: {e}");
    }
    println!(
        "\n{total} commands over {sessions} sessions in {:.2}s ({qps:.0}/s); \
         {checks} bit-compares, {bad} divergence(s); wrote {out}",
        wall.as_secs_f64()
    );
    if bad > 0 {
        std::process::exit(2);
    }
}

/// Builds one homogeneous batch for `class`, applies the same operations
/// to the mirror, and returns (wire body, expected response per line —
/// `None` marks lines excluded from comparison).
fn build_batch(
    class: &str,
    cs: &mut ClientSession,
    rng: &mut StdRng,
    pin_names: &[String],
    pi_count: usize,
    po_count: usize,
    batch: usize,
) -> (String, Vec<Option<String>>) {
    let sid = cs.sid;
    let mut body = String::new();
    let mut expected = Vec::new();
    match class {
        "query" => {
            for _ in 0..batch {
                let kind = match rng.gen_range(0..4u32) {
                    0 => QueryKind::At,
                    1 => QueryKind::Rat,
                    2 => QueryKind::Slack,
                    _ => QueryKind::Slew,
                };
                let pin = &pin_names[rng.gen_range(0..pin_names.len())];
                body.push_str(&format!("{} {sid} {pin}\n", kind.name()));
                expected.push(Some(format!(
                    "ok {}",
                    format_quad(cs.mirror.query(kind, pin).expect("mirror query"))
                )));
            }
        }
        "reconstrain" => {
            for _ in 0..batch.min(32) {
                match rng.gen_range(0..3u32) {
                    0 if pi_count > 0 => {
                        let idx = rng.gen_range(0..pi_count);
                        let e: f64 = rng.gen_range(0.0..20.0);
                        let l: f64 = e + rng.gen_range(0.0..10.0);
                        let s: f64 = rng.gen_range(5.0..60.0);
                        body.push_str(&format!(
                            "setpi {sid} {idx} {} {} {}\n",
                            format_f64(e),
                            format_f64(l),
                            format_f64(s)
                        ));
                        cs.mirror.set_pi(idx, e, l, s).expect("mirror setpi");
                    }
                    1 if po_count > 0 => {
                        let idx = rng.gen_range(0..po_count);
                        let load: f64 = rng.gen_range(1.0..40.0);
                        body.push_str(&format!("setpoload {sid} {idx} {}\n", format_f64(load)));
                        cs.mirror.set_po_load(idx, load).expect("mirror setpoload");
                    }
                    _ if po_count > 0 => {
                        let idx = rng.gen_range(0..po_count);
                        let e: f64 = rng.gen_range(100.0..900.0);
                        let l: f64 = rng.gen_range(100.0..900.0);
                        body.push_str(&format!(
                            "setporat {sid} {idx} {} {}\n",
                            format_f64(e),
                            format_f64(l)
                        ));
                        cs.mirror.set_po_rat(idx, e, l).expect("mirror setporat");
                    }
                    _ => continue,
                }
                expected.push(Some("ok".to_string()));
            }
        }
        "eco" => {
            // Up to 4 prefix-ordered edits from the session's stream;
            // validity is guaranteed by EcoStream's simulation.
            for _ in 0..4 {
                let Some(edit) = cs.eco.get(cs.eco_cursor) else { break };
                cs.eco_cursor += 1;
                let cmd = tmm_serve::protocol::format_command(
                    &tmm_serve::Command::Eco { sid, edit: edit.clone() },
                );
                body.push_str(&cmd);
                body.push('\n');
                cs.mirror.apply_eco(edit).expect("mirror eco");
                expected.push(Some("ok".to_string()));
            }
        }
        "macroeval" => {
            for _ in 0..8 {
                body.push_str(&format!("macroeval {sid}\n"));
                expected.push(Some(format!(
                    "ok {}",
                    format_f64(cs.mirror.macro_eval().expect("mirror macroeval"))
                )));
            }
        }
        other => panic!("unknown class {other}"),
    }
    (body, expected)
}
