//! Regenerates **Table 2**: testing-design statistics.
//!
//! Prints the paper's TAU benchmark sizes next to the sizes of our
//! 1/500-scale synthetic stand-ins, so every later table can be read
//! against the designs it ran on.

// Experiment driver: aborting with a message on a broken setup is the
// intended failure mode (the clippy gate targets library code paths).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use tmm_bench::library;
use tmm_circuits::designs::{eval_suite, PAPER_TABLE2, SCALE};

fn main() {
    let lib = library();
    let suite = eval_suite(&lib).expect("suite generation is infallible");
    println!("Table 2: testing data statistics (paper sizes vs generated 1/{SCALE}-scale stand-ins)");
    println!(
        "{:<26} {:>12} {:>12} {:>12} | {:>9} {:>9} {:>9}",
        "Design", "paper#Pins", "paper#Cells", "paper#Nets", "#Pins", "#Cells", "#Nets"
    );
    println!("{}", "-".repeat(100));
    for entry in &suite {
        let paper = PAPER_TABLE2
            .iter()
            .find(|row| row.0 == entry.name)
            .expect("suite mirrors the paper table");
        let s = entry.netlist.stats();
        println!(
            "{:<26} {:>12} {:>12} {:>12} | {:>9} {:>9} {:>9}",
            entry.name, paper.1, paper.2, paper.3, s.pins, s.cells, s.nets
        );
    }
}
