//! Stage-by-stage runtime profile of the framework — the quantities §6's
//! closing discussion reports in prose: training-data generation time
//! (dominated by TS evaluation, accelerated by the filter), GNN training
//! time, and — for unseen designs under the same delay model — only
//! inference + model generation.

use std::time::Instant;
use tmm_bench::library;
use tmm_circuits::designs::{eval_suite, training_suite};
use tmm_core::{Framework, FrameworkConfig};
use tmm_macromodel::extract_ilm;
use tmm_sensitivity::{
    build_dataset, evaluate_ts, filter_insensitive, FilterOptions, TsEngine, TsOptions,
};
use tmm_sta::graph::ArcGraph;

fn main() {
    let lib = library();
    let mut config = FrameworkConfig::default();
    config.ts.threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!("Pipeline profile (per-stage wall clock)\n");

    // Stage 1a: insensitive-pin filtering alone.
    let suite = training_suite(&lib).expect("suite");
    let mut filter_time = 0.0;
    let mut filter_rate = 0.0;
    for e in &suite {
        let flat = ArcGraph::from_netlist(&e.netlist, &lib).expect("lowering");
        let (ilm, _) = extract_ilm(&flat).expect("ilm");
        let t = Instant::now();
        let f = filter_insensitive(&ilm, &FilterOptions::default()).expect("filter");
        filter_time += t.elapsed().as_secs_f64();
        filter_rate += f.filter_rate();
    }
    println!(
        "  filter (6 training designs)      : {:>8.2} s  (mean filter rate {:.1}%)",
        filter_time,
        100.0 * filter_rate / suite.len() as f64
    );

    // Stage 1a': the tentpole comparison — TS probing via the clone-per-pin
    // engine versus the shared-core GraphView + cone-retime engine. Both are
    // sequential here so the ratio isolates the engine, and the ts vectors
    // must agree bit-for-bit.
    let mut clone_time = 0.0;
    let mut view_time = 0.0;
    for e in &suite {
        let flat = ArcGraph::from_netlist(&e.netlist, &lib).expect("lowering");
        let (ilm, _) = extract_ilm(&flat).expect("ilm");
        let f = filter_insensitive(&ilm, &FilterOptions::default()).expect("filter");
        let base = TsOptions { cppr: config.cppr_mode, threads: 1, ..config.ts };
        let t = Instant::now();
        let ts_clone = evaluate_ts(
            &ilm,
            &f.survivors,
            &TsOptions { engine: TsEngine::Clone, ..base },
        )
        .expect("clone TS");
        clone_time += t.elapsed().as_secs_f64();
        let t = Instant::now();
        let ts_view = evaluate_ts(
            &ilm,
            &f.survivors,
            &TsOptions { engine: TsEngine::View, ..base },
        )
        .expect("view TS");
        view_time += t.elapsed().as_secs_f64();
        let identical = ts_clone
            .ts
            .iter()
            .zip(&ts_view.ts)
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(identical, "view TS must be bit-identical to clone TS on {}", e.name);
    }
    println!(
        "  TS engine: clone-per-pin         : {clone_time:>8.2} s  (legacy engine)"
    );
    println!(
        "  TS engine: view + cone retime    : {view_time:>8.2} s  ({:.1}x faster, ts bit-identical)",
        clone_time / view_time.max(1e-12)
    );

    // Stage 1b: full TS data generation (includes the filter).
    let t = Instant::now();
    let mut positive = 0.0;
    for e in &suite {
        let flat = ArcGraph::from_netlist(&e.netlist, &lib).expect("lowering");
        let (ilm, _) = extract_ilm(&flat).expect("ilm");
        let ds = build_dataset(&ilm, &config.dataset_options()).expect("dataset");
        positive += ds.positive_rate;
    }
    println!(
        "  TS data generation (6 designs)   : {:>8.2} s  (mean positive rate {:.1}%)",
        t.elapsed().as_secs_f64(),
        100.0 * positive / suite.len() as f64
    );

    // Stage 2: GNN training.
    let designs: Vec<(String, tmm_sta::netlist::Netlist)> =
        suite.into_iter().map(|e| (e.name, e.netlist)).collect();
    let mut fw = Framework::new(config);
    let summary = fw.train(&designs, &lib).expect("training");
    println!(
        "  GNN training ({} epochs)        : {:>8.2} s  (loss {:.4}, recall {:.3})",
        120,
        summary.train_time.as_secs_f64(),
        summary.final_loss,
        summary.train_metrics.recall()
    );

    // Stage 3: per-design inference + generation on the eval suite — the
    // only cost for unseen designs under the same delay model (§6).
    println!("\n  per unseen design (inference + generation):");
    for entry in eval_suite(&lib).expect("suite").iter().take(5) {
        let flat = ArcGraph::from_netlist(&entry.netlist, &lib).expect("lowering");
        let t = Instant::now();
        let outcome = fw.generate_macro(&flat).expect("generation");
        println!(
            "    {:<26} {:>8.3} s  (inference {:>6.1} ms, {} pins kept)",
            entry.name,
            t.elapsed().as_secs_f64(),
            outcome.prediction.inference_time.as_secs_f64() * 1e3,
            outcome.kept_pins
        );
    }
    println!("\nPaper's claim to compare against: inference < 5 s/design, TS data");
    println!("generation minutes-to-hours, GNN training ~30 min (at 500x our scale on");
    println!("a GPU). Shapes: inference negligible next to generation; the filter");
    println!("cuts TS cost by the filtered share.");
}
