//! Stage-by-stage runtime profile of the framework — the quantities §6's
//! closing discussion reports in prose: training-data generation time
//! (dominated by TS evaluation, accelerated by the filter), GNN training
//! time, and — for unseen designs under the same delay model — only
//! inference + model generation.
//!
//! Besides the human-readable table, writes two machine-readable
//! artifacts for CI trend tracking: `BENCH_gnn_train.json` (kernel
//! comparison) and `BENCH_pipeline.json` (stable per-stage records
//! `{stage, design, wall_ms, throughput}` plus an embedded run report).

// Experiment driver: aborting with a message on a broken setup is the
// intended failure mode (the clippy gate targets library code paths).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::time::Instant;
use tmm_bench::library;
use tmm_circuits::designs::{eval_suite, training_suite};
use tmm_circuits::CircuitSpec;
use tmm_core::{Framework, FrameworkConfig};
use tmm_gnn::{Backend, GnnModel, TrainSample};
use tmm_macromodel::{extract_ilm, reduce_graph_via_view_budget, ReducePolicy};
use tmm_sensitivity::{
    build_dataset, evaluate_ts, filter_insensitive, FilterOptions, TsEngine, TsOptions,
};
use tmm_sta::constraints::Context;
use tmm_sta::graph::{ArcGraph, NodeKind};
use tmm_sta::propagate::{Analysis, AnalysisOptions};
use tmm_sta::view::{DesignCore, GraphView};

/// Trains the framework's model on the prepared samples with the given
/// kernel backend and thread count; returns the wall-clock seconds and a
/// bit-exact fingerprint (weights + loss histories + predictions).
fn train_kernels(
    config: &FrameworkConfig,
    samples: &[TrainSample],
    backend: Backend,
    threads: usize,
) -> (f64, (String, Vec<u32>, Vec<u32>)) {
    let mut model = GnnModel::new(
        config.feature_count(),
        tmm_gnn::ModelConfig { task: config.task(), ..config.model },
    );
    let cfg = tmm_gnn::TrainConfig { backend, threads, ..config.train };
    let t = Instant::now();
    let report = model.train(samples, &cfg);
    let secs = t.elapsed().as_secs_f64();
    let losses: Vec<u32> = report
        .history
        .iter()
        .chain(&report.val_history)
        .map(|x| x.to_bits())
        .collect();
    let preds: Vec<u32> = samples
        .iter()
        .flat_map(|s| model.predict_par(&s.graph, &s.features, threads))
        .map(|x| x.to_bits())
        .collect();
    (secs, (model.to_text(), losses, preds))
}

/// Value of `--name <v>` in `argv`, if present.
fn arg_value(argv: &[String], name: &str) -> Option<String> {
    argv.iter().position(|a| a == name).and_then(|i| argv.get(i + 1).cloned())
}

fn parsed_arg<T: std::str::FromStr>(argv: &[String], name: &str, default: T) -> T
where
    T::Err: std::fmt::Display,
{
    match arg_value(argv, name) {
        Some(v) => match v.parse() {
            Ok(x) => x,
            Err(e) => {
                eprintln!("bad value for {name}: {e}");
                std::process::exit(1);
            }
        },
        None => default,
    }
}

/// The scale sweep (`--scale`): flat analysis, capped TS sweep, and macro
/// merge on synthetic designs from 10k up to `--scale-max-pins` pins,
/// emitting pins-per-second per stage into `BENCH_scale.json`. Runs
/// *instead of* the training-pipeline profile so CI can gate on a single
/// size point without paying for the full profile.
fn run_scale_sweep(argv: &[String]) {
    tmm_obs::enable_metrics();
    let max_pins: usize = parsed_arg(argv, "--scale-max-pins", 5_000_000);
    let budget_mb: usize = parsed_arg(argv, "--mem-budget-mb", 0);
    let threads: usize = parsed_arg(argv, "--threads", 1);
    let probes: usize = parsed_arg(argv, "--probes", 64);
    let contexts: usize = parsed_arg(argv, "--contexts", 2);
    let lib = library();
    let mut records: Vec<tmm_obs::BenchRecord> = Vec::new();
    let mut report = tmm_obs::RunReport::new("scale_sweep");
    report.design = "scale_sweep".to_string();
    report.fact("mem_budget_mb", budget_mb);
    report.fact("threads", threads);
    report.fact("ts_probe_cap", probes);
    report.fact("ts_contexts", contexts);

    println!("Scale sweep (budget {budget_mb} MiB, {threads} thread(s), {contexts} context(s))\n");
    for target in [10_000usize, 100_000, 1_000_000, 5_000_000] {
        if target > max_pins {
            println!("  skipping the {target}-pin point (--scale-max-pins {max_pins})");
            continue;
        }
        let name = format!("scale_{target}");
        let t = Instant::now();
        let netlist = CircuitSpec::sized(&name, target).seed(11).generate(&lib).expect("generate");
        let flat = ArcGraph::from_netlist(&netlist, &lib).expect("lowering");
        let gen_s = t.elapsed().as_secs_f64();
        let pins = flat.live_nodes();
        let arcs = flat.live_arcs();
        println!("  {name}: {pins} pins, {arcs} arcs (generated in {gen_s:.1} s)");

        let t = Instant::now();
        let core = DesignCore::freeze(&flat);
        let freeze_s = t.elapsed().as_secs_f64();
        let core_mb = core.memory_estimate() as f64 / (1024.0 * 1024.0);
        let view = GraphView::new(core.clone());
        let ctx = Context::nominal(&flat);
        let t = Instant::now();
        let an = Analysis::run_leveled(&view, &ctx, AnalysisOptions::default(), threads)
            .expect("flat analysis");
        let analysis_s = t.elapsed().as_secs_f64();
        assert!(!an.boundary().po.is_empty(), "analysis must reach the boundary");
        records.push(tmm_obs::BenchRecord {
            stage: "flat_analysis".to_string(),
            design: name.clone(),
            wall_ms: analysis_s * 1e3,
            throughput: pins as f64 / analysis_s.max(1e-12),
        });
        println!(
            "    flat analysis : {analysis_s:>8.2} s  ({:.0} pins/s; freeze {freeze_s:.2} s, core est {core_mb:.0} MiB)",
            pins as f64 / analysis_s.max(1e-12)
        );

        // TS probes are capped: the sweep measures per-probe cost at scale,
        // not exhaustive coverage. The cap is explicit in the output and in
        // the bench record's throughput denominator.
        let mut survivors = vec![false; flat.node_count()];
        let mut chosen = 0usize;
        for (i, node) in flat.nodes().iter().enumerate() {
            if chosen == probes {
                break;
            }
            if !node.dead && node.kind == NodeKind::Internal {
                survivors[i] = true;
                chosen += 1;
            }
        }
        let ts_opts = TsOptions {
            contexts,
            threads,
            mem_budget_mb: budget_mb,
            ..TsOptions::default()
        };
        let t = Instant::now();
        let ts = evaluate_ts(&flat, &survivors, &ts_opts).expect("ts sweep");
        let ts_s = t.elapsed().as_secs_f64();
        records.push(tmm_obs::BenchRecord {
            stage: "ts_sweep".to_string(),
            design: name.clone(),
            wall_ms: ts_s * 1e3,
            throughput: (ts.evaluated * contexts) as f64 / ts_s.max(1e-12),
        });
        println!(
            "    TS sweep      : {ts_s:>8.2} s  ({} of {chosen} capped probes evaluated, {:.1} probe-contexts/s)",
            ts.evaluated,
            (ts.evaluated * contexts) as f64 / ts_s.max(1e-12)
        );

        let keep = vec![false; flat.node_count()];
        let t = Instant::now();
        let vr = reduce_graph_via_view_budget(&core, &keep, &ReducePolicy::default(), budget_mb)
            .expect("macro merge");
        let merge_s = t.elapsed().as_secs_f64();
        records.push(tmm_obs::BenchRecord {
            stage: "macro_merge".to_string(),
            design: name.clone(),
            wall_ms: merge_s * 1e3,
            throughput: pins as f64 / merge_s.max(1e-12),
        });
        let rss_mb = tmm_obs::peak_rss_bytes() as f64 / (1024.0 * 1024.0);
        println!(
            "    macro merge   : {merge_s:>8.2} s  ({:.0} pins/s, {} bypassed, {} overlay flushes)",
            pins as f64 / merge_s.max(1e-12),
            vr.stats.bypassed,
            vr.flushes
        );
        println!("    peak RSS so far: {rss_mb:.0} MiB");
        report.fact(&format!("{name}_pins"), pins);
        report.fact(&format!("{name}_arcs"), arcs);
        report.fact(&format!("{name}_core_mib"), format!("{core_mb:.1}"));
        report.fact(&format!("{name}_merge_flushes"), vr.flushes);
        report.fact(&format!("{name}_peak_rss_mib"), format!("{rss_mb:.0}"));
    }
    report.capture_environment();
    let doc = tmm_obs::render_bench_json("scale", &records, &report);
    if let Err(e) = tmm_ckpt::atomic_write_str("BENCH_scale.json", &doc) {
        eprintln!("warning: could not write BENCH_scale.json: {e}");
    }
    println!("\nwrote BENCH_scale.json ({} records)", records.len());
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    // Live status endpoint for either mode; the guard keeps the service
    // thread alive until the profile finishes.
    let _live = arg_value(&argv, "--status-addr")
        .map(|addr| tmm_obs::serve_status(&addr).expect("status endpoint"));
    if argv.iter().any(|a| a == "--scale") {
        run_scale_sweep(&argv);
        return;
    }
    // Record metrics and stage spans so the emitted BENCH_pipeline.json
    // carries the same run report `tmm model --report-out` produces.
    tmm_obs::enable_metrics();
    tmm_obs::enable_tracing();
    let mut records: Vec<tmm_obs::BenchRecord> = Vec::new();
    let mut record = |stage: &str, design: &str, wall_s: f64, throughput: f64| {
        records.push(tmm_obs::BenchRecord {
            stage: stage.to_string(),
            design: design.to_string(),
            wall_ms: wall_s * 1e3,
            throughput,
        });
    };

    let lib = library();
    let mut config = FrameworkConfig::default();
    config.ts.threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!("Pipeline profile (per-stage wall clock)\n");

    // Stage 1a: insensitive-pin filtering alone.
    let suite = training_suite(&lib).expect("suite");
    let mut filter_time = 0.0;
    let mut filter_rate = 0.0;
    for e in &suite {
        let flat = ArcGraph::from_netlist(&e.netlist, &lib).expect("lowering");
        let (ilm, _) = extract_ilm(&flat).expect("ilm");
        let t = Instant::now();
        let f = filter_insensitive(&ilm, &FilterOptions::default()).expect("filter");
        filter_time += t.elapsed().as_secs_f64();
        filter_rate += f.filter_rate();
    }
    record("filter", "training_suite", filter_time, 0.0);
    println!(
        "  filter (6 training designs)      : {:>8.2} s  (mean filter rate {:.1}%)",
        filter_time,
        100.0 * filter_rate / suite.len() as f64
    );

    // Stage 1a': the tentpole comparison — TS probing via the clone-per-pin
    // engine versus the shared-core GraphView + cone-retime engine. Both are
    // sequential here so the ratio isolates the engine, and the ts vectors
    // must agree bit-for-bit.
    let mut clone_time = 0.0;
    let mut view_time = 0.0;
    for e in &suite {
        let flat = ArcGraph::from_netlist(&e.netlist, &lib).expect("lowering");
        let (ilm, _) = extract_ilm(&flat).expect("ilm");
        let f = filter_insensitive(&ilm, &FilterOptions::default()).expect("filter");
        let base = TsOptions { cppr: config.cppr_mode, threads: 1, ..config.ts };
        let t = Instant::now();
        let ts_clone = evaluate_ts(
            &ilm,
            &f.survivors,
            &TsOptions { engine: TsEngine::Clone, ..base },
        )
        .expect("clone TS");
        clone_time += t.elapsed().as_secs_f64();
        let t = Instant::now();
        let ts_view = evaluate_ts(
            &ilm,
            &f.survivors,
            &TsOptions { engine: TsEngine::View, ..base },
        )
        .expect("view TS");
        view_time += t.elapsed().as_secs_f64();
        let identical = ts_clone
            .ts
            .iter()
            .zip(&ts_view.ts)
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(identical, "view TS must be bit-identical to clone TS on {}", e.name);
    }
    record("ts_engine_clone", "training_suite", clone_time, 0.0);
    record("ts_engine_view", "training_suite", view_time, 0.0);
    println!(
        "  TS engine: clone-per-pin         : {clone_time:>8.2} s  (legacy engine)"
    );
    println!(
        "  TS engine: view + cone retime    : {view_time:>8.2} s  ({:.1}x faster, ts bit-identical)",
        clone_time / view_time.max(1e-12)
    );

    // Stage 1b: full TS data generation (includes the filter). The samples
    // are kept for stage 2': the GNN kernel comparison trains on exactly
    // the datasets the framework trains on.
    let t = Instant::now();
    let mut positive = 0.0;
    let mut samples = Vec::new();
    for e in &suite {
        let flat = ArcGraph::from_netlist(&e.netlist, &lib).expect("lowering");
        let (ilm, _) = extract_ilm(&flat).expect("ilm");
        let ds = build_dataset(&ilm, &config.dataset_options()).expect("dataset");
        positive += ds.positive_rate;
        samples.push(ds.sample);
    }
    let datagen_s = t.elapsed().as_secs_f64();
    let total_rows: usize = samples.iter().map(|s| s.features.rows()).sum();
    record(
        "data_generation",
        "training_suite",
        datagen_s,
        total_rows as f64 / datagen_s.max(1e-12),
    );
    println!(
        "  TS data generation (6 designs)   : {:>8.2} s  (mean positive rate {:.1}%)",
        datagen_s,
        100.0 * positive / suite.len() as f64
    );

    // Stage 2': the GNN compute-kernel comparison — the retained naive
    // reference kernels (sequential) versus the blocked/parallel kernels
    // at 4 threads, on the same training suite. Both runs must agree
    // bit-for-bit on weights, loss histories, and predictions: the blocked
    // path is a reimplementation, not a re-tuning.
    let (naive_s, naive_fp) = train_kernels(&config, &samples, Backend::Naive, 1);
    let (seq_s, seq_fp) = train_kernels(&config, &samples, Backend::Blocked, 1);
    let (blocked_s, blocked_fp) = train_kernels(&config, &samples, Backend::Blocked, 4);
    assert_eq!(
        naive_fp, seq_fp,
        "blocked kernels must train bit-identically to the naive reference"
    );
    assert_eq!(
        seq_fp, blocked_fp,
        "blocked kernels must be thread-count invariant"
    );
    let seq_speedup = naive_s / seq_s.max(1e-12);
    let speedup = naive_s / blocked_s.max(1e-12);
    println!(
        "  GNN train kernels: naive (1t)    : {naive_s:>8.2} s  (reference)"
    );
    println!(
        "  GNN train kernels: blocked (1t)  : {seq_s:>8.2} s  ({seq_speedup:.1}x, kernel effect alone)"
    );
    println!(
        "  GNN train kernels: blocked (4t)  : {blocked_s:>8.2} s  ({speedup:.1}x faster, output bit-identical)"
    );
    let json = format!(
        "{{\n  \"bench\": \"gnn_train\",\n  \"naive_seconds\": {naive_s:.4},\n  \"blocked_seconds_1t\": {seq_s:.4},\n  \"blocked_seconds_4t\": {blocked_s:.4},\n  \"speedup_1t\": {seq_speedup:.2},\n  \"speedup_4t\": {speedup:.2}\n}}\n"
    );
    if let Err(e) = tmm_ckpt::atomic_write_str("BENCH_gnn_train.json", &json) {
        eprintln!("warning: could not write BENCH_gnn_train.json: {e}");
    }
    record("gnn_kernels_naive_1t", "training_suite", naive_s, 0.0);
    record("gnn_kernels_blocked_1t", "training_suite", seq_s, 0.0);
    record("gnn_kernels_blocked_4t", "training_suite", blocked_s, 0.0);

    // Stage 2: GNN training.
    let designs: Vec<(String, tmm_sta::netlist::Netlist)> =
        suite.into_iter().map(|e| (e.name, e.netlist)).collect();
    let mut fw = Framework::new(config);
    let summary = fw.train(&designs, &lib).expect("training");
    record(
        "training",
        "training_suite",
        summary.train_time.as_secs_f64(),
        total_rows as f64 / summary.train_time.as_secs_f64().max(1e-12),
    );
    println!(
        "  GNN training ({} epochs)        : {:>8.2} s  (loss {:.4}, recall {:.3})",
        120,
        summary.train_time.as_secs_f64(),
        summary.final_loss,
        summary.train_metrics.recall()
    );

    // Stage 3: per-design inference + generation on the eval suite — the
    // only cost for unseen designs under the same delay model (§6).
    println!("\n  per unseen design (inference + generation):");
    for entry in eval_suite(&lib).expect("suite").iter().take(5) {
        let flat = ArcGraph::from_netlist(&entry.netlist, &lib).expect("lowering");
        let t = Instant::now();
        let outcome = fw.generate_macro(&flat).expect("generation");
        let gen_s = t.elapsed().as_secs_f64();
        record(
            "macro_generation",
            &entry.name,
            gen_s,
            outcome.kept_pins as f64 / gen_s.max(1e-12),
        );
        println!(
            "    {:<26} {:>8.3} s  (inference {:>6.1} ms, {} pins kept)",
            entry.name,
            gen_s,
            outcome.prediction.inference_time.as_secs_f64() * 1e3,
            outcome.kept_pins
        );
    }
    println!("\nPaper's claim to compare against: inference < 5 s/design, TS data");
    println!("generation minutes-to-hours, GNN training ~30 min (at 500x our scale on");
    println!("a GPU). Shapes: inference negligible next to generation; the filter");
    println!("cuts TS cost by the filtered share.");

    let mut report = tmm_obs::RunReport::new("pipeline_profile");
    report.design = "training_suite+eval_suite".to_string();
    report.config_fingerprint = config.fingerprint();
    report.capture_environment();
    let doc = tmm_obs::render_bench_json("pipeline", &records, &report);
    if let Err(e) = tmm_ckpt::atomic_write_str("BENCH_pipeline.json", &doc) {
        eprintln!("warning: could not write BENCH_pipeline.json: {e}");
    }
}
