//! Regenerates **Table 6**: validation of the insensitive-pin filter.
//!
//! The experiment labels *every* pin surviving the filter as timing-variant
//! (bypassing the GNN entirely) and checks that accuracy matches iTimerM
//! while the model is only marginally larger — evidence that the filter
//! never discards a pin the TS flow would have labelled variant.

// Experiment driver: aborting with a message on a broken setup is the
// intended failure mode (the clippy gate targets library code paths).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use tmm_bench::{
    eval_itimerm, eval_model, library, print_header, print_ratio, print_row, ratio_summary,
};
use tmm_circuits::designs::eval_suite;
use tmm_macromodel::baselines::output_variant_pins;
use tmm_macromodel::{extract_ilm, MacroModel, MacroModelOptions};
use tmm_sensitivity::{filter_insensitive, FilterOptions};
use tmm_sta::graph::ArcGraph;
use tmm_macromodel::eval::EvalOptions;

fn main() {
    let lib = library();
    let suite = eval_suite(&lib).expect("suite generation");
    let opts = EvalOptions { contexts: 5, cppr: true, ..Default::default() };

    for (group, filt) in [("TAU2016", true), ("TAU2017", false)] {
        let designs: Vec<_> = suite
            .iter()
            .filter(|e| e.name.ends_with("_eval") == filt && !e.name.contains("matrix_mult"))
            .collect();
        print_header(&format!(
            "Table 6 ({group}): all filter survivors labelled variant vs iTimerM"
        ));
        let mut survivors_rows = Vec::new();
        let mut itm_rows = Vec::new();
        for entry in &designs {
            let flat = ArcGraph::from_netlist(&entry.netlist, &lib).expect("lowering");
            let (ilm, _) = extract_ilm(&flat).expect("ilm");
            let filter = filter_insensitive(
                &ilm,
                &FilterOptions { keep_cppr_pins: true, ..Default::default() },
            )
            .expect("filter");
            let mut keep = filter.survivors.clone();
            for (i, &h) in output_variant_pins(&ilm).iter().enumerate() {
                keep[i] = keep[i] || h;
            }
            let model = MacroModel::generate(&flat, &keep, &MacroModelOptions::default())
                .expect("generation");
            let row =
                eval_model(entry, &lib, &model, "Filter", &opts).expect("eval filter model");
            let i = eval_itimerm(entry, &lib, &opts).expect("eval itimerm");
            print_row(&row);
            print_row(&i);
            survivors_rows.push(row);
            itm_rows.push(i);
        }
        print_ratio(
            &format!("{group} (iTimerM vs Filter-as-labels)"),
            &ratio_summary(&survivors_rows, &itm_rows),
        );
        println!();
    }
}
