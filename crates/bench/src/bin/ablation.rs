//! Ablation study of the framework's design choices (DESIGN.md hooks):
//!
//! 1. **GNN engine** — GraphSAGE-mean (paper) vs GraphSAGE-pool vs GCN
//!    (§5.1: "other GNN models could be embedded").
//! 2. **Label form** — classification (paper main) vs regression on raw TS
//!    (§5.3).
//! 3. **LUT index selection** — on (paper, via iTimerM §5.2) vs off.
//!
//! Each variant trains on the standard suite and is evaluated on the three
//! mid-size TAU17 designs.

// Experiment driver: aborting with a message on a broken setup is the
// intended failure mode (the clippy gate targets library code paths).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use tmm_bench::{eval_ours, library, print_header, print_row, train_standard, MethodRow};
use tmm_circuits::designs::eval_suite;
use tmm_core::FrameworkConfig;
use tmm_gnn::Engine;
use tmm_macromodel::eval::EvalOptions;
use tmm_macromodel::MacroModelOptions;

fn run_variant(
    label: &str,
    config: FrameworkConfig,
    rows: &mut Vec<MethodRow>,
) {
    let lib = library();
    let fw = train_standard(config, &lib).expect("training succeeds");
    let suite = eval_suite(&lib).expect("suite generation");
    let opts = EvalOptions { contexts: 4, ..Default::default() };
    for entry in suite
        .iter()
        .filter(|e| ["mgc_edit_dist_iccad", "vga_lcd_iccad", "mgc_matrix_mult_iccad"]
            .contains(&e.name.as_str()))
    {
        let mut row = eval_ours(&fw, entry, &lib, &opts).expect("eval");
        row.method = label.to_string();
        print_row(&row);
        rows.push(row);
    }
}

fn main() {
    print_header("Ablations: engine / label form / LUT index selection");
    let mut rows = Vec::new();

    run_variant("sage", FrameworkConfig::default(), &mut rows);
    run_variant(
        "pool",
        FrameworkConfig::default().with_engine(Engine::GraphSagePool),
        &mut rows,
    );
    run_variant("gcn", FrameworkConfig::default().with_engine(Engine::Gcn), &mut rows);
    run_variant(
        "regress",
        FrameworkConfig { regression: true, ..Default::default() },
        &mut rows,
    );
    run_variant(
        "no_lut",
        FrameworkConfig {
            macro_options: MacroModelOptions { compress_luts: false, ..Default::default() },
            ..Default::default()
        },
        &mut rows,
    );

    println!();
    let summary = |label: &str| {
        let sel: Vec<&MethodRow> = rows.iter().filter(|r| r.method == label).collect();
        let n = sel.len().max(1) as f64;
        let avg_err: f64 = sel.iter().map(|r| r.avg_err_ps).sum::<f64>() / n;
        let max_err: f64 = sel.iter().map(|r| r.max_err_ps).sum::<f64>() / n;
        let file: f64 = sel.iter().map(|r| r.file_kib).sum::<f64>() / n;
        println!(
            "{label:<8} avg err {avg_err:>8.4} ps, mean max err {max_err:>8.3} ps, mean file {file:>9.1} KiB"
        );
    };
    for label in ["sage", "pool", "gcn", "regress", "no_lut"] {
        summary(label);
    }
    println!("\nExpected: the three engines land within the same accuracy/size regime");
    println!("(the framework is engine-agnostic, §5.1); regression keeps a different,");
    println!("larger pin set driven by relative criticality; LUT index selection is the");
    println!("size/accuracy knob — disabling it cuts interpolation error but inflates");
    println!("the model severalfold (all methods share the setting, so comparisons in");
    println!("Tables 3-6 are unaffected).");
}
