//! Regenerates **Figure 6**: the timing-sensitivity distribution of the
//! `fft_ispd` training design — the long-tailed shape motivating the
//! insensitive-pin filter (~70 % of pins with zero TS, few pins with large
//! TS).

// Experiment driver: aborting with a message on a broken setup is the
// intended failure mode (the clippy gate targets library code paths).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use tmm_bench::ascii_histogram;
use tmm_circuits::designs::{suite_library, training_design};
use tmm_macromodel::extract_ilm;
use tmm_sensitivity::{evaluate_ts, TsOptions};
use tmm_sta::graph::{ArcGraph, NodeId, NodeKind};

fn main() {
    let lib = suite_library();
    let netlist = training_design("fft_ispd", 1001).expect("generation");
    let flat = ArcGraph::from_netlist(&netlist, &lib).expect("lowering");
    let (ilm, _) = extract_ilm(&flat).expect("ilm");

    // Evaluate TS for every removable internal pin (no filtering — this
    // figure motivates the filter).
    let candidates: Vec<bool> = (0..ilm.node_count())
        .map(|i| {
            let n = NodeId(i as u32);
            !ilm.node(n).dead && ilm.node(n).kind == NodeKind::Internal
        })
        .collect();
    let ts = evaluate_ts(&ilm, &candidates, &TsOptions { contexts: 4, ..Default::default() })
        .expect("ts evaluation");

    let values: Vec<f64> = ts.ts.iter().copied().filter(|t| t.is_finite()).collect();
    let zero = values.iter().filter(|&&t| t <= 1e-7).count();
    println!(
        "Figure 6: timing sensitivity distribution of fft_ispd ({} pins evaluated, {} skipped)",
        ts.evaluated, ts.skipped
    );
    println!(
        "zero-TS pins: {} / {} ({:.1}%)  [paper: ~70%]",
        zero,
        values.len(),
        100.0 * zero as f64 / values.len().max(1) as f64
    );
    let buckets = [
        (0.0, 1e-7, "0"),
        (1e-7, 1e-5, "(0,1e-5)"),
        (1e-5, 1e-4, "[1e-5,1e-4)"),
        (1e-4, 1e-3, "[1e-4,1e-3)"),
        (1e-3, 1e-2, "[1e-3,1e-2)"),
        (1e-2, 1e-1, "[1e-2,1e-1)"),
        (1e-1, f64::MAX, ">=1e-1"),
    ];
    print!("{}", ascii_histogram(&values, &buckets));
}
