//! Criterion bench: the GNN kernel layer in isolation — blocked/parallel
//! kernels vs the retained naive references, at the exact shapes the
//! 2-layer hidden-32 model produces on a leon3mp-scale pin graph.
//!
//! GEMM shapes come from the real forward pass over `n` pins with
//! `BASE_FEATURES = 8` input features and hidden width 32: the first SAGE
//! combine is `(n x 16)·(16 x 32)`, the second `(n x 64)·(64 x 32)`, and
//! the head `(n x 32)·(32 x 1)`. The CSR aggregates run over the actual
//! pin graph of a generated ~8k-pin design.

// Experiment driver: aborting with a message on a broken setup is the
// intended failure mode (the clippy gate targets library code paths).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use tmm_circuits::CircuitSpec;
use tmm_gnn::kernels::{self, naive, KernelPolicy};
use tmm_gnn::{NeighborMode, NodeGraph};
use tmm_sensitivity::pin_graph_edges;
use tmm_sta::graph::ArcGraph;
use tmm_sta::liberty::Library;

/// Deterministic bench data; no global RNG involved.
fn pseudo(len: usize, seed: u64) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 2_000) as f32 / 500.0 - 2.0
        })
        .collect()
}

/// The leon3mp-scale pin graph the aggregates run over in practice.
fn pin_graph(target: usize, lib: &Library) -> NodeGraph {
    let netlist = CircuitSpec::sized("g", target).seed(3).generate(lib).unwrap();
    let graph = ArcGraph::from_netlist(&netlist, lib).unwrap();
    NodeGraph::from_edges(
        graph.node_count(),
        &pin_graph_edges(&graph),
        NeighborMode::Undirected,
    )
}

fn bench_gemm(c: &mut Criterion) {
    // Rows = pin count of the 8k-target design; (k, n) pairs are the three
    // matmuls of one forward pass through the default model.
    let m = 8192;
    let shapes: [(usize, usize, &str); 3] =
        [(16, 32, "layer1_16x32"), (64, 32, "layer2_64x32"), (32, 1, "head_32x1")];

    let mut group = c.benchmark_group("gnn_kernels/gemm");
    group.sample_size(10);
    for (k, n, name) in shapes {
        let a = pseudo(m * k, 1);
        let b = pseudo(k * n, 2);
        let mut out = vec![0.0f32; m * n];
        group.bench_function(format!("naive/{name}"), |bch| {
            bch.iter(|| naive::gemm(&a, &b, &mut out, m, k, n))
        });
        for threads in [1usize, 4] {
            let pol = KernelPolicy::with_threads(threads);
            group.bench_function(format!("blocked_t{threads}/{name}"), |bch| {
                bch.iter(|| kernels::gemm(&a, &b, &mut out, m, k, n, pol))
            });
        }
    }
    // The backward pass's reduction GEMM (dW = Xᵀ·dZ) at layer-2 shape —
    // the kernel with the fixed-chunk ordered reduction.
    let (k_rows, mm, nn) = (m, 64, 32);
    let a = pseudo(k_rows * mm, 3);
    let b = pseudo(k_rows * nn, 4);
    let mut out = vec![0.0f32; mm * nn];
    let mut scratch = Vec::new();
    group.bench_function("naive/gemm_tn_64x32", |bch| {
        bch.iter(|| naive::gemm_tn(&a, &b, &mut out, k_rows, mm, nn, mm, &mut scratch))
    });
    for threads in [1usize, 4] {
        let pol = KernelPolicy::with_threads(threads);
        group.bench_function(format!("blocked_t{threads}/gemm_tn_64x32"), |bch| {
            bch.iter(|| {
                kernels::gemm_tn(&a, &b, &mut out, k_rows, mm, nn, mm, &mut scratch, pol)
            })
        });
    }
    group.finish();
}

fn bench_aggregate(c: &mut Criterion) {
    let lib = Library::synthetic(1);
    let g = pin_graph(8000, &lib);
    let n = g.nodes();
    let cols = 32;
    let h = pseudo(n * cols, 5);
    let mut out = vec![0.0f32; n * cols];
    let mut gathered = vec![0.0f32; n * 2 * cols];

    let mut group = c.benchmark_group("gnn_kernels/aggregate");
    group.sample_size(10);
    group.bench_function("naive/mean_aggregate", |bch| {
        bch.iter(|| naive::mean_aggregate(&g, &h, cols, &mut out))
    });
    for threads in [1usize, 4] {
        let pol = KernelPolicy::with_threads(threads);
        group.bench_function(format!("blocked_t{threads}/mean_aggregate"), |bch| {
            bch.iter(|| kernels::mean_aggregate_into(&g, &h, cols, &mut out, pol))
        });
        group.bench_function(format!("blocked_t{threads}/mean_adjoint"), |bch| {
            bch.iter(|| kernels::mean_aggregate_adjoint_into(&g, &h, cols, &mut out, pol))
        });
        group.bench_function(format!("blocked_t{threads}/sage_gather"), |bch| {
            bch.iter(|| kernels::sage_gather(&g, &h, cols, &mut gathered, pol))
        });
        group.bench_function(format!("blocked_t{threads}/gcn_propagate"), |bch| {
            bch.iter(|| kernels::gcn_propagate_into(&g, &h, cols, &mut out, pol))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_aggregate);
criterion_main!(benches);
