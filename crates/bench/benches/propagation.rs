//! Criterion bench: forward/backward timing propagation throughput on
//! designs of increasing size (the inner loop of everything else).

// Experiment driver: aborting with a message on a broken setup is the
// intended failure mode (the clippy gate targets library code paths).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tmm_circuits::CircuitSpec;
use tmm_sta::constraints::Context;
use tmm_sta::graph::ArcGraph;
use tmm_sta::incremental::IncrementalTimer;
use tmm_sta::liberty::Library;
use tmm_sta::propagate::{Analysis, AnalysisOptions};

fn bench_propagation(c: &mut Criterion) {
    let lib = Library::synthetic(1);
    let mut group = c.benchmark_group("propagation");
    group.sample_size(20);
    for target in [500usize, 2000, 8000] {
        let netlist = CircuitSpec::sized("p", target).seed(7).generate(&lib).unwrap();
        let graph = ArcGraph::from_netlist(&netlist, &lib).unwrap();
        let ctx = Context::nominal(&graph);
        group.bench_with_input(
            BenchmarkId::new("full_analysis", graph.live_nodes()),
            &graph,
            |b, g| b.iter(|| Analysis::run(g, &ctx).unwrap()),
        );
    }
    group.finish();
}

fn bench_incremental(c: &mut Criterion) {
    let lib = Library::synthetic(1);
    let netlist = CircuitSpec::sized("i", 4000).seed(7).generate(&lib).unwrap();
    let graph = ArcGraph::from_netlist(&netlist, &lib).unwrap();
    let ctx = Context::nominal(&graph);

    let mut group = c.benchmark_group("incremental");
    group.sample_size(20);
    group.bench_function("full_per_load_change", |b| {
        let mut ctx = ctx.clone();
        let mut toggle = false;
        b.iter(|| {
            toggle = !toggle;
            ctx.po[0].load = if toggle { 40.0 } else { 2.0 };
            Analysis::run(&graph, &ctx).unwrap()
        })
    });
    group.bench_function("incremental_per_load_change", |b| {
        let mut timer =
            IncrementalTimer::new(&graph, ctx.clone(), AnalysisOptions::default()).unwrap();
        let mut toggle = false;
        b.iter(|| {
            toggle = !toggle;
            timer.set_po_load(0, if toggle { 40.0 } else { 2.0 }).unwrap();
        })
    });
    group.finish();
}

criterion_group!(benches, bench_propagation, bench_incremental);
criterion_main!(benches);
