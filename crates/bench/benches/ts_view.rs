//! Criterion bench: TS probing through the copy-on-write [`GraphView`] +
//! cone-limited retime versus the legacy clone-per-pin engine. Both produce
//! bit-identical `TsResult::ts`; the view engine's advantage is structural —
//! no graph clone and only the edited cone re-propagated per probe.

// Experiment driver: aborting with a message on a broken setup is the
// intended failure mode (the clippy gate targets library code paths).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use tmm_circuits::CircuitSpec;
use tmm_macromodel::extract_ilm;
use tmm_sensitivity::{
    evaluate_ts, evaluate_ts_with_core, filter_insensitive, FilterOptions, TsEngine, TsOptions,
};
use tmm_sta::graph::ArcGraph;
use tmm_sta::liberty::Library;
use tmm_sta::retime::ReferenceAnalysis;
use tmm_sta::view::{DesignCore, GraphView, TimingGraph};

fn bench_ts_view(c: &mut Criterion) {
    let lib = Library::synthetic(1);
    let netlist = CircuitSpec::sized("v", 800).seed(11).generate(&lib).unwrap();
    let flat = ArcGraph::from_netlist(&netlist, &lib).unwrap();
    let (ilm, _) = extract_ilm(&flat).unwrap();
    let filtered = filter_insensitive(&ilm, &FilterOptions::default()).unwrap();
    let core = DesignCore::freeze(&ilm);

    let mut group = c.benchmark_group("ts_view");
    group.sample_size(10);
    for (label, engine) in [("engine_clone", TsEngine::Clone), ("engine_view", TsEngine::View)] {
        let opts = TsOptions { contexts: 2, engine, ..Default::default() };
        group.bench_function(label, |b| {
            b.iter(|| evaluate_ts(&ilm, &filtered.survivors, &opts).unwrap())
        });
    }
    // Entry point that amortises the freeze across sweeps (what
    // `build_dataset` uses): the core is frozen once outside the loop.
    let opts = TsOptions { contexts: 2, engine: TsEngine::View, ..Default::default() };
    group.bench_function("engine_view_prefrozen", |b| {
        b.iter(|| evaluate_ts_with_core(&core, &filtered.survivors, &opts).unwrap())
    });
    group.finish();

    // Single-probe costs: one bypass edit, retimed via the cone versus a
    // fresh full analysis of the same view.
    let reference = ReferenceAnalysis::new(
        core.clone(),
        tmm_sta::constraints::Context::nominal(&*core),
        tmm_sta::propagate::AnalysisOptions::default(),
    )
    .unwrap();
    let probe = GraphView::new(core.clone());
    let victim = (0..core.node_count())
        .map(|i| tmm_sta::graph::NodeId(i as u32))
        .find(|&n| filtered.survivors[n.index()] && probe.can_bypass(n))
        .expect("at least one bypassable survivor");

    let mut group = c.benchmark_group("ts_probe");
    group.sample_size(30);
    group.bench_function("cone_retime", |b| {
        let mut scratch = reference.scratch();
        b.iter(|| {
            let mut view = GraphView::new(core.clone());
            view.bypass_node(victim).unwrap();
            reference.retime(&view, &mut scratch).unwrap()
        })
    });
    group.bench_function("full_analysis", |b| {
        b.iter(|| {
            let mut view = GraphView::new(core.clone());
            view.bypass_node(victim).unwrap();
            tmm_sta::propagate::Analysis::run_with_options(
                &view,
                reference.ctx(),
                reference.options(),
            )
            .unwrap()
            .boundary()
            .clone()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ts_view);
criterion_main!(benches);
