//! Criterion bench: the incremental cost of CPPR — plain analysis versus
//! CPPR-enabled analysis on a register-heavy design.

// Experiment driver: aborting with a message on a broken setup is the
// intended failure mode (the clippy gate targets library code paths).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use tmm_circuits::CircuitSpec;
use tmm_sta::constraints::Context;
use tmm_sta::cppr::CpprReport;
use tmm_sta::graph::ArcGraph;
use tmm_sta::liberty::Library;
use tmm_sta::propagate::{Analysis, AnalysisOptions};

fn bench_cppr(c: &mut Criterion) {
    let lib = Library::synthetic(1);
    let netlist = CircuitSpec::new("c")
        .inputs(8)
        .outputs(8)
        .register_banks(4, 24)
        .cloud(3, 12)
        .seed(5)
        .generate(&lib)
        .unwrap();
    let graph = ArcGraph::from_netlist(&netlist, &lib).unwrap();
    let ctx = Context::nominal(&graph);

    let mut group = c.benchmark_group("cppr");
    group.sample_size(20);
    group.bench_function("analysis_plain", |b| b.iter(|| Analysis::run(&graph, &ctx).unwrap()));
    group.bench_function("analysis_with_cppr", |b| {
        b.iter(|| Analysis::run_with_options(&graph, &ctx, AnalysisOptions { cppr: true, ..Default::default() }).unwrap())
    });
    let analysis =
        Analysis::run_with_options(&graph, &ctx, AnalysisOptions { cppr: true, ..Default::default() }).unwrap();
    group.bench_function("cppr_report", |b| b.iter(|| CpprReport::from_analysis(&graph, &analysis)));
    group.finish();
}

criterion_group!(benches, bench_cppr);
criterion_main!(benches);
