//! Criterion bench: training-data generation — the insensitive-pin filter
//! versus full TS evaluation, quantifying the paper's ~10× speed-up claim
//! (§4.2).

// Experiment driver: aborting with a message on a broken setup is the
// intended failure mode (the clippy gate targets library code paths).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use tmm_circuits::CircuitSpec;
use tmm_macromodel::extract_ilm;
use tmm_sensitivity::{evaluate_ts, filter_insensitive, FilterOptions, TsOptions};
use tmm_sta::graph::{ArcGraph, NodeId, NodeKind};
use tmm_sta::liberty::Library;

fn bench_sensitivity(c: &mut Criterion) {
    let lib = Library::synthetic(1);
    let netlist = CircuitSpec::sized("s", 800).seed(11).generate(&lib).unwrap();
    let flat = ArcGraph::from_netlist(&netlist, &lib).unwrap();
    let (ilm, _) = extract_ilm(&flat).unwrap();
    let all_internal: Vec<bool> = (0..ilm.node_count())
        .map(|i| {
            let n = NodeId(i as u32);
            !ilm.node(n).dead && ilm.node(n).kind == NodeKind::Internal
        })
        .collect();
    let filtered = filter_insensitive(&ilm, &FilterOptions::default()).unwrap();
    let ts_opts = TsOptions { contexts: 2, ..Default::default() };

    let mut group = c.benchmark_group("sensitivity");
    group.sample_size(10);
    group.bench_function("filter", |b| {
        b.iter(|| filter_insensitive(&ilm, &FilterOptions::default()).unwrap())
    });
    group.bench_function("ts_all_pins", |b| {
        b.iter(|| evaluate_ts(&ilm, &all_internal, &ts_opts).unwrap())
    });
    group.bench_function("ts_filtered_pins", |b| {
        b.iter(|| evaluate_ts(&ilm, &filtered.survivors, &ts_opts).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_sensitivity);
criterion_main!(benches);
