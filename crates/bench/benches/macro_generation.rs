//! Criterion bench: macro model generation time — ILM-based reduction with
//! an iTimerM-style keep-set versus ATM-style total collapse (the paper's
//! "generation runtime" columns), plus the LUT-compression ablation.

// Experiment driver: aborting with a message on a broken setup is the
// intended failure mode (the clippy gate targets library code paths).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use tmm_circuits::CircuitSpec;
use tmm_macromodel::baselines::{generate_atm, itimerm_keep_mask, ITIMERM_DEFAULT_TOLERANCE};
use tmm_macromodel::{MacroModel, MacroModelOptions};
use tmm_sta::graph::ArcGraph;
use tmm_sta::liberty::Library;

fn bench_generation(c: &mut Criterion) {
    let lib = Library::synthetic(1);
    let netlist = CircuitSpec::sized("g", 2000).seed(9).generate(&lib).unwrap();
    let graph = ArcGraph::from_netlist(&netlist, &lib).unwrap();
    let keep = itimerm_keep_mask(&graph, ITIMERM_DEFAULT_TOLERANCE).unwrap();

    let mut group = c.benchmark_group("macro_generation");
    group.sample_size(10);
    group.bench_function("ilm_keepset", |b| {
        b.iter(|| MacroModel::generate(&graph, &keep, &MacroModelOptions::default()).unwrap())
    });
    group.bench_function("ilm_keepset_no_lut_compress", |b| {
        b.iter(|| {
            MacroModel::generate(
                &graph,
                &keep,
                &MacroModelOptions { compress_luts: false, ..Default::default() },
            )
            .unwrap()
        })
    });
    group.bench_function("atm_total_collapse", |b| {
        b.iter(|| generate_atm(&graph, &MacroModelOptions::default()).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
