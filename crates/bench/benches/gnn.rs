//! Criterion bench: GNN training epochs and inference — validating the
//! paper's claim that inference on an unseen design takes negligible time
//! next to model generation, plus the GraphSAGE-vs-GCN engine ablation.

// Experiment driver: aborting with a message on a broken setup is the
// intended failure mode (the clippy gate targets library code paths).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use tmm_circuits::CircuitSpec;
use tmm_gnn::{Engine, GnnModel, ModelConfig, NeighborMode, NodeGraph, TrainConfig, TrainSample};
use tmm_sensitivity::{extract_features, pin_graph_edges};
use tmm_sta::graph::ArcGraph;
use tmm_sta::liberty::Library;

fn sample_for(target: usize, lib: &Library) -> TrainSample {
    let netlist = CircuitSpec::sized("g", target).seed(3).generate(lib).unwrap();
    let graph = ArcGraph::from_netlist(&netlist, lib).unwrap();
    let features = extract_features(&graph, false);
    let node_graph = NodeGraph::from_edges(
        graph.node_count(),
        &pin_graph_edges(&graph),
        NeighborMode::Undirected,
    );
    let labels: Vec<f32> =
        (0..graph.node_count()).map(|i| f32::from(u8::from(i % 7 == 0))).collect();
    TrainSample { graph: node_graph, features, labels, mask: None }
}

fn bench_gnn(c: &mut Criterion) {
    let lib = Library::synthetic(1);
    let small = sample_for(1000, &lib);
    let big = sample_for(8000, &lib);

    let mut group = c.benchmark_group("gnn");
    group.sample_size(10);
    group.bench_function("train_20_epochs_sage", |b| {
        b.iter(|| {
            let mut m = GnnModel::new(8, ModelConfig::default());
            m.train(
                std::slice::from_ref(&small),
                &TrainConfig { epochs: 20, ..Default::default() },
            )
        })
    });
    group.bench_function("train_20_epochs_gcn", |b| {
        b.iter(|| {
            let mut m =
                GnnModel::new(8, ModelConfig { engine: Engine::Gcn, ..Default::default() });
            m.train(
                std::slice::from_ref(&small),
                &TrainConfig { epochs: 20, ..Default::default() },
            )
        })
    });
    let mut trained = GnnModel::new(8, ModelConfig::default());
    trained.train(
        std::slice::from_ref(&small),
        &TrainConfig { epochs: 10, ..Default::default() },
    );
    group.bench_function("inference_8k_pins", |b| {
        b.iter(|| trained.predict(&big.graph, &big.features))
    });
    group.finish();
}

criterion_group!(benches, bench_gnn);
criterion_main!(benches);
