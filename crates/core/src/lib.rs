//! End-to-end GNN-based timing macro modeling — the DAC 2022 paper's
//! contribution, assembled from the workspace substrates.
//!
//! The [`Framework`] runs the three stages of the paper's Fig. 4:
//!
//! 1. **Timing sensitivity data generation** ([`tmm_sensitivity`]) — random
//!    boundary contexts, insensitive-pin filtering, per-pin TS evaluation.
//! 2. **GNN training** ([`tmm_gnn`]) — a GraphSAGE (or GCN) classifier on
//!    the Table-1 features, trained on small designs.
//! 3. **Macro model generation** ([`tmm_macromodel`]) — ILM extraction,
//!    keep-set merging driven by the GNN prediction, LUT index selection.
//!
//! # Example
//!
//! ```
//! use tmm_circuits::CircuitSpec;
//! use tmm_core::{Framework, FrameworkConfig};
//! use tmm_gnn::TrainConfig;
//! use tmm_sensitivity::TsOptions;
//! use tmm_sta::liberty::Library;
//!
//! # fn main() -> Result<(), tmm_sta::StaError> {
//! let library = Library::synthetic(7);
//! let design = CircuitSpec::new("quick").register_banks(1, 3).seed(5).generate(&library)?;
//! let mut framework = Framework::new(FrameworkConfig {
//!     train: TrainConfig { epochs: 30, ..Default::default() },
//!     ts: TsOptions { contexts: 2, ..Default::default() },
//!     ..Default::default()
//! });
//! let outcome = framework.run_on(&design, &library)?;
//! println!("macro model keeps {} pins", outcome.kept_pins);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod framework;

pub use config::FrameworkConfig;
pub use error::{Stage, TmmError};
pub use framework::{
    Framework, PredictionStats, QuarantinedDesign, RunOutcome, TrainingSummary,
};
