//! Unified framework error: an [`StaError`] tagged with the pipeline
//! stage (and, when applicable, the design) it occurred in.
//!
//! Every [`Framework`](crate::Framework) entry point returns
//! [`TmmError`] so callers — most importantly the `tmm` CLI — can map a
//! failure to its class (validation, parse, analysis, …) without string
//! matching. Code that only cares about the underlying [`StaError`]
//! (the workspace examples, benches) keeps working unchanged: `?`
//! converts through [`From<TmmError> for StaError`], dropping the stage
//! tag.

use std::fmt;
use tmm_sta::StaError;

/// Framework result type.
pub type Result<T> = std::result::Result<T, TmmError>;

/// The pipeline stage a [`TmmError`] originated in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Stage {
    /// Stage 1: lowering designs and generating TS training data.
    DataGeneration,
    /// An artifact validation pass at a stage boundary.
    Validation,
    /// Stage 2: GNN optimisation.
    Training,
    /// Stage 3a: keep-mask prediction.
    Prediction,
    /// Stage 3b: macro model generation.
    MacroGeneration,
    /// Deserialising a trained model.
    Import,
    /// Serialising a trained model.
    Export,
}

impl Stage {
    /// Stable lowercase name, used in diagnostics and CLI output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::DataGeneration => "data-generation",
            Stage::Validation => "validation",
            Stage::Training => "training",
            Stage::Prediction => "prediction",
            Stage::MacroGeneration => "macro-generation",
            Stage::Import => "import",
            Stage::Export => "export",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An [`StaError`] with the stage (and optionally the design) it hit.
#[derive(Debug, Clone, PartialEq)]
pub struct TmmError {
    /// Stage the error occurred in.
    pub stage: Stage,
    /// Design being processed, when the failure is design-scoped.
    pub design: Option<String>,
    /// The underlying error.
    pub source: StaError,
}

impl TmmError {
    /// Wraps `source` with a stage tag.
    #[must_use]
    pub fn new(stage: Stage, source: StaError) -> Self {
        TmmError { stage, design: None, source }
    }

    /// Wraps `source` with a stage tag and the design it was scoped to.
    #[must_use]
    pub fn for_design(stage: Stage, design: impl Into<String>, source: StaError) -> Self {
        TmmError { stage, design: Some(design.into()), source }
    }
}

impl fmt::Display for TmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.design {
            Some(d) => write!(f, "{} stage failed on design `{d}`: {}", self.stage, self.source),
            None => write!(f, "{} stage failed: {}", self.stage, self.source),
        }
    }
}

impl std::error::Error for TmmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Lossy compatibility conversion: drops the stage/design tag so
/// existing `Result<_, StaError>` call sites keep compiling with `?`.
impl From<TmmError> for StaError {
    fn from(e: TmmError) -> StaError {
        e.source
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_stage_and_design() {
        let plain = TmmError::new(Stage::Training, StaError::IllegalEdit("boom".into()));
        assert_eq!(plain.to_string(), "training stage failed: illegal graph edit: boom");
        let scoped = TmmError::for_design(
            Stage::Validation,
            "d1",
            StaError::CombinationalCycle(3),
        );
        let msg = scoped.to_string();
        assert!(msg.starts_with("validation stage failed on design `d1`:"), "{msg}");
    }

    #[test]
    fn converts_back_to_sta_error() {
        let e = TmmError::new(Stage::Import, StaError::NoClock);
        let sta: StaError = e.into();
        assert_eq!(sta, StaError::NoClock);
    }

    #[test]
    fn error_source_chains() {
        use std::error::Error;
        let e = TmmError::new(Stage::Prediction, StaError::NoClock);
        assert!(e.source().is_some());
    }
}
