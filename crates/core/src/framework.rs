//! The end-to-end GNN-based timing macro modeling framework (Fig. 4).
//!
//! Stage 1 (data generation) and stage 2 (GNN training) run once over a set
//! of small training designs; stage 3 (prediction + macro generation) then
//! applies to arbitrary, much larger designs — the inductive setting that
//! makes GraphSAGE the natural engine (§5.3).

use crate::config::FrameworkConfig;
use std::time::{Duration, Instant};
use tmm_gnn::{classify_metrics, ConfusionCounts, GnnModel, NeighborMode, NodeGraph, TrainSample};
use tmm_macromodel::baselines::output_variant_pins;
use tmm_macromodel::{extract_ilm, MacroModel};
use tmm_sensitivity::dataset::build_dataset;
use tmm_sensitivity::{extract_features, pin_graph_edges};
use tmm_sta::graph::ArcGraph;
use tmm_sta::liberty::Library;
use tmm_sta::netlist::Netlist;
use tmm_sta::{Result, StaError};

/// Summary of one training run.
#[derive(Debug, Clone)]
pub struct TrainingSummary {
    /// Per-design `(name, positive label rate)`.
    pub design_positive_rates: Vec<(String, f64)>,
    /// Final training loss.
    pub final_loss: f32,
    /// Aggregate confusion counts of the trained model on its own training
    /// pins (sanity metric, not a generalisation claim).
    pub train_metrics: ConfusionCounts,
    /// Wall-clock time spent generating training data.
    pub data_time: Duration,
    /// Wall-clock time spent in GNN optimisation.
    pub train_time: Duration,
}

/// Per-design prediction statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PredictionStats {
    /// Pins predicted timing-variant.
    pub predicted_variant: usize,
    /// Pins hard-kept independently of the GNN (output-net, CPPR pins).
    pub hard_kept: usize,
    /// GNN inference wall-clock time.
    pub inference_time: Duration,
}

/// Outcome of running the framework on one design.
#[derive(Debug)]
pub struct RunOutcome {
    /// The generated macro model.
    pub model: MacroModel,
    /// Pins kept in the model.
    pub kept_pins: usize,
    /// Prediction statistics.
    pub prediction: PredictionStats,
}

/// The trained (or trainable) framework.
#[derive(Debug)]
pub struct Framework {
    config: FrameworkConfig,
    model: Option<GnnModel>,
}

impl Framework {
    /// Creates an untrained framework.
    #[must_use]
    pub fn new(config: FrameworkConfig) -> Self {
        Framework { config, model: None }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &FrameworkConfig {
        &self.config
    }

    /// `true` once [`Framework::train`] has produced a model.
    #[must_use]
    pub fn is_trained(&self) -> bool {
        self.model.is_some()
    }

    /// Stage 1 + 2: generates TS training data from each `(name, netlist)`
    /// design and trains the GNN.
    ///
    /// # Errors
    ///
    /// Propagates lowering/analysis errors from data generation.
    pub fn train(
        &mut self,
        designs: &[(String, Netlist)],
        library: &Library,
    ) -> Result<TrainingSummary> {
        let data_start = Instant::now();
        let mut samples: Vec<TrainSample> = Vec::with_capacity(designs.len());
        let mut design_positive_rates = Vec::with_capacity(designs.len());
        let ds_opts = self.config.dataset_options();
        for (name, netlist) in designs {
            let flat = ArcGraph::from_netlist(netlist, library)?;
            let (ilm, _) = extract_ilm(&flat)?;
            let dataset = build_dataset(&ilm, &ds_opts)?;
            design_positive_rates.push((name.clone(), dataset.positive_rate));
            samples.push(dataset.sample);
        }
        let data_time = data_start.elapsed();

        let train_start = Instant::now();
        let mut gnn = GnnModel::new(
            self.config.feature_count(),
            tmm_gnn::ModelConfig {
                task: self.config.task(),
                ..self.config.model
            },
        );
        let report = gnn.train(&samples, &self.config.train);
        let train_time = train_start.elapsed();

        let mut train_metrics = ConfusionCounts::default();
        if !self.config.regression {
            for s in &samples {
                let probs = gnn.predict(&s.graph, &s.features);
                let m = classify_metrics(
                    &probs,
                    &s.labels,
                    s.mask.as_deref(),
                    self.config.keep_threshold,
                );
                train_metrics.tp += m.tp;
                train_metrics.fp += m.fp;
                train_metrics.fn_ += m.fn_;
                train_metrics.tn += m.tn;
            }
        }
        self.model = Some(gnn);
        Ok(TrainingSummary {
            design_positive_rates,
            final_loss: report.final_loss,
            train_metrics,
            data_time,
            train_time,
        })
    }

    /// Stage 3a: predicts the keep mask for an interface-logic graph.
    ///
    /// # Errors
    ///
    /// Returns [`StaError::IllegalEdit`] if the framework is untrained.
    pub fn predict_keep_mask(&self, ilm: &ArcGraph) -> Result<(Vec<bool>, PredictionStats)> {
        let Some(model) = &self.model else {
            return Err(StaError::IllegalEdit("framework is not trained".into()));
        };
        let start = Instant::now();
        let features = extract_features(ilm, self.config.with_cppr_feature);
        let graph =
            NodeGraph::from_edges(ilm.node_count(), &pin_graph_edges(ilm), NeighborMode::Undirected);
        let scores = model.predict(&graph, &features);
        let mut keep: Vec<bool> = scores
            .iter()
            .map(|&p| {
                if self.config.regression {
                    f64::from(p) > self.config.ts.zero_eps
                } else {
                    p >= self.config.keep_threshold
                }
            })
            .collect();
        let predicted_variant = keep
            .iter()
            .zip(ilm.nodes())
            .filter(|&(&k, n)| k && !n.dead)
            .count();
        // Hard keeps that no modeler may drop: pins whose delay depends on
        // the context output load. CPPR-crucial clock pins are *not*
        // hard-kept — the GNN learns them from the §5.1 label augmentation
        // (and, with `is_CPPR`, sees them explicitly), which is exactly the
        // Table 4 ablation.
        let mut hard_kept = 0usize;
        for (i, &h) in output_variant_pins(ilm).iter().enumerate() {
            if h && !keep[i] {
                keep[i] = true;
                hard_kept += 1;
            }
        }
        let stats =
            PredictionStats { predicted_variant, hard_kept, inference_time: start.elapsed() };
        Ok((keep, stats))
    }

    /// Stage 3: generates a macro model for a flat design graph.
    ///
    /// # Errors
    ///
    /// Returns [`StaError::IllegalEdit`] if untrained; propagates
    /// generation errors.
    pub fn generate_macro(&self, flat: &ArcGraph) -> Result<RunOutcome> {
        let (ilm, _) = extract_ilm(flat)?;
        let (keep, prediction) = self.predict_keep_mask(&ilm)?;
        let model = MacroModel::generate(flat, &keep, &self.config.macro_options)?;
        Ok(RunOutcome { kept_pins: model.stats().kept_pins, model, prediction })
    }

    /// Serialises the trained GNN (architecture + weights) so inference can
    /// be reused across processes without regenerating TS data.
    ///
    /// # Errors
    ///
    /// Returns [`StaError::IllegalEdit`] if the framework is untrained.
    pub fn export_model(&self) -> Result<String> {
        self.model
            .as_ref()
            .map(GnnModel::to_text)
            .ok_or_else(|| StaError::IllegalEdit("framework is not trained".into()))
    }

    /// Restores a framework from a serialised GNN and a configuration. The
    /// configuration's feature switches must match the model's input
    /// dimension.
    ///
    /// # Errors
    ///
    /// Returns [`StaError::ParseFormat`] on malformed model text and
    /// [`StaError::IllegalEdit`] on a feature-dimension mismatch.
    pub fn import_model(config: FrameworkConfig, text: &str) -> Result<Framework> {
        let model = GnnModel::from_text(text).map_err(|e| StaError::ParseFormat {
            line: 0,
            message: e.to_string(),
        })?;
        if model.in_dim() != config.feature_count() {
            return Err(StaError::IllegalEdit(format!(
                "model expects {} features, configuration provides {}",
                model.in_dim(),
                config.feature_count()
            )));
        }
        Ok(Framework { config, model: Some(model) })
    }

    /// Convenience one-shot: trains on the design itself if the framework
    /// is untrained (useful for quickstarts), then generates its macro
    /// model.
    ///
    /// # Errors
    ///
    /// Propagates training and generation errors.
    pub fn run_on(&mut self, netlist: &Netlist, library: &Library) -> Result<RunOutcome> {
        if !self.is_trained() {
            self.train(
                std::slice::from_ref(&(netlist.name().to_string(), netlist.clone())),
                library,
            )?;
        }
        let flat = ArcGraph::from_netlist(netlist, library)?;
        self.generate_macro(&flat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmm_circuits::CircuitSpec;
    use tmm_gnn::TrainConfig;
    use tmm_macromodel::eval::{evaluate, EvalOptions};
    use tmm_sensitivity::TsOptions;
    use tmm_sta::cppr::cppr_crucial_pins;

    fn quick_config() -> FrameworkConfig {
        FrameworkConfig {
            train: TrainConfig { epochs: 60, ..Default::default() },
            ts: TsOptions { contexts: 2, ..Default::default() },
            ..Default::default()
        }
    }

    fn design(seed: u64, lib: &Library) -> Netlist {
        CircuitSpec::new(format!("d{seed}"))
            .inputs(4)
            .outputs(4)
            .register_banks(2, 4)
            .cloud(2, 5)
            .seed(seed)
            .generate(lib)
            .unwrap()
    }

    #[test]
    fn untrained_framework_refuses_prediction() {
        let lib = Library::synthetic(13);
        let fw = Framework::new(quick_config());
        let flat = ArcGraph::from_netlist(&design(1, &lib), &lib).unwrap();
        assert!(fw.generate_macro(&flat).is_err());
        assert!(!fw.is_trained());
    }

    #[test]
    fn train_then_generate_produces_accurate_model() {
        let lib = Library::synthetic(13);
        let mut fw = Framework::new(quick_config());
        let designs: Vec<(String, Netlist)> =
            (1..=2).map(|s| (format!("d{s}"), design(s, &lib))).collect();
        let summary = fw.train(&designs, &lib).unwrap();
        assert!(fw.is_trained());
        assert!(summary.final_loss.is_finite());
        assert_eq!(summary.design_positive_rates.len(), 2);
        // unseen design
        let flat = ArcGraph::from_netlist(&design(9, &lib), &lib).unwrap();
        let outcome = fw.generate_macro(&flat).unwrap();
        assert!(outcome.kept_pins > 0);
        assert!(outcome.kept_pins < flat.live_nodes());
        let result = evaluate(
            &flat,
            &outcome.model,
            &EvalOptions { contexts: 3, ..Default::default() },
        )
        .unwrap();
        assert!(
            result.accuracy.max < 60.0,
            "GNN keep-set should keep error small, got {}",
            result.accuracy.max
        );
    }

    #[test]
    fn run_on_self_trains_if_needed() {
        let lib = Library::synthetic(13);
        let mut fw = Framework::new(quick_config());
        let d = design(3, &lib);
        let outcome = fw.run_on(&d, &lib).unwrap();
        assert!(fw.is_trained());
        assert!(outcome.kept_pins > 0);
        assert!(outcome.prediction.predicted_variant > 0);
    }

    #[test]
    fn export_import_round_trip_predicts_identically() {
        let lib = Library::synthetic(13);
        let mut fw = Framework::new(quick_config());
        let d = design(4, &lib);
        fw.train(&[("d4".into(), d.clone())], &lib).unwrap();
        let text = fw.export_model().unwrap();
        let restored = Framework::import_model(*fw.config(), &text).unwrap();
        assert!(restored.is_trained());
        let flat = ArcGraph::from_netlist(&d, &lib).unwrap();
        let (ilm, _) = extract_ilm(&flat).unwrap();
        let (keep_a, _) = fw.predict_keep_mask(&ilm).unwrap();
        let (keep_b, _) = restored.predict_keep_mask(&ilm).unwrap();
        assert_eq!(keep_a, keep_b, "restored model must decide identically");
    }

    #[test]
    fn import_rejects_feature_mismatch() {
        let lib = Library::synthetic(13);
        let mut fw = Framework::new(quick_config()); // 8 features
        fw.train(&[("d".into(), design(6, &lib))], &lib).unwrap();
        let text = fw.export_model().unwrap();
        let err = Framework::import_model(FrameworkConfig::cppr(), &text); // 9 features
        assert!(err.is_err());
        assert!(Framework::new(quick_config()).export_model().is_err(), "untrained");
    }

    #[test]
    fn cppr_mode_keeps_clock_branch_points() {
        let lib = Library::synthetic(13);
        let mut fw = Framework::new(FrameworkConfig {
            cppr_mode: true,
            with_cppr_feature: true,
            train: TrainConfig { epochs: 40, ..Default::default() },
            ts: TsOptions { contexts: 2, ..Default::default() },
            ..Default::default()
        });
        let d = design(5, &lib);
        fw.train(&[("d5".into(), d.clone())], &lib).unwrap();
        let flat = ArcGraph::from_netlist(&d, &lib).unwrap();
        let (ilm, _) = extract_ilm(&flat).unwrap();
        let (keep, _) = fw.predict_keep_mask(&ilm).unwrap();
        for p in cppr_crucial_pins(&ilm) {
            assert!(keep[p.index()], "CPPR-crucial pin must be kept");
        }
    }
}
