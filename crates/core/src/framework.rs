//! The end-to-end GNN-based timing macro modeling framework (Fig. 4).
//!
//! Stage 1 (data generation) and stage 2 (GNN training) run once over a set
//! of small training designs; stage 3 (prediction + macro generation) then
//! applies to arbitrary, much larger designs — the inductive setting that
//! makes GraphSAGE the natural engine (§5.3).
//!
//! # Failure model
//!
//! Every entry point returns [`TmmError`], an [`StaError`] tagged with the
//! stage it failed in. With [`FrameworkConfig::validate`] on (the default)
//! the [`tmm_sta::validate`] passes run at each stage boundary, and the
//! framework degrades gracefully instead of aborting:
//!
//! * **Training** isolates per-design failures: a design whose netlist
//!   fails validation or lowering is *quarantined* — skipped and recorded
//!   in [`TrainingSummary::quarantined`] — and training proceeds on the
//!   healthy designs. Training only errors when *no* design survives.
//! * **Divergence** during GNN optimisation is retried with a reduced
//!   learning rate and rolled back to the best finite checkpoint (see
//!   [`tmm_gnn::TrainConfig`]); if the final model is still unhealthy the
//!   framework enters a *degraded* state.
//! * **Degraded prediction** falls back to the pure-ILM keep-all mask: an
//!   unhealthy model must never drop pins, so every live interface pin is
//!   kept and the outcome is flagged via [`RunOutcome::degraded`]. An
//!   *untrained* framework still refuses to predict — degradation is a
//!   property of a model that exists but cannot be trusted.

use crate::config::FrameworkConfig;
use crate::error::{Result, Stage, TmmError};
use std::time::{Duration, Instant};
use tmm_ckpt::{CkptError, StageStore};
use tmm_gnn::{
    classify_metrics, CkptHook, ConfusionCounts, GnnModel, NeighborMode, NodeGraph, TrainReport,
    TrainSample,
};
use tmm_macromodel::baselines::output_variant_pins;
use tmm_macromodel::{extract_ilm, MacroModel};
use tmm_sensitivity::dataset::{build_dataset, build_dataset_ckpt, DatasetOptions, PinDataset};
use tmm_sensitivity::{extract_features, pin_graph_edges};
use tmm_sta::graph::ArcGraph;
use tmm_sta::liberty::Library;
use tmm_sta::netlist::Netlist;
use tmm_sta::validate::{validate_arc_graph, validate_library, validate_netlist, ValidationReport};
use tmm_sta::StaError;

/// A training design that was skipped because one of its stages failed.
#[derive(Debug, Clone)]
pub struct QuarantinedDesign {
    /// Design name.
    pub name: String,
    /// Stage the design failed in.
    pub stage: Stage,
    /// The error that caused the quarantine.
    pub error: StaError,
}

/// Summary of one training run.
#[derive(Debug, Clone)]
pub struct TrainingSummary {
    /// Per-design `(name, positive label rate)` over the designs that
    /// actually entered training.
    pub design_positive_rates: Vec<(String, f64)>,
    /// Designs skipped because validation or lowering failed; training
    /// proceeded on the remaining designs.
    pub quarantined: Vec<QuarantinedDesign>,
    /// Per-design `(name, pin count)` of pins whose TS evaluation was
    /// quarantined during the sweep (kept conservatively as variant). Only
    /// designs with at least one such pin appear; callers should log each
    /// entry once at warn level rather than per pin.
    pub ts_quarantined: Vec<(String, usize)>,
    /// Final training loss.
    pub final_loss: f32,
    /// Aggregate confusion counts of the trained model on its own training
    /// pins (sanity metric, not a generalisation claim).
    pub train_metrics: ConfusionCounts,
    /// Learning-rate backoff retries taken after divergence.
    pub retries: usize,
    /// `true` when optimisation still diverged after all retries.
    pub diverged: bool,
    /// `true` when the final weights were rolled back to a checkpoint.
    pub rolled_back: bool,
    /// `true` when the framework left training in the degraded state
    /// (see [`Framework::is_degraded`]).
    pub degraded: bool,
    /// Wall-clock time spent generating training data.
    pub data_time: Duration,
    /// Wall-clock time spent in GNN optimisation.
    pub train_time: Duration,
}

/// Per-design prediction statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PredictionStats {
    /// Pins predicted timing-variant.
    pub predicted_variant: usize,
    /// Pins hard-kept independently of the GNN (output-net, CPPR pins —
    /// or every live pin under the degraded keep-all fallback).
    pub hard_kept: usize,
    /// GNN inference wall-clock time.
    pub inference_time: Duration,
}

/// Outcome of running the framework on one design.
#[derive(Debug)]
pub struct RunOutcome {
    /// The generated macro model.
    pub model: MacroModel,
    /// Pins kept in the model.
    pub kept_pins: usize,
    /// Prediction statistics.
    pub prediction: PredictionStats,
    /// `true` when the keep mask came from the degraded pure-ILM
    /// fallback rather than the GNN.
    pub degraded: bool,
}

/// The trained (or trainable) framework.
#[derive(Debug)]
pub struct Framework {
    config: FrameworkConfig,
    model: Option<GnnModel>,
    degraded: bool,
}

/// Checkpoint stage key for the post-training final artifact.
const TRAIN_FINAL_STAGE: &str = "train_final";
/// Epoch interval between training checkpoints on the resumable path.
const TRAIN_CKPT_EVERY: usize = 10;

/// Maps a checkpoint-layer failure into a stage-tagged framework error.
fn ckpt_err(stage: Stage, e: CkptError) -> TmmError {
    TmmError::new(
        stage,
        StaError::Validation { artifact: "checkpoint", errors: 1, first: e.to_string() },
    )
}

/// Serialises the completed-training artifact (`train_final v1`): the
/// stable [`TrainReport`] facts on the first line, the trained model text
/// verbatim after it. Loss histories are *not* stored — the summary never
/// reads them, and everything else is recomputed deterministically.
fn render_train_final(model: &GnnModel, report: &TrainReport) -> String {
    format!(
        "train_final v1 final_loss {:e} retries {} stopped_early {} rolled_back {} diverged {}\n{}",
        report.final_loss,
        report.retries,
        u8::from(report.stopped_early),
        u8::from(report.rolled_back),
        u8::from(report.diverged),
        model.to_text()
    )
}

fn parse_train_final(payload: &str) -> std::result::Result<(GnnModel, TrainReport), String> {
    let (head, model_text) =
        payload.split_once('\n').ok_or("missing model text after header")?;
    let t: Vec<&str> = head.split_whitespace().collect();
    if t.len() != 12 {
        return Err(format!("header has {} tokens, expected 12", t.len()));
    }
    for (i, kw) in [
        (0, "train_final"),
        (1, "v1"),
        (2, "final_loss"),
        (4, "retries"),
        (6, "stopped_early"),
        (8, "rolled_back"),
        (10, "diverged"),
    ] {
        if t[i] != kw {
            return Err(format!("expected `{kw}` at token {i}, found `{}`", t[i]));
        }
    }
    let final_loss = t[3].parse::<f32>().map_err(|e| format!("bad final_loss: {e}"))?;
    let retries = t[5].parse::<usize>().map_err(|e| format!("bad retries: {e}"))?;
    let flag = |v: &str, kw: &str| match v {
        "0" => Ok(false),
        "1" => Ok(true),
        other => Err(format!("bad {kw} flag `{other}`")),
    };
    let stopped_early = flag(t[7], "stopped_early")?;
    let rolled_back = flag(t[9], "rolled_back")?;
    let diverged = flag(t[11], "diverged")?;
    let model = GnnModel::from_text(model_text).map_err(|e| format!("embedded model: {e}"))?;
    Ok((
        model,
        TrainReport {
            history: Vec::new(),
            final_loss,
            val_history: Vec::new(),
            stopped_early,
            retries,
            rolled_back,
            diverged,
        },
    ))
}

/// Maps a validation report into a stage-tagged error when it contains
/// error-severity diagnostics.
fn validated(stage: Stage, design: Option<&str>, report: ValidationReport) -> Result<()> {
    match report.into_result() {
        Ok(_) => Ok(()),
        Err(e) => Err(match design {
            Some(d) => TmmError::for_design(stage, d, e),
            None => TmmError::new(stage, e),
        }),
    }
}

impl Framework {
    /// Creates an untrained framework.
    #[must_use]
    pub fn new(config: FrameworkConfig) -> Self {
        Framework { config, model: None, degraded: false }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &FrameworkConfig {
        &self.config
    }

    /// `true` once [`Framework::train`] has produced a model.
    #[must_use]
    pub fn is_trained(&self) -> bool {
        self.model.is_some()
    }

    /// `true` when a model exists but cannot be trusted (training
    /// diverged beyond recovery, or non-finite weights were imported).
    /// Prediction then uses the pure-ILM keep-all fallback.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Runs the per-design stage-1 pipeline: validation (when enabled),
    /// lowering, ILM extraction, TS dataset generation.
    fn prepare_design(
        &self,
        name: &str,
        netlist: &Netlist,
        library: &Library,
        ds_opts: &DatasetOptions,
        ckpt: Option<&mut (dyn StageStore + '_)>,
    ) -> Result<PinDataset> {
        if self.config.validate {
            validated(Stage::Validation, Some(name), validate_netlist(netlist, library))?;
        }
        let flat = ArcGraph::from_netlist(netlist, library)
            .map_err(|e| TmmError::for_design(Stage::DataGeneration, name, e))?;
        if self.config.validate {
            validated(Stage::Validation, Some(name), validate_arc_graph(&flat))?;
        }
        let (ilm, _) = extract_ilm(&flat)
            .map_err(|e| TmmError::for_design(Stage::DataGeneration, name, e))?;
        match ckpt {
            Some(store) => build_dataset_ckpt(&ilm, ds_opts, store, &format!("ts.{name}")),
            None => build_dataset(&ilm, ds_opts),
        }
        .map_err(|e| TmmError::for_design(Stage::DataGeneration, name, e))
    }

    /// Stage 1 + 2: generates TS training data from each `(name, netlist)`
    /// design and trains the GNN.
    ///
    /// Designs whose stage-1 pipeline fails are quarantined (recorded in
    /// [`TrainingSummary::quarantined`]) and training proceeds on the
    /// rest.
    ///
    /// # Errors
    ///
    /// Returns a [`Stage::Validation`] error when the *library* is
    /// invalid, and a [`Stage::Training`] error when every design was
    /// quarantined.
    pub fn train(
        &mut self,
        designs: &[(String, Netlist)],
        library: &Library,
    ) -> Result<TrainingSummary> {
        self.train_impl(designs, library, None)
    }

    /// [`Framework::train`] with crash-safe checkpointing: TS sweeps
    /// checkpoint fixed-size pin chunks per design (stage `ts.<name>`),
    /// GNN optimisation checkpoints every [`TRAIN_CKPT_EVERY`] epochs
    /// (stage [`tmm_gnn::TRAIN_STAGE`]), and the completed training run is
    /// sealed as a `train_final` artifact so a crash *after* training never
    /// re-trains. A resumed run reproduces the uninterrupted run
    /// bit-for-bit: the checkpoint stores only what deterministic
    /// recomputation would have produced anyway.
    ///
    /// # Errors
    ///
    /// As [`Framework::train`]; checkpoint-layer failures (unwritable or
    /// corrupt store) surface as [`StaError::Validation`] with artifact
    /// `"checkpoint"` at the stage that hit them.
    pub fn train_ckpt(
        &mut self,
        designs: &[(String, Netlist)],
        library: &Library,
        store: &mut dyn StageStore,
    ) -> Result<TrainingSummary> {
        self.train_impl(designs, library, Some(store))
    }

    fn train_impl(
        &mut self,
        designs: &[(String, Netlist)],
        library: &Library,
        mut ckpt: Option<&mut (dyn StageStore + '_)>,
    ) -> Result<TrainingSummary> {
        if self.config.validate {
            validated(Stage::Validation, None, validate_library(library))?;
        }
        let data_start = Instant::now();
        let mut samples: Vec<TrainSample> = Vec::with_capacity(designs.len());
        let mut design_positive_rates = Vec::with_capacity(designs.len());
        let mut quarantined: Vec<QuarantinedDesign> = Vec::new();
        let mut ts_quarantined: Vec<(String, usize)> = Vec::new();
        let ds_opts = self.config.dataset_options();
        {
            let mut stage_span = tmm_obs::span("data_generation", tmm_obs::STAGE_CAT);
            tmm_ckpt::set_stage("data_generation");
            tmm_ckpt::heartbeat();
            for (name, netlist) in designs {
                let mut design_span = tmm_obs::span("prepare_design", "core");
                design_span.arg("design", name);
                let design_ckpt = ckpt.as_deref_mut();
                match self.prepare_design(name, netlist, library, &ds_opts, design_ckpt) {
                    Ok(dataset) => {
                        design_positive_rates.push((name.clone(), dataset.positive_rate));
                        let failures = dataset.ts_failure_count();
                        if failures > 0 {
                            tmm_obs::warn(
                                &[
                                    ("stage", "data_generation"),
                                    ("design", name),
                                    ("pins", &failures.to_string()),
                                ],
                                "TS probes quarantined; pins labelled conservatively",
                            );
                            ts_quarantined.push((name.clone(), failures));
                        }
                        samples.push(dataset.sample);
                    }
                    Err(e) => {
                        tmm_obs::warn(
                            &[
                                ("stage", &e.stage.to_string()),
                                ("design", name),
                                ("error", &e.source.to_string()),
                            ],
                            "design quarantined; training proceeds without it",
                        );
                        tmm_obs::counter_add("tmm_designs_quarantined_total", &[], 1);
                        quarantined.push(QuarantinedDesign {
                            name: name.clone(),
                            stage: e.stage,
                            error: e.source,
                        });
                    }
                }
            }
            stage_span.arg_f64("designs", designs.len() as f64);
            stage_span.arg_f64("quarantined", quarantined.len() as f64);
        }
        tmm_obs::counter_add("tmm_designs_trained_total", &[], samples.len() as u64);
        let data_time = data_start.elapsed();
        if samples.is_empty() {
            let detail = quarantined.first().map_or_else(
                || "no designs supplied".to_string(),
                |q| format!("first: {} failed {} with {}", q.name, q.stage, q.error),
            );
            return Err(TmmError::new(
                Stage::Training,
                StaError::IllegalEdit(format!(
                    "no trainable designs ({} of {} quarantined; {detail})",
                    quarantined.len(),
                    designs.len()
                )),
            ));
        }

        let train_start = Instant::now();
        let mut gnn = GnnModel::new(
            self.config.feature_count(),
            tmm_gnn::ModelConfig {
                task: self.config.task(),
                ..self.config.model
            },
        );
        let report = {
            let mut stage_span = tmm_obs::span("training", tmm_obs::STAGE_CAT);
            tmm_ckpt::set_stage("training");
            tmm_ckpt::heartbeat();
            let report = match ckpt.as_deref_mut() {
                Some(store) => {
                    // A sealed training run never re-trains: restore the
                    // model and the stable report facts from `train_final`.
                    let sealed = if store.is_done(TRAIN_FINAL_STAGE) {
                        store.load(TRAIN_FINAL_STAGE, 0).map_err(|e| ckpt_err(Stage::Training, e))?
                    } else {
                        None
                    };
                    match sealed {
                        Some(payload) => {
                            let (model, report) = parse_train_final(&payload).map_err(|m| {
                                ckpt_err(
                                    Stage::Training,
                                    CkptError::Corrupt(format!("train_final artifact: {m}")),
                                )
                            })?;
                            tmm_obs::counter_add("tmm_train_final_restored_total", &[], 1);
                            gnn = model;
                            report
                        }
                        None => {
                            let mut hook = CkptHook { store, every: TRAIN_CKPT_EVERY };
                            let report = gnn
                                .train_resumable(&samples, &self.config.train, Some(&mut hook))
                                .map_err(|e| ckpt_err(Stage::Training, e))?;
                            let store = hook.store;
                            store
                                .save(TRAIN_FINAL_STAGE, 0, &render_train_final(&gnn, &report))
                                .map_err(|e| ckpt_err(Stage::Training, e))?;
                            store
                                .mark_done(TRAIN_FINAL_STAGE)
                                .map_err(|e| ckpt_err(Stage::Training, e))?;
                            report
                        }
                    }
                }
                None => gnn.train(&samples, &self.config.train),
            };
            stage_span.arg_f64("final_loss", f64::from(report.final_loss));
            stage_span.arg_f64("retries", report.retries as f64);
            report
        };
        let train_time = train_start.elapsed();
        // A model that diverged beyond recovery (or somehow ended with
        // non-finite weights) is kept for inspection but marked
        // untrustworthy; prediction will use the keep-all fallback.
        self.degraded = report.diverged || !gnn.weights_finite();

        let mut train_metrics = ConfusionCounts::default();
        if !self.config.regression && !self.degraded {
            for s in &samples {
                let probs = gnn.predict_par(&s.graph, &s.features, self.config.train.threads);
                let m = classify_metrics(
                    &probs,
                    &s.labels,
                    s.mask.as_deref(),
                    self.config.keep_threshold,
                );
                train_metrics.tp += m.tp;
                train_metrics.fp += m.fp;
                train_metrics.fn_ += m.fn_;
                train_metrics.tn += m.tn;
            }
        }
        self.model = Some(gnn);
        Ok(TrainingSummary {
            design_positive_rates,
            quarantined,
            ts_quarantined,
            final_loss: report.final_loss,
            train_metrics,
            retries: report.retries,
            diverged: report.diverged,
            rolled_back: report.rolled_back,
            degraded: self.degraded,
            data_time,
            train_time,
        })
    }

    /// Stage 3a: predicts the keep mask for an interface-logic graph.
    ///
    /// On a degraded framework this returns the pure-ILM fallback: every
    /// live pin kept, `predicted_variant == 0`, all pins counted as
    /// hard-kept.
    ///
    /// # Errors
    ///
    /// Returns a [`Stage::Prediction`] error if the framework is
    /// untrained.
    pub fn predict_keep_mask(&self, ilm: &ArcGraph) -> Result<(Vec<bool>, PredictionStats)> {
        let Some(model) = &self.model else {
            return Err(TmmError::new(
                Stage::Prediction,
                StaError::IllegalEdit("framework is not trained".into()),
            ));
        };
        let mut stage_span = tmm_obs::span("prediction", tmm_obs::STAGE_CAT);
        if self.degraded {
            // Keep-all fallback: an unhealthy model must never drop a
            // pin, so the macro degenerates to the full ILM.
            tmm_obs::counter_add("tmm_predict_degraded_total", &[], 1);
            tmm_obs::warn(
                &[("stage", "prediction")],
                "degraded model: keep-all fallback, macro degenerates to the full ILM",
            );
            stage_span.arg("outcome", "degraded");
            let keep: Vec<bool> = ilm.nodes().iter().map(|n| !n.dead).collect();
            let hard_kept = keep.iter().filter(|&&k| k).count();
            let stats = PredictionStats {
                predicted_variant: 0,
                hard_kept,
                inference_time: Duration::ZERO,
            };
            return Ok((keep, stats));
        }
        let start = Instant::now();
        let features = extract_features(ilm, self.config.with_cppr_feature);
        let graph =
            NodeGraph::from_edges(ilm.node_count(), &pin_graph_edges(ilm), NeighborMode::Undirected);
        let scores = model.predict_par(&graph, &features, self.config.train.threads);
        let mut keep: Vec<bool> = scores
            .iter()
            .map(|&p| {
                if self.config.regression {
                    f64::from(p) > self.config.ts.zero_eps
                } else {
                    p >= self.config.keep_threshold
                }
            })
            .collect();
        let predicted_variant = keep
            .iter()
            .zip(ilm.nodes())
            .filter(|&(&k, n)| k && !n.dead)
            .count();
        // Hard keeps that no modeler may drop: pins whose delay depends on
        // the context output load. CPPR-crucial clock pins are *not*
        // hard-kept — the GNN learns them from the §5.1 label augmentation
        // (and, with `is_CPPR`, sees them explicitly), which is exactly the
        // Table 4 ablation.
        let mut hard_kept = 0usize;
        for (i, &h) in output_variant_pins(ilm).iter().enumerate() {
            if h && !keep[i] {
                keep[i] = true;
                hard_kept += 1;
            }
        }
        let stats =
            PredictionStats { predicted_variant, hard_kept, inference_time: start.elapsed() };
        stage_span.arg_f64("predicted_variant", predicted_variant as f64);
        stage_span.arg_f64("hard_kept", hard_kept as f64);
        tmm_obs::counter_add("tmm_predict_variant_pins_total", &[], predicted_variant as u64);
        Ok((keep, stats))
    }

    /// Stage 3: generates a macro model for a flat design graph.
    ///
    /// # Errors
    ///
    /// Returns a [`Stage::Validation`] error when validation is enabled
    /// and the flat graph is invalid, a [`Stage::Prediction`] error if
    /// untrained, and a [`Stage::MacroGeneration`] error on generation
    /// failures.
    pub fn generate_macro(&self, flat: &ArcGraph) -> Result<RunOutcome> {
        self.generate_macro_impl(flat, None)
    }

    /// [`Framework::generate_macro`] with crash-safe merge checkpointing:
    /// each merge pass persists its decision trace into `store` (stage
    /// `"merge"`), so a killed generation resumes mid-merge and yields a
    /// byte-identical macro model. Prediction (cheap, deterministic) is
    /// always recomputed.
    ///
    /// # Errors
    ///
    /// As [`Framework::generate_macro`]; checkpoint-layer failures surface
    /// as [`StaError::Validation`] with artifact `"checkpoint"`.
    pub fn generate_macro_ckpt(
        &self,
        flat: &ArcGraph,
        store: &mut dyn StageStore,
    ) -> Result<RunOutcome> {
        self.generate_macro_impl(flat, Some(store))
    }

    fn generate_macro_impl(
        &self,
        flat: &ArcGraph,
        ckpt: Option<&mut (dyn StageStore + '_)>,
    ) -> Result<RunOutcome> {
        if self.config.validate {
            validated(Stage::Validation, None, validate_arc_graph(flat))?;
        }
        tmm_ckpt::set_stage("prediction");
        tmm_ckpt::heartbeat();
        let (ilm, _) =
            extract_ilm(flat).map_err(|e| TmmError::new(Stage::MacroGeneration, e))?;
        let (keep, prediction) = self.predict_keep_mask(&ilm)?;
        let mut stage_span = tmm_obs::span("macro_generation", tmm_obs::STAGE_CAT);
        tmm_ckpt::set_stage("macro_generation");
        tmm_ckpt::heartbeat();
        stage_span.arg("design", flat.name());
        let model = match ckpt {
            Some(store) => MacroModel::generate_ckpt(
                flat,
                &keep,
                &self.config.macro_options,
                store,
                "merge",
            ),
            None => MacroModel::generate(flat, &keep, &self.config.macro_options),
        }
        .map_err(|e| TmmError::new(Stage::MacroGeneration, e))?;
        stage_span.arg_f64("kept_pins", model.stats().kept_pins as f64);
        Ok(RunOutcome {
            kept_pins: model.stats().kept_pins,
            model,
            prediction,
            degraded: self.degraded,
        })
    }

    /// Serialises the trained GNN (architecture + weights) so inference can
    /// be reused across processes without regenerating TS data.
    ///
    /// # Errors
    ///
    /// Returns a [`Stage::Export`] error if the framework is untrained.
    pub fn export_model(&self) -> Result<String> {
        self.model.as_ref().map(GnnModel::to_text).ok_or_else(|| {
            TmmError::new(Stage::Export, StaError::IllegalEdit("framework is not trained".into()))
        })
    }

    /// Restores a framework from a serialised GNN and a configuration. The
    /// configuration's feature switches must match the model's input
    /// dimension.
    ///
    /// With [`FrameworkConfig::validate`] on, the model is additionally
    /// checked for round-trip integrity (it must re-serialise to a text
    /// that parses back identically), and a model with non-finite
    /// weights imports in the degraded state rather than failing.
    ///
    /// # Errors
    ///
    /// Returns a [`Stage::Import`] error on malformed model text, a
    /// feature-dimension mismatch, or a round-trip failure.
    pub fn import_model(config: FrameworkConfig, text: &str) -> Result<Framework> {
        let parse_err = |e: StaError| TmmError::new(Stage::Import, e);
        let model = GnnModel::from_text(text).map_err(|e| {
            parse_err(StaError::ParseFormat { line: 0, message: e.to_string() })
        })?;
        if model.in_dim() != config.feature_count() {
            return Err(parse_err(StaError::IllegalEdit(format!(
                "model expects {} features, configuration provides {}",
                model.in_dim(),
                config.feature_count()
            ))));
        }
        let mut degraded = false;
        if config.validate {
            let canonical = model.to_text();
            let reparsed = GnnModel::from_text(&canonical).map_err(|e| {
                parse_err(StaError::Validation {
                    artifact: "gnn model",
                    errors: 1,
                    first: format!("re-serialised model failed to parse: {e}"),
                })
            })?;
            if reparsed.to_text() != canonical {
                return Err(parse_err(StaError::Validation {
                    artifact: "gnn model",
                    errors: 1,
                    first: "serialised model does not round-trip".into(),
                }));
            }
            degraded = !model.weights_finite();
        }
        Ok(Framework { config, model: Some(model), degraded })
    }

    /// Convenience one-shot: trains on the design itself if the framework
    /// is untrained (useful for quickstarts), then generates its macro
    /// model.
    ///
    /// # Errors
    ///
    /// Propagates training and generation errors.
    pub fn run_on(&mut self, netlist: &Netlist, library: &Library) -> Result<RunOutcome> {
        self.run_on_impl(netlist, library, None)
    }

    /// [`Framework::run_on`] with crash-safe checkpointing across every
    /// stage: resumable TS sweeps and GNN training (see
    /// [`Framework::train_ckpt`]) plus merge-pass traces (see
    /// [`Framework::generate_macro_ckpt`]). A run killed at any point and
    /// resumed against the same store produces a byte-identical macro
    /// model.
    ///
    /// # Errors
    ///
    /// As [`Framework::run_on`], plus classed checkpoint failures.
    pub fn run_on_ckpt(
        &mut self,
        netlist: &Netlist,
        library: &Library,
        store: &mut dyn StageStore,
    ) -> Result<RunOutcome> {
        self.run_on_impl(netlist, library, Some(store))
    }

    fn run_on_impl(
        &mut self,
        netlist: &Netlist,
        library: &Library,
        mut ckpt: Option<&mut (dyn StageStore + '_)>,
    ) -> Result<RunOutcome> {
        if !self.is_trained() {
            self.train_impl(
                std::slice::from_ref(&(netlist.name().to_string(), netlist.clone())),
                library,
                ckpt.as_deref_mut(),
            )?;
        }
        let flat = ArcGraph::from_netlist(netlist, library)
            .map_err(|e| TmmError::for_design(Stage::DataGeneration, netlist.name(), e))?;
        self.generate_macro_impl(&flat, ckpt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmm_circuits::CircuitSpec;
    use tmm_faults::{corrupt_library, FaultOp};
    use tmm_gnn::TrainConfig;
    use tmm_macromodel::eval::{evaluate, EvalOptions};
    use tmm_sensitivity::TsOptions;
    use tmm_sta::cppr::cppr_crucial_pins;
    use tmm_sta::netlist::NetlistBuilder;

    fn quick_config() -> FrameworkConfig {
        FrameworkConfig {
            train: TrainConfig { epochs: 60, ..Default::default() },
            ts: TsOptions { contexts: 2, ..Default::default() },
            ..Default::default()
        }
    }

    fn design(seed: u64, lib: &Library) -> Netlist {
        CircuitSpec::new(format!("d{seed}"))
            .inputs(4)
            .outputs(4)
            .register_banks(2, 4)
            .cloud(2, 5)
            .seed(seed)
            .generate(lib)
            .unwrap()
    }

    /// A netlist that builds fine but contains a combinational loop, so
    /// lowering to an `ArcGraph` fails.
    fn cyclic_design(lib: &Library) -> Netlist {
        let mut b = NetlistBuilder::new("cyclic", lib);
        let pi = b.input("in").unwrap();
        let po = b.output("out").unwrap();
        let buf = b.cell("u0", "BUFX1").unwrap();
        let i1 = b.cell("i1", "INVX1").unwrap();
        let i2 = b.cell("i2", "INVX1").unwrap();
        let buf_a = b.pin_of(buf, "A").unwrap();
        let buf_z = b.pin_of(buf, "Z").unwrap();
        let i1_a = b.pin_of(i1, "A").unwrap();
        let i1_z = b.pin_of(i1, "Z").unwrap();
        let i2_a = b.pin_of(i2, "A").unwrap();
        let i2_z = b.pin_of(i2, "Z").unwrap();
        b.connect("n_in", pi, &[buf_a]).unwrap();
        b.connect("n_out", buf_z, &[po]).unwrap();
        b.connect("n1", i1_z, &[i2_a]).unwrap();
        b.connect("n2", i2_z, &[i1_a]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn untrained_framework_refuses_prediction() {
        let lib = Library::synthetic(13);
        let fw = Framework::new(quick_config());
        let flat = ArcGraph::from_netlist(&design(1, &lib), &lib).unwrap();
        assert!(fw.generate_macro(&flat).is_err());
        assert!(!fw.is_trained());
    }

    #[test]
    fn train_then_generate_produces_accurate_model() {
        let lib = Library::synthetic(13);
        let mut fw = Framework::new(quick_config());
        let designs: Vec<(String, Netlist)> =
            (1..=2).map(|s| (format!("d{s}"), design(s, &lib))).collect();
        let summary = fw.train(&designs, &lib).unwrap();
        assert!(fw.is_trained());
        assert!(!fw.is_degraded());
        assert!(summary.final_loss.is_finite());
        assert!(summary.quarantined.is_empty());
        assert!(!summary.diverged);
        assert_eq!(summary.design_positive_rates.len(), 2);
        // unseen design
        let flat = ArcGraph::from_netlist(&design(9, &lib), &lib).unwrap();
        let outcome = fw.generate_macro(&flat).unwrap();
        assert!(!outcome.degraded);
        assert!(outcome.kept_pins > 0);
        assert!(outcome.kept_pins < flat.live_nodes());
        let result = evaluate(
            &flat,
            &outcome.model,
            &EvalOptions { contexts: 3, ..Default::default() },
        )
        .unwrap();
        assert!(
            result.accuracy.max < 60.0,
            "GNN keep-set should keep error small, got {}",
            result.accuracy.max
        );
    }

    #[test]
    fn run_on_self_trains_if_needed() {
        let lib = Library::synthetic(13);
        let mut fw = Framework::new(quick_config());
        let d = design(3, &lib);
        let outcome = fw.run_on(&d, &lib).unwrap();
        assert!(fw.is_trained());
        assert!(outcome.kept_pins > 0);
        assert!(outcome.prediction.predicted_variant > 0);
    }

    #[test]
    fn export_import_round_trip_predicts_identically() {
        let lib = Library::synthetic(13);
        let mut fw = Framework::new(quick_config());
        let d = design(4, &lib);
        fw.train(&[("d4".into(), d.clone())], &lib).unwrap();
        let text = fw.export_model().unwrap();
        let restored = Framework::import_model(*fw.config(), &text).unwrap();
        assert!(restored.is_trained());
        assert!(!restored.is_degraded());
        let flat = ArcGraph::from_netlist(&d, &lib).unwrap();
        let (ilm, _) = extract_ilm(&flat).unwrap();
        let (keep_a, _) = fw.predict_keep_mask(&ilm).unwrap();
        let (keep_b, _) = restored.predict_keep_mask(&ilm).unwrap();
        assert_eq!(keep_a, keep_b, "restored model must decide identically");
    }

    #[test]
    fn import_rejects_feature_mismatch() {
        let lib = Library::synthetic(13);
        let mut fw = Framework::new(quick_config()); // 8 features
        fw.train(&[("d".into(), design(6, &lib))], &lib).unwrap();
        let text = fw.export_model().unwrap();
        let err = Framework::import_model(FrameworkConfig::cppr(), &text); // 9 features
        assert!(err.is_err());
        assert_eq!(err.unwrap_err().stage, Stage::Import);
        let export_err = Framework::new(quick_config()).export_model().unwrap_err();
        assert_eq!(export_err.stage, Stage::Export, "untrained export");
    }

    #[test]
    fn cppr_mode_keeps_clock_branch_points() {
        let lib = Library::synthetic(13);
        let mut fw = Framework::new(FrameworkConfig {
            cppr_mode: true,
            with_cppr_feature: true,
            train: TrainConfig { epochs: 40, ..Default::default() },
            ts: TsOptions { contexts: 2, ..Default::default() },
            ..Default::default()
        });
        let d = design(5, &lib);
        fw.train(&[("d5".into(), d.clone())], &lib).unwrap();
        let flat = ArcGraph::from_netlist(&d, &lib).unwrap();
        let (ilm, _) = extract_ilm(&flat).unwrap();
        let (keep, _) = fw.predict_keep_mask(&ilm).unwrap();
        for p in cppr_crucial_pins(&ilm) {
            assert!(keep[p.index()], "CPPR-crucial pin must be kept");
        }
    }

    #[test]
    fn train_quarantines_broken_design_and_still_trains() {
        let lib = Library::synthetic(13);
        let mut fw = Framework::new(quick_config());
        let designs = vec![
            ("good1".to_string(), design(1, &lib)),
            ("bad".to_string(), cyclic_design(&lib)),
            ("good2".to_string(), design(2, &lib)),
        ];
        let summary = fw.train(&designs, &lib).unwrap();
        assert!(fw.is_trained());
        assert_eq!(summary.design_positive_rates.len(), 2);
        assert_eq!(summary.quarantined.len(), 1);
        let q = &summary.quarantined[0];
        assert_eq!(q.name, "bad");
        assert_eq!(q.stage, Stage::DataGeneration);
        assert!(matches!(q.error, StaError::CombinationalCycle(_)), "{:?}", q.error);
        // The surviving model still works on an unseen design.
        let flat = ArcGraph::from_netlist(&design(9, &lib), &lib).unwrap();
        assert!(fw.generate_macro(&flat).is_ok());
    }

    #[test]
    fn train_errors_when_every_design_is_quarantined() {
        let lib = Library::synthetic(13);
        let mut fw = Framework::new(quick_config());
        let designs = vec![("bad".to_string(), cyclic_design(&lib))];
        let err = fw.train(&designs, &lib).unwrap_err();
        assert_eq!(err.stage, Stage::Training);
        assert!(!fw.is_trained());
        assert!(err.to_string().contains("quarantined"), "{err}");
    }

    #[test]
    fn train_rejects_poisoned_library_at_validation() {
        let lib = Library::synthetic(13);
        let designs = vec![("d1".to_string(), design(1, &lib))];
        let bad_lib = corrupt_library(FaultOp::NanLutEntries, &lib, 5).unwrap();
        let mut fw = Framework::new(quick_config());
        let err = fw.train(&designs, &bad_lib).unwrap_err();
        assert_eq!(err.stage, Stage::Validation);
        assert!(matches!(err.source, StaError::Validation { .. }), "{:?}", err.source);
    }

    /// Asserts two training summaries describe bit-identical runs on every
    /// stable (non-wall-clock) fact.
    fn assert_summaries_identical(a: &TrainingSummary, b: &TrainingSummary, what: &str) {
        let rates =
            |s: &TrainingSummary| -> Vec<(String, u64)> {
                s.design_positive_rates.iter().map(|(n, r)| (n.clone(), r.to_bits())).collect()
            };
        assert_eq!(rates(a), rates(b), "{what}: positive rates");
        let quarantine = |s: &TrainingSummary| -> Vec<(String, Stage)> {
            s.quarantined.iter().map(|q| (q.name.clone(), q.stage)).collect()
        };
        assert_eq!(quarantine(a), quarantine(b), "{what}: quarantined designs");
        assert_eq!(a.ts_quarantined, b.ts_quarantined, "{what}: TS-quarantined pins");
        assert_eq!(a.final_loss.to_bits(), b.final_loss.to_bits(), "{what}: final loss");
        assert_eq!(a.train_metrics, b.train_metrics, "{what}: train metrics");
        assert_eq!(a.retries, b.retries, "{what}: divergence retries");
        assert_eq!(
            (a.diverged, a.rolled_back, a.degraded),
            (b.diverged, b.rolled_back, b.degraded),
            "{what}: outcome flags"
        );
    }

    #[test]
    fn overlapping_quarantine_retry_and_resume_reproduce_the_uncrashed_run() {
        use tmm_ckpt::MemStore;
        // One run exercising THREE failure paths at once: a quarantined
        // design (combinational cycle), divergence-triggered learning-rate
        // retries (absurd initial lr with backoff), and checkpoint-resume
        // after a simulated kill at every persisted point. The resumed runs
        // must reproduce the uninterrupted run exactly: same quarantine
        // records, same retry count, same losses, same exported weights.
        let lib = Library::synthetic(13);
        let config = FrameworkConfig {
            train: TrainConfig {
                epochs: 25,
                lr: 1e30,
                max_retries: 4,
                lr_backoff: 1e-29,
                ..Default::default()
            },
            ts: TsOptions { contexts: 2, ..Default::default() },
            ..Default::default()
        };
        let designs = vec![
            ("good1".to_string(), design(1, &lib)),
            ("bad".to_string(), cyclic_design(&lib)),
            ("good2".to_string(), design(2, &lib)),
        ];

        let mut plain_fw = Framework::new(config);
        let plain = plain_fw.train(&designs, &lib).unwrap();
        assert_eq!(plain.quarantined.len(), 1, "cycle design must quarantine");
        assert!(plain.retries > 0, "absurd lr must trigger retries");
        let plain_model = plain_fw.export_model().unwrap();

        let mut full = MemStore::default();
        let mut ckpt_fw = Framework::new(config);
        let ckpted = ckpt_fw.train_ckpt(&designs, &lib, &mut full).unwrap();
        assert_summaries_identical(&plain, &ckpted, "checkpointed vs plain");
        assert_eq!(plain_model, ckpt_fw.export_model().unwrap());
        let saves = full.saves();
        assert!(saves >= 3, "TS chunks + train epochs + train_final, got {saves}");

        // Kill after a spread of checkpoint writes, including 0 (nothing
        // durable) and `saves` (everything durable, done markers lost).
        let step = (saves / 5).max(1);
        for kept in (0..=saves).step_by(step) {
            let mut store = full.truncated(kept);
            let mut fw = Framework::new(config);
            let resumed = fw.train_ckpt(&designs, &lib, &mut store).unwrap();
            assert_summaries_identical(&plain, &resumed, &format!("resume at save {kept}"));
            assert_eq!(
                plain_model,
                fw.export_model().unwrap(),
                "resume at save {kept}: exported weights must be bit-identical"
            );
        }
    }

    #[test]
    fn run_on_ckpt_resume_yields_byte_identical_macro_model() {
        use tmm_ckpt::MemStore;
        let lib = Library::synthetic(13);
        let d = design(3, &lib);

        let mut plain_fw = Framework::new(quick_config());
        let plain = plain_fw.run_on(&d, &lib).unwrap();
        let plain_text = plain.model.serialize();

        let mut full = MemStore::default();
        let mut ckpt_fw = Framework::new(quick_config());
        let ckpted = ckpt_fw.run_on_ckpt(&d, &lib, &mut full).unwrap();
        assert_eq!(plain_text, ckpted.model.serialize());
        assert_eq!(plain.kept_pins, ckpted.kept_pins);
        let saves = full.saves();

        let step = (saves / 4).max(1);
        for kept in (0..=saves).step_by(step) {
            let mut store = full.truncated(kept);
            let mut fw = Framework::new(quick_config());
            let resumed = fw.run_on_ckpt(&d, &lib, &mut store).unwrap();
            assert_eq!(
                plain_text,
                resumed.model.serialize(),
                "resume at save {kept}: macro model must be byte-identical"
            );
            assert_eq!(plain.prediction.predicted_variant, resumed.prediction.predicted_variant);
        }
    }

    #[test]
    fn corrupt_train_final_artifact_is_a_classed_error_not_silent_reuse() {
        use tmm_ckpt::MemStore;
        let lib = Library::synthetic(13);
        let designs = vec![("d1".to_string(), design(1, &lib))];
        let mut full = MemStore::default();
        let mut fw = Framework::new(quick_config());
        fw.train_ckpt(&designs, &lib, &mut full).unwrap();

        // Tamper with the sealed artifact but keep the done marker: resume
        // must fail with a classed checkpoint error, never reuse garbage.
        full.save(TRAIN_FINAL_STAGE, 0, "train_final v1 final_loss garbage").unwrap();
        let mut fw2 = Framework::new(quick_config());
        let err = fw2.train_ckpt(&designs, &lib, &mut full).unwrap_err();
        assert_eq!(err.stage, Stage::Training);
        assert!(
            matches!(err.source, StaError::Validation { artifact: "checkpoint", .. }),
            "{:?}",
            err.source
        );
    }

    #[test]
    fn degraded_training_falls_back_to_pure_ilm() {
        let lib = Library::synthetic(13);
        // An absurd learning rate with no retries diverges immediately
        // and cannot recover, leaving the framework degraded.
        let mut fw = Framework::new(FrameworkConfig {
            train: TrainConfig {
                epochs: 10,
                lr: 1e30,
                max_retries: 0,
                ..Default::default()
            },
            ts: TsOptions { contexts: 2, ..Default::default() },
            ..Default::default()
        });
        let d = design(7, &lib);
        let summary = fw.train(&[("d7".into(), d.clone())], &lib).unwrap();
        assert!(summary.diverged);
        assert!(summary.degraded);
        assert!(fw.is_trained());
        assert!(fw.is_degraded());
        // Prediction degrades to keep-all: the macro is the full ILM.
        let flat = ArcGraph::from_netlist(&d, &lib).unwrap();
        let outcome = fw.generate_macro(&flat).unwrap();
        assert!(outcome.degraded);
        assert_eq!(outcome.prediction.predicted_variant, 0);
        let (ilm, _) = extract_ilm(&flat).unwrap();
        let live = ilm.live_nodes();
        assert_eq!(outcome.prediction.hard_kept, live, "all live pins hard-kept");
        assert!(outcome.kept_pins > 0);
    }
}
