//! Framework configuration.

use tmm_gnn::{Engine, ModelConfig, Task, TrainConfig};
use tmm_macromodel::MacroModelOptions;
use tmm_sensitivity::{DatasetOptions, FilterOptions, TsOptions};

/// Complete configuration of the GNN-based macro-modeling framework.
///
/// The defaults reproduce the paper's main setting: a 2-layer GraphSAGE
/// classifier on the eight basic features, CPPR off. Enable
/// [`FrameworkConfig::cppr_mode`] and
/// [`FrameworkConfig::with_cppr_feature`] for the Table 3/4 CPPR runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameworkConfig {
    /// GNN architecture.
    pub model: ModelConfig,
    /// Training hyper-parameters.
    pub train: TrainConfig,
    /// TS evaluation options for training-data generation.
    pub ts: TsOptions,
    /// Insensitive-pin filter options.
    pub filter: FilterOptions,
    /// Macro-model generation options.
    pub macro_options: MacroModelOptions,
    /// Generate and evaluate with CPPR.
    pub cppr_mode: bool,
    /// Generate training data under AOCV derating (the §5.3 generality
    /// axis); evaluation must then also run with AOCV.
    pub aocv_mode: bool,
    /// Include the dedicated `is_CPPR` feature (§5.3).
    pub with_cppr_feature: bool,
    /// Keep a pin when its predicted variant probability exceeds this.
    pub keep_threshold: f32,
    /// Train the regression variant (§5.3) instead of classification.
    pub regression: bool,
    /// Run the [`tmm_sta::validate`] passes at every stage boundary
    /// (library/netlist/graph before training, graph before generation,
    /// model round-trip on import). Invalid training designs are then
    /// quarantined rather than aborting the run. Disable only for
    /// benchmarking the raw pipeline.
    pub validate: bool,
}

impl Default for FrameworkConfig {
    fn default() -> Self {
        FrameworkConfig {
            model: ModelConfig::default(),
            train: TrainConfig::default(),
            ts: TsOptions::default(),
            filter: FilterOptions::default(),
            macro_options: MacroModelOptions::default(),
            cppr_mode: false,
            aocv_mode: false,
            with_cppr_feature: false,
            keep_threshold: 0.3,
            regression: false,
            validate: true,
        }
    }
}

impl FrameworkConfig {
    /// The paper's CPPR configuration *with* the dedicated feature
    /// (Table 4, "after").
    #[must_use]
    pub fn cppr() -> Self {
        FrameworkConfig { cppr_mode: true, with_cppr_feature: true, ..Default::default() }
    }

    /// CPPR configuration *without* the dedicated feature (Table 4,
    /// "before").
    #[must_use]
    pub fn cppr_without_feature() -> Self {
        FrameworkConfig { cppr_mode: true, with_cppr_feature: false, ..Default::default() }
    }

    /// Switches the GNN engine (GraphSAGE ↔ GCN ablation).
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.model.engine = engine;
        self
    }

    /// Sets the worker-thread count used by TS data generation *and* GNN
    /// training/inference (`1` = sequential, `0` = one worker per available
    /// hardware thread). Thread count never changes results: TS sweeps are
    /// stitched back in pin order and the GNN kernels use fixed-chunk
    /// ordered reductions, so any count is bit-identical to sequential.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.ts.threads = threads;
        self.train.threads = threads;
        self
    }

    /// Sets the soft working-memory budget in MiB (0 = unbounded) for the
    /// memory-intensive stages: TS data generation processes timing
    /// contexts in groups small enough that their reference analyses fit
    /// the budget, and view-engine macro merging flushes its copy-on-write
    /// overlay into a re-frozen core whenever it outgrows the budget. Both
    /// mechanisms are bit-identical to the unbounded run — only peak RSS
    /// and wall time change.
    #[must_use]
    pub fn with_mem_budget(mut self, mem_budget_mb: usize) -> Self {
        self.ts.mem_budget_mb = mem_budget_mb;
        self.macro_options.mem_budget_mb = mem_budget_mb;
        self
    }

    /// Dataset options derived from this configuration.
    #[must_use]
    pub fn dataset_options(&self) -> DatasetOptions {
        DatasetOptions {
            ts: self.ts,
            filter: self.filter,
            cppr_mode: self.cppr_mode,
            aocv_mode: self.aocv_mode,
            with_cppr_feature: self.with_cppr_feature,
            regression: self.regression,
        }
    }

    /// Feature count implied by the CPPR-feature switch.
    #[must_use]
    pub fn feature_count(&self) -> usize {
        if self.with_cppr_feature {
            tmm_sensitivity::FEATURES_WITH_CPPR
        } else {
            tmm_sensitivity::BASE_FEATURES
        }
    }

    /// Task implied by the regression switch.
    #[must_use]
    pub fn task(&self) -> Task {
        if self.regression {
            Task::Regression
        } else {
            Task::Classification
        }
    }

    /// Stable 64-bit fingerprint of the *effective* configuration, for run
    /// reports: two runs with the same fingerprint used identical settings.
    /// Derived from the exhaustive `Debug` rendering, so any added field
    /// automatically participates.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        tmm_obs::fingerprint(&format!("{self:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_main_setting() {
        let c = FrameworkConfig::default();
        assert_eq!(c.model.layers, 2);
        assert_eq!(c.model.engine, Engine::GraphSage);
        assert!(!c.cppr_mode);
        assert_eq!(c.feature_count(), 8);
        assert_eq!(c.task(), Task::Classification);
    }

    #[test]
    fn cppr_presets() {
        let after = FrameworkConfig::cppr();
        assert!(after.cppr_mode && after.with_cppr_feature);
        assert_eq!(after.feature_count(), 9);
        let before = FrameworkConfig::cppr_without_feature();
        assert!(before.cppr_mode && !before.with_cppr_feature);
        assert_eq!(before.feature_count(), 8);
    }

    #[test]
    fn engine_swap() {
        let c = FrameworkConfig::default().with_engine(Engine::Gcn);
        assert_eq!(c.model.engine, Engine::Gcn);
    }

    #[test]
    fn dataset_options_propagate_flags() {
        let c = FrameworkConfig::cppr();
        let d = c.dataset_options();
        assert!(d.cppr_mode && d.with_cppr_feature);
        assert!(!d.regression);
    }

    #[test]
    fn fingerprint_tracks_config_changes() {
        let a = FrameworkConfig::default();
        assert_eq!(a.fingerprint(), FrameworkConfig::default().fingerprint());
        assert_ne!(a.fingerprint(), FrameworkConfig::cppr().fingerprint());
    }

    #[test]
    fn mem_budget_flows_into_both_stages() {
        let c = FrameworkConfig::default().with_mem_budget(512);
        assert_eq!(c.ts.mem_budget_mb, 512);
        assert_eq!(c.dataset_options().ts.mem_budget_mb, 512);
        assert_eq!(c.macro_options.mem_budget_mb, 512, "merge must follow the budget too");
        assert_ne!(c.fingerprint(), FrameworkConfig::default().fingerprint());
    }

    #[test]
    fn threads_flow_into_dataset_options() {
        let c = FrameworkConfig::default().with_threads(4);
        assert_eq!(c.ts.threads, 4);
        assert_eq!(c.dataset_options().ts.threads, 4);
        assert_eq!(c.train.threads, 4, "training must follow --threads too");
    }
}
