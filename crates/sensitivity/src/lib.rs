//! Timing sensitivity data generation — §4 and §5.1 of the DAC 2022 paper.
//!
//! - [`ts`] — the timing sensitivity metric (Eqs. (1)–(2), Fig. 5):
//!   per-pin boundary-error measurement under pin removal.
//! - [`filter`] — insensitive-pin filtering via slew-difference propagation
//!   and standardisation (§4.2, Figs. 7–8).
//! - [`features`] — the Table-1 training features, including the dedicated
//!   `is_CPPR` feature (§5.3).
//! - [`dataset`] — end-to-end training-data assembly producing
//!   [`tmm_gnn::TrainSample`]s.
//!
//! # Example
//!
//! ```
//! use tmm_circuits::CircuitSpec;
//! use tmm_macromodel::extract_ilm;
//! use tmm_sensitivity::dataset::{build_dataset, DatasetOptions};
//! use tmm_sta::graph::ArcGraph;
//! use tmm_sta::liberty::Library;
//!
//! # fn main() -> Result<(), tmm_sta::StaError> {
//! let lib = Library::synthetic(7);
//! let netlist = CircuitSpec::new("train").register_banks(1, 3).seed(5).generate(&lib)?;
//! let flat = ArcGraph::from_netlist(&netlist, &lib)?;
//! let (ilm, _) = extract_ilm(&flat)?;
//! let dataset = build_dataset(&ilm, &DatasetOptions::default())?;
//! assert!(dataset.positive_rate > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod features;
pub mod filter;
pub mod ts;

pub use dataset::{build_dataset, build_dataset_ckpt, DatasetOptions, PinDataset};
pub use features::{extract_features, pin_graph_edges, BASE_FEATURES, FEATURES_WITH_CPPR};
pub use filter::{filter_insensitive, standardise_sd, FilterOptions, FilterResult};
pub use ts::{
    dirty_probe_set, evaluate_ts, evaluate_ts_incremental, evaluate_ts_incremental_ckpt,
    evaluate_ts_with_core, evaluate_ts_with_core_ckpt, ts_min_chunked_contexts, TsEngine,
    TsFailure, TsOptions, TsResult, TS_CKPT_CHUNK,
};
