//! The timing sensitivity (TS) metric — §4.1, Eqs. (1)–(2), Fig. 5.
//!
//! The TS of a pin is the average relative change of boundary timing values
//! (slew, arrival, required arrival, slack — plus check slacks in CPPR
//! mode) caused by removing the pin, averaged over several random boundary
//! contexts. Removal here *is* the serial merge used by macro generation
//! ([`ArcGraph::bypass_node`]), so TS measures exactly the error that
//! merging the pin into the model would cause.
//!
//! Two evaluation engines produce bit-identical results:
//!
//! - [`TsEngine::View`] (default) freezes the design once into an
//!   [`Arc`]-shared [`DesignCore`], runs one [`ReferenceAnalysis`] per
//!   context, and probes each pin with a copy-on-write [`GraphView`] that
//!   is re-timed only over the edit's cone — O(cone) per probe.
//! - [`TsEngine::Clone`] clones the full graph and re-runs a full analysis
//!   per probe — O(graph) per probe; kept as the equivalence oracle.

use std::sync::Arc;
use tmm_sta::compare::BoundarySnapshot;
use tmm_sta::constraints::{Context, ContextSampler};
use tmm_sta::graph::{ArcGraph, NodeId};
use tmm_sta::propagate::{Analysis, AnalysisOptions};
use tmm_sta::retime::{ReferenceAnalysis, RetimeScratch};
use tmm_sta::split::{mode_edge_iter, Edge};
use tmm_sta::view::{DesignCore, GraphView, TimingGraph};
use tmm_sta::Result;

/// Which probe engine [`evaluate_ts`] uses. Both engines are bit-identical
/// (enforced by tests and the cross-crate equivalence suite); they differ
/// only in cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TsEngine {
    /// Copy-on-write [`GraphView`] probes re-timed over the edit cone
    /// against a shared [`ReferenceAnalysis`] of the frozen core.
    #[default]
    View,
    /// Clone the whole graph per probe and re-run a full analysis (the
    /// pre-refactor behaviour; O(graph) per probe).
    Clone,
}

/// Options for one TS evaluation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TsOptions {
    /// Number of random boundary contexts (`|C|` in Eq. (1)).
    pub contexts: usize,
    /// Context sampler seed.
    pub seed: u64,
    /// Worker threads for the per-pin evaluation loop (1 = sequential,
    /// 0 = one per available hardware thread). Pin removals are
    /// independent, so the sweep parallelises perfectly; results are
    /// deterministic regardless of thread count.
    pub threads: usize,
    /// Run the underlying analyses with CPPR.
    pub cppr: bool,
    /// Run the underlying analyses with AOCV derating (the generality axis
    /// of §5.3: TS adapts to whichever analysis mode is active).
    pub aocv: bool,
    /// Values below this count as "zero TS" when labelling.
    pub zero_eps: f64,
    /// Probe engine (cone-limited view by default).
    pub engine: TsEngine,
    /// Approximate peak-memory budget in MiB for the sweep (0 =
    /// unbounded). When the resident reference analyses for all contexts
    /// would exceed it, the contexts are processed in groups small enough
    /// to fit, carrying per-pin running totals between groups — the
    /// grouped sweep is bit-identical to the unbounded one.
    pub mem_budget_mb: usize,
}

impl Default for TsOptions {
    fn default() -> Self {
        TsOptions {
            contexts: 4,
            seed: 0x7357,
            threads: 1,
            cppr: false,
            aocv: false,
            zero_eps: 1e-6,
            engine: TsEngine::View,
            mem_budget_mb: 0,
        }
    }
}

/// A per-pin evaluation failure that was quarantined instead of aborting
/// the sweep. The pin keeps `NaN` TS (and is conservatively labelled
/// variant downstream, like a refused bypass).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TsFailure {
    /// Node index of the failed probe.
    pub node: usize,
    /// Rendered error cause.
    pub cause: String,
}

/// Result of a TS evaluation.
#[derive(Debug, Clone)]
pub struct TsResult {
    /// Per-node TS; `NaN` for pins that were not evaluated (not a
    /// candidate, not removable, or quarantined).
    pub ts: Vec<f64>,
    /// Number of pins successfully evaluated.
    pub evaluated: usize,
    /// Number of candidate pins that could not be bypassed (kept
    /// conservatively; they get `NaN`).
    pub skipped: usize,
    /// Per-pin failures quarantined during the sweep (each pin keeps `NaN`
    /// and the sweep continues).
    pub failures: Vec<TsFailure>,
}

impl TsResult {
    /// Binary labels per Eq. (1)'s usage in §5.1: 1 iff TS is non-zero
    /// (above `zero_eps`); unevaluated pins are 0.
    #[must_use]
    pub fn labels(&self, zero_eps: f64) -> Vec<f32> {
        self.ts
            .iter()
            .map(|&t| if t.is_finite() && t > zero_eps { 1.0 } else { 0.0 })
            .collect()
    }

    /// Regression targets (§5.3): the TS value itself, 0 where unevaluated.
    #[must_use]
    pub fn regression_targets(&self) -> Vec<f32> {
        self.ts.iter().map(|&t| if t.is_finite() { t as f32 } else { 0.0 }).collect()
    }

    /// Node indices ranked by descending TS under a *total* order
    /// ([`f64::total_cmp`], ties broken by index for determinism).
    /// Non-finite entries — unevaluated, skipped, or quarantined pins —
    /// are excluded entirely rather than landing at an arbitrary end of the
    /// order, which is what a naive `partial_cmp().unwrap_or(Equal)` sort
    /// silently does. Callers that must act on quarantined pins should read
    /// [`TsResult::failures`] instead; this ranking only ever contains pins
    /// whose TS was actually measured.
    #[must_use]
    pub fn ranked_pins(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = self
            .ts
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_finite())
            .map(|(i, _)| i)
            .collect();
        idx.sort_by(|&a, &b| self.ts[b].total_cmp(&self.ts[a]).then(a.cmp(&b)));
        idx
    }
}

/// Mean relative difference of one quantity category over matched boundary
/// entries (the inner sum of Eq. (2)); denominators are floored at 1 ps to
/// keep near-zero references from exploding the metric.
fn relative_diff(before: &BoundarySnapshot, after: &BoundarySnapshot) -> [f64; 4] {
    let mut sums = [0.0f64; 4]; // slew, at, rat, slack
    let mut counts = [0usize; 4];
    let acc = |cat: usize, b: f64, a: f64, sums: &mut [f64; 4], counts: &mut [usize; 4]| {
        if b.is_finite() && a.is_finite() {
            sums[cat] += (a - b).abs() / b.abs().max(1.0);
            counts[cat] += 1;
        }
    };
    let after_po: std::collections::HashMap<&str, usize> =
        after.po.iter().enumerate().map(|(i, p)| (p.name.as_str(), i)).collect();
    for p in &before.po {
        let Some(&j) = after_po.get(p.name.as_str()) else { continue };
        let q = &after.po[j];
        for (m, e) in mode_edge_iter() {
            acc(0, p.slew[m][e], q.slew[m][e], &mut sums, &mut counts);
            acc(1, p.at[m][e], q.at[m][e], &mut sums, &mut counts);
            acc(2, p.rat[m][e], q.rat[m][e], &mut sums, &mut counts);
            acc(3, p.slack[m][e], q.slack[m][e], &mut sums, &mut counts);
        }
    }
    let after_pi: std::collections::HashMap<&str, usize> =
        after.pi.iter().enumerate().map(|(i, p)| (p.name.as_str(), i)).collect();
    for p in &before.pi {
        let Some(&j) = after_pi.get(p.name.as_str()) else { continue };
        for (m, e) in mode_edge_iter() {
            acc(2, p.rat[m][e], after.pi[j].rat[m][e], &mut sums, &mut counts);
        }
    }
    let after_ck: std::collections::HashMap<&str, usize> =
        after.checks.iter().enumerate().map(|(i, c)| (c.name.as_str(), i)).collect();
    for c in &before.checks {
        let Some(&j) = after_ck.get(c.name.as_str()) else { continue };
        let q = &after.checks[j];
        for e in Edge::ALL {
            acc(3, c.setup_slack[e], q.setup_slack[e], &mut sums, &mut counts);
            acc(3, c.hold_slack[e], q.hold_slack[e], &mut sums, &mut counts);
        }
    }
    let mut out = [0.0f64; 4];
    for k in 0..4 {
        out[k] = if counts[k] > 0 { sums[k] / counts[k] as f64 } else { 0.0 };
    }
    out
}

/// Times one TS probe into the per-pin latency histogram. While metrics
/// are disabled this is one relaxed load and no clock read, keeping the
/// sweep's hot loop inert.
fn timed_probe<F: FnOnce() -> Result<f64>>(engine: &'static str, f: F) -> Result<f64> {
    // Live-only sliding-window rate (TS evaluations/s); one relaxed load
    // when the status endpoint is down. Probes are retime-scale (far from
    // the per-arc hot loop), so this sits below the noise floor.
    tmm_obs::rate_add("tmm_ts_evals", 1);
    if !tmm_obs::metrics_enabled() {
        return f();
    }
    let start = std::time::Instant::now();
    let r = f();
    tmm_obs::observe("tmm_ts_pin_seconds", &[("engine", engine)], start.elapsed().as_secs_f64());
    r
}

/// Records sweep totals (and a quarantine warning, if any) once per TS
/// evaluation.
fn record_sweep_outcome(result: &TsResult, engine: &'static str) {
    let labels = [("engine", engine)];
    tmm_obs::counter_add("tmm_ts_pins_evaluated_total", &labels, result.evaluated as u64);
    tmm_obs::counter_add("tmm_ts_pins_skipped_total", &labels, result.skipped as u64);
    tmm_obs::counter_add("tmm_ts_pins_quarantined_total", &labels, result.failures.len() as u64);
    if !result.failures.is_empty() {
        // Summary stays at debug: the framework re-logs quarantines at warn
        // with the design name attached, which this layer cannot know.
        tmm_obs::debug(
            &[
                ("stage", "ts_sweep"),
                ("engine", engine),
                ("quarantined", &result.failures.len().to_string()),
            ],
            "TS probes quarantined; affected pins keep NaN and are labelled conservatively",
        );
        for f in &result.failures {
            tmm_obs::debug(
                &[("stage", "ts_sweep"), ("node", &f.node.to_string()), ("cause", &f.cause)],
                "quarantined TS probe",
            );
        }
    }
}

/// Resolves the configured thread count: 0 means one worker per available
/// hardware thread.
fn resolve_threads(configured: usize) -> usize {
    if configured == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        configured
    }
}

/// Approximate resident bytes of one [`ReferenceAnalysis`]: the raw
/// propagation state dominates (at/slew/rat quads, launch tags, clock
/// parents per node), plus a fixed allowance for the boundary snapshot.
pub(crate) fn reference_state_bytes(nodes: usize) -> usize {
    nodes * (3 * 32 + 16 + 4) + 4096
}

/// How many contexts' reference analyses fit in `budget_mb` alongside the
/// frozen core (0 = unbounded → all of them, the pre-budget behaviour).
/// Always at least 1: a budget too small for even one reference degrades
/// to maximal chunking rather than failing.
fn ts_context_group_size(core: &DesignCore, budget_mb: usize, contexts: usize) -> usize {
    if budget_mb == 0 {
        return contexts.max(1);
    }
    let budget = budget_mb.saturating_mul(1024 * 1024);
    let fixed = core.memory_estimate();
    let per = reference_state_bytes(core.node_count());
    (budget.saturating_sub(fixed) / per.max(1)).clamp(1, contexts.max(1))
}

/// Smallest context count that makes a `budget_mb`-bounded sweep over
/// `core` split into at least two context groups. Differential checks use
/// this to guarantee the chunked accumulation path actually engages even
/// on designs small enough that the whole sweep would fit the budget.
#[must_use]
pub fn ts_min_chunked_contexts(core: &DesignCore, budget_mb: usize) -> usize {
    if budget_mb == 0 {
        return 2;
    }
    let budget = budget_mb.saturating_mul(1024 * 1024);
    let fixed = core.memory_estimate();
    let per = reference_state_bytes(core.node_count());
    // One more context than fits resident forces a second group.
    (budget.saturating_sub(fixed) / per.max(1)).max(1) + 1
}

/// One pin's sweep outcome: its node index and either the measured TS or
/// the rendered quarantine cause.
type PinOutcome = (usize, std::result::Result<f64, String>);

/// Runs `eval` over `work` on `threads` workers (sequentially when 1),
/// quarantining per-pin failures. Work order — and therefore the failure
/// list — is deterministic regardless of thread count.
fn sweep<F>(
    work: &[usize],
    threads: usize,
    ts: &mut [f64],
    failures: &mut Vec<TsFailure>,
    eval: F,
) -> Result<()>
where
    F: Fn(usize) -> Result<f64> + Sync,
{
    let outcomes = sweep_outcomes(work, threads, eval)?;
    apply_outcomes(outcomes, ts, failures);
    Ok(())
}

/// Stitches per-pin outcomes into the TS vector and failure list,
/// preserving work order.
fn apply_outcomes(outcomes: Vec<PinOutcome>, ts: &mut [f64], failures: &mut Vec<TsFailure>) {
    for (i, outcome) in outcomes {
        match outcome {
            Ok(v) => ts[i] = v,
            Err(cause) => failures.push(TsFailure { node: i, cause }),
        }
    }
}

/// The evaluation core of [`sweep`], returning per-pin outcomes in work
/// order instead of applying them — the checkpointing path needs the
/// outcome list itself to render a resumable chunk artifact.
fn sweep_outcomes<F>(work: &[usize], threads: usize, eval: F) -> Result<Vec<PinOutcome>>
where
    F: Fn(usize) -> Result<f64> + Sync,
{
    let outcomes: Vec<PinOutcome> = if threads <= 1 {
        work.iter()
            .map(|&i| (i, eval(i).map_err(|e| e.to_string())))
            .collect()
    } else {
        // Pin removals are independent: chunk the work list across scoped
        // workers and stitch results back by index (deterministic).
        let chunk = work.len().div_ceil(threads);
        let parts = std::thread::scope(|scope| {
            let handles: Vec<_> = work
                .chunks(chunk)
                .map(|part| {
                    scope.spawn(|| -> Vec<PinOutcome> {
                        part.iter()
                            .map(|&i| (i, eval(i).map_err(|e| e.to_string())))
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => Ok(r),
                    // A worker panic is a bug, not an input error; surface
                    // it as a structured error instead of aborting the
                    // whole process from a non-main thread.
                    Err(_) => {
                        Err(tmm_sta::StaError::IllegalEdit("TS worker panicked".into()))
                    }
                })
                .collect::<Result<Vec<_>>>()
        })?;
        parts.into_iter().flatten().collect()
    };
    Ok(outcomes)
}

/// Pins per checkpointed TS chunk: small enough that a kill mid-sweep
/// loses little work, large enough that artifact overhead stays noise.
pub const TS_CKPT_CHUNK: usize = 32;

/// Maps a checkpoint-layer failure into the STA error domain so TS
/// callers keep a single error channel.
fn ckpt_to_sta(e: tmm_ckpt::CkptError) -> tmm_sta::StaError {
    tmm_sta::StaError::Validation { artifact: "checkpoint", errors: 1, first: e.to_string() }
}

/// Renders one chunk of pin outcomes as a checkpoint payload
/// (`ts_chunk v2`): one line per pin, `{v:e}` exact-f64 values, the
/// quarantine cause carried verbatim to end of line.
fn render_ts_chunk(outcomes: &[PinOutcome]) -> String {
    use std::fmt::Write as _;
    let mut out = format!("ts_chunk v2 {}\n", outcomes.len());
    for (i, o) in outcomes {
        match o {
            Ok(v) => {
                let _ = writeln!(out, "pin {i} ok {v:e}");
            }
            Err(cause) => {
                let _ = writeln!(out, "pin {i} fail {}", cause.replace('\n', " "));
            }
        }
    }
    out
}

/// Parses a `ts_chunk v2` payload back into pin outcomes, verifying the
/// recorded pins match `expect` (this run's deterministic work slice) so
/// a chunk written against a different candidate set is rejected.
fn parse_ts_chunk(payload: &str, expect: &[usize]) -> std::result::Result<Vec<PinOutcome>, String> {
    let mut lines = payload.lines();
    let header = lines.next().ok_or("empty chunk payload")?;
    let mut h = header.split_whitespace();
    if h.next() != Some("ts_chunk") || h.next() != Some("v2") {
        return Err(format!("bad chunk header `{header}`"));
    }
    let count: usize =
        h.next().and_then(|t| t.parse().ok()).ok_or_else(|| "bad chunk count".to_string())?;
    let mut out: Vec<PinOutcome> = Vec::with_capacity(count);
    for line in lines {
        let rest = line.strip_prefix("pin ").ok_or_else(|| format!("bad chunk line `{line}`"))?;
        let (idx, rest) =
            rest.split_once(' ').ok_or_else(|| format!("bad chunk line `{line}`"))?;
        let i: usize = idx.parse().map_err(|_| format!("bad pin index `{idx}`"))?;
        if let Some(v) = rest.strip_prefix("ok ") {
            let v: f64 = v.parse().map_err(|_| format!("bad TS value `{v}`"))?;
            out.push((i, Ok(v)));
        } else if let Some(cause) = rest.strip_prefix("fail ") {
            out.push((i, Err(cause.to_string())));
        } else if rest == "fail" {
            out.push((i, Err(String::new())));
        } else {
            return Err(format!("bad chunk line `{line}`"));
        }
    }
    if out.len() != count {
        return Err(format!("chunk lists {} pins, header says {count}", out.len()));
    }
    if out.len() != expect.len() || out.iter().zip(expect).any(|((i, _), &e)| *i != e) {
        return Err("chunk pins disagree with this run's work list".to_string());
    }
    Ok(out)
}

/// Evaluates the TS of every candidate pin of `graph` (Fig. 5 flow).
/// `candidates[i] == true` requests evaluation of node `i`; ports, FF pins
/// and dead nodes are silently skipped. Dispatches on
/// [`TsOptions::engine`]; the default view engine freezes the graph into a
/// [`DesignCore`] internally — callers that already hold a frozen core
/// should use [`evaluate_ts_with_core`] to skip the freeze.
///
/// # Errors
///
/// Propagates analysis errors (infallible for valid graphs). Per-pin probe
/// failures do *not* abort the sweep; they are quarantined into
/// [`TsResult::failures`].
///
/// # Panics
///
/// Panics if `candidates.len() != graph.node_count()`.
pub fn evaluate_ts(graph: &ArcGraph, candidates: &[bool], opts: &TsOptions) -> Result<TsResult> {
    match opts.engine {
        TsEngine::View => {
            let core = DesignCore::freeze(graph);
            evaluate_ts_with_core(&core, candidates, opts)
        }
        TsEngine::Clone => evaluate_ts_cloning(graph, candidates, opts),
    }
}

/// View-engine TS evaluation over an already-frozen core. One
/// [`ReferenceAnalysis`] per context is shared (by reference) across all
/// worker threads; each probe builds an O(1) [`GraphView`], bypasses its
/// pin, and re-times only the affected cone.
///
/// # Errors
///
/// Propagates reference-analysis errors; per-pin failures are quarantined.
///
/// # Panics
///
/// Panics if `candidates.len() != core.node_count()`.
pub fn evaluate_ts_with_core(
    core: &Arc<DesignCore>,
    candidates: &[bool],
    opts: &TsOptions,
) -> Result<TsResult> {
    evaluate_ts_view_impl(core, candidates, opts, None)
}

/// [`evaluate_ts_with_core`] with crash-safe chunk checkpointing: the
/// deterministic work list is processed in [`TS_CKPT_CHUNK`]-pin chunks,
/// each persisted to `store` under `stage` as it completes and loaded
/// back (instead of recomputed) on resume. Because chunks are stitched in
/// index order, a resumed sweep is bit-identical to an uninterrupted one
/// — TS values *and* failure ordering.
///
/// # Errors
///
/// Propagates reference-analysis errors; checkpoint-layer failures
/// (unwritable store, corrupt or mismatched chunk artifact) surface as
/// [`tmm_sta::StaError::Validation`] with artifact `"checkpoint"`.
///
/// # Panics
///
/// Panics if `candidates.len() != core.node_count()`.
pub fn evaluate_ts_with_core_ckpt(
    core: &Arc<DesignCore>,
    candidates: &[bool],
    opts: &TsOptions,
    store: &mut dyn tmm_ckpt::StageStore,
    stage: &str,
) -> Result<TsResult> {
    evaluate_ts_view_impl(core, candidates, opts, Some((store, stage)))
}

fn evaluate_ts_view_impl(
    core: &Arc<DesignCore>,
    candidates: &[bool],
    opts: &TsOptions,
    mut ckpt: Option<(&mut dyn tmm_ckpt::StageStore, &str)>,
) -> Result<TsResult> {
    let n = core.node_count();
    assert_eq!(candidates.len(), n, "candidate mask size mismatch");
    let mut sweep_span = tmm_obs::span("ts_sweep", "sensitivity");
    sweep_span.arg("engine", "view");
    let analysis_opts = AnalysisOptions { cppr: opts.cppr, aocv: opts.aocv };
    let mut sampler = ContextSampler::new(opts.seed);
    let contexts: Vec<Context> = sampler.sample_many(&**core, opts.contexts.max(1));
    let n_ctx = contexts.len();
    let group_size = ts_context_group_size(core, opts.mem_budget_mb, n_ctx);

    let probe = GraphView::new(core.clone());
    let mut ts = vec![f64::NAN; n];
    let mut skipped = 0usize;
    let mut work: Vec<usize> = Vec::new();
    for (i, &wanted) in candidates.iter().enumerate() {
        if !wanted {
            continue;
        }
        let nid = NodeId(i as u32);
        if probe.node_dead(nid) {
            continue;
        }
        if !probe.can_bypass(nid) {
            skipped += 1;
            continue;
        }
        work.push(i);
    }

    let threads = resolve_threads(opts.threads).min(work.len().max(1));
    let n_groups = n_ctx.div_ceil(group_size.max(1));
    if n_groups > 1 {
        // Budget forced the context set into chunks (PR 8 landed this
        // path without a series).
        tmm_obs::counter_add("tmm_ts_chunk_splits_total", &[], (n_groups - 1) as u64);
    }
    // Live heartbeat: every group re-sweeps the surviving work list, so
    // the stage total is groups × pins and advances monotonically.
    let heartbeat =
        tmm_obs::progress_start("ts_sweep", "", (n_groups * work.len().max(1)) as u64);
    // Per-pin running totals chained across context groups: each group
    // appends its contexts (in ascending context order) to the same f64
    // accumulation sequence and the single divide happens at the very end,
    // so the grouped sweep is bit-identical to all-contexts-at-once
    // regardless of group size. A pin that fails keeps the cause of its
    // first failing context and is skipped in later groups.
    let mut totals = vec![0.0f64; n];
    let mut failed: Vec<Option<String>> = vec![None; n];
    for (g, ctx_group) in contexts.chunks(group_size).enumerate() {
        // Only this group's references are resident: the previous group's
        // were dropped at the end of the last iteration, which is what
        // keeps peak RSS within the budget.
        let references: Vec<ReferenceAnalysis> = ctx_group
            .iter()
            .map(|c| {
                ReferenceAnalysis::new_with_threads(
                    core.clone(),
                    c.clone(),
                    analysis_opts,
                    threads,
                )
            })
            .collect::<Result<_>>()?;
        // Scratch state is per-thread; retime resets it per probe, so one
        // scratch serves every reference (they share node count).
        let scratch_proto: RetimeScratch = references[0].scratch();
        let totals_ref = &totals;
        let eval_pin = |i: usize, scratch: &mut RetimeScratch| -> Result<f64> {
            let mut view = GraphView::new(core.clone());
            view.bypass_node(NodeId(i as u32))?;
            let mut total = totals_ref[i];
            for reference in &references {
                let edited = reference.retime(&view, scratch)?;
                let cats = relative_diff(reference.boundary(), &edited);
                total += cats.iter().sum::<f64>() / 4.0;
            }
            Ok(total)
        };
        // Each sweep closure invocation runs on some worker; cloning a
        // fresh scratch per probe is wasteful, so use a thread-local. The
        // main thread's slot outlives this call — a cached scratch sized
        // for a different core must be replaced, not reused.
        let eval_shared = |i: usize| {
            thread_local! {
                static SCRATCH: std::cell::RefCell<Option<RetimeScratch>> =
                    const { std::cell::RefCell::new(None) };
            }
            SCRATCH.with(|cell| {
                let mut slot = cell.borrow_mut();
                let scratch = match slot.as_mut() {
                    Some(s) if s.base_nodes() == scratch_proto.base_nodes() => s,
                    _ => slot.insert(scratch_proto.clone()),
                };
                timed_probe("view", || eval_pin(i, scratch))
            })
        };
        let group_outcomes: Vec<PinOutcome> = match ckpt.as_mut() {
            None => {
                let active: Vec<usize> =
                    work.iter().copied().filter(|&i| failed[i].is_none()).collect();
                let outcomes =
                    sweep_outcomes(&active, threads.min(active.len().max(1)), &eval_shared)?;
                heartbeat.add(work.len() as u64);
                outcomes
            }
            Some((store, stage)) => {
                // Chunked, resumable sweep: a chunk already in the store is
                // loaded instead of recomputed; a fresh chunk is evaluated
                // with the same machinery as the hookless path and persisted
                // before the next chunk starts. Chunks always cover the full
                // work list (carried failures re-render their cause), and
                // stitching happens in (group, chunk) order, so TS values
                // and the failure list come out identical either way.
                let mut acc: Vec<PinOutcome> = Vec::with_capacity(work.len());
                for (c, chunk) in work.chunks(TS_CKPT_CHUNK).enumerate() {
                    let seq = ((g as u64) << 32) | c as u64;
                    let outcomes = match store.load(stage, seq).map_err(ckpt_to_sta)? {
                        Some(payload) => parse_ts_chunk(&payload, chunk).map_err(|m| {
                            ckpt_to_sta(tmm_ckpt::CkptError::Corrupt(format!(
                                "TS chunk {stage}/{seq}: {m}"
                            )))
                        })?,
                        None => {
                            let active: Vec<usize> = chunk
                                .iter()
                                .copied()
                                .filter(|&i| failed[i].is_none())
                                .collect();
                            let fresh = sweep_outcomes(
                                &active,
                                threads.min(active.len().max(1)),
                                &eval_shared,
                            )?;
                            let mut fresh_it = fresh.into_iter();
                            let outcomes: Vec<PinOutcome> = chunk
                                .iter()
                                .map(|&i| match &failed[i] {
                                    Some(cause) => (i, Err(cause.clone())),
                                    None => fresh_it
                                        .next()
                                        .unwrap_or((i, Err("missing sweep outcome".into()))),
                                })
                                .collect();
                            store
                                .save(stage, seq, &render_ts_chunk(&outcomes))
                                .map_err(ckpt_to_sta)?;
                            outcomes
                        }
                    };
                    acc.extend(outcomes);
                    heartbeat.add(chunk.len() as u64);
                    tmm_ckpt::heartbeat();
                }
                acc
            }
        };
        for (i, outcome) in group_outcomes {
            match outcome {
                Ok(v) => totals[i] = v,
                Err(cause) => {
                    failed[i].get_or_insert(cause);
                }
            }
        }
    }
    if let Some((store, stage)) = ckpt.as_mut() {
        store.mark_done(stage).map_err(ckpt_to_sta)?;
    }
    let mut failures = Vec::new();
    for &i in &work {
        match failed[i].take() {
            Some(cause) => failures.push(TsFailure { node: i, cause }),
            None => ts[i] = totals[i] / n_ctx as f64,
        }
    }
    let evaluated = work.len() - failures.len();
    heartbeat.complete();
    sweep_span.arg_f64("pins", work.len() as f64);
    sweep_span.arg_f64("evaluated", evaluated as f64);
    let result = TsResult { ts, evaluated, skipped, failures };
    record_sweep_outcome(&result, "view");
    Ok(result)
}

/// Marks the forward closure of the already-set nodes: one pass over the
/// topological order, spreading each set node to its fanout targets. The
/// seeds stay set.
fn fwd_closure(core: &DesignCore, set: &mut [bool]) {
    for &nid in core.topo_order() {
        if set[nid.index()] {
            for a in core.fanout(nid) {
                set[core.arc(a).to.index()] = true;
            }
        }
    }
}

/// Marks the backward closure of the already-set nodes: one reverse pass
/// over the topological order, spreading each set node to its fanin
/// sources. The seeds stay set.
fn bwd_closure(core: &DesignCore, set: &mut [bool]) {
    for &nid in core.topo_order().iter().rev() {
        if set[nid.index()] {
            for a in core.fanin(nid) {
                set[core.arc(a).from.index()] = true;
            }
        }
    }
}

/// Computes which probes an ECO-style edit can affect, so an incremental
/// TS sweep may carry every other pin's value forward unchanged.
///
/// `changed` lists the nodes the edit touched on the *new* core
/// ([`GraphView::edited_nodes`] of the pre-materialise view — overlay ids
/// are stable across materialisation); `old_node_count` is the node count
/// before the edit, so inserted nodes (which have no previous TS at all)
/// are always dirty.
///
/// A probe at pin `p` measures the boundary delta of bypassing `p`. Its
/// value can only change when the edit perturbs a timing value the
/// probe's own delta propagation reads. Conservatively:
///
/// 1. `F_e` — forward closure of the edited nodes: every AT/slew the edit
///    can move. Widened through setup/hold checks (`ck ∈ F_e` moves the
///    check's required time at `d`, and check pins have no fanout of
///    their own).
/// 2. `R` — backward closure of `F_e` widened by check coupling *in both
///    directions* (`ck ∈ F_e` moves the required time at `d`; `d ∈ F_e`
///    moves the check slack read by every probe on the capture clock
///    path — checks are not arcs, so no closure crosses them on its
///    own): every RAT/slack the edit can move. `R ⊇ F_e` also covers
///    every probe whose *forward* cone meets a perturbed AT — a side
///    input competing inside the probe's fanout must itself lie in the
///    forward-closed `F_e`, which puts the probe upstream of it, i.e.
///    inside `R`.
/// 3. The backward hazard: the boundary reports the RAT of every data
///    primary input, and the edit perturbs the reference RAT of each PI
///    in `S = R ∩ fwd(PIs)` (`min` competition can flip, and the
///    reference denominator of the probe's relative delta moves). A
///    probe perturbs the *bypassed* RAT of such a PI whenever its own
///    influence cone meets the PI's cone — including through a capture
///    clock: bypassing a clock-buffer pin moves check required times,
///    which back-propagate into the same PI RATs. So the final widening
///    is `bwd(fwd(S) ∪ {ck : check d ∈ fwd(S)})` — everything whose
///    influence cone (data fanout or captured check) meets a perturbed
///    PI's cone. Seeding the forward closure
///    from the *data* PI cones only — never the clock source — is what
///    keeps this from saturating into "everything launched by the
///    clock": the trailing backward closure walks capture subtrees and
///    upstream logic but never re-expands forward.
///
/// Register boundaries act as firewalls (data pins have no fanout; Q pins
/// have no data fanin), so one edit dirties its own pipeline stage plus
/// coupled neighbours, not the design; the carried fraction grows with
/// design size. The result is a per-node mask aligned with the new core's
/// node ids.
#[must_use]
pub fn dirty_probe_set(
    core: &DesignCore,
    changed: &[NodeId],
    old_node_count: usize,
) -> Vec<bool> {
    let n = core.node_count();
    let mut fwd = vec![false; n];
    for &c in changed {
        if c.index() < n {
            fwd[c.index()] = true;
        }
    }
    for slot in fwd.iter_mut().take(n).skip(old_node_count.min(n)) {
        *slot = true;
    }
    fwd_closure(core, &mut fwd);
    // Check coupling, both directions: a moved clock-pin arrival moves the
    // data pin's required time, and a moved data-pin arrival/slew moves the
    // check slack every probe on the *capture* clock path reads — checks
    // are not arcs, so neither closure crosses them on its own.
    let mut reach = fwd.clone();
    for c in core.checks() {
        if fwd[c.ck.index()] {
            reach[c.d.index()] = true;
        }
        if fwd[c.d.index()] {
            reach[c.ck.index()] = true;
        }
    }
    bwd_closure(core, &mut reach);
    // `reach` = every node whose AT/slew/RAT the edit can perturb.
    let mut pi_cone = vec![false; n];
    for &p in core.primary_inputs() {
        pi_cone[p.index()] = true;
    }
    fwd_closure(core, &mut pi_cone);
    let mut shared = vec![false; n];
    for i in 0..n {
        shared[i] = reach[i] && pi_cone[i];
    }
    fwd_closure(core, &mut shared);
    for c in core.checks() {
        if shared[c.d.index()] {
            shared[c.ck.index()] = true;
        }
    }
    bwd_closure(core, &mut shared);
    let mut dirty = reach;
    for (d, s) in dirty.iter_mut().zip(&shared) {
        *d |= s;
    }
    dirty
}

/// Incremental TS evaluation after an ECO edit: pins outside the edit's
/// influence (per `dirty`, from [`dirty_probe_set`]) carry their value —
/// or their quarantined failure — over from `previous` bit-exactly; only
/// dirty pins are re-probed. The stitched result is bit-identical to a
/// from-scratch [`evaluate_ts_with_core`] on the same core (values,
/// counts *and* failure ordering), at the cost of only the dirty cone.
///
/// `previous` may come from a smaller core (pure insertions): pins past
/// its end are recomputed. Reference analyses are built only when at
/// least one pin needs recomputation.
///
/// # Errors
///
/// Propagates reference-analysis errors; per-pin failures are quarantined
/// as in the full sweep.
///
/// # Panics
///
/// Panics if `candidates.len()` or `dirty.len()` differ from
/// `core.node_count()`.
pub fn evaluate_ts_incremental(
    core: &Arc<DesignCore>,
    candidates: &[bool],
    opts: &TsOptions,
    previous: &TsResult,
    dirty: &[bool],
) -> Result<TsResult> {
    evaluate_ts_incremental_impl(core, candidates, opts, previous, dirty, None)
}

/// [`evaluate_ts_incremental`] with crash-safe chunk checkpointing over
/// the **recompute list only** — carried pins cost nothing to re-derive,
/// so they are never persisted. Chunk artifacts use the same
/// `ts_chunk v2` payload and stitching rules as
/// [`evaluate_ts_with_core_ckpt`].
///
/// # Errors
///
/// As [`evaluate_ts_incremental`]; checkpoint-layer failures surface as
/// [`tmm_sta::StaError::Validation`] with artifact `"checkpoint"`.
///
/// # Panics
///
/// Panics if `candidates.len()` or `dirty.len()` differ from
/// `core.node_count()`.
pub fn evaluate_ts_incremental_ckpt(
    core: &Arc<DesignCore>,
    candidates: &[bool],
    opts: &TsOptions,
    previous: &TsResult,
    dirty: &[bool],
    store: &mut dyn tmm_ckpt::StageStore,
    stage: &str,
) -> Result<TsResult> {
    evaluate_ts_incremental_impl(core, candidates, opts, previous, dirty, Some((store, stage)))
}

fn evaluate_ts_incremental_impl(
    core: &Arc<DesignCore>,
    candidates: &[bool],
    opts: &TsOptions,
    previous: &TsResult,
    dirty: &[bool],
    ckpt: Option<(&mut dyn tmm_ckpt::StageStore, &str)>,
) -> Result<TsResult> {
    let n = core.node_count();
    assert_eq!(candidates.len(), n, "candidate mask size mismatch");
    assert_eq!(dirty.len(), n, "dirty mask size mismatch");
    let mut sweep_span = tmm_obs::span("ts_sweep", "sensitivity");
    sweep_span.arg("engine", "incremental");

    // The work list is built exactly like the full sweep's so carried and
    // recomputed results stitch into the identical vector and failure
    // order a from-scratch run would produce.
    let probe = GraphView::new(core.clone());
    let mut skipped = 0usize;
    let mut work: Vec<usize> = Vec::new();
    for (i, &wanted) in candidates.iter().enumerate() {
        if !wanted {
            continue;
        }
        let nid = NodeId(i as u32);
        if probe.node_dead(nid) {
            continue;
        }
        if !probe.can_bypass(nid) {
            skipped += 1;
            continue;
        }
        work.push(i);
    }

    let prev_failed: std::collections::HashMap<usize, &str> =
        previous.failures.iter().map(|f| (f.node, f.cause.as_str())).collect();
    // A pin carries when it is clean AND the previous sweep actually
    // produced something for it — a finite TS or a recorded quarantine.
    // Anything else (new pin, previously absent, previously unevaluated)
    // recomputes.
    let carry_ok = |i: usize| {
        !dirty[i]
            && i < previous.ts.len()
            && (previous.ts[i].is_finite() || prev_failed.contains_key(&i))
    };
    let recompute: Vec<usize> = work.iter().copied().filter(|&i| !carry_ok(i)).collect();
    let carried = work.len() - recompute.len();

    let mut fresh: std::collections::HashMap<usize, std::result::Result<f64, String>> =
        std::collections::HashMap::with_capacity(recompute.len());
    if recompute.is_empty() {
        if let Some((store, stage)) = ckpt {
            store.mark_done(stage).map_err(ckpt_to_sta)?;
        }
    } else {
        let analysis_opts = AnalysisOptions { cppr: opts.cppr, aocv: opts.aocv };
        let mut sampler = ContextSampler::new(opts.seed);
        let contexts: Vec<Context> = sampler.sample_many(&**core, opts.contexts.max(1));
        let references: Vec<ReferenceAnalysis> = contexts
            .into_iter()
            .map(|c| ReferenceAnalysis::new(core.clone(), c, analysis_opts))
            .collect::<Result<_>>()?;
        let scratch_proto: RetimeScratch = references[0].scratch();
        let eval_pin = |i: usize, scratch: &mut RetimeScratch| -> Result<f64> {
            let mut view = GraphView::new(core.clone());
            view.bypass_node(NodeId(i as u32))?;
            let mut total = 0.0f64;
            for reference in &references {
                let edited = reference.retime(&view, scratch)?;
                let cats = relative_diff(reference.boundary(), &edited);
                total += cats.iter().sum::<f64>() / 4.0;
            }
            Ok(total / references.len() as f64)
        };
        let threads = resolve_threads(opts.threads).min(recompute.len().max(1));
        match ckpt {
            None if threads <= 1 => {
                let mut scratch = scratch_proto;
                for &i in &recompute {
                    let r = timed_probe("view", || eval_pin(i, &mut scratch));
                    fresh.insert(i, r.map_err(|e| e.to_string()));
                }
            }
            None => {
                let scratch_proto = &scratch_proto;
                let eval_pin = &eval_pin;
                let outcomes = sweep_outcomes(&recompute, threads, move |i| {
                    thread_local! {
                        static SCRATCH: std::cell::RefCell<Option<RetimeScratch>> =
                            const { std::cell::RefCell::new(None) };
                    }
                    SCRATCH.with(|cell| {
                        let mut slot = cell.borrow_mut();
                        let scratch = slot.get_or_insert_with(|| scratch_proto.clone());
                        timed_probe("view", || eval_pin(i, scratch))
                    })
                })?;
                fresh.extend(outcomes);
            }
            Some((store, stage)) => {
                let mut scratch = scratch_proto.clone();
                for (c, chunk) in recompute.chunks(TS_CKPT_CHUNK).enumerate() {
                    let seq = c as u64;
                    let outcomes = match store.load(stage, seq).map_err(ckpt_to_sta)? {
                        Some(payload) => parse_ts_chunk(&payload, chunk).map_err(|m| {
                            ckpt_to_sta(tmm_ckpt::CkptError::Corrupt(format!(
                                "TS chunk {stage}/{seq}: {m}"
                            )))
                        })?,
                        None => {
                            let outcomes: Vec<PinOutcome> = if threads <= 1 {
                                chunk
                                    .iter()
                                    .map(|&i| {
                                        let r =
                                            timed_probe("view", || eval_pin(i, &mut scratch));
                                        (i, r.map_err(|e| e.to_string()))
                                    })
                                    .collect()
                            } else {
                                let scratch_proto = &scratch_proto;
                                let eval_pin = &eval_pin;
                                sweep_outcomes(chunk, threads.min(chunk.len()), move |i| {
                                    thread_local! {
                                        static SCRATCH: std::cell::RefCell<Option<RetimeScratch>> =
                                            const { std::cell::RefCell::new(None) };
                                    }
                                    SCRATCH.with(|cell| {
                                        let mut slot = cell.borrow_mut();
                                        let scratch =
                                            slot.get_or_insert_with(|| scratch_proto.clone());
                                        timed_probe("view", || eval_pin(i, scratch))
                                    })
                                })?
                            };
                            store
                                .save(stage, seq, &render_ts_chunk(&outcomes))
                                .map_err(ckpt_to_sta)?;
                            outcomes
                        }
                    };
                    fresh.extend(outcomes);
                    tmm_ckpt::heartbeat();
                }
                store.mark_done(stage).map_err(ckpt_to_sta)?;
            }
        }
    }

    // Stitch in work order: fresh outcomes where recomputed, the previous
    // value or quarantine verbatim where carried.
    let mut outcomes: Vec<PinOutcome> = Vec::with_capacity(work.len());
    for &i in &work {
        if let Some(o) = fresh.remove(&i) {
            outcomes.push((i, o));
        } else if let Some(&cause) = prev_failed.get(&i) {
            outcomes.push((i, Err(cause.to_string())));
        } else {
            outcomes.push((i, Ok(previous.ts[i])));
        }
    }
    let mut ts = vec![f64::NAN; n];
    let mut failures = Vec::new();
    apply_outcomes(outcomes, &mut ts, &mut failures);
    let evaluated = work.len() - failures.len();
    sweep_span.arg_f64("pins", work.len() as f64);
    sweep_span.arg_f64("evaluated", evaluated as f64);
    sweep_span.arg_f64("carried", carried as f64);
    sweep_span.arg_f64("recomputed", recompute.len() as f64);
    tmm_obs::counter_add(
        "tmm_ts_pins_carried_total",
        &[("engine", "incremental")],
        carried as u64,
    );
    let result = TsResult { ts, evaluated, skipped, failures };
    record_sweep_outcome(&result, "incremental");
    Ok(result)
}

/// Clone-engine TS evaluation (one full-graph clone and full analysis per
/// probe). Retained as the bit-exact oracle for the view engine.
fn evaluate_ts_cloning(
    graph: &ArcGraph,
    candidates: &[bool],
    opts: &TsOptions,
) -> Result<TsResult> {
    assert_eq!(candidates.len(), graph.node_count(), "candidate mask size mismatch");
    let mut sweep_span = tmm_obs::span("ts_sweep", "sensitivity");
    sweep_span.arg("engine", "clone");
    let analysis_opts = AnalysisOptions { cppr: opts.cppr, aocv: opts.aocv };
    let mut sampler = ContextSampler::new(opts.seed);
    let contexts: Vec<Context> = sampler.sample_many(graph, opts.contexts.max(1));
    let references: Vec<BoundarySnapshot> = contexts
        .iter()
        .map(|c| Ok(Analysis::run_with_options(graph, c, analysis_opts)?.boundary().clone()))
        .collect::<Result<_>>()?;

    let mut ts = vec![f64::NAN; graph.node_count()];
    let mut skipped = 0usize;
    let mut work: Vec<usize> = Vec::new();
    for (i, &candidate) in candidates.iter().enumerate() {
        let n = NodeId(i as u32);
        if !candidate || graph.node(n).dead {
            continue;
        }
        if !graph.can_bypass(n) {
            skipped += 1;
            continue;
        }
        work.push(i);
    }

    // Evaluate one pin: clone, bypass, re-propagate under every context.
    let eval_pin = |i: usize| -> Result<f64> {
        let mut edited = graph.clone();
        edited.bypass_node(NodeId(i as u32))?;
        let mut total = 0.0f64;
        for (ctx, reference) in contexts.iter().zip(&references) {
            let an = Analysis::run_with_options(&edited, ctx, analysis_opts)?;
            let cats = relative_diff(reference, an.boundary());
            total += cats.iter().sum::<f64>() / 4.0;
        }
        Ok(total / contexts.len() as f64)
    };

    let threads = resolve_threads(opts.threads).min(work.len().max(1));
    let mut failures = Vec::new();
    sweep(&work, threads, &mut ts, &mut failures, |i| timed_probe("clone", || eval_pin(i)))?;
    let evaluated = work.len() - failures.len();
    sweep_span.arg_f64("pins", work.len() as f64);
    sweep_span.arg_f64("evaluated", evaluated as f64);
    let result = TsResult { ts, evaluated, skipped, failures };
    record_sweep_outcome(&result, "clone");
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmm_circuits::CircuitSpec;
    use tmm_sta::liberty::Library;

    fn graph() -> ArcGraph {
        let lib = Library::synthetic(9);
        let n = CircuitSpec::new("ts")
            .inputs(4)
            .outputs(4)
            .register_banks(1, 4)
            .cloud(2, 5)
            .seed(13)
            .generate(&lib)
            .unwrap();
        ArcGraph::from_netlist(&n, &lib).unwrap()
    }

    fn internal_candidates(g: &ArcGraph) -> Vec<bool> {
        (0..g.node_count())
            .map(|i| {
                let n = NodeId(i as u32);
                !g.node(n).dead && g.node(n).kind == tmm_sta::graph::NodeKind::Internal
            })
            .collect()
    }

    #[test]
    fn ts_is_deterministic_and_mostly_small() {
        let g = graph();
        let cand = internal_candidates(&g);
        let opts = TsOptions { contexts: 2, ..Default::default() };
        let a = evaluate_ts(&g, &cand, &opts).unwrap();
        let b = evaluate_ts(&g, &cand, &opts).unwrap();
        assert_eq!(a.evaluated, b.evaluated);
        assert!(a.evaluated > 10);
        for (x, y) in a.ts.iter().zip(&b.ts) {
            if x.is_finite() || y.is_finite() {
                assert_eq!(x, y);
            }
        }
        // TS values are relative quantities: small positives
        let finite: Vec<f64> = a.ts.iter().copied().filter(|t| t.is_finite()).collect();
        assert!(finite.iter().all(|&t| (0.0..10.0).contains(&t)));
        assert!(a.failures.is_empty(), "healthy sweep quarantines nothing");
    }

    #[test]
    fn view_engine_matches_clone_engine_bit_exactly() {
        let g = graph();
        let cand = internal_candidates(&g);
        for (threads_v, threads_c) in [(1, 1), (3, 2)] {
            let view = evaluate_ts(
                &g,
                &cand,
                &TsOptions {
                    contexts: 2,
                    threads: threads_v,
                    engine: TsEngine::View,
                    ..Default::default()
                },
            )
            .unwrap();
            let clone = evaluate_ts(
                &g,
                &cand,
                &TsOptions {
                    contexts: 2,
                    threads: threads_c,
                    engine: TsEngine::Clone,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(view.evaluated, clone.evaluated);
            assert_eq!(view.skipped, clone.skipped);
            for (i, (a, b)) in view.ts.iter().zip(&clone.ts).enumerate() {
                if a.is_finite() || b.is_finite() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "engines disagree on node {i}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn shared_core_entry_point_matches_flat_entry_point() {
        let g = graph();
        let cand = internal_candidates(&g);
        let opts = TsOptions { contexts: 2, ..Default::default() };
        let flat = evaluate_ts(&g, &cand, &opts).unwrap();
        let core = DesignCore::freeze(&g);
        let shared = evaluate_ts_with_core(&core, &cand, &opts).unwrap();
        for (a, b) in flat.ts.iter().zip(&shared.ts) {
            if a.is_finite() || b.is_finite() {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn many_pins_have_near_zero_ts() {
        // The premise of §4.2 (and Fig. 6): the majority of pins barely
        // influence boundary timing.
        let g = graph();
        let cand = internal_candidates(&g);
        let r = evaluate_ts(&g, &cand, &TsOptions { contexts: 2, ..Default::default() }).unwrap();
        let finite: Vec<f64> = r.ts.iter().copied().filter(|t| t.is_finite()).collect();
        let near_zero = finite.iter().filter(|&&t| t < 1e-7).count();
        assert!(
            near_zero * 3 > finite.len(),
            "at least a third near-zero: {near_zero}/{}",
            finite.len()
        );
        let positive = finite.iter().filter(|&&t| t > 1e-7).count();
        assert!(positive > 0, "some pins must matter");
    }

    #[test]
    fn po_adjacent_pins_have_higher_ts_than_deep_pins() {
        let g = graph();
        let cand = internal_candidates(&g);
        let r = evaluate_ts(&g, &cand, &TsOptions { contexts: 2, ..Default::default() }).unwrap();
        let levels_to_po = g.levels_to_outputs();
        let mut near = Vec::new();
        let mut far = Vec::new();
        for i in 0..g.node_count() {
            if !r.ts[i].is_finite() {
                continue;
            }
            match levels_to_po[i] {
                0..=2 => near.push(r.ts[i]),
                6..=u32::MAX => far.push(r.ts[i]),
                _ => {}
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        if !near.is_empty() && !far.is_empty() {
            assert!(avg(&near) >= avg(&far), "{} vs {}", avg(&near), avg(&far));
        }
    }

    #[test]
    fn labels_threshold_on_zero_eps() {
        let r = TsResult {
            ts: vec![f64::NAN, 0.0, 1e-9, 0.5],
            evaluated: 3,
            skipped: 0,
            failures: Vec::new(),
        };
        assert_eq!(r.labels(1e-7), vec![0.0, 0.0, 0.0, 1.0]);
        assert_eq!(r.regression_targets(), vec![0.0, 0.0, 1e-9 as f32, 0.5]);
    }

    #[test]
    fn ranked_pins_excludes_nan_and_uses_total_order() {
        // A NaN pin sits exactly where the classification boundary would
        // put it (between the two finite values): it must neither rank nor
        // perturb the order of its neighbours, and labels must call it 0.
        let r = TsResult {
            ts: vec![0.5, f64::NAN, 1e-7, -0.0, 0.5],
            evaluated: 4,
            skipped: 0,
            failures: vec![TsFailure { node: 1, cause: "quarantined".into() }],
        };
        assert_eq!(r.ranked_pins(), vec![0, 4, 2, 3], "NaN excluded, ties by index");
        assert_eq!(r.labels(1e-7), vec![1.0, 0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn aocv_fallback_path_matches_clone_engine_and_attribution() {
        // Under AOCV the view engine serves every probe through the
        // full-analysis fallback; results and quarantine attribution must
        // be identical to the clone oracle (which always runs full).
        let g = graph();
        let cand = internal_candidates(&g);
        let view = evaluate_ts(
            &g,
            &cand,
            &TsOptions { contexts: 2, aocv: true, engine: TsEngine::View, ..Default::default() },
        )
        .unwrap();
        let clone = evaluate_ts(
            &g,
            &cand,
            &TsOptions { contexts: 2, aocv: true, engine: TsEngine::Clone, ..Default::default() },
        )
        .unwrap();
        assert_eq!(view.evaluated, clone.evaluated);
        assert_eq!(view.skipped, clone.skipped);
        assert_eq!(view.failures, clone.failures, "quarantine attribution differs across paths");
        for (a, b) in view.ts.iter().zip(&clone.ts) {
            if a.is_finite() || b.is_finite() {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn parallel_evaluation_matches_sequential_exactly() {
        let g = graph();
        let cand = internal_candidates(&g);
        for engine in [TsEngine::View, TsEngine::Clone] {
            let seq = evaluate_ts(
                &g,
                &cand,
                &TsOptions { contexts: 2, threads: 1, engine, ..Default::default() },
            )
            .unwrap();
            // threads == 0 resolves to available parallelism.
            let par = evaluate_ts(
                &g,
                &cand,
                &TsOptions { contexts: 2, threads: 0, engine, ..Default::default() },
            )
            .unwrap();
            assert_eq!(seq.evaluated, par.evaluated);
            for (a, b) in seq.ts.iter().zip(&par.ts) {
                assert_eq!(a.to_bits(), b.to_bits(), "thread count must not change results");
            }
        }
    }

    #[test]
    fn ts_chunk_payload_round_trips() {
        let outcomes: Vec<PinOutcome> = vec![
            (3, Ok(0.125)),
            (7, Err("probe exploded: node 7".into())),
            (9, Err(String::new())),
            (11, Ok(f64::MIN_POSITIVE)),
        ];
        let text = render_ts_chunk(&outcomes);
        let parsed = parse_ts_chunk(&text, &[3, 7, 9, 11]).unwrap();
        assert_eq!(parsed, outcomes);
        // A chunk recorded against a different work slice is rejected.
        assert!(parse_ts_chunk(&text, &[3, 7, 9, 12]).is_err());
        assert!(parse_ts_chunk(&text, &[3, 7, 9]).is_err());
        // A chunk missing lines disagrees with its own header count.
        let torn: String =
            text.lines().take(3).map(|l| format!("{l}\n")).collect();
        assert!(parse_ts_chunk(&torn, &[3, 7]).is_err());
    }

    fn big_graph() -> ArcGraph {
        let lib = Library::synthetic(9);
        let n = CircuitSpec::new("ts-big")
            .inputs(6)
            .outputs(6)
            .register_banks(2, 6)
            .cloud(3, 30)
            .seed(17)
            .generate(&lib)
            .unwrap();
        ArcGraph::from_netlist(&n, &lib).unwrap()
    }

    #[test]
    fn chunked_checkpoint_resume_is_bit_identical() {
        use std::sync::Arc;
        use tmm_ckpt::{MemStore, StageStore};
        let g = big_graph();
        let cand = internal_candidates(&g);
        let opts = TsOptions { contexts: 2, ..Default::default() };
        let core: Arc<DesignCore> = DesignCore::freeze(&g);
        let plain = evaluate_ts_with_core(&core, &cand, &opts).unwrap();

        let mut full = MemStore::new();
        let first = evaluate_ts_with_core_ckpt(&core, &cand, &opts, &mut full, "ts.big").unwrap();
        assert_eq!(first.evaluated, plain.evaluated);
        assert_eq!(first.failures, plain.failures);
        for (x, y) in first.ts.iter().zip(&plain.ts) {
            if x.is_finite() || y.is_finite() {
                assert_eq!(x.to_bits(), y.to_bits(), "ckpt sweep differs from plain sweep");
            }
        }
        let saves = full.saves();
        assert!(saves >= 2, "work should span several chunks, got {saves}");

        // Simulate a kill after each chunk prefix and resume.
        for kept in 0..=saves {
            let mut store = full.truncated(kept);
            let again =
                evaluate_ts_with_core_ckpt(&core, &cand, &opts, &mut store, "ts.big").unwrap();
            assert_eq!(again.evaluated, plain.evaluated, "kept={kept}");
            assert_eq!(again.skipped, plain.skipped, "kept={kept}");
            assert_eq!(again.failures, plain.failures, "kept={kept}");
            for (x, y) in again.ts.iter().zip(&plain.ts) {
                if x.is_finite() || y.is_finite() {
                    assert_eq!(x.to_bits(), y.to_bits(), "resume differs at kept={kept}");
                }
            }
            assert!(store.is_done("ts.big"), "resumed sweep must mark its stage done");
        }
    }

    #[test]
    fn stale_chunk_for_different_candidates_is_rejected() {
        use std::sync::Arc;
        use tmm_ckpt::MemStore;
        let g = graph();
        let cand = internal_candidates(&g);
        let opts = TsOptions { contexts: 1, ..Default::default() };
        let core: Arc<DesignCore> = DesignCore::freeze(&g);
        let mut store = MemStore::new();
        evaluate_ts_with_core_ckpt(&core, &cand, &opts, &mut store, "ts").unwrap();
        // Drop the first candidate: the deterministic work list shifts, so
        // every recorded chunk disagrees and must be rejected, not reused.
        let mut fewer = cand.clone();
        let first = cand.iter().position(|&c| c).unwrap();
        fewer[first] = false;
        let mut truncated = store.truncated(1);
        let err = evaluate_ts_with_core_ckpt(&core, &fewer, &opts, &mut truncated, "ts")
            .unwrap_err();
        assert!(
            err.to_string().contains("checkpoint"),
            "expected a classed checkpoint error, got: {err}"
        );
    }

    /// First live combinational lookup-table arc whose source is off the
    /// clock network: a safe ECO victim. Launch arcs (CK→Q) are excluded —
    /// resizing one shifts launch timing for the whole downstream cone and
    /// legitimately dirties every probe, which would defeat the clean-pin
    /// assertions below.
    fn first_table_arc(g: &ArcGraph) -> tmm_sta::graph::ArcId {
        use tmm_sta::graph::{ArcId, ArcTiming};
        ArcId(
            g.arcs()
                .iter()
                .position(|a| {
                    !a.dead
                        && !a.is_clock
                        && matches!(a.timing, ArcTiming::Table(_))
                        && !g.node(a.from).is_clock_network
                })
                .unwrap() as u32,
        )
    }

    fn assert_ts_bit_identical(a: &TsResult, b: &TsResult, what: &str) {
        assert_eq!(a.evaluated, b.evaluated, "{what}: evaluated differs");
        assert_eq!(a.skipped, b.skipped, "{what}: skipped differs");
        assert_eq!(a.failures, b.failures, "{what}: failures differ");
        assert_eq!(a.ts.len(), b.ts.len(), "{what}: length differs");
        for (i, (x, y)) in a.ts.iter().zip(&b.ts).enumerate() {
            if x.is_finite() || y.is_finite() {
                assert_eq!(x.to_bits(), y.to_bits(), "{what}: node {i}: {x} vs {y}");
            }
        }
    }

    /// Runs one ECO edit through the incremental path and checks the
    /// stitched result against a from-scratch sweep of the edited core.
    /// Returns the new core/candidates/result for chaining.
    #[allow(clippy::type_complexity)]
    fn step_and_check(
        core: &Arc<DesignCore>,
        previous: &TsResult,
        opts: &TsOptions,
        edit: impl FnOnce(&mut GraphView),
        what: &str,
    ) -> (Arc<DesignCore>, Vec<bool>, TsResult) {
        let mut view = GraphView::new(core.clone());
        edit(&mut view);
        let changed = view.edited_nodes();
        let edited = view.materialize().unwrap();
        let new_core: Arc<DesignCore> = DesignCore::freeze(&edited);
        let cand = internal_candidates(&edited);
        let dirty = dirty_probe_set(&new_core, &changed, core.node_count());
        let clean = dirty.iter().filter(|&&d| !d).count();
        assert!(clean > 0, "{what}: one edit must leave clean pins on this design");
        let scratch = evaluate_ts_with_core(&new_core, &cand, opts).unwrap();
        let inc = evaluate_ts_incremental(&new_core, &cand, opts, previous, &dirty).unwrap();
        assert_ts_bit_identical(&inc, &scratch, what);
        (new_core, cand, inc)
    }

    #[test]
    fn incremental_sweep_matches_scratch_after_each_eco_edit() {
        let g = graph();
        let core: Arc<DesignCore> = DesignCore::freeze(&g);
        let cand = internal_candidates(&g);
        let opts = TsOptions { contexts: 2, cppr: true, ..Default::default() };
        let base = evaluate_ts_with_core(&core, &cand, &opts).unwrap();

        // Edit 1: cell resize (pure timing change, node set unchanged).
        let victim = first_table_arc(&g);
        let (core2, _, r2) = step_and_check(
            &core,
            &base,
            &opts,
            |v| {
                v.resize_arc(victim, 0.8).unwrap();
            },
            "resize",
        );
        // Edit 2: buffer insert (node growth; previous TS vector is
        // shorter than the new core, the new pin must recompute).
        let victim2 = first_table_arc_on_core(&GraphView::new(core2.clone()));
        let (core3, cand3, r3) = step_and_check(
            &core2,
            &r2,
            &opts,
            |v| {
                v.insert_node_on_arc(victim2, "eco_buf_t", 2.5).unwrap();
            },
            "insert",
        );
        assert_eq!(core3.node_count(), core2.node_count() + 1);
        // Edit 3: cell delete (bypass an evaluable internal pin).
        let del = {
            let probe = GraphView::new(core3.clone());
            (0..core3.node_count())
                .map(|i| NodeId(i as u32))
                .find(|&nid| {
                    cand3[nid.index()] && !probe.node_dead(nid) && probe.can_bypass(nid)
                })
                .unwrap()
        };
        step_and_check(
            &core3,
            &r3,
            &opts,
            |v| {
                v.bypass_node(del).unwrap();
            },
            "delete",
        );
    }

    /// First live, non-clock table arc visible through a view over a core
    /// (mirrors `first_table_arc` but core ids can differ from the flat
    /// graph after a materialise round-trip).
    fn first_table_arc_on_core(view: &GraphView) -> tmm_sta::graph::ArcId {
        use tmm_sta::graph::{ArcId, ArcTiming};
        let core = view.core();
        (0..core.arc_count() as u32)
            .map(ArcId)
            .find(|&a| {
                let arc = TimingGraph::arc(&**core, a);
                !arc.dead
                    && !arc.is_clock
                    && matches!(arc.timing, ArcTiming::Table(_))
                    && !TimingGraph::node_is_clock_network(&**core, arc.from)
                    && !TimingGraph::node_dead(&**core, arc.from)
                    && !TimingGraph::node_dead(&**core, arc.to)
            })
            .unwrap()
    }

    #[test]
    fn incremental_with_all_dirty_equals_scratch_and_all_clean_carries() {
        let g = graph();
        let core: Arc<DesignCore> = DesignCore::freeze(&g);
        let cand = internal_candidates(&g);
        let opts = TsOptions { contexts: 2, ..Default::default() };
        let base = evaluate_ts_with_core(&core, &cand, &opts).unwrap();
        // All-dirty degenerates to a full recompute.
        let all_dirty = vec![true; core.node_count()];
        let full = evaluate_ts_incremental(&core, &cand, &opts, &base, &all_dirty).unwrap();
        assert_ts_bit_identical(&full, &base, "all-dirty");
        // All-clean carries everything verbatim.
        let all_clean = vec![false; core.node_count()];
        let carried = evaluate_ts_incremental(&core, &cand, &opts, &base, &all_clean).unwrap();
        assert_ts_bit_identical(&carried, &base, "all-clean");
    }

    #[test]
    fn incremental_checkpoint_resume_is_bit_identical() {
        use tmm_ckpt::{MemStore, StageStore};
        let g = big_graph();
        let core: Arc<DesignCore> = DesignCore::freeze(&g);
        let cand = internal_candidates(&g);
        let opts = TsOptions { contexts: 2, ..Default::default() };
        let base = evaluate_ts_with_core(&core, &cand, &opts).unwrap();

        let mut view = GraphView::new(core.clone());
        let victim = first_table_arc(&g);
        view.resize_arc(victim, 1.3).unwrap();
        let changed = view.edited_nodes();
        let edited = view.materialize().unwrap();
        let new_core: Arc<DesignCore> = DesignCore::freeze(&edited);
        let new_cand = internal_candidates(&edited);
        let dirty = dirty_probe_set(&new_core, &changed, core.node_count());

        let plain =
            evaluate_ts_incremental(&new_core, &new_cand, &opts, &base, &dirty).unwrap();
        let mut full = MemStore::new();
        let first = evaluate_ts_incremental_ckpt(
            &new_core, &new_cand, &opts, &base, &dirty, &mut full, "eco.ts",
        )
        .unwrap();
        assert_ts_bit_identical(&first, &plain, "ckpt-vs-plain");
        let saves = full.saves();
        for kept in 0..=saves {
            let mut store = full.truncated(kept);
            let again = evaluate_ts_incremental_ckpt(
                &new_core, &new_cand, &opts, &base, &dirty, &mut store, "eco.ts",
            )
            .unwrap();
            assert_ts_bit_identical(&again, &plain, "resume");
            assert!(store.is_done("eco.ts"), "resumed incremental sweep must mark done");
        }
    }

    #[test]
    fn dirty_probe_set_is_a_cone_not_the_design() {
        let g = big_graph();
        let core: Arc<DesignCore> = DesignCore::freeze(&g);
        let mut view = GraphView::new(core.clone());
        view.resize_arc(first_table_arc(&g), 0.9).unwrap();
        let changed = view.edited_nodes();
        let edited = view.materialize().unwrap();
        let new_core: Arc<DesignCore> = DesignCore::freeze(&edited);
        let dirty = dirty_probe_set(&new_core, &changed, core.node_count());
        let dirty_count = dirty.iter().filter(|&&d| d).count();
        assert!(dirty_count > 0, "an edit must dirty its own cone");
        assert!(
            dirty_count < new_core.node_count(),
            "a single-arc edit must not dirty every node ({dirty_count}/{})",
            new_core.node_count()
        );
    }

    #[test]
    fn ports_and_ff_pins_never_evaluated() {
        let g = graph();
        let all = vec![true; g.node_count()];
        let r = evaluate_ts(&g, &all, &TsOptions { contexts: 1, ..Default::default() }).unwrap();
        for &p in g.primary_inputs().iter().chain(g.primary_outputs()) {
            assert!(r.ts[p.index()].is_nan());
        }
        for c in g.checks() {
            assert!(r.ts[c.d.index()].is_nan());
            assert!(r.ts[c.ck.index()].is_nan());
        }
    }
}
