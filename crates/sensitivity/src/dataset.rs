//! Training-data assembly — the paper's Fig. 8 flow.
//!
//! For one (small) training design: extract the ILM, run the insensitive
//! pin filter, evaluate TS on the survivors, derive classification labels
//! (TS ≠ 0 → 1; CPPR mode additionally labels multi-fan-out clock pins 1,
//! per §5.1), extract Table-1 features, and package everything as a
//! [`TrainSample`] for [`tmm_gnn`].

use crate::features::{extract_features, pin_graph_edges};
use crate::filter::{filter_insensitive, FilterOptions, FilterResult};
use crate::ts::{
    evaluate_ts, evaluate_ts_with_core, evaluate_ts_with_core_ckpt, TsEngine, TsOptions, TsResult,
};
use tmm_gnn::{NeighborMode, NodeGraph, TrainSample};
use tmm_sta::cppr::cppr_crucial_pins;
use tmm_sta::graph::ArcGraph;
use tmm_sta::view::DesignCore;
use tmm_sta::Result;

/// Options for dataset generation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DatasetOptions {
    /// TS evaluation options (contexts, seed, CPPR, zero threshold).
    pub ts: TsOptions,
    /// Insensitive-pin filter options.
    pub filter: FilterOptions,
    /// Generate data for CPPR mode: analyses run with CPPR, clock branch
    /// pins survive the filter and are labelled 1.
    pub cppr_mode: bool,
    /// Generate data under AOCV derating — the §5.3 generality axis: the
    /// same flow retargets to a different analysis mode by re-measuring TS
    /// under it.
    pub aocv_mode: bool,
    /// Include the dedicated `is_CPPR` feature column (§5.3 ablation).
    pub with_cppr_feature: bool,
    /// Produce regression targets (raw TS) instead of binary labels.
    pub regression: bool,
}

/// A labelled pin dataset for one design.
#[derive(Debug, Clone)]
pub struct PinDataset {
    /// Ready-to-train sample (graph, features, labels, mask).
    pub sample: TrainSample,
    /// Raw TS values (NaN where unevaluated).
    pub ts: TsResult,
    /// Filter outcome.
    pub filter: FilterResult,
    /// Fraction of labelled-positive pins among live nodes.
    pub positive_rate: f64,
}

impl PinDataset {
    /// Number of pins the TS sweep quarantined (per-pin evaluation
    /// failures; each keeps `NaN` TS and is conservatively labelled
    /// variant). Intended for once-per-design diagnostics — the individual
    /// causes stay in [`TsResult::failures`].
    #[must_use]
    pub fn ts_failure_count(&self) -> usize {
        self.ts.failures.len()
    }
}

/// Builds a dataset from a design's interface-logic graph.
///
/// # Errors
///
/// Propagates analysis errors from filtering and TS evaluation.
pub fn build_dataset(ilm: &ArcGraph, opts: &DatasetOptions) -> Result<PinDataset> {
    build_dataset_impl(ilm, opts, None)
}

/// [`build_dataset`] with a crash-safe, resumable TS sweep: on the view
/// engine the sweep checkpoints fixed-size pin chunks into `store` under
/// `stage` (via [`evaluate_ts_with_core_ckpt`]), so a killed data
/// generation run resumes where it stopped and produces a bit-identical
/// dataset. The clone engine — the equivalence oracle, never the
/// production path — runs plain.
///
/// # Errors
///
/// Propagates analysis errors; checkpoint-layer failures surface as
/// [`tmm_sta::StaError::Validation`] with artifact `"checkpoint"`.
pub fn build_dataset_ckpt(
    ilm: &ArcGraph,
    opts: &DatasetOptions,
    store: &mut dyn tmm_ckpt::StageStore,
    stage: &str,
) -> Result<PinDataset> {
    build_dataset_impl(ilm, opts, Some((store, stage)))
}

fn build_dataset_impl(
    ilm: &ArcGraph,
    opts: &DatasetOptions,
    ckpt: Option<(&mut dyn tmm_ckpt::StageStore, &str)>,
) -> Result<PinDataset> {
    let mut filter_opts = opts.filter;
    filter_opts.keep_cppr_pins = opts.cppr_mode;

    let mut ts_opts = opts.ts;
    ts_opts.cppr = opts.cppr_mode;
    ts_opts.aocv = ts_opts.aocv || opts.aocv_mode;

    // Under the view engine the design is frozen ONCE here and shared by
    // both the filter's extreme-slew propagation and every TS probe —
    // per-pin clones never happen on this path.
    let (filter, ts) = match ts_opts.engine {
        TsEngine::View => {
            let core = DesignCore::freeze(ilm);
            let filter = filter_insensitive(&*core, &filter_opts)?;
            let ts = match ckpt {
                Some((store, stage)) => {
                    evaluate_ts_with_core_ckpt(&core, &filter.survivors, &ts_opts, store, stage)?
                }
                None => evaluate_ts_with_core(&core, &filter.survivors, &ts_opts)?,
            };
            (filter, ts)
        }
        TsEngine::Clone => {
            let filter = filter_insensitive(ilm, &filter_opts)?;
            let ts = evaluate_ts(ilm, &filter.survivors, &ts_opts)?;
            (filter, ts)
        }
    };

    let mut labels = if opts.regression {
        ts.regression_targets()
    } else {
        ts.labels(ts_opts.zero_eps)
    };
    // Pins the filter kept but TS could not evaluate (refused bypass) are
    // conservatively labelled variant: the model keeps them.
    for i in 0..ilm.node_count() {
        if filter.survivors[i] && ts.ts[i].is_nan() && !opts.regression {
            labels[i] = 1.0;
        }
    }
    if opts.cppr_mode && !opts.regression {
        for p in cppr_crucial_pins(ilm) {
            labels[p.index()] = 1.0;
        }
    }

    let mask: Vec<bool> = (0..ilm.node_count())
        .map(|i| !ilm.node(tmm_sta::graph::NodeId(i as u32)).dead)
        .collect();
    let positive = labels
        .iter()
        .zip(&mask)
        .filter(|&(l, &m)| m && *l > 0.5)
        .count();
    let live = mask.iter().filter(|&&m| m).count().max(1);

    let graph = NodeGraph::from_edges(
        ilm.node_count(),
        &pin_graph_edges(ilm),
        NeighborMode::Undirected,
    );
    let features = extract_features(ilm, opts.with_cppr_feature);
    let sample = TrainSample { graph, features, labels, mask: Some(mask) };
    Ok(PinDataset { sample, ts, filter, positive_rate: positive as f64 / live as f64 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmm_circuits::CircuitSpec;
    use tmm_macromodel::extract_ilm;
    use tmm_sta::liberty::Library;

    fn ilm_graph() -> ArcGraph {
        let lib = Library::synthetic(12);
        let n = CircuitSpec::new("ds")
            .inputs(4)
            .outputs(4)
            .register_banks(2, 4)
            .cloud(2, 5)
            .seed(61)
            .generate(&lib)
            .unwrap();
        let flat = ArcGraph::from_netlist(&n, &lib).unwrap();
        extract_ilm(&flat).unwrap().0
    }

    #[test]
    fn dataset_shapes_are_consistent() {
        let ilm = ilm_graph();
        let ds = build_dataset(&ilm, &DatasetOptions::default()).unwrap();
        assert_eq!(ds.sample.features.rows(), ilm.node_count());
        assert_eq!(ds.sample.labels.len(), ilm.node_count());
        assert_eq!(ds.sample.graph.nodes(), ilm.node_count());
        assert!(ds.positive_rate > 0.0, "some pins must be variant");
        assert!(ds.positive_rate < 0.9, "most pins are invariant");
    }

    #[test]
    fn filtered_pins_get_zero_labels() {
        let ilm = ilm_graph();
        let ds = build_dataset(&ilm, &DatasetOptions::default()).unwrap();
        for i in 0..ilm.node_count() {
            let node = ilm.node(tmm_sta::graph::NodeId(i as u32));
            if node.dead || node.kind != tmm_sta::graph::NodeKind::Internal {
                continue;
            }
            if !ds.filter.survivors[i] {
                assert_eq!(ds.sample.labels[i], 0.0, "filtered pin {} labelled 1", node.name);
            }
        }
    }

    #[test]
    fn cppr_mode_labels_clock_branch_points_positive() {
        let ilm = ilm_graph();
        let opts = DatasetOptions {
            cppr_mode: true,
            with_cppr_feature: true,
            ..Default::default()
        };
        let ds = build_dataset(&ilm, &opts).unwrap();
        for p in cppr_crucial_pins(&ilm) {
            assert_eq!(ds.sample.labels[p.index()], 1.0);
        }
        assert_eq!(ds.sample.features.cols(), crate::features::FEATURES_WITH_CPPR);
    }

    #[test]
    fn regression_dataset_uses_raw_ts() {
        let ilm = ilm_graph();
        let ds = build_dataset(
            &ilm,
            &DatasetOptions { regression: true, ..Default::default() },
        )
        .unwrap();
        // regression labels are continuous TS values: nonnegative, not all
        // 0/1
        assert!(ds.sample.labels.iter().all(|&l| l >= 0.0));
        let nontrivial = ds
            .sample
            .labels
            .iter()
            .filter(|&&l| l > 0.0 && (l - 1.0).abs() > 1e-6)
            .count();
        assert!(nontrivial > 0, "continuous targets expected");
    }

    #[test]
    fn dataset_is_reproducible() {
        let ilm = ilm_graph();
        let a = build_dataset(&ilm, &DatasetOptions::default()).unwrap();
        let b = build_dataset(&ilm, &DatasetOptions::default()).unwrap();
        assert_eq!(a.sample.labels, b.sample.labels);
        assert_eq!(a.positive_rate, b.positive_rate);
    }
}
