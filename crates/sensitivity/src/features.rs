//! Training-feature extraction — the paper's Table 1.
//!
//! Eight basic features computable in linear time from the circuit
//! structure, plus the dedicated `is_CPPR` feature (§5.3) marking
//! multiple-fan-out clock-network pins. `level_from_PI`, `level_to_PO` and
//! `out_degree` are normalised to `[0, 1]` per design, as the paper
//! prescribes, so every feature carries a comparable magnitude.

use tmm_gnn::Matrix;
use tmm_sta::cppr::cppr_crucial_pins;
use tmm_sta::graph::{ArcGraph, NodeId, NodeKind};

/// Number of basic features (Table 1 rows 1–8).
pub const BASE_FEATURES: usize = 8;

/// Total features when the dedicated CPPR feature is included.
pub const FEATURES_WITH_CPPR: usize = BASE_FEATURES + 1;

/// Human-readable feature names, index-aligned with the matrix columns.
pub const FEATURE_NAMES: [&str; FEATURES_WITH_CPPR] = [
    "level_from_PI",
    "level_to_PO",
    "is_last_stage_fanout",
    "is_last_stage",
    "is_first_stage",
    "out_degree",
    "is_clock_network",
    "is_ff_clock",
    "is_CPPR",
];

/// Extracts the per-pin feature matrix of `graph`.
///
/// With `with_cppr == false` the matrix has [`BASE_FEATURES`] columns, with
/// `true` it has [`FEATURES_WITH_CPPR`]. Dead nodes get all-zero rows.
#[must_use]
pub fn extract_features(graph: &ArcGraph, with_cppr: bool) -> Matrix {
    let n = graph.node_count();
    let cols = if with_cppr { FEATURES_WITH_CPPR } else { BASE_FEATURES };
    let from_pi = graph.levels_from_inputs();
    let to_po = graph.levels_to_outputs();
    let max_from = from_pi.iter().filter(|&&l| l != u32::MAX).max().copied().unwrap_or(1).max(1);
    let max_to = to_po.iter().filter(|&&l| l != u32::MAX).max().copied().unwrap_or(1).max(1);
    let max_out = (0..n)
        .map(|i| graph.out_degree(NodeId(i as u32)))
        .max()
        .unwrap_or(1)
        .max(1);

    // A pin is *last stage* when it directly drives an endpoint (PO or FF
    // data pin); *last-stage fanout* pins are driven by a last-stage pin.
    let mut is_last = vec![false; n];
    for i in 0..n {
        let id = NodeId(i as u32);
        if graph.node(id).dead {
            continue;
        }
        is_last[i] = graph.fanout(id).any(|a| {
            matches!(
                graph.node(graph.arc(a).to).kind,
                NodeKind::PrimaryOutput(_) | NodeKind::FfData(_)
            )
        });
    }
    let mut is_last_fanout = vec![false; n];
    for i in 0..n {
        let id = NodeId(i as u32);
        if graph.node(id).dead {
            continue;
        }
        is_last_fanout[i] = graph.fanin(id).any(|a| is_last[graph.arc(a).from.index()]);
    }
    let cppr_pins: Vec<bool> = {
        let mut v = vec![false; n];
        if with_cppr {
            for p in cppr_crucial_pins(graph) {
                v[p.index()] = true;
            }
        }
        v
    };

    Matrix::from_fn(n, cols, |r, c| {
        let id = NodeId(r as u32);
        let node = graph.node(id);
        if node.dead {
            return 0.0;
        }
        match c {
            0 => {
                if from_pi[r] == u32::MAX {
                    1.0
                } else {
                    from_pi[r] as f32 / max_from as f32
                }
            }
            1 => {
                if to_po[r] == u32::MAX {
                    1.0
                } else {
                    to_po[r] as f32 / max_to as f32
                }
            }
            2 => f32::from(u8::from(is_last_fanout[r])),
            3 => f32::from(u8::from(is_last[r])),
            4 => {
                let first = matches!(node.kind, NodeKind::PrimaryInput(_))
                    || graph.fanin(id).any(|a| {
                        matches!(
                            graph.node(graph.arc(a).from).kind,
                            NodeKind::PrimaryInput(_) | NodeKind::ClockSource
                        )
                    });
                f32::from(u8::from(first))
            }
            5 => graph.out_degree(id) as f32 / max_out as f32,
            6 => f32::from(u8::from(node.is_clock_network)),
            7 => f32::from(u8::from(matches!(node.kind, NodeKind::FfClock))),
            8 => f32::from(u8::from(cppr_pins[r])),
            _ => unreachable!("column bound"),
        }
    })
}

/// Directed pin-graph edges over live arcs, ready for
/// [`tmm_gnn::NodeGraph::from_edges`].
#[must_use]
pub fn pin_graph_edges(graph: &ArcGraph) -> Vec<(u32, u32)> {
    graph
        .arcs()
        .iter()
        .filter(|a| {
            !a.dead && !graph.node(a.from).dead && !graph.node(a.to).dead
        })
        .map(|a| (a.from.0, a.to.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmm_circuits::CircuitSpec;
    use tmm_sta::liberty::Library;

    fn graph() -> ArcGraph {
        let lib = Library::synthetic(11);
        let n = CircuitSpec::new("ft")
            .inputs(4)
            .outputs(4)
            .register_banks(2, 4)
            .cloud(2, 6)
            .seed(41)
            .generate(&lib)
            .unwrap();
        ArcGraph::from_netlist(&n, &lib).unwrap()
    }

    #[test]
    fn feature_matrix_shape_and_range() {
        let g = graph();
        let base = extract_features(&g, false);
        assert_eq!(base.cols(), BASE_FEATURES);
        assert_eq!(base.rows(), g.node_count());
        let full = extract_features(&g, true);
        assert_eq!(full.cols(), FEATURES_WITH_CPPR);
        for v in full.data() {
            assert!((0.0..=1.0).contains(v), "feature {v} out of [0,1]");
        }
    }

    #[test]
    fn pi_has_level_zero_and_first_stage_flag() {
        let g = graph();
        let f = extract_features(&g, false);
        for &pi in g.primary_inputs() {
            assert_eq!(f.at(pi.index(), 0), 0.0, "level_from_PI");
            assert_eq!(f.at(pi.index(), 4), 1.0, "is_first_stage");
        }
    }

    #[test]
    fn clock_pins_flagged() {
        let g = graph();
        let f = extract_features(&g, true);
        for c in g.checks() {
            assert_eq!(f.at(c.ck.index(), 6), 1.0, "ff ck is clock network");
            assert_eq!(f.at(c.ck.index(), 7), 1.0, "is_ff_clock");
            assert_eq!(f.at(c.d.index(), 7), 0.0, "d pin is not a clock pin");
        }
    }

    #[test]
    fn cppr_feature_marks_multi_fanout_clock_pins() {
        let g = graph();
        let f = extract_features(&g, true);
        let marked: Vec<usize> =
            (0..g.node_count()).filter(|&i| f.at(i, 8) == 1.0).collect();
        assert!(!marked.is_empty(), "clock tree has branch points");
        for i in marked {
            let n = NodeId(i as u32);
            assert!(g.node(n).is_clock_network);
            assert!(g.out_degree(n) > 1);
        }
    }

    #[test]
    fn last_stage_pins_drive_endpoints() {
        let g = graph();
        let f = extract_features(&g, false);
        for &po in g.primary_outputs() {
            for a in g.fanin(po) {
                assert_eq!(f.at(g.arc(a).from.index(), 3), 1.0);
            }
        }
    }

    #[test]
    fn edges_cover_live_arcs_only() {
        let mut g = graph();
        let before = pin_graph_edges(&g).len();
        assert_eq!(before, g.live_arcs());
        // kill a node; its arcs disappear from the edge list
        let victim = (0..g.node_count() as u32)
            .map(NodeId)
            .find(|&n| g.node(n).kind == NodeKind::Internal && g.can_bypass(n))
            .unwrap();
        g.bypass_node(victim).unwrap();
        let after = pin_graph_edges(&g).len();
        assert_eq!(after, g.live_arcs());
    }

    #[test]
    fn feature_names_align_with_columns() {
        assert_eq!(FEATURE_NAMES.len(), FEATURES_WITH_CPPR);
        assert_eq!(FEATURE_NAMES[8], "is_CPPR");
    }
}
