//! Insensitive-pin filtering — §4.2, Figs. 7–8.
//!
//! Running the full TS flow for every pin is expensive (one propagation per
//! pin per context). The filter exploits the shielding effect: extreme
//! boundary slews are propagated once, the resulting per-pin slew
//! *difference* (SD) is standardised, and pins whose SD falls below a
//! threshold are excluded from TS evaluation. The threshold is deliberately
//! coarse — it only prunes the candidate list, so model quality does not
//! depend on it (validated by the Table 6 experiment).

use tmm_macromodel::baselines::{output_variant_pins, slew_range};
use tmm_sta::cppr::cppr_crucial_pins;
use tmm_sta::graph::{NodeId, NodeKind};
use tmm_sta::view::TimingGraph;
use tmm_sta::Result;

/// Options for the insensitive-pin filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterOptions {
    /// Standardised-SD threshold: pins with `z(SD) < threshold` are
    /// filtered out. The paper never tunes this; neither do we.
    pub threshold: f64,
    /// Additionally retain multiple-fan-out clock pins (CPPR mode).
    pub keep_cppr_pins: bool,
}

impl Default for FilterOptions {
    fn default() -> Self {
        FilterOptions { threshold: -0.25, keep_cppr_pins: false }
    }
}

/// Result of one filtering pass.
#[derive(Debug, Clone)]
pub struct FilterResult {
    /// Per-node survival: `true` pins proceed to TS evaluation.
    pub survivors: Vec<bool>,
    /// Raw slew differences per node (ps).
    pub sd: Vec<f64>,
    /// Standardised slew differences per node.
    pub sd_z: Vec<f64>,
    /// Count of candidate pins removed by the filter.
    pub filtered_out: usize,
    /// Count of surviving candidate pins.
    pub survived: usize,
}

impl FilterResult {
    /// Fraction of candidate pins removed (the paper reports > 88 %;
    /// the exact number depends on the SD distribution).
    #[must_use]
    pub fn filter_rate(&self) -> f64 {
        let total = self.filtered_out + self.survived;
        if total == 0 {
            0.0
        } else {
            self.filtered_out as f64 / total as f64
        }
    }
}

/// Standardises slew differences over the candidate population. Only
/// *finite* candidate SDs enter the mean/variance: a single NaN (e.g. a
/// pin quarantined during slew propagation) would otherwise poison the
/// mean and turn every sd_z into NaN, silently filtering out the whole
/// design. Non-finite SDs map to NaN sd_z, which the survival test treats
/// as a conservative keep.
#[must_use]
pub fn standardise_sd(sd: &[f64], candidate: &[bool]) -> Vec<f64> {
    let vals: Vec<f64> = (0..sd.len())
        .filter(|&i| candidate[i] && sd[i].is_finite())
        .map(|i| sd[i])
        .collect();
    let n = vals.len().max(1) as f64;
    let mean = vals.iter().sum::<f64>() / n;
    let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let std = var.sqrt().max(1e-12);
    sd.iter().map(|&v| (v - mean) / std).collect()
}

/// Runs the insensitive-pin filter over the internal pins of `graph`.
///
/// # Errors
///
/// Propagates analysis errors from the extreme-slew propagation.
pub fn filter_insensitive<G: TimingGraph>(
    graph: &G,
    opts: &FilterOptions,
) -> Result<FilterResult> {
    let mut span = tmm_obs::span("insensitive_filter", "sensitivity");
    let sd = slew_range(graph)?;
    // Candidates: live internal pins (the only removable kind).
    let candidate: Vec<bool> = (0..graph.node_count())
        .map(|i| {
            let n = NodeId(i as u32);
            !graph.node_dead(n) && graph.node_kind(n) == NodeKind::Internal
        })
        .collect();
    let sd_z = standardise_sd(&sd, &candidate);

    let hard_keep = output_variant_pins(graph);
    let cppr_keep: Vec<NodeId> =
        if opts.keep_cppr_pins { cppr_crucial_pins(graph) } else { Vec::new() };

    let mut survivors = vec![false; graph.node_count()];
    let mut filtered_out = 0usize;
    let mut survived = 0usize;
    for i in 0..graph.node_count() {
        if !candidate[i] {
            continue;
        }
        // NaN sd_z (unmeasured pin) must KEEP: `NaN >= t` is false, so the
        // naive comparison would silently drop exactly the pins we know
        // least about. Keeping them is the conservative direction — they
        // proceed to TS evaluation, which quarantines them properly.
        let keep = !sd_z[i].is_finite()
            || sd_z[i] >= opts.threshold
            || hard_keep[i]
            || cppr_keep.contains(&NodeId(i as u32));
        survivors[i] = keep;
        if keep {
            survived += 1;
        } else {
            filtered_out += 1;
        }
    }
    span.arg_f64("filtered_out", filtered_out as f64);
    span.arg_f64("survived", survived as f64);
    tmm_obs::counter_add("tmm_filter_pins_removed_total", &[], filtered_out as u64);
    tmm_obs::counter_add("tmm_filter_pins_survived_total", &[], survived as u64);
    let total = filtered_out + survived;
    if total > 0 {
        tmm_obs::gauge_set("tmm_filter_rate", &[], filtered_out as f64 / total as f64);
    }
    Ok(FilterResult { survivors, sd, sd_z, filtered_out, survived })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmm_circuits::CircuitSpec;
    use tmm_sta::graph::ArcGraph;
    use tmm_sta::liberty::Library;

    fn graph(banks: usize, depth: usize) -> ArcGraph {
        let lib = Library::synthetic(10);
        let n = CircuitSpec::new("f")
            .inputs(5)
            .outputs(5)
            .register_banks(banks, 4)
            .cloud(depth, 7)
            .seed(23)
            .generate(&lib)
            .unwrap();
        ArcGraph::from_netlist(&n, &lib).unwrap()
    }

    #[test]
    fn filter_removes_a_large_share_of_pins() {
        let g = graph(2, 4);
        let r = filter_insensitive(&g, &FilterOptions::default()).unwrap();
        assert!(r.filtered_out > 0);
        assert!(r.survived > 0);
        assert!(
            r.filter_rate() > 0.4,
            "deep designs shield most pins; rate {}",
            r.filter_rate()
        );
    }

    #[test]
    fn output_net_pins_always_survive() {
        let g = graph(1, 2);
        let r = filter_insensitive(&g, &FilterOptions::default()).unwrap();
        for &po in g.primary_outputs() {
            for a in g.fanin(po) {
                let d = g.arc(a).from;
                if g.node(d).kind == NodeKind::Internal {
                    assert!(r.survivors[d.index()], "PO driver {} must survive", g.node(d).name);
                }
            }
        }
    }

    #[test]
    fn cppr_mode_keeps_clock_branch_points() {
        let g = graph(3, 2);
        let crucial = cppr_crucial_pins(&g);
        let with = filter_insensitive(
            &g,
            &FilterOptions { keep_cppr_pins: true, ..Default::default() },
        )
        .unwrap();
        for &n in &crucial {
            if g.node(n).kind == NodeKind::Internal {
                assert!(with.survivors[n.index()], "{} must survive in CPPR mode", g.node(n).name);
            }
        }
    }

    #[test]
    fn threshold_is_coarse_not_critical() {
        // Different thresholds change the candidate count but both keep the
        // truly sensitive (high-SD) pins — the paper's robustness claim.
        let g = graph(2, 3);
        let strict =
            filter_insensitive(&g, &FilterOptions { threshold: 0.5, ..Default::default() })
                .unwrap();
        let lax =
            filter_insensitive(&g, &FilterOptions { threshold: -1.0, ..Default::default() })
                .unwrap();
        assert!(strict.survived <= lax.survived);
        // every strict survivor is also a lax survivor
        for i in 0..g.node_count() {
            if strict.survivors[i] {
                assert!(lax.survivors[i]);
            }
        }
    }

    #[test]
    fn nan_sd_does_not_poison_standardisation_and_survives() {
        // One quarantined pin with NaN SD sits among candidates whose SDs
        // straddle the classification boundary. The NaN must neither shift
        // the finite pins' z-scores nor be silently filtered out itself.
        let sd = vec![1.0, f64::NAN, 2.0, 3.0, 4.0];
        let candidate = vec![true; 5];
        let with_nan = standardise_sd(&sd, &candidate);
        let clean = standardise_sd(&[1.0, 2.0, 3.0, 4.0], &[true; 4]);
        assert_eq!(with_nan[0].to_bits(), clean[0].to_bits());
        assert_eq!(with_nan[2].to_bits(), clean[1].to_bits());
        assert_eq!(with_nan[3].to_bits(), clean[2].to_bits());
        assert_eq!(with_nan[4].to_bits(), clean[3].to_bits());
        assert!(with_nan[1].is_nan(), "unmeasured pin stays unmeasured");
        // Survival: NaN sd_z is a conservative keep at any threshold.
        for threshold in [-1.0, 0.0, 1.0] {
            let keep = !with_nan[1].is_finite() || with_nan[1] >= threshold;
            assert!(keep);
        }
    }

    #[test]
    fn standardisation_centers_candidates() {
        let g = graph(2, 3);
        let r = filter_insensitive(&g, &FilterOptions::default()).unwrap();
        let zs: Vec<f64> = (0..g.node_count())
            .filter(|&i| {
                !g.node(NodeId(i as u32)).dead
                    && g.node(NodeId(i as u32)).kind == NodeKind::Internal
            })
            .map(|i| r.sd_z[i])
            .collect();
        let mean: f64 = zs.iter().sum::<f64>() / zs.len() as f64;
        assert!(mean.abs() < 1e-6, "standardised mean ≈ 0, got {mean}");
    }
}
