//! Property-based tests of the sensitivity pipeline's invariants.

// Integration-test harness code: the clippy.toml test exemptions do not
// reach helper fns outside #[test], so state the exemption explicitly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use tmm_circuits::CircuitSpec;
use tmm_macromodel::extract_ilm;
use tmm_sensitivity::{
    build_dataset, extract_features, filter_insensitive, DatasetOptions, FilterOptions,
    TsOptions, BASE_FEATURES,
};
use tmm_sta::graph::{ArcGraph, NodeId, NodeKind};
use tmm_sta::liberty::Library;

fn ilm(seed: u64) -> ArcGraph {
    let lib = Library::synthetic(6);
    let n = CircuitSpec::new("ps")
        .inputs(3)
        .outputs(3)
        .register_banks(1, 3)
        .cloud(2, 4)
        .seed(seed)
        .generate(&lib)
        .unwrap();
    let flat = ArcGraph::from_netlist(&n, &lib).unwrap();
    extract_ilm(&flat).unwrap().0
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Features are always within [0, 1] and level features are 0 exactly at
    /// the boundary pins, for any design seed.
    #[test]
    fn features_are_normalised(seed in 0u64..100, with_cppr in proptest::bool::ANY) {
        let g = ilm(seed);
        let f = extract_features(&g, with_cppr);
        prop_assert_eq!(f.cols(), if with_cppr { BASE_FEATURES + 1 } else { BASE_FEATURES });
        for v in f.data() {
            prop_assert!((0.0..=1.0).contains(v));
        }
        for &pi in g.primary_inputs() {
            prop_assert_eq!(f.at(pi.index(), 0), 0.0);
        }
    }

    /// Filter thresholds nest: every survivor of a stricter threshold also
    /// survives a laxer one (the robustness §4.2 claims).
    #[test]
    fn filter_thresholds_nest(seed in 0u64..100, t_lo in -1.5f64..0.0, dt in 0.1f64..1.5) {
        let g = ilm(seed);
        let lax = filter_insensitive(&g, &FilterOptions { threshold: t_lo, ..Default::default() }).unwrap();
        let strict = filter_insensitive(&g, &FilterOptions { threshold: t_lo + dt, ..Default::default() }).unwrap();
        for i in 0..g.node_count() {
            if strict.survivors[i] {
                prop_assert!(lax.survivors[i], "strict survivor {i} missing from lax set");
            }
        }
        prop_assert!(strict.survived <= lax.survived);
    }

    /// Dataset labels are binary in classification mode, positives only on
    /// live internal pins or CPPR-labelled clock pins, and masked nodes
    /// cover exactly the live set.
    #[test]
    fn dataset_label_invariants(seed in 0u64..50, cppr in proptest::bool::ANY) {
        let g = ilm(seed);
        let opts = DatasetOptions {
            ts: TsOptions { contexts: 1, ..Default::default() },
            cppr_mode: cppr,
            with_cppr_feature: cppr,
            ..Default::default()
        };
        let ds = build_dataset(&g, &opts).unwrap();
        let mask = ds.sample.mask.as_ref().unwrap();
        for i in 0..g.node_count() {
            let node = g.node(NodeId(i as u32));
            prop_assert_eq!(mask[i], !node.dead);
            let l = ds.sample.labels[i];
            prop_assert!(l == 0.0 || l == 1.0, "label {l} not binary");
            if l == 1.0 {
                prop_assert!(!node.dead);
                // positives are internal pins (or clock pins in CPPR mode)
                prop_assert!(
                    node.kind == NodeKind::Internal || (cppr && node.is_clock_network),
                    "positive on {:?}", node.kind
                );
            }
        }
        prop_assert!((0.0..1.0).contains(&ds.positive_rate));
    }
}
