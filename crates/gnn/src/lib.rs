//! A minimal, dependency-light graph neural network framework.
//!
//! Implements exactly what GNN-based timing macro modeling needs — and
//! nothing more: dense `f32` matrices, CSR neighborhoods, GraphSAGE mean
//! aggregation (the paper's Eqs. (3)–(4)) and GCN propagation with manual
//! backprop, Adam, class-weighted BCE / MSE losses, and classification
//! metrics. Full-batch training on graphs of up to a few hundred thousand
//! nodes runs comfortably on a CPU.
//!
//! - [`matrix`] — dense linear algebra.
//! - [`kernels`] — blocked, deterministic-parallel compute kernels (plus
//!   the retained naive references in [`kernels::naive`]).
//! - [`graph`] — CSR neighborhoods and aggregation operators.
//! - [`layers`] — GraphSAGE / GCN / linear layers (forward + backward).
//! - [`loss`] — BCE-with-logits (with positive-class weighting) and MSE.
//! - [`optim`] — Adam with decoupled weight decay.
//! - [`model`] — the stacked [`model::GnnModel`] with its training loop.
//! - [`metrics`] — precision/recall/F1.
//!
//! # Example
//!
//! ```
//! use tmm_gnn::graph::{NeighborMode, NodeGraph};
//! use tmm_gnn::matrix::Matrix;
//! use tmm_gnn::model::{GnnModel, ModelConfig, TrainConfig, TrainSample};
//!
//! // 4-node path graph; label = feature of any neighbor exceeds 0.5.
//! let graph = NodeGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], NeighborMode::Undirected);
//! let features = Matrix::from_vec(4, 1, vec![0.9, 0.1, 0.2, 0.1]);
//! let labels = vec![1.0, 1.0, 0.0, 0.0];
//! let sample = TrainSample { graph, features, labels, mask: None };
//! let mut model = GnnModel::new(1, ModelConfig::default());
//! let report = model.train(&[sample], &TrainConfig { epochs: 50, ..Default::default() });
//! assert!(report.final_loss.is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod kernels;
pub mod layers;
pub mod loss;
pub mod matrix;
pub mod metrics;
pub mod model;
pub mod optim;

pub use graph::{NeighborMode, NodeGraph};
pub use kernels::{Backend, KernelPolicy};
pub use matrix::Matrix;
pub use metrics::{classify_metrics, ConfusionCounts};
pub use model::{
    CkptHook, Engine, GnnModel, ModelConfig, Task, TrainConfig, TrainReport, TrainSample,
    Workspace, TRAIN_STAGE,
};
