//! Deterministic compute kernels for GNN training and inference.
//!
//! Every kernel here obeys one contract: **the bit pattern of the output
//! depends only on the inputs, never on the thread count or the backend**.
//! Two rules make that possible:
//!
//! 1. *Row ownership* — every output row is computed entirely by one worker
//!    running the same sequential code at any thread count, so partitioning
//!    rows across threads cannot change a single bit.
//! 2. *Fixed-chunk ordered reduction* — the one kernel that reduces over the
//!    huge node dimension ([`gemm_tn`], used for `∂W = Xᵀ·∂Z`) splits the
//!    reduction into fixed [`REDUCE_CHUNK`]-row chunks **independent of the
//!    thread count**, computes each partial slab separately, and adds the
//!    slabs sequentially in chunk order. This is the same rule
//!    `tmm_sta::view`'s sweep uses for its worker partitioning.
//!
//! The [`naive`] module retains straightforward reference implementations of
//! the same bit-spec; the proptest suite asserts blocked == naive == any
//! thread count, bit for bit.
//!
//! Kernels write into caller-provided buffers so the steady-state training
//! loop performs no heap allocation (see `model::Workspace`).

use crate::graph::NodeGraph;

/// Fixed reduction-chunk length (rows of the summed dimension) used by
/// [`gemm_tn`]. Chunking is a property of the *algorithm*, not the thread
/// count, so results are identical at any parallelism.
pub const REDUCE_CHUNK: usize = 2048;

/// Minimum number of scalar operations a worker must have before spawning
/// it pays for itself; below this everything runs on the calling thread.
const MIN_OPS_PER_WORKER: usize = 1 << 17;

/// Which kernel implementations to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Cache-blocked, optionally parallel kernels (the default).
    #[default]
    Blocked,
    /// The retained sequential reference implementations in [`naive`].
    Naive,
}

/// Execution policy threaded through every kernel call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelPolicy {
    /// Worker-thread budget. `0` resolves to the machine's available
    /// parallelism; `1` (the default) keeps everything on the caller.
    pub threads: usize,
    /// Implementation selector.
    pub backend: Backend,
}

impl Default for KernelPolicy {
    fn default() -> Self {
        KernelPolicy { threads: 1, backend: Backend::Blocked }
    }
}

impl KernelPolicy {
    /// Policy with the given thread budget and the blocked backend.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        KernelPolicy { threads, backend: Backend::Blocked }
    }

    /// Policy running the naive reference backend (always sequential).
    #[must_use]
    pub fn naive() -> Self {
        KernelPolicy { threads: 1, backend: Backend::Naive }
    }

    fn resolved_threads(self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.threads
        }
    }

    /// Number of workers to use for `units` independent work items costing
    /// `ops_per_unit` scalar operations each. Engages parallelism only when
    /// every spawned worker gets at least [`MIN_OPS_PER_WORKER`] ops.
    fn workers_for(self, units: usize, ops_per_unit: usize) -> usize {
        if self.backend == Backend::Naive {
            return 1;
        }
        let t = self.resolved_threads();
        if t <= 1 || units <= 1 {
            return 1;
        }
        let total = units.saturating_mul(ops_per_unit);
        t.min(total / MIN_OPS_PER_WORKER).min(units).max(1)
    }
}

/// Runs `body(first_row, rows_slice)` over row-chunks of `out`, either
/// inline (`workers <= 1`) or on scoped threads. Each row belongs to exactly
/// one chunk, so any worker count produces identical bits.
fn par_row_chunks<F>(out: &mut [f32], width: usize, workers: usize, body: &F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if out.is_empty() || width == 0 {
        return;
    }
    let rows = out.len() / width;
    if workers <= 1 || rows <= 1 {
        body(0, out);
        return;
    }
    let chunk_rows = rows.div_ceil(workers);
    std::thread::scope(|s| {
        for (ci, chunk) in out.chunks_mut(chunk_rows * width).enumerate() {
            s.spawn(move || body(ci * chunk_rows, chunk));
        }
    });
}

// ---------------------------------------------------------------------------
// GEMM family
// ---------------------------------------------------------------------------

/// `out = A · B` where `A` is `m×k`, `B` is `k×n`, `out` is `m×n`.
///
/// Row-parallel with a 4-row register-blocked microkernel; per output
/// element the products are added in ascending-`k` order, matching
/// [`naive::gemm`] bit for bit.
///
/// # Panics
///
/// Panics if the buffer lengths do not match the given shape.
pub fn gemm(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize, pol: KernelPolicy) {
    assert_eq!(a.len(), m * k, "gemm: A shape");
    assert_eq!(b.len(), k * n, "gemm: B shape");
    assert_eq!(out.len(), m * n, "gemm: out shape");
    if m == 0 || n == 0 {
        return;
    }
    if pol.backend == Backend::Naive {
        naive::gemm(a, b, out, m, k, n);
        return;
    }
    let workers = pol.workers_for(m, 2 * k * n);
    par_row_chunks(out, n, workers, &|row0, chunk| gemm_rows(a, b, chunk, row0, k, n));
}

/// Sequential microkernel computing rows `row0..` of `A·B` into `chunk`.
fn gemm_rows(a: &[f32], b: &[f32], chunk: &mut [f32], row0: usize, k: usize, n: usize) {
    let mut r = 0usize;
    let mut quads = chunk.chunks_exact_mut(4 * n);
    for quad in &mut quads {
        let (q01, q23) = quad.split_at_mut(2 * n);
        let (o0, o1) = q01.split_at_mut(n);
        let (o2, o3) = q23.split_at_mut(n);
        o0.fill(0.0);
        o1.fill(0.0);
        o2.fill(0.0);
        o3.fill(0.0);
        let base = (row0 + r) * k;
        for kk in 0..k {
            let a0 = a[base + kk];
            let a1 = a[base + k + kk];
            let a2 = a[base + 2 * k + kk];
            let a3 = a[base + 3 * k + kk];
            let brow = &b[kk * n..kk * n + n];
            for j in 0..n {
                let bv = brow[j];
                o0[j] += a0 * bv;
                o1[j] += a1 * bv;
                o2[j] += a2 * bv;
                o3[j] += a3 * bv;
            }
        }
        r += 4;
    }
    for orow in quads.into_remainder().chunks_exact_mut(n) {
        orow.fill(0.0);
        let arow = &a[(row0 + r) * k..(row0 + r) * k + k];
        for (kk, &av) in arow.iter().enumerate() {
            let brow = &b[kk * n..kk * n + n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
        r += 1;
    }
}

/// `out = Aᵀ · B` without materialising the transpose: `A` is
/// `k_rows×a_stride` (only its first `m` columns participate), `B` is
/// `k_rows×n`, `out` is `m×n`.
///
/// The reduction over `k_rows` (the node dimension — potentially hundreds of
/// thousands) uses the fixed-chunk ordered-reduction rule: partial `m×n`
/// slabs per [`REDUCE_CHUNK`] rows, computed independently (possibly in
/// parallel) and then summed sequentially in chunk order. `scratch` holds
/// the slabs and is reused across calls.
///
/// # Panics
///
/// Panics if the buffer lengths do not match the given shape or
/// `a_stride < m`.
pub fn gemm_tn(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    k_rows: usize,
    m: usize,
    n: usize,
    a_stride: usize,
    scratch: &mut Vec<f32>,
    pol: KernelPolicy,
) {
    assert!(a_stride >= m, "gemm_tn: stride narrower than m");
    assert_eq!(a.len(), k_rows * a_stride, "gemm_tn: A shape");
    assert_eq!(b.len(), k_rows * n, "gemm_tn: B shape");
    assert_eq!(out.len(), m * n, "gemm_tn: out shape");
    if m == 0 || n == 0 {
        return;
    }
    if pol.backend == Backend::Naive {
        naive::gemm_tn(a, b, out, k_rows, m, n, a_stride, scratch);
        return;
    }
    out.fill(0.0);
    if k_rows == 0 {
        return;
    }
    let n_chunks = k_rows.div_ceil(REDUCE_CHUNK);
    let slab = m * n;
    scratch.clear();
    scratch.resize(n_chunks * slab, 0.0);
    let workers = pol.workers_for(n_chunks, REDUCE_CHUNK * 2 * slab);
    par_row_chunks(scratch, slab, workers, &|c0, slabs| {
        for (ci, p) in slabs.chunks_exact_mut(slab).enumerate() {
            let kk0 = (c0 + ci) * REDUCE_CHUNK;
            let kk1 = (kk0 + REDUCE_CHUNK).min(k_rows);
            for kk in kk0..kk1 {
                let arow = &a[kk * a_stride..kk * a_stride + m];
                let brow = &b[kk * n..kk * n + n];
                for (i, &av) in arow.iter().enumerate() {
                    let prow = &mut p[i * n..(i + 1) * n];
                    for (o, &bv) in prow.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            }
        }
    });
    for p in scratch.chunks_exact(slab) {
        for (o, &v) in out.iter_mut().zip(p) {
            *o += v;
        }
    }
}

/// `out = A · Bᵀ` without materialising the transpose: `A` is `m×k`, `B` is
/// `n×k`, `out` is `m×n`.
///
/// Row-parallel; each output element is one sequential ascending-`k` dot
/// product (4-column tiles give instruction-level parallelism across
/// *independent* accumulators, never within one).
///
/// # Panics
///
/// Panics if the buffer lengths do not match the given shape.
pub fn gemm_nt(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    pol: KernelPolicy,
) {
    assert_eq!(a.len(), m * k, "gemm_nt: A shape");
    assert_eq!(b.len(), n * k, "gemm_nt: B shape");
    assert_eq!(out.len(), m * n, "gemm_nt: out shape");
    if m == 0 || n == 0 {
        return;
    }
    if pol.backend == Backend::Naive {
        naive::gemm_nt(a, b, out, m, k, n);
        return;
    }
    let workers = pol.workers_for(m, 2 * k * n);
    par_row_chunks(out, n, workers, &|row0, chunk| {
        for (r, orow) in chunk.chunks_exact_mut(n).enumerate() {
            let arow = &a[(row0 + r) * k..(row0 + r) * k + k];
            let mut j = 0usize;
            while j + 4 <= n {
                let b0 = &b[j * k..(j + 1) * k];
                let b1 = &b[(j + 1) * k..(j + 2) * k];
                let b2 = &b[(j + 2) * k..(j + 3) * k];
                let b3 = &b[(j + 3) * k..(j + 4) * k];
                let mut acc = [0.0f32; 4];
                for (kk, &av) in arow.iter().enumerate() {
                    acc[0] += av * b0[kk];
                    acc[1] += av * b1[kk];
                    acc[2] += av * b2[kk];
                    acc[3] += av * b3[kk];
                }
                orow[j..j + 4].copy_from_slice(&acc);
                j += 4;
            }
            while j < n {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&av, &bv) in arow.iter().zip(brow) {
                    acc += av * bv;
                }
                orow[j] = acc;
                j += 1;
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Element-wise epilogues (order-independent, kept sequential)
// ---------------------------------------------------------------------------

/// In-place fused bias-add + ReLU: `out[r][c] = relu(out[r][c] + bias[c])`.
///
/// Element-wise, so evaluation order cannot affect the result.
pub fn bias_relu(out: &mut [f32], bias: &[f32]) {
    if bias.is_empty() {
        return;
    }
    for row in out.chunks_exact_mut(bias.len()) {
        for (o, &b) in row.iter_mut().zip(bias) {
            *o = (*o + b).max(0.0);
        }
    }
}

/// ReLU backward gate: `dz[e] = d_out[e] * (out_fwd[e] > 0 ? 1 : 0)`.
///
/// `out_fwd` is the *post*-activation value; `out > 0 ⇔ z > 0` under the
/// ReLU 0-at-0 convention, so caching pre-activations is unnecessary.
pub fn relu_gate(out_fwd: &[f32], d_out: &[f32], dz: &mut [f32]) {
    for ((z, &o), &g) in dz.iter_mut().zip(out_fwd).zip(d_out) {
        *z = g * if o > 0.0 { 1.0 } else { 0.0 };
    }
}

/// Column sums of a row-major `rows×cols` buffer into `out` (length `cols`),
/// accumulated in ascending row order.
pub fn col_sums(a: &[f32], cols: usize, out: &mut [f32]) {
    out.fill(0.0);
    if cols == 0 {
        return;
    }
    for row in a.chunks_exact(cols) {
        for (o, &v) in out.iter_mut().zip(row) {
            *o += v;
        }
    }
}

// ---------------------------------------------------------------------------
// CSR aggregation family
// ---------------------------------------------------------------------------

/// Mean neighborhood aggregation into a caller buffer:
/// `out[i] = mean(h[j] for j ∈ N(i))`, zero rows for isolated nodes.
///
/// # Panics
///
/// Panics if the buffer lengths do not match `g.nodes() × cols`.
pub fn mean_aggregate_into(
    g: &NodeGraph,
    h: &[f32],
    cols: usize,
    out: &mut [f32],
    pol: KernelPolicy,
) {
    assert_eq!(h.len(), g.nodes() * cols, "mean_aggregate: h shape");
    assert_eq!(out.len(), g.nodes() * cols, "mean_aggregate: out shape");
    if cols == 0 || g.nodes() == 0 {
        return;
    }
    if pol.backend == Backend::Naive {
        naive::mean_aggregate(g, h, cols, out);
        return;
    }
    let workers = pol.workers_for(g.nodes(), 2 * cols * (g.neighbor_entries() / g.nodes() + 1));
    par_row_chunks(out, cols, workers, &|row0, chunk| {
        for (r, orow) in chunk.chunks_exact_mut(cols).enumerate() {
            let i = row0 + r;
            orow.fill(0.0);
            let nbrs = g.neighbors(i);
            if nbrs.is_empty() {
                continue;
            }
            for &j in nbrs {
                let src = &h[j as usize * cols..(j as usize + 1) * cols];
                for (o, &v) in orow.iter_mut().zip(src) {
                    *o += v;
                }
            }
            let inv = g.inv_deg()[i];
            for o in orow.iter_mut() {
                *o *= inv;
            }
        }
    });
}

/// Adjoint of mean aggregation into a caller buffer. The sequential
/// reference *scatters* `grad[i]/|N(i)|` to every neighbor; this kernel
/// *gathers* over the precomputed transpose CSR instead, whose source lists
/// preserve the scatter's exact per-destination addition order — bit-equal
/// results, but row-parallel.
///
/// # Panics
///
/// Panics if the buffer lengths do not match `g.nodes() × cols`.
pub fn mean_aggregate_adjoint_into(
    g: &NodeGraph,
    grad: &[f32],
    cols: usize,
    out: &mut [f32],
    pol: KernelPolicy,
) {
    assert_eq!(grad.len(), g.nodes() * cols, "adjoint: grad shape");
    assert_eq!(out.len(), g.nodes() * cols, "adjoint: out shape");
    if cols == 0 || g.nodes() == 0 {
        return;
    }
    if pol.backend == Backend::Naive {
        naive::mean_aggregate_adjoint(g, grad, cols, out);
        return;
    }
    let workers = pol.workers_for(g.nodes(), 2 * cols * (g.neighbor_entries() / g.nodes() + 1));
    par_row_chunks(out, cols, workers, &|row0, chunk| {
        for (r, orow) in chunk.chunks_exact_mut(cols).enumerate() {
            orow.fill(0.0);
            for &src in g.t_sources(row0 + r) {
                let s = src as usize;
                let inv = g.inv_deg()[s];
                let grow = &grad[s * cols..(s + 1) * cols];
                for (o, &v) in orow.iter_mut().zip(grow) {
                    *o += v * inv;
                }
            }
        }
    });
}

/// Symmetric-normalised GCN propagation `D^{-1/2}(A+I)D^{-1/2}·h` into a
/// caller buffer (self-loop first, then neighbors in CSR order — the same
/// per-row order as the reference).
///
/// # Panics
///
/// Panics if the buffer lengths do not match `g.nodes() × cols`.
pub fn gcn_propagate_into(
    g: &NodeGraph,
    h: &[f32],
    cols: usize,
    out: &mut [f32],
    pol: KernelPolicy,
) {
    assert_eq!(h.len(), g.nodes() * cols, "gcn: h shape");
    assert_eq!(out.len(), g.nodes() * cols, "gcn: out shape");
    if cols == 0 || g.nodes() == 0 {
        return;
    }
    if pol.backend == Backend::Naive {
        naive::gcn_propagate(g, h, cols, out);
        return;
    }
    let inv_sqrt = g.inv_sqrt_deg();
    let workers = pol.workers_for(g.nodes(), 2 * cols * (g.neighbor_entries() / g.nodes() + 2));
    par_row_chunks(out, cols, workers, &|row0, chunk| {
        for (r, orow) in chunk.chunks_exact_mut(cols).enumerate() {
            let i = row0 + r;
            orow.fill(0.0);
            let di = inv_sqrt[i];
            let w_self = di * di;
            let src = &h[i * cols..(i + 1) * cols];
            for (o, &v) in orow.iter_mut().zip(src) {
                *o += w_self * v;
            }
            for &j in g.neighbors(i) {
                let w = di * inv_sqrt[j as usize];
                let src = &h[j as usize * cols..(j as usize + 1) * cols];
                for (o, &v) in orow.iter_mut().zip(src) {
                    *o += w * v;
                }
            }
        }
    });
}

/// Fused GraphSAGE input build: `x[i] = [h[i] ‖ mean(h[j] for j ∈ N(i))]`
/// in one row-parallel pass (`x` is `n × 2d`). Replaces the former
/// `hcat(mean_aggregate(h))` pair, which allocated two matrices.
///
/// # Panics
///
/// Panics if the buffer lengths do not match.
pub fn sage_gather(g: &NodeGraph, h: &[f32], d: usize, x_out: &mut [f32], pol: KernelPolicy) {
    assert_eq!(h.len(), g.nodes() * d, "sage_gather: h shape");
    assert_eq!(x_out.len(), g.nodes() * 2 * d, "sage_gather: x shape");
    if d == 0 || g.nodes() == 0 {
        return;
    }
    if pol.backend == Backend::Naive {
        naive::sage_gather(g, h, d, x_out);
        return;
    }
    let workers = pol.workers_for(g.nodes(), 2 * d * (g.neighbor_entries() / g.nodes() + 1));
    par_row_chunks(x_out, 2 * d, workers, &|row0, chunk| {
        for (r, xrow) in chunk.chunks_exact_mut(2 * d).enumerate() {
            let i = row0 + r;
            let (left, right) = xrow.split_at_mut(d);
            left.copy_from_slice(&h[i * d..(i + 1) * d]);
            right.fill(0.0);
            let nbrs = g.neighbors(i);
            if nbrs.is_empty() {
                continue;
            }
            for &j in nbrs {
                let src = &h[j as usize * d..(j as usize + 1) * d];
                for (o, &v) in right.iter_mut().zip(src) {
                    *o += v;
                }
            }
            let inv = g.inv_deg()[i];
            for o in right.iter_mut() {
                *o *= inv;
            }
        }
    });
}

/// Fused GraphSAGE input adjoint: given `dx` (`n × 2d`, gradients w.r.t.
/// the concatenated input), computes
/// `dh[j] = dx[j][..d] + Σ_{i : j ∈ N(i)} dx[i][d..] / |N(i)|`
/// in one row-parallel gather over the transpose CSR.
///
/// # Panics
///
/// Panics if the buffer lengths do not match.
pub fn sage_adjoint(g: &NodeGraph, dx: &[f32], d: usize, dh_out: &mut [f32], pol: KernelPolicy) {
    assert_eq!(dx.len(), g.nodes() * 2 * d, "sage_adjoint: dx shape");
    assert_eq!(dh_out.len(), g.nodes() * d, "sage_adjoint: dh shape");
    if d == 0 || g.nodes() == 0 {
        return;
    }
    if pol.backend == Backend::Naive {
        naive::sage_adjoint(g, dx, d, dh_out);
        return;
    }
    let workers = pol.workers_for(g.nodes(), 2 * d * (g.neighbor_entries() / g.nodes() + 2));
    par_row_chunks(dh_out, d, workers, &|row0, chunk| {
        for (r, orow) in chunk.chunks_exact_mut(d).enumerate() {
            let j = row0 + r;
            orow.fill(0.0);
            for &src in g.t_sources(j) {
                let s = src as usize;
                let inv = g.inv_deg()[s];
                let grow = &dx[s * 2 * d + d..(s + 1) * 2 * d];
                for (o, &v) in orow.iter_mut().zip(grow) {
                    *o += v * inv;
                }
            }
            let direct = &dx[j * 2 * d..j * 2 * d + d];
            for (o, &v) in orow.iter_mut().zip(direct) {
                *o = v + *o;
            }
        }
    });
}

/// Fused GraphSAGE-pool input build: `x[i] = [h[i] ‖ max_{j∈N(i)} p[j]]`
/// with per-channel argmax recorded for the backward scatter (`u32::MAX`
/// marks an isolated node — its aggregate stays zero). Row-parallel; the
/// max scan per `(node, channel)` is the same strict-`>` first-winner scan
/// as the reference.
///
/// # Panics
///
/// Panics if the buffer lengths do not match.
#[allow(clippy::too_many_arguments)]
pub fn pool_max(
    g: &NodeGraph,
    p: &[f32],
    dp: usize,
    h: &[f32],
    d: usize,
    x_out: &mut [f32],
    argmax: &mut [u32],
    pol: KernelPolicy,
) {
    let n = g.nodes();
    assert_eq!(p.len(), n * dp, "pool_max: p shape");
    assert_eq!(h.len(), n * d, "pool_max: h shape");
    assert_eq!(x_out.len(), n * (d + dp), "pool_max: x shape");
    assert_eq!(argmax.len(), n * dp, "pool_max: argmax shape");
    if n == 0 || d + dp == 0 {
        return;
    }
    if pol.backend == Backend::Naive {
        naive::pool_max(g, p, dp, h, d, x_out, argmax);
        return;
    }
    let width = d + dp;
    let workers = pol.workers_for(n, 2 * dp * (g.neighbor_entries() / n + 1) + d);
    let body = |row0: usize, xc: &mut [f32], ac: &mut [u32]| {
        for (r, (xrow, arow)) in
            xc.chunks_exact_mut(width).zip(ac.chunks_exact_mut(dp.max(1))).enumerate()
        {
            pool_max_row(g, p, dp, h, d, row0 + r, xrow, arow);
        }
    };
    if workers <= 1 || n <= 1 {
        body(0, x_out, argmax);
    } else {
        let chunk_rows = n.div_ceil(workers);
        std::thread::scope(|s| {
            for (ci, (xc, ac)) in x_out
                .chunks_mut(chunk_rows * width)
                .zip(argmax.chunks_mut(chunk_rows * dp.max(1)))
                .enumerate()
            {
                s.spawn(move || body(ci * chunk_rows, xc, ac));
            }
        });
    }
}

/// One row of [`pool_max`]: copy the node's own features, then per channel
/// scan the neighborhood for the strict maximum of the pooled features.
fn pool_max_row(
    g: &NodeGraph,
    p: &[f32],
    dp: usize,
    h: &[f32],
    d: usize,
    i: usize,
    xrow: &mut [f32],
    arow: &mut [u32],
) {
    let (left, right) = xrow.split_at_mut(d);
    left.copy_from_slice(&h[i * d..(i + 1) * d]);
    let nbrs = g.neighbors(i);
    if nbrs.is_empty() {
        right.fill(0.0);
        arow[..dp].fill(u32::MAX);
        return;
    }
    for c in 0..dp {
        let mut best = f32::NEG_INFINITY;
        let mut best_j = u32::MAX;
        for &j in nbrs {
            let v = p[j as usize * dp + c];
            if v > best {
                best = v;
                best_j = j;
            }
        }
        right[c] = best;
        arow[c] = best_j;
    }
}

// ---------------------------------------------------------------------------
// Naive reference implementations (the bit-spec)
// ---------------------------------------------------------------------------

/// Sequential reference implementations of every kernel above.
///
/// These are deliberately written as plain loops — independent of the
/// blocked code paths — and define the bit-spec the blocked kernels must
/// reproduce exactly. [`gemm_tn`](naive::gemm_tn) follows the same
/// fixed-chunk ordered-reduction rule (chunking is part of the *algorithm*,
/// not an artifact of parallelism). The adjoint reference uses the original
/// scatter formulation, making its bit-equality with the transpose-gather
/// kernels a genuine cross-check.
pub mod naive {
    use super::{NodeGraph, REDUCE_CHUNK};

    /// Reference `out = A·B` (ikj order, no shortcuts).
    pub fn gemm(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        out.fill(0.0);
        for i in 0..m {
            for kk in 0..k {
                let av = a[i * k + kk];
                let brow = &b[kk * n..kk * n + n];
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    }

    /// Reference `out = Aᵀ·B` under the fixed-chunk ordered-reduction rule:
    /// one `m×n` partial slab per [`REDUCE_CHUNK`] rows of the summed
    /// dimension, slabs added to `out` in ascending chunk order.
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_tn(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        k_rows: usize,
        m: usize,
        n: usize,
        a_stride: usize,
        scratch: &mut Vec<f32>,
    ) {
        out.fill(0.0);
        if m == 0 || n == 0 {
            return;
        }
        let slab = m * n;
        let mut kk0 = 0usize;
        while kk0 < k_rows {
            let kk1 = (kk0 + REDUCE_CHUNK).min(k_rows);
            scratch.clear();
            scratch.resize(slab, 0.0);
            for kk in kk0..kk1 {
                let arow = &a[kk * a_stride..kk * a_stride + m];
                let brow = &b[kk * n..kk * n + n];
                for (i, &av) in arow.iter().enumerate() {
                    let prow = &mut scratch[i * n..(i + 1) * n];
                    for (o, &bv) in prow.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            }
            for (o, &v) in out.iter_mut().zip(scratch.iter()) {
                *o += v;
            }
            kk0 = kk1;
        }
    }

    /// Reference `out = A·Bᵀ` (plain dot products, ascending `k`).
    pub fn gemm_nt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&av, &bv) in arow.iter().zip(brow) {
                    acc += av * bv;
                }
                out[i * n + j] = acc;
            }
        }
    }

    /// Reference mean aggregation (per-row gather, then scale).
    pub fn mean_aggregate(g: &NodeGraph, h: &[f32], cols: usize, out: &mut [f32]) {
        out.fill(0.0);
        for i in 0..g.nodes() {
            let nbrs = g.neighbors(i);
            if nbrs.is_empty() {
                continue;
            }
            let orow = &mut out[i * cols..(i + 1) * cols];
            for &j in nbrs {
                let src = &h[j as usize * cols..(j as usize + 1) * cols];
                for (o, &v) in orow.iter_mut().zip(src) {
                    *o += v;
                }
            }
            let inv = 1.0 / nbrs.len() as f32;
            for o in orow.iter_mut() {
                *o *= inv;
            }
        }
    }

    /// Reference adjoint in the original *scatter* formulation:
    /// `out[j] += grad[i]/|N(i)|` for every `j ∈ N(i)`, `i` ascending.
    pub fn mean_aggregate_adjoint(g: &NodeGraph, grad: &[f32], cols: usize, out: &mut [f32]) {
        out.fill(0.0);
        for i in 0..g.nodes() {
            let nbrs = g.neighbors(i);
            if nbrs.is_empty() {
                continue;
            }
            let inv = 1.0 / nbrs.len() as f32;
            for &j in nbrs {
                let src = &grad[i * cols..(i + 1) * cols];
                let dst = &mut out[j as usize * cols..(j as usize + 1) * cols];
                for (o, &v) in dst.iter_mut().zip(src) {
                    *o += v * inv;
                }
            }
        }
    }

    /// Reference GCN propagation (self-loop first, then CSR-order
    /// neighbors).
    pub fn gcn_propagate(g: &NodeGraph, h: &[f32], cols: usize, out: &mut [f32]) {
        out.fill(0.0);
        let inv_sqrt = g.inv_sqrt_deg();
        for i in 0..g.nodes() {
            let di = inv_sqrt[i];
            let orow = &mut out[i * cols..(i + 1) * cols];
            let w = di * di;
            let src = &h[i * cols..(i + 1) * cols];
            for (o, &v) in orow.iter_mut().zip(src) {
                *o += w * v;
            }
            for &j in g.neighbors(i) {
                let w = di * inv_sqrt[j as usize];
                let src = &h[j as usize * cols..(j as usize + 1) * cols];
                for (o, &v) in orow.iter_mut().zip(src) {
                    *o += w * v;
                }
            }
        }
    }

    /// Reference fused SAGE input build (`[h ‖ mean(h_N)]`).
    pub fn sage_gather(g: &NodeGraph, h: &[f32], d: usize, x_out: &mut [f32]) {
        for i in 0..g.nodes() {
            let xrow = &mut x_out[i * 2 * d..(i + 1) * 2 * d];
            let (left, right) = xrow.split_at_mut(d);
            left.copy_from_slice(&h[i * d..(i + 1) * d]);
            right.fill(0.0);
            let nbrs = g.neighbors(i);
            if nbrs.is_empty() {
                continue;
            }
            for &j in nbrs {
                let src = &h[j as usize * d..(j as usize + 1) * d];
                for (o, &v) in right.iter_mut().zip(src) {
                    *o += v;
                }
            }
            let inv = 1.0 / nbrs.len() as f32;
            for o in right.iter_mut() {
                *o *= inv;
            }
        }
    }

    /// Reference fused SAGE adjoint in scatter form: accumulate the
    /// aggregate adjoint into a zeroed buffer, then add the direct term
    /// (`dh = dx_left + Aᵀ·dx_right`, matching the kernel's operand order).
    pub fn sage_adjoint(g: &NodeGraph, dx: &[f32], d: usize, dh_out: &mut [f32]) {
        dh_out.fill(0.0);
        for i in 0..g.nodes() {
            let nbrs = g.neighbors(i);
            if nbrs.is_empty() {
                continue;
            }
            let inv = 1.0 / nbrs.len() as f32;
            for &j in nbrs {
                let src = &dx[i * 2 * d + d..(i + 1) * 2 * d];
                let dst = &mut dh_out[j as usize * d..(j as usize + 1) * d];
                for (o, &v) in dst.iter_mut().zip(src) {
                    *o += v * inv;
                }
            }
        }
        for j in 0..g.nodes() {
            let direct = &dx[j * 2 * d..j * 2 * d + d];
            let orow = &mut dh_out[j * d..(j + 1) * d];
            for (o, &v) in orow.iter_mut().zip(direct) {
                *o = v + *o;
            }
        }
    }

    /// Reference fused pool input build (max over pooled neighbor features
    /// with argmax recording; strict-`>` first-winner scan).
    #[allow(clippy::too_many_arguments)]
    pub fn pool_max(
        g: &NodeGraph,
        p: &[f32],
        dp: usize,
        h: &[f32],
        d: usize,
        x_out: &mut [f32],
        argmax: &mut [u32],
    ) {
        let width = d + dp;
        for i in 0..g.nodes() {
            let xrow = &mut x_out[i * width..(i + 1) * width];
            let (left, right) = xrow.split_at_mut(d);
            left.copy_from_slice(&h[i * d..(i + 1) * d]);
            let nbrs = g.neighbors(i);
            if nbrs.is_empty() {
                right.fill(0.0);
                argmax[i * dp..(i + 1) * dp].fill(u32::MAX);
                continue;
            }
            for c in 0..dp {
                let mut best = f32::NEG_INFINITY;
                let mut best_j = u32::MAX;
                for &j in nbrs {
                    let v = p[j as usize * dp + c];
                    if v > best {
                        best = v;
                        best_j = j;
                    }
                }
                right[c] = best;
                argmax[i * dp + c] = best_j;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NeighborMode;

    fn pseudo(seed: u64, len: usize) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s % 2000) as f32 - 1000.0) / 333.0
            })
            .collect()
    }

    #[test]
    fn gemm_blocked_matches_naive_bitwise() {
        for &(m, k, n) in &[(1, 1, 1), (5, 3, 7), (9, 64, 33), (4, 0, 6), (13, 17, 1)] {
            let a = pseudo(m as u64 * 31 + k as u64, m * k);
            let b = pseudo(n as u64 * 7 + 3, k * n);
            let mut o1 = vec![9.0f32; m * n];
            let mut o2 = vec![-9.0f32; m * n];
            naive::gemm(&a, &b, &mut o1, m, k, n);
            gemm(&a, &b, &mut o2, m, k, n, KernelPolicy::with_threads(3));
            for (x, y) in o1.iter().zip(&o2) {
                assert_eq!(x.to_bits(), y.to_bits(), "gemm {m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn gemm_tn_chunked_reduction_is_thread_invariant() {
        // k_rows spans multiple REDUCE_CHUNKs to exercise the reduction.
        let (k_rows, m, n) = (2 * REDUCE_CHUNK + 77, 6, 5);
        let a = pseudo(11, k_rows * m);
        let b = pseudo(12, k_rows * n);
        let mut reference = vec![0.0f32; m * n];
        let mut scr = Vec::new();
        naive::gemm_tn(&a, &b, &mut reference, k_rows, m, n, m, &mut scr);
        for threads in [1, 2, 8] {
            let mut out = vec![1.0f32; m * n];
            let mut scr2 = Vec::new();
            gemm_tn(&a, &b, &mut out, k_rows, m, n, m, &mut scr2, KernelPolicy::with_threads(threads));
            for (x, y) in reference.iter().zip(&out) {
                assert_eq!(x.to_bits(), y.to_bits(), "gemm_tn t={threads}");
            }
        }
    }

    #[test]
    fn gemm_tn_respects_stride() {
        // use only the left 2 of 5 columns of A
        let (k_rows, m, stride, n) = (10, 2, 5, 3);
        let a = pseudo(4, k_rows * stride);
        let b = pseudo(5, k_rows * n);
        let mut out = vec![0.0f32; m * n];
        let mut scr = Vec::new();
        gemm_tn(&a, &b, &mut out, k_rows, m, n, stride, &mut scr, KernelPolicy::default());
        // explicit check
        for i in 0..m {
            for j in 0..n {
                let mut want = 0.0f32;
                for kk in 0..k_rows {
                    want += a[kk * stride + i] * b[kk * n + j];
                }
                assert!((out[i * n + j] - want).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn gemm_nt_matches_naive_bitwise() {
        for &(m, k, n) in &[(3, 5, 4), (7, 1, 9), (2, 32, 2), (6, 8, 5)] {
            let a = pseudo(m as u64 + 100, m * k);
            let b = pseudo(n as u64 + 200, n * k);
            let mut o1 = vec![0.0f32; m * n];
            let mut o2 = vec![0.0f32; m * n];
            naive::gemm_nt(&a, &b, &mut o1, m, k, n);
            gemm_nt(&a, &b, &mut o2, m, k, n, KernelPolicy::with_threads(2));
            for (x, y) in o1.iter().zip(&o2) {
                assert_eq!(x.to_bits(), y.to_bits(), "gemm_nt {m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn csr_kernels_match_naive_bitwise() {
        let g = NodeGraph::from_edges(
            6,
            &[(0, 1), (1, 2), (2, 3), (0, 3), (4, 1), (1, 0)],
            NeighborMode::Undirected,
        );
        // node 5 is isolated
        let cols = 3;
        let h = pseudo(9, 6 * cols);
        for threads in [1, 4] {
            let pol = KernelPolicy::with_threads(threads);
            let mut a1 = vec![0.0f32; 6 * cols];
            let mut a2 = vec![1.0f32; 6 * cols];
            naive::mean_aggregate(&g, &h, cols, &mut a1);
            mean_aggregate_into(&g, &h, cols, &mut a2, pol);
            assert_eq!(bits(&a1), bits(&a2), "mean t={threads}");

            naive::mean_aggregate_adjoint(&g, &h, cols, &mut a1);
            mean_aggregate_adjoint_into(&g, &h, cols, &mut a2, pol);
            assert_eq!(bits(&a1), bits(&a2), "adjoint t={threads}");

            naive::gcn_propagate(&g, &h, cols, &mut a1);
            gcn_propagate_into(&g, &h, cols, &mut a2, pol);
            assert_eq!(bits(&a1), bits(&a2), "gcn t={threads}");

            let mut x1 = vec![0.0f32; 6 * 2 * cols];
            let mut x2 = vec![2.0f32; 6 * 2 * cols];
            naive::sage_gather(&g, &h, cols, &mut x1);
            sage_gather(&g, &h, cols, &mut x2, pol);
            assert_eq!(bits(&x1), bits(&x2), "gather t={threads}");

            let dx = pseudo(10, 6 * 2 * cols);
            let mut d1 = vec![0.0f32; 6 * cols];
            let mut d2 = vec![3.0f32; 6 * cols];
            naive::sage_adjoint(&g, &dx, cols, &mut d1);
            sage_adjoint(&g, &dx, cols, &mut d2, pol);
            assert_eq!(bits(&d1), bits(&d2), "sage_adjoint t={threads}");

            let dp = 2;
            let p = pseudo(11, 6 * dp);
            let mut px1 = vec![0.0f32; 6 * (cols + dp)];
            let mut px2 = vec![4.0f32; 6 * (cols + dp)];
            let mut am1 = vec![0u32; 6 * dp];
            let mut am2 = vec![7u32; 6 * dp];
            naive::pool_max(&g, &p, dp, &h, cols, &mut px1, &mut am1);
            pool_max(&g, &p, dp, &h, cols, &mut px2, &mut am2, pol);
            assert_eq!(bits(&px1), bits(&px2), "pool_max x t={threads}");
            assert_eq!(am1, am2, "pool_max argmax t={threads}");
        }
    }

    #[test]
    fn relu_gate_and_bias_relu() {
        let mut z = vec![1.0f32, -2.0, 0.5, 0.0];
        bias_relu(&mut z, &[0.5, 0.5]);
        assert_eq!(z, vec![1.5, 0.0, 1.0, 0.5]);
        let mut dz = vec![0.0f32; 4];
        relu_gate(&z, &[10.0, 10.0, 10.0, 10.0], &mut dz);
        assert_eq!(dz, vec![10.0, 0.0, 10.0, 10.0]);
    }

    #[test]
    fn workers_engage_only_on_big_work() {
        let pol = KernelPolicy::with_threads(8);
        assert_eq!(pol.workers_for(10, 10), 1, "tiny work stays sequential");
        assert!(pol.workers_for(100_000, 1000) > 1, "big work parallelises");
        assert_eq!(KernelPolicy::naive().workers_for(100_000, 1000), 1);
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }
}
