//! Optimisers for full-batch GNN training.

use crate::matrix::Matrix;

/// Adam optimiser with decoupled weight decay (AdamW-style).
///
/// One [`Adam`] instance owns the first/second-moment state for a fixed set
/// of parameters, identified by their position in the slice passed to
/// [`Adam::step`] — always pass parameters in the same order.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    b1t: f32,
    b2t: f32,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Creates an optimiser with the given learning rate and default betas
    /// `(0.9, 0.999)`.
    #[must_use]
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            b1t: 0.0,
            b2t: 0.0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Learning rate accessor.
    #[must_use]
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (e.g. for decay schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Begins an update step: advances the timestep and caches the bias
    /// corrections. Call once, then [`Adam::update_param`] for every
    /// parameter in the canonical order.
    pub fn begin_step(&mut self) {
        self.t += 1;
        self.b1t = 1.0 - self.beta1.powi(self.t as i32);
        self.b2t = 1.0 - self.beta2.powi(self.t as i32);
    }

    /// Updates one parameter in place. `idx` identifies the parameter's
    /// position in the canonical order; moment state is created lazily on
    /// the first step. Allocation-free after the first step.
    ///
    /// # Panics
    ///
    /// Panics if `idx` skips ahead of the known parameter set or the shape
    /// changed between steps.
    pub fn update_param(&mut self, idx: usize, p: &mut Matrix, g: &Matrix) {
        assert_eq!((p.rows(), p.cols()), (g.rows(), g.cols()), "shape changed");
        if idx == self.m.len() {
            self.m.push(Matrix::zeros(g.rows(), g.cols()));
            self.v.push(Matrix::zeros(g.rows(), g.cols()));
        }
        assert!(idx < self.m.len(), "parameter set changed between steps");
        let m = &mut self.m[idx];
        let v = &mut self.v[idx];
        let pd = p.data_mut();
        let gd = g.data();
        let md = m.data_mut();
        let vd = v.data_mut();
        for i in 0..pd.len() {
            md[i] = self.beta1 * md[i] + (1.0 - self.beta1) * gd[i];
            vd[i] = self.beta2 * vd[i] + (1.0 - self.beta2) * gd[i] * gd[i];
            let mhat = md[i] / self.b1t;
            let vhat = vd[i] / self.b2t;
            pd[i] -= self.lr * (mhat / (vhat.sqrt() + self.eps) + self.weight_decay * pd[i]);
        }
    }

    /// Number of update steps taken so far.
    #[must_use]
    pub fn timestep(&self) -> u64 {
        self.t
    }

    /// The first/second-moment matrices in canonical parameter order
    /// (empty before the first step).
    #[must_use]
    pub fn moments(&self) -> (&[Matrix], &[Matrix]) {
        (&self.m, &self.v)
    }

    /// Restores the optimiser to a previously captured state: timestep
    /// plus both moment vectors. Bias corrections are recomputed from `t`,
    /// so an update sequence resumed here is bit-identical to one that
    /// never stopped.
    ///
    /// # Panics
    ///
    /// Panics if the two moment vectors disagree in length.
    pub fn restore_state(&mut self, t: u64, m: Vec<Matrix>, v: Vec<Matrix>) {
        assert_eq!(m.len(), v.len(), "moment vector count mismatch");
        self.t = t;
        if t > 0 {
            self.b1t = 1.0 - self.beta1.powi(t as i32);
            self.b2t = 1.0 - self.beta2.powi(t as i32);
        } else {
            self.b1t = 0.0;
            self.b2t = 0.0;
        }
        self.m = m;
        self.v = v;
    }

    /// Applies one update step.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != grads.len()`, or if shapes change between
    /// steps.
    pub fn step(&mut self, params: &mut [&mut Matrix], grads: &[Matrix]) {
        assert_eq!(params.len(), grads.len(), "param/grad count mismatch");
        if !self.m.is_empty() {
            assert_eq!(self.m.len(), params.len(), "parameter set changed between steps");
        }
        self.begin_step();
        for (idx, (p, g)) in params.iter_mut().zip(grads).enumerate() {
            self.update_param(idx, p, g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimises_quadratic() {
        // minimise f(x) = (x - 3)^2 elementwise
        let mut x = Matrix::from_vec(1, 2, vec![0.0, 10.0]);
        let mut opt = Adam::new(0.1, 0.0);
        for _ in 0..500 {
            let grad = x.map(|v| 2.0 * (v - 3.0));
            opt.step(&mut [&mut x], &[grad]);
        }
        for &v in x.data() {
            assert!((v - 3.0).abs() < 1e-2, "converged to {v}");
        }
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut x = Matrix::from_vec(1, 1, vec![5.0]);
        let mut opt = Adam::new(0.01, 0.5);
        for _ in 0..2000 {
            let grad = Matrix::zeros(1, 1);
            opt.step(&mut [&mut x], &[grad]);
        }
        assert!(x.at(0, 0).abs() < 0.5, "decayed to {}", x.at(0, 0));
    }

    #[test]
    #[should_panic(expected = "param/grad count mismatch")]
    fn step_validates_counts() {
        let mut x = Matrix::zeros(1, 1);
        let mut opt = Adam::new(0.1, 0.0);
        opt.step(&mut [&mut x], &[]);
    }

    #[test]
    fn multiple_params_updated_independently() {
        let mut a = Matrix::from_vec(1, 1, vec![1.0]);
        let mut b = Matrix::from_vec(1, 1, vec![-1.0]);
        let mut opt = Adam::new(0.05, 0.0);
        for _ in 0..300 {
            let ga = a.map(|v| 2.0 * v); // -> 0
            let gb = b.map(|v| 2.0 * (v + 2.0)); // -> -2
            opt.step(&mut [&mut a, &mut b], &[ga, gb]);
        }
        assert!(a.at(0, 0).abs() < 1e-2);
        assert!((b.at(0, 0) + 2.0).abs() < 1e-2);
    }
}
