//! Loss functions with analytic gradients.
//!
//! Timing-variant pins are a small minority of all pins (the paper's Fig. 6
//! shows ~70 % of pins with *zero* sensitivity), so the classification loss
//! supports a positive-class weight to keep recall on variant pins high —
//! missing a variant pin costs timing accuracy, while a false positive only
//! costs a little model size.

use crate::matrix::sigmoid;

/// Numerically stable `log(1 + e^x)`.
fn softplus(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        0.0
    } else {
        x.exp().ln_1p()
    }
}

/// Binary cross-entropy on logits, writing the per-node gradient into a
/// caller-provided buffer (all entries are written; masked-out nodes get
/// `0.0`). Returns the mean loss. The allocation-free core of
/// [`bce_with_logits`].
///
/// # Panics
///
/// Panics if slice lengths disagree.
pub fn bce_with_logits_into(
    logits: &[f32],
    labels: &[f32],
    mask: Option<&[bool]>,
    pos_weight: f32,
    grad: &mut [f32],
) -> f32 {
    assert_eq!(logits.len(), labels.len());
    assert_eq!(grad.len(), logits.len());
    if let Some(m) = mask {
        assert_eq!(m.len(), logits.len());
    }
    let mut loss = 0.0f64;
    let mut n = 0usize;
    for i in 0..logits.len() {
        if let Some(m) = mask {
            if !m[i] {
                grad[i] = 0.0;
                continue;
            }
        }
        let z = logits[i];
        let y = labels[i];
        // L = w·y·softplus(−z) + (1−y)·softplus(z)
        loss += f64::from(pos_weight * y * softplus(-z) + (1.0 - y) * softplus(z));
        let s = sigmoid(z);
        grad[i] = (1.0 - y) * s - pos_weight * y * (1.0 - s);
        n += 1;
    }
    if n > 0 {
        let inv = 1.0 / n as f32;
        for g in grad.iter_mut() {
            *g *= inv;
        }
        (loss / n as f64) as f32
    } else {
        0.0
    }
}

/// Binary cross-entropy on logits with optional mask and positive-class
/// weight. Returns `(mean loss, per-node gradient)`.
///
/// # Panics
///
/// Panics if slice lengths disagree.
#[must_use]
pub fn bce_with_logits(
    logits: &[f32],
    labels: &[f32],
    mask: Option<&[bool]>,
    pos_weight: f32,
) -> (f32, Vec<f32>) {
    let mut grad = vec![0.0f32; logits.len()];
    let loss = bce_with_logits_into(logits, labels, mask, pos_weight, &mut grad);
    (loss, grad)
}

/// Mean squared error, writing the gradient into a caller-provided buffer
/// (all entries are written; masked-out nodes get `0.0`). Returns the mean
/// loss. The allocation-free core of [`mse`].
///
/// # Panics
///
/// Panics if slice lengths disagree.
pub fn mse_into(preds: &[f32], labels: &[f32], mask: Option<&[bool]>, grad: &mut [f32]) -> f32 {
    assert_eq!(preds.len(), labels.len());
    assert_eq!(grad.len(), preds.len());
    if let Some(m) = mask {
        assert_eq!(m.len(), preds.len());
    }
    let mut loss = 0.0f64;
    let mut n = 0usize;
    for i in 0..preds.len() {
        if let Some(m) = mask {
            if !m[i] {
                grad[i] = 0.0;
                continue;
            }
        }
        let d = preds[i] - labels[i];
        loss += f64::from(d * d);
        grad[i] = 2.0 * d;
        n += 1;
    }
    if n > 0 {
        let inv = 1.0 / n as f32;
        for g in grad.iter_mut() {
            *g *= inv;
        }
        (loss / n as f64) as f32
    } else {
        0.0
    }
}

/// Mean squared error with optional mask. Returns `(mean loss, gradient)`.
///
/// # Panics
///
/// Panics if slice lengths disagree.
#[must_use]
pub fn mse(preds: &[f32], labels: &[f32], mask: Option<&[bool]>) -> (f32, Vec<f32>) {
    let mut grad = vec![0.0f32; preds.len()];
    let loss = mse_into(preds, labels, mask, &mut grad);
    (loss, grad)
}

/// A sensible automatic positive-class weight: `#negatives / #positives`
/// clamped to `[1, 20]`.
#[must_use]
pub fn auto_pos_weight(labels: &[f32], mask: Option<&[bool]>) -> f32 {
    let mut pos = 0usize;
    let mut neg = 0usize;
    for (i, &y) in labels.iter().enumerate() {
        if let Some(m) = mask {
            if !m[i] {
                continue;
            }
        }
        if y > 0.5 {
            pos += 1;
        } else {
            neg += 1;
        }
    }
    if pos == 0 {
        1.0
    } else {
        (neg as f32 / pos as f32).clamp(1.0, 20.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bce_gradient_matches_numeric() {
        let logits = [0.3f32, -1.2, 2.0];
        let labels = [1.0f32, 0.0, 1.0];
        let w = 2.5;
        let (_, grad) = bce_with_logits(&logits, &labels, None, w);
        let eps = 1e-3;
        for i in 0..3 {
            let mut lp = logits;
            lp[i] += eps;
            let mut lm = logits;
            lm[i] -= eps;
            let (fp, _) = bce_with_logits(&lp, &labels, None, w);
            let (fm, _) = bce_with_logits(&lm, &labels, None, w);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (grad[i] - numeric).abs() < 1e-3,
                "i={i}: {} vs {numeric}",
                grad[i]
            );
        }
    }

    #[test]
    fn bce_perfect_prediction_is_near_zero() {
        let (l, _) = bce_with_logits(&[20.0, -20.0], &[1.0, 0.0], None, 1.0);
        assert!(l < 1e-6);
        let (l, _) = bce_with_logits(&[-20.0, 20.0], &[1.0, 0.0], None, 1.0);
        assert!(l > 10.0);
    }

    #[test]
    fn mask_excludes_nodes() {
        let logits = [0.0f32, 100.0];
        let labels = [0.0f32, 0.0];
        let mask = [true, false];
        let (l, g) = bce_with_logits(&logits, &labels, Some(&mask), 1.0);
        assert!((l - softplus(0.0)).abs() < 1e-6);
        assert_eq!(g[1], 0.0);
    }

    #[test]
    fn mse_gradient_matches_numeric() {
        let preds = [0.5f32, -0.2];
        let labels = [1.0f32, 0.0];
        let (_, grad) = mse(&preds, &labels, None);
        let eps = 1e-3;
        for i in 0..2 {
            let mut pp = preds;
            pp[i] += eps;
            let mut pm = preds;
            pm[i] -= eps;
            let numeric = (mse(&pp, &labels, None).0 - mse(&pm, &labels, None).0) / (2.0 * eps);
            assert!((grad[i] - numeric).abs() < 1e-3);
        }
    }

    #[test]
    fn auto_pos_weight_balances_and_clamps() {
        let labels: Vec<f32> = (0..100).map(|i| if i < 10 { 1.0 } else { 0.0 }).collect();
        assert!((auto_pos_weight(&labels, None) - 9.0).abs() < 1e-6);
        let rare: Vec<f32> = (0..1000).map(|i| if i < 2 { 1.0 } else { 0.0 }).collect();
        assert_eq!(auto_pos_weight(&rare, None), 20.0, "clamped");
        let none: Vec<f32> = vec![0.0; 10];
        assert_eq!(auto_pos_weight(&none, None), 1.0);
    }

    #[test]
    fn empty_mask_yields_zero_loss() {
        let (l, g) = bce_with_logits(&[1.0], &[1.0], Some(&[false]), 1.0);
        assert_eq!(l, 0.0);
        assert_eq!(g, vec![0.0]);
    }
}
