//! Classification quality metrics.

/// Confusion-matrix counts at a fixed decision threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionCounts {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
    /// True negatives.
    pub tn: usize,
}

impl ConfusionCounts {
    /// Precision `tp / (tp + fp)`; 1.0 when no positives were predicted.
    #[must_use]
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall `tp / (tp + fn)`; 1.0 when no positives exist.
    #[must_use]
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// Harmonic mean of precision and recall.
    #[must_use]
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Overall accuracy.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.fn_ + self.tn;
        if total == 0 {
            1.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }

    /// Total samples counted.
    #[must_use]
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.fn_ + self.tn
    }
}

/// Computes confusion counts of probabilistic predictions against binary
/// labels at `threshold`, ignoring masked-out entries.
///
/// # Panics
///
/// Panics if slice lengths disagree.
#[must_use]
pub fn classify_metrics(
    probs: &[f32],
    labels: &[f32],
    mask: Option<&[bool]>,
    threshold: f32,
) -> ConfusionCounts {
    assert_eq!(probs.len(), labels.len());
    let mut c = ConfusionCounts::default();
    for i in 0..probs.len() {
        if let Some(m) = mask {
            if !m[i] {
                continue;
            }
        }
        let pred = probs[i] >= threshold;
        let truth = labels[i] > 0.5;
        match (pred, truth) {
            (true, true) => c.tp += 1,
            (true, false) => c.fp += 1,
            (false, true) => c.fn_ += 1,
            (false, false) => c.tn += 1,
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let c = classify_metrics(&[0.9, 0.1, 0.8], &[1.0, 0.0, 1.0], None, 0.5);
        assert_eq!(c, ConfusionCounts { tp: 2, fp: 0, fn_: 0, tn: 1 });
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f1(), 1.0);
        assert_eq!(c.accuracy(), 1.0);
    }

    #[test]
    fn mixed_predictions() {
        // preds: +,+,-,- ; labels: +,-,+,-
        let c = classify_metrics(&[0.9, 0.9, 0.1, 0.1], &[1.0, 0.0, 1.0, 0.0], None, 0.5);
        assert_eq!(c, ConfusionCounts { tp: 1, fp: 1, fn_: 1, tn: 1 });
        assert_eq!(c.precision(), 0.5);
        assert_eq!(c.recall(), 0.5);
        assert_eq!(c.f1(), 0.5);
    }

    #[test]
    fn mask_skips_entries() {
        let c = classify_metrics(&[0.9, 0.9], &[0.0, 1.0], Some(&[false, true]), 0.5);
        assert_eq!(c.total(), 1);
        assert_eq!(c.tp, 1);
    }

    #[test]
    fn degenerate_cases_do_not_divide_by_zero() {
        let c = ConfusionCounts::default();
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.accuracy(), 1.0);
        let c = ConfusionCounts { tp: 0, fp: 0, fn_: 5, tn: 0 };
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn threshold_moves_decision() {
        let c_low = classify_metrics(&[0.4], &[1.0], None, 0.3);
        assert_eq!(c_low.tp, 1);
        let c_high = classify_metrics(&[0.4], &[1.0], None, 0.5);
        assert_eq!(c_high.fn_, 1);
    }
}
