//! Dense row-major `f32` matrices with just enough linear algebra for
//! full-batch GNN training: GEMM, transpose-GEMM variants, element-wise
//! maps, and Xavier initialisation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A dense row-major matrix of `f32`. `Default` is the empty `0×0` matrix.
#[derive(Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

impl Matrix {
    /// Zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Matrix from a closure over `(row, col)`, filled into a preallocated
    /// buffer in row-major call order (the order matters for seeded
    /// initialisers like [`Matrix::xavier`]).
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = vec![0.0f32; rows * cols];
        let mut idx = 0usize;
        for r in 0..rows {
            for c in 0..cols {
                data[idx] = f(r, c);
                idx += 1;
            }
        }
        Matrix { rows, cols, data }
    }

    /// Matrix wrapping an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Matrix { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialised matrix.
    #[must_use]
    pub fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Self {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-bound..bound))
    }

    /// Convenience seeded Xavier initialisation.
    #[must_use]
    pub fn xavier_seeded(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::xavier(rows, cols, &mut rng)
    }

    /// Number of rows.
    #[inline]
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the backing buffer.
    #[inline]
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reshapes to `rows × cols`, zero-filled, reusing the existing
    /// allocation whenever capacity allows. This is the workhorse of the
    /// zero-allocation training loop: after the first epoch every buffer
    /// has reached its steady-state capacity and no reshape allocates.
    pub fn resize_to(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Copies `other`'s shape and contents into `self`, reusing the
    /// existing allocation whenever capacity allows.
    pub fn copy_from(&mut self, other: &Matrix) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[inline]
    #[must_use]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[inline]
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self · other` (standard GEMM; delegates to the blocked kernel).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        crate::kernels::gemm(
            &self.data,
            &other.data,
            &mut out.data,
            self.rows,
            self.cols,
            other.cols,
            crate::kernels::KernelPolicy::default(),
        );
        out
    }

    /// `selfᵀ · other` without materialising the transpose (delegates to
    /// the chunk-reduced kernel).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        let mut scratch = Vec::new();
        crate::kernels::gemm_tn(
            &self.data,
            &other.data,
            &mut out.data,
            self.rows,
            self.cols,
            other.cols,
            self.cols,
            &mut scratch,
            crate::kernels::KernelPolicy::default(),
        );
        out
    }

    /// `self · otherᵀ` without materialising the transpose (delegates to
    /// the blocked kernel).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        crate::kernels::gemm_nt(
            &self.data,
            &other.data,
            &mut out.data,
            self.rows,
            self.cols,
            other.rows,
            crate::kernels::KernelPolicy::default(),
        );
        out
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    #[must_use]
    pub fn hcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hcat row mismatch");
        let cols = self.cols + other.cols;
        let mut out = Matrix::zeros(self.rows, cols);
        for r in 0..self.rows {
            out.data[r * cols..r * cols + self.cols].copy_from_slice(self.row(r));
            out.data[r * cols + self.cols..(r + 1) * cols].copy_from_slice(other.row(r));
        }
        out
    }

    /// Splits columns at `at`, returning `(left, right)`.
    ///
    /// # Panics
    ///
    /// Panics if `at > cols`.
    #[must_use]
    pub fn hsplit(&self, at: usize) -> (Matrix, Matrix) {
        assert!(at <= self.cols);
        let mut left = Matrix::zeros(self.rows, at);
        let mut right = Matrix::zeros(self.rows, self.cols - at);
        for r in 0..self.rows {
            left.row_mut(r).copy_from_slice(&self.row(r)[..at]);
            right.row_mut(r).copy_from_slice(&self.row(r)[at..]);
        }
        (left, right)
    }

    /// Element-wise map into a new matrix.
    #[must_use]
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// In-place element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scaling.
    pub fn scale_assign(&mut self, k: f32) {
        for a in &mut self.data {
            *a *= k;
        }
    }

    /// Element-wise product into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| a * b).collect(),
        }
    }

    /// Column sums (length-`cols` vector as a 1×cols matrix).
    #[must_use]
    pub fn col_sums(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for (c, &v) in self.row(r).iter().enumerate() {
                out.data[c] += v;
            }
        }
        out
    }

    /// Adds a 1×cols row vector to every row.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_row_vec(&mut self, bias: &Matrix) {
        assert_eq!(bias.rows, 1);
        assert_eq!(bias.cols, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_mut(r).iter_mut().enumerate() {
                *v += bias.data[c];
            }
        }
    }

    /// Frobenius norm.
    #[must_use]
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

/// ReLU activation.
#[must_use]
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// Derivative of ReLU (with the 0-at-0 convention).
#[must_use]
pub fn relu_grad(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Numerically stable logistic sigmoid.
#[must_use]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_known_product() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[1., 0., 0., 1., 1., 1.]);
        let want = {
            // aᵀ is 2x3
            let at = m(2, 3, &[1., 3., 5., 2., 4., 6.]);
            at.matmul(&b)
        };
        assert_eq!(a.t_matmul(&b).data(), want.data());
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(2, 3, &[1., 1., 0., 0., 1., 1.]);
        let want = {
            let bt = m(3, 2, &[1., 0., 1., 1., 0., 1.]);
            a.matmul(&bt)
        };
        assert_eq!(a.matmul_t(&b).data(), want.data());
    }

    #[test]
    fn hcat_and_hsplit_round_trip() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let b = m(2, 1, &[9., 8.]);
        let c = a.hcat(&b);
        assert_eq!(c.cols(), 3);
        assert_eq!(c.row(0), &[1., 2., 9.]);
        let (l, r) = c.hsplit(2);
        assert_eq!(l.data(), a.data());
        assert_eq!(r.data(), b.data());
    }

    #[test]
    fn col_sums_and_bias() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.col_sums().data(), &[5., 7., 9.]);
        let mut b = a.clone();
        b.add_row_vec(&m(1, 3, &[10., 20., 30.]));
        assert_eq!(b.row(1), &[14., 25., 36.]);
    }

    #[test]
    fn sigmoid_stability_and_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) < 0.001);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn relu_and_grad() {
        assert_eq!(relu(-2.0), 0.0);
        assert_eq!(relu(2.0), 2.0);
        assert_eq!(relu_grad(-1.0), 0.0);
        assert_eq!(relu_grad(1.0), 1.0);
    }

    #[test]
    fn xavier_is_seeded_and_bounded() {
        let a = Matrix::xavier_seeded(8, 8, 5);
        let b = Matrix::xavier_seeded(8, 8, 5);
        assert_eq!(a.data(), b.data());
        let bound = (6.0 / 16.0f32).sqrt();
        assert!(a.data().iter().all(|v| v.abs() <= bound));
        assert!(a.norm() > 0.0);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
