//! GNN layers with manual forward/backward passes.
//!
//! [`SageLayer`] implements the GraphSAGE mean-aggregator update of the
//! paper's Eqs. (3)–(4): `h' = relu(W · [h ‖ mean(h_N)] + b)`. [`GcnLayer`]
//! implements the Kipf–Welling propagation `h' = relu(N·h·W + b)` with the
//! symmetric-normalised adjacency `N`; §5.1 notes either engine can back the
//! framework, and the ablation bench swaps them. [`Linear`] is the scoring
//! head producing one logit (or regressed TS value) per pin.

use crate::graph::NodeGraph;
use crate::matrix::{relu, relu_grad, Matrix};

/// GraphSAGE layer (mean aggregator + concatenation + linear + ReLU).
#[derive(Debug, Clone)]
pub struct SageLayer {
    /// Weight of shape `(2·in_dim, out_dim)`.
    pub w: Matrix,
    /// Bias of shape `(1, out_dim)`.
    pub b: Matrix,
}

/// Forward-pass intermediates needed by [`SageLayer::backward`].
#[derive(Debug, Clone)]
pub struct SageCache {
    x: Matrix,
    z: Matrix,
}

impl SageLayer {
    /// Xavier-initialised layer.
    #[must_use]
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        SageLayer {
            w: Matrix::xavier_seeded(2 * in_dim, out_dim, seed),
            b: Matrix::zeros(1, out_dim),
        }
    }

    /// Forward pass over all nodes at once.
    #[must_use]
    pub fn forward(&self, graph: &NodeGraph, h: &Matrix) -> (Matrix, SageCache) {
        let agg = graph.mean_aggregate(h);
        let x = h.hcat(&agg);
        let mut z = x.matmul(&self.w);
        z.add_row_vec(&self.b);
        let out = z.map(relu);
        (out, SageCache { x, z })
    }

    /// Backward pass: given `d_out = ∂L/∂h'`, returns
    /// `(∂L/∂h, ∂L/∂W, ∂L/∂b)`.
    #[must_use]
    pub fn backward(
        &self,
        graph: &NodeGraph,
        cache: &SageCache,
        d_out: &Matrix,
    ) -> (Matrix, Matrix, Matrix) {
        let dz = d_out.hadamard(&cache.z.map(relu_grad));
        let dw = cache.x.t_matmul(&dz);
        let db = dz.col_sums();
        let dx = dz.matmul_t(&self.w);
        let in_dim = self.w.rows() / 2;
        let (dh_direct, dh_agg) = dx.hsplit(in_dim);
        let mut dh = dh_direct;
        dh.add_assign(&graph.mean_aggregate_adjoint(&dh_agg));
        (dh, dw, db)
    }

    /// Output dimension.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }
}

/// GraphSAGE **pool** aggregator layer (Hamilton et al. §3.3): every
/// neighbor's features pass through a learned transform + ReLU, the
/// neighborhood is reduced with an element-wise max, and the result is
/// concatenated as in the mean variant. Sharper than mean aggregation when
/// a single critical neighbor should dominate (e.g. one timing-variant
/// fan-in among many invariant ones).
#[derive(Debug, Clone)]
pub struct SagePoolLayer {
    /// Pool transform of shape `(in_dim, out_dim)`.
    pub w_pool: Matrix,
    /// Pool bias of shape `(1, out_dim)`.
    pub b_pool: Matrix,
    /// Combine weight of shape `(in_dim + out_dim, out_dim)`.
    pub w: Matrix,
    /// Combine bias of shape `(1, out_dim)`.
    pub b: Matrix,
}

/// Forward-pass intermediates needed by [`SagePoolLayer::backward`].
#[derive(Debug, Clone)]
pub struct SagePoolCache {
    zp: Matrix,
    x: Matrix,
    z: Matrix,
    /// Winning neighbor per `(node, channel)`; `u32::MAX` for isolated
    /// nodes (their aggregate is zero and receives no gradient).
    argmax: Vec<u32>,
}

impl SagePoolLayer {
    /// Xavier-initialised layer.
    #[must_use]
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        SagePoolLayer {
            w_pool: Matrix::xavier_seeded(in_dim, out_dim, seed ^ 0x9e37),
            b_pool: Matrix::zeros(1, out_dim),
            w: Matrix::xavier_seeded(in_dim + out_dim, out_dim, seed),
            b: Matrix::zeros(1, out_dim),
        }
    }

    /// Forward pass over all nodes at once.
    #[must_use]
    pub fn forward(&self, graph: &NodeGraph, h: &Matrix) -> (Matrix, SagePoolCache) {
        let n = h.rows();
        let dp = self.w_pool.cols();
        let mut zp = h.matmul(&self.w_pool);
        zp.add_row_vec(&self.b_pool);
        let p = zp.map(relu);
        let mut agg = Matrix::zeros(n, dp);
        let mut argmax = vec![u32::MAX; n * dp];
        for i in 0..n {
            let nbrs = graph.neighbors(i);
            if nbrs.is_empty() {
                continue;
            }
            for c in 0..dp {
                let mut best = f32::NEG_INFINITY;
                let mut best_j = u32::MAX;
                for &j in nbrs {
                    let v = p.at(j as usize, c);
                    if v > best {
                        best = v;
                        best_j = j;
                    }
                }
                agg.set(i, c, best);
                argmax[i * dp + c] = best_j;
            }
        }
        let x = h.hcat(&agg);
        let mut z = x.matmul(&self.w);
        z.add_row_vec(&self.b);
        let out = z.map(relu);
        (out, SagePoolCache { zp, x, z, argmax })
    }

    /// Backward pass: given `d_out = ∂L/∂h'`, returns
    /// `(∂L/∂h, [∂L/∂W_pool, ∂L/∂b_pool, ∂L/∂W, ∂L/∂b])`.
    #[must_use]
    pub fn backward(
        &self,
        _graph: &NodeGraph,
        cache: &SagePoolCache,
        d_out: &Matrix,
    ) -> (Matrix, [Matrix; 4]) {
        let dz = d_out.hadamard(&cache.z.map(relu_grad));
        let dw = cache.x.t_matmul(&dz);
        let db = dz.col_sums();
        let dx = dz.matmul_t(&self.w);
        let in_dim = self.w_pool.rows();
        let dp = self.w_pool.cols();
        let (mut dh, dagg) = dx.hsplit(in_dim);
        // Route aggregate gradients to the winning neighbors' pooled
        // pre-activations.
        let n = dh.rows();
        let mut d_p = Matrix::zeros(n, dp);
        for i in 0..n {
            for c in 0..dp {
                let j = cache.argmax[i * dp + c];
                if j != u32::MAX {
                    let g = dagg.at(i, c);
                    d_p.set(j as usize, c, d_p.at(j as usize, c) + g);
                }
            }
        }
        let dzp = d_p.hadamard(&cache.zp.map(relu_grad));
        let dw_pool = cache.x.hsplit(in_dim).0.t_matmul(&dzp);
        let db_pool = dzp.col_sums();
        dh.add_assign(&dzp.matmul_t(&self.w_pool));
        (dh, [dw_pool, db_pool, dw, db])
    }

    /// Output dimension.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }
}

/// GCN layer (symmetric-normalised propagation + linear + ReLU).
#[derive(Debug, Clone)]
pub struct GcnLayer {
    /// Weight of shape `(in_dim, out_dim)`.
    pub w: Matrix,
    /// Bias of shape `(1, out_dim)`.
    pub b: Matrix,
}

/// Forward-pass intermediates needed by [`GcnLayer::backward`].
#[derive(Debug, Clone)]
pub struct GcnCache {
    p: Matrix,
    z: Matrix,
}

impl GcnLayer {
    /// Xavier-initialised layer.
    #[must_use]
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        GcnLayer { w: Matrix::xavier_seeded(in_dim, out_dim, seed), b: Matrix::zeros(1, out_dim) }
    }

    /// Forward pass over all nodes at once.
    #[must_use]
    pub fn forward(&self, graph: &NodeGraph, h: &Matrix) -> (Matrix, GcnCache) {
        let p = graph.gcn_propagate(h);
        let mut z = p.matmul(&self.w);
        z.add_row_vec(&self.b);
        let out = z.map(relu);
        (out, GcnCache { p, z })
    }

    /// Backward pass: given `d_out = ∂L/∂h'`, returns
    /// `(∂L/∂h, ∂L/∂W, ∂L/∂b)`. Uses the symmetry of the normalised
    /// adjacency (`Nᵀ = N`).
    #[must_use]
    pub fn backward(
        &self,
        graph: &NodeGraph,
        cache: &GcnCache,
        d_out: &Matrix,
    ) -> (Matrix, Matrix, Matrix) {
        let dz = d_out.hadamard(&cache.z.map(relu_grad));
        let dw = cache.p.t_matmul(&dz);
        let db = dz.col_sums();
        let dp = dz.matmul_t(&self.w);
        let dh = graph.gcn_propagate(&dp);
        (dh, dw, db)
    }

    /// Output dimension.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }
}

/// Linear scoring head producing one value per node (no activation; the
/// loss applies the sigmoid for classification).
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight of shape `(in_dim, 1)`.
    pub w: Matrix,
    /// Bias of shape `(1, 1)`.
    pub b: Matrix,
}

/// Forward-pass intermediates needed by [`Linear::backward`].
#[derive(Debug, Clone)]
pub struct LinearCache {
    x: Matrix,
}

impl Linear {
    /// Xavier-initialised head.
    #[must_use]
    pub fn new(in_dim: usize, seed: u64) -> Self {
        Linear { w: Matrix::xavier_seeded(in_dim, 1, seed), b: Matrix::zeros(1, 1) }
    }

    /// Forward pass; returns per-node scores as an `n×1` matrix.
    #[must_use]
    pub fn forward(&self, h: &Matrix) -> (Matrix, LinearCache) {
        let mut z = h.matmul(&self.w);
        z.add_row_vec(&self.b);
        (z, LinearCache { x: h.clone() })
    }

    /// Backward pass: given `d_out = ∂L/∂scores` (`n×1`), returns
    /// `(∂L/∂h, ∂L/∂W, ∂L/∂b)`.
    #[must_use]
    pub fn backward(&self, cache: &LinearCache, d_out: &Matrix) -> (Matrix, Matrix, Matrix) {
        let dw = cache.x.t_matmul(d_out);
        let db = d_out.col_sums();
        let dh = d_out.matmul_t(&self.w);
        (dh, dw, db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NeighborMode;

    fn tiny_graph() -> NodeGraph {
        NodeGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 2)], NeighborMode::Undirected)
    }

    /// Numerically checks ∂L/∂W for a scalar loss L = sum(out).
    fn check_sage_weight_grad() -> (f32, f32) {
        let g = tiny_graph();
        let h = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32 * 0.1 - 0.4);
        let layer = SageLayer::new(3, 2, 7);
        let loss_of = |l: &SageLayer| -> f32 {
            let (out, _) = l.forward(&g, &h);
            out.data().iter().sum()
        };
        let (out, cache) = layer.forward(&g, &h);
        let d_out = Matrix::from_fn(out.rows(), out.cols(), |_, _| 1.0);
        let (_, dw, _) = layer.backward(&g, &cache, &d_out);
        // numeric grad for W[0,0]
        let eps = 1e-3;
        let mut lp = layer.clone();
        lp.w.set(0, 0, layer.w.at(0, 0) + eps);
        let mut lm = layer.clone();
        lm.w.set(0, 0, layer.w.at(0, 0) - eps);
        let numeric = (loss_of(&lp) - loss_of(&lm)) / (2.0 * eps);
        (dw.at(0, 0), numeric)
    }

    #[test]
    fn sage_weight_gradient_matches_numeric() {
        let (analytic, numeric) = check_sage_weight_grad();
        assert!(
            (analytic - numeric).abs() < 1e-2 * numeric.abs().max(1.0),
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn sage_input_gradient_matches_numeric() {
        let g = tiny_graph();
        let h = Matrix::from_fn(4, 3, |r, c| ((r + c) as f32).sin());
        let layer = SageLayer::new(3, 2, 3);
        let loss_of = |h: &Matrix| -> f32 {
            let (out, _) = layer.forward(&g, h);
            out.data().iter().sum()
        };
        let (out, cache) = layer.forward(&g, &h);
        let d_out = Matrix::from_fn(out.rows(), out.cols(), |_, _| 1.0);
        let (dh, _, _) = layer.backward(&g, &cache, &d_out);
        let eps = 1e-3;
        for (r, c) in [(0, 0), (2, 1), (3, 2)] {
            let mut hp = h.clone();
            hp.set(r, c, h.at(r, c) + eps);
            let mut hm = h.clone();
            hm.set(r, c, h.at(r, c) - eps);
            let numeric = (loss_of(&hp) - loss_of(&hm)) / (2.0 * eps);
            let analytic = dh.at(r, c);
            assert!(
                (analytic - numeric).abs() < 2e-2 * numeric.abs().max(1.0),
                "dH[{r},{c}] analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn gcn_gradients_match_numeric() {
        let g = tiny_graph();
        let h = Matrix::from_fn(4, 2, |r, c| (r as f32 - c as f32) * 0.3);
        let layer = GcnLayer::new(2, 2, 11);
        let loss_of = |l: &GcnLayer, h: &Matrix| -> f32 {
            let (out, _) = l.forward(&g, h);
            out.data().iter().sum()
        };
        let (out, cache) = layer.forward(&g, &h);
        let d_out = Matrix::from_fn(out.rows(), out.cols(), |_, _| 1.0);
        let (dh, dw, _) = layer.backward(&g, &cache, &d_out);
        let eps = 1e-3;
        // weight grad
        let mut lp = layer.clone();
        lp.w.set(1, 0, layer.w.at(1, 0) + eps);
        let mut lm = layer.clone();
        lm.w.set(1, 0, layer.w.at(1, 0) - eps);
        let numeric = (loss_of(&lp, &h) - loss_of(&lm, &h)) / (2.0 * eps);
        assert!((dw.at(1, 0) - numeric).abs() < 2e-2 * numeric.abs().max(1.0));
        // input grad
        let mut hp = h.clone();
        hp.set(1, 1, h.at(1, 1) + eps);
        let mut hm = h.clone();
        hm.set(1, 1, h.at(1, 1) - eps);
        let numeric = (loss_of(&layer, &hp) - loss_of(&layer, &hm)) / (2.0 * eps);
        assert!((dh.at(1, 1) - numeric).abs() < 2e-2 * numeric.abs().max(1.0));
    }

    #[test]
    fn sage_pool_gradients_match_numeric() {
        let g = tiny_graph();
        let h = Matrix::from_fn(4, 3, |r, c| ((r * 3 + c) as f32 * 0.37).sin());
        let layer = SagePoolLayer::new(3, 2, 13);
        let loss_of = |l: &SagePoolLayer, h: &Matrix| -> f32 {
            let (out, _) = l.forward(&g, h);
            out.data().iter().sum()
        };
        let (out, cache) = layer.forward(&g, &h);
        let d_out = Matrix::from_fn(out.rows(), out.cols(), |_, _| 1.0);
        let (dh, [dw_pool, _, dw, _]) = layer.backward(&g, &cache, &d_out);
        let eps = 1e-3;
        // combine weight
        let mut lp = layer.clone();
        lp.w.set(0, 0, layer.w.at(0, 0) + eps);
        let mut lm = layer.clone();
        lm.w.set(0, 0, layer.w.at(0, 0) - eps);
        let numeric = (loss_of(&lp, &h) - loss_of(&lm, &h)) / (2.0 * eps);
        assert!(
            (dw.at(0, 0) - numeric).abs() < 2e-2 * numeric.abs().max(1.0),
            "dW {} vs {numeric}",
            dw.at(0, 0)
        );
        // pool weight (max gating makes this the interesting one)
        let mut lp = layer.clone();
        lp.w_pool.set(1, 1, layer.w_pool.at(1, 1) + eps);
        let mut lm = layer.clone();
        lm.w_pool.set(1, 1, layer.w_pool.at(1, 1) - eps);
        let numeric = (loss_of(&lp, &h) - loss_of(&lm, &h)) / (2.0 * eps);
        assert!(
            (dw_pool.at(1, 1) - numeric).abs() < 3e-2 * numeric.abs().max(1.0),
            "dW_pool {} vs {numeric}",
            dw_pool.at(1, 1)
        );
        // input gradient
        let mut hp = h.clone();
        hp.set(2, 1, h.at(2, 1) + eps);
        let mut hm = h.clone();
        hm.set(2, 1, h.at(2, 1) - eps);
        let numeric = (loss_of(&layer, &hp) - loss_of(&layer, &hm)) / (2.0 * eps);
        assert!(
            (dh.at(2, 1) - numeric).abs() < 3e-2 * numeric.abs().max(1.0),
            "dh {} vs {numeric}",
            dh.at(2, 1)
        );
    }

    #[test]
    fn sage_pool_isolated_node_aggregates_zero() {
        let g = NodeGraph::from_edges(3, &[(0, 1)], NeighborMode::Undirected);
        let h = Matrix::from_fn(3, 2, |_, _| 1.0);
        let layer = SagePoolLayer::new(2, 2, 4);
        let (out, cache) = layer.forward(&g, &h);
        assert_eq!(out.rows(), 3);
        // node 2 is isolated: every argmax entry is the sentinel
        let dp = layer.w_pool.cols();
        for c in 0..dp {
            assert_eq!(cache.argmax[2 * dp + c], u32::MAX);
        }
        // backward must not panic and must route no gradient through node 2
        let d_out = Matrix::from_fn(3, 2, |_, _| 1.0);
        let (dh, _) = layer.backward(&g, &cache, &d_out);
        assert_eq!(dh.rows(), 3);
    }

    #[test]
    fn linear_backward_shapes_and_values() {
        let h = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let head = Linear::new(2, 1);
        let (scores, cache) = head.forward(&h);
        assert_eq!(scores.rows(), 3);
        assert_eq!(scores.cols(), 1);
        let d = Matrix::from_vec(3, 1, vec![1.0, 0.0, -1.0]);
        let (dh, dw, db) = head.backward(&cache, &d);
        assert_eq!(dh.rows(), 3);
        assert_eq!(dw.rows(), 2);
        assert_eq!(db.at(0, 0), 0.0);
        // dW = Xᵀ d = [1*1 + 3*0 + 5*(-1); 2*1 + 4*0 + 6*(-1)] = [-4, -4]
        assert_eq!(dw.at(0, 0), -4.0);
        assert_eq!(dw.at(1, 0), -4.0);
    }

    #[test]
    fn relu_gates_backward_flow() {
        // With a bias pushing all pre-activations negative, gradients die.
        let g = tiny_graph();
        let h = Matrix::from_fn(4, 2, |_, _| 0.1);
        let mut layer = SageLayer::new(2, 2, 5);
        layer.b = Matrix::from_vec(1, 2, vec![-100.0, -100.0]);
        let (out, cache) = layer.forward(&g, &h);
        assert!(out.data().iter().all(|&v| v == 0.0));
        let d_out = Matrix::from_fn(4, 2, |_, _| 1.0);
        let (dh, dw, db) = layer.backward(&g, &cache, &d_out);
        assert!(dh.data().iter().all(|&v| v == 0.0));
        assert!(dw.data().iter().all(|&v| v == 0.0));
        assert!(db.data().iter().all(|&v| v == 0.0));
    }
}
