//! GNN layers with manual forward/backward passes.
//!
//! [`SageLayer`] implements the GraphSAGE mean-aggregator update of the
//! paper's Eqs. (3)–(4): `h' = relu(W · [h ‖ mean(h_N)] + b)`. [`GcnLayer`]
//! implements the Kipf–Welling propagation `h' = relu(N·h·W + b)` with the
//! symmetric-normalised adjacency `N`; §5.1 notes either engine can back the
//! framework, and the ablation bench swaps them. [`Linear`] is the scoring
//! head producing one logit (or regressed TS value) per pin.
//!
//! Each layer exposes two APIs: allocation-free `forward_into` /
//! `backward_into` running on caller-owned caches, gradients, and
//! [`LayerScratch`] (the training hot path), and the original allocating
//! `forward` / `backward` pair, retained as thin wrappers for tests and
//! one-off use. Caches store the *post*-activation output: under ReLU's
//! 0-at-0 convention `out > 0 ⇔ z > 0`, so the pre-activation is never
//! materialised.

use crate::graph::NodeGraph;
use crate::kernels::{self, KernelPolicy};
use crate::matrix::{relu, relu_grad, Matrix};

/// Reusable scratch buffers shared by every layer's `backward_into`.
///
/// Owned by the model's workspace; all matrices are resized in place per
/// call and keep their peak capacity, so steady-state epochs allocate
/// nothing.
#[derive(Debug, Clone, Default)]
pub struct LayerScratch {
    /// Gated output gradient `∂L/∂z`.
    pub(crate) dz: Matrix,
    /// Input-side gradient of the combine GEMM (`∂L/∂x`).
    pub(crate) dx: Matrix,
    /// Pool-aggregate / propagation gradient.
    pub(crate) dp: Matrix,
    /// Pool pre-activation gradient.
    pub(crate) dzp: Matrix,
    /// General temporary (e.g. `dzp·W_poolᵀ`).
    pub(crate) tmp: Matrix,
    /// Reduction-slab scratch for [`kernels::gemm_tn`].
    pub(crate) red: Vec<f32>,
}

impl LayerScratch {
    /// Empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        LayerScratch::default()
    }
}

/// GraphSAGE layer (mean aggregator + concatenation + linear + ReLU).
#[derive(Debug, Clone)]
pub struct SageLayer {
    /// Weight of shape `(2·in_dim, out_dim)`.
    pub w: Matrix,
    /// Bias of shape `(1, out_dim)`.
    pub b: Matrix,
}

/// Forward-pass intermediates needed by [`SageLayer::backward`].
#[derive(Debug, Clone, Default)]
pub struct SageCache {
    /// Concatenated input `[h ‖ mean(h_N)]`.
    pub(crate) x: Matrix,
    /// Post-activation layer output.
    pub(crate) out: Matrix,
}

impl SageCache {
    /// Empty cache; buffers are shaped by `forward_into`.
    #[must_use]
    pub fn empty() -> Self {
        SageCache::default()
    }
}

impl SageLayer {
    /// Xavier-initialised layer.
    #[must_use]
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        SageLayer {
            w: Matrix::xavier_seeded(2 * in_dim, out_dim, seed),
            b: Matrix::zeros(1, out_dim),
        }
    }

    /// Allocation-free forward pass into a reusable cache; the output lives
    /// in `cache.out`.
    pub fn forward_into(
        &self,
        graph: &NodeGraph,
        h: &Matrix,
        cache: &mut SageCache,
        pol: KernelPolicy,
    ) {
        let n = h.rows();
        let d = h.cols();
        let od = self.w.cols();
        cache.x.resize_to(n, 2 * d);
        kernels::sage_gather(graph, h.data(), d, cache.x.data_mut(), pol);
        cache.out.resize_to(n, od);
        kernels::gemm(cache.x.data(), self.w.data(), cache.out.data_mut(), n, 2 * d, od, pol);
        kernels::bias_relu(cache.out.data_mut(), self.b.data());
    }

    /// Allocation-free backward pass writing `∂L/∂h` into `dh` and the
    /// parameter gradients into `dw` / `db`.
    pub fn backward_into(
        &self,
        graph: &NodeGraph,
        cache: &SageCache,
        d_out: &Matrix,
        dh: &mut Matrix,
        dw: &mut Matrix,
        db: &mut Matrix,
        scratch: &mut LayerScratch,
        pol: KernelPolicy,
    ) {
        let n = d_out.rows();
        let od = self.w.cols();
        let two_d = self.w.rows();
        let d = two_d / 2;
        scratch.dz.resize_to(n, od);
        kernels::relu_gate(cache.out.data(), d_out.data(), scratch.dz.data_mut());
        dw.resize_to(two_d, od);
        kernels::gemm_tn(
            cache.x.data(),
            scratch.dz.data(),
            dw.data_mut(),
            n,
            two_d,
            od,
            two_d,
            &mut scratch.red,
            pol,
        );
        db.resize_to(1, od);
        kernels::col_sums(scratch.dz.data(), od, db.data_mut());
        scratch.dx.resize_to(n, two_d);
        kernels::gemm_nt(scratch.dz.data(), self.w.data(), scratch.dx.data_mut(), n, od, two_d, pol);
        dh.resize_to(n, d);
        kernels::sage_adjoint(graph, scratch.dx.data(), d, dh.data_mut(), pol);
    }

    /// Forward pass over all nodes at once.
    #[must_use]
    pub fn forward(&self, graph: &NodeGraph, h: &Matrix) -> (Matrix, SageCache) {
        let mut cache = SageCache::empty();
        self.forward_into(graph, h, &mut cache, KernelPolicy::default());
        (cache.out.clone(), cache)
    }

    /// Backward pass: given `d_out = ∂L/∂h'`, returns
    /// `(∂L/∂h, ∂L/∂W, ∂L/∂b)`.
    #[must_use]
    pub fn backward(
        &self,
        graph: &NodeGraph,
        cache: &SageCache,
        d_out: &Matrix,
    ) -> (Matrix, Matrix, Matrix) {
        let mut dh = Matrix::zeros(0, 0);
        let mut dw = Matrix::zeros(0, 0);
        let mut db = Matrix::zeros(0, 0);
        let mut scratch = LayerScratch::new();
        self.backward_into(graph, cache, d_out, &mut dh, &mut dw, &mut db, &mut scratch, KernelPolicy::default());
        (dh, dw, db)
    }

    /// Output dimension.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }
}

/// GraphSAGE **pool** aggregator layer (Hamilton et al. §3.3): every
/// neighbor's features pass through a learned transform + ReLU, the
/// neighborhood is reduced with an element-wise max, and the result is
/// concatenated as in the mean variant. Sharper than mean aggregation when
/// a single critical neighbor should dominate (e.g. one timing-variant
/// fan-in among many invariant ones).
#[derive(Debug, Clone)]
pub struct SagePoolLayer {
    /// Pool transform of shape `(in_dim, out_dim)`.
    pub w_pool: Matrix,
    /// Pool bias of shape `(1, out_dim)`.
    pub b_pool: Matrix,
    /// Combine weight of shape `(in_dim + out_dim, out_dim)`.
    pub w: Matrix,
    /// Combine bias of shape `(1, out_dim)`.
    pub b: Matrix,
}

/// Forward-pass intermediates needed by [`SagePoolLayer::backward`].
#[derive(Debug, Clone, Default)]
pub struct SagePoolCache {
    /// Pooled post-activation neighbor features `relu(h·W_pool + b_pool)`.
    pub(crate) p: Matrix,
    /// Concatenated input `[h ‖ maxpool]`.
    pub(crate) x: Matrix,
    /// Post-activation layer output.
    pub(crate) out: Matrix,
    /// Winning neighbor per `(node, channel)`; `u32::MAX` for isolated
    /// nodes (their aggregate is zero and receives no gradient).
    pub(crate) argmax: Vec<u32>,
}

impl SagePoolCache {
    /// Empty cache; buffers are shaped by `forward_into`.
    #[must_use]
    pub fn empty() -> Self {
        SagePoolCache::default()
    }
}

impl SagePoolLayer {
    /// Xavier-initialised layer.
    #[must_use]
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        SagePoolLayer {
            w_pool: Matrix::xavier_seeded(in_dim, out_dim, seed ^ 0x9e37),
            b_pool: Matrix::zeros(1, out_dim),
            w: Matrix::xavier_seeded(in_dim + out_dim, out_dim, seed),
            b: Matrix::zeros(1, out_dim),
        }
    }

    /// Allocation-free forward pass into a reusable cache; the output lives
    /// in `cache.out`.
    pub fn forward_into(
        &self,
        graph: &NodeGraph,
        h: &Matrix,
        cache: &mut SagePoolCache,
        pol: KernelPolicy,
    ) {
        let n = h.rows();
        let d = h.cols();
        let dp = self.w_pool.cols();
        let od = self.w.cols();
        cache.p.resize_to(n, dp);
        kernels::gemm(h.data(), self.w_pool.data(), cache.p.data_mut(), n, d, dp, pol);
        kernels::bias_relu(cache.p.data_mut(), self.b_pool.data());
        cache.x.resize_to(n, d + dp);
        cache.argmax.clear();
        cache.argmax.resize(n * dp, u32::MAX);
        kernels::pool_max(
            graph,
            cache.p.data(),
            dp,
            h.data(),
            d,
            cache.x.data_mut(),
            &mut cache.argmax,
            pol,
        );
        cache.out.resize_to(n, od);
        kernels::gemm(cache.x.data(), self.w.data(), cache.out.data_mut(), n, d + dp, od, pol);
        kernels::bias_relu(cache.out.data_mut(), self.b.data());
    }

    /// Allocation-free backward pass writing `∂L/∂h` into `dh` and the
    /// parameter gradients into `dw_pool` / `db_pool` / `dw` / `db`.
    #[allow(clippy::too_many_arguments)]
    pub fn backward_into(
        &self,
        _graph: &NodeGraph,
        cache: &SagePoolCache,
        d_out: &Matrix,
        dh: &mut Matrix,
        dw_pool: &mut Matrix,
        db_pool: &mut Matrix,
        dw: &mut Matrix,
        db: &mut Matrix,
        scratch: &mut LayerScratch,
        pol: KernelPolicy,
    ) {
        let n = d_out.rows();
        let d = self.w_pool.rows();
        let dp = self.w_pool.cols();
        let od = self.w.cols();
        scratch.dz.resize_to(n, od);
        kernels::relu_gate(cache.out.data(), d_out.data(), scratch.dz.data_mut());
        dw.resize_to(d + dp, od);
        kernels::gemm_tn(
            cache.x.data(),
            scratch.dz.data(),
            dw.data_mut(),
            n,
            d + dp,
            od,
            d + dp,
            &mut scratch.red,
            pol,
        );
        db.resize_to(1, od);
        kernels::col_sums(scratch.dz.data(), od, db.data_mut());
        scratch.dx.resize_to(n, d + dp);
        kernels::gemm_nt(scratch.dz.data(), self.w.data(), scratch.dx.data_mut(), n, od, d + dp, pol);
        // Route aggregate gradients to the winning neighbors' pooled
        // features. The scatter stays sequential: distinct destination rows
        // can collide, so row-parallelism would race.
        scratch.dp.resize_to(n, dp);
        {
            let dx = scratch.dx.data();
            let dpm = scratch.dp.data_mut();
            for i in 0..n {
                for c in 0..dp {
                    let j = cache.argmax[i * dp + c];
                    if j != u32::MAX {
                        dpm[j as usize * dp + c] += dx[i * (d + dp) + d + c];
                    }
                }
            }
        }
        scratch.dzp.resize_to(n, dp);
        kernels::relu_gate(cache.p.data(), scratch.dp.data(), scratch.dzp.data_mut());
        dw_pool.resize_to(d, dp);
        kernels::gemm_tn(
            cache.x.data(),
            scratch.dzp.data(),
            dw_pool.data_mut(),
            n,
            d,
            dp,
            d + dp,
            &mut scratch.red,
            pol,
        );
        db_pool.resize_to(1, dp);
        kernels::col_sums(scratch.dzp.data(), dp, db_pool.data_mut());
        scratch.tmp.resize_to(n, d);
        kernels::gemm_nt(scratch.dzp.data(), self.w_pool.data(), scratch.tmp.data_mut(), n, dp, d, pol);
        dh.resize_to(n, d);
        let dx = scratch.dx.data();
        let tmp = scratch.tmp.data();
        for (r, drow) in dh.data_mut().chunks_exact_mut(d).enumerate() {
            let dxrow = &dx[r * (d + dp)..r * (d + dp) + d];
            let trow = &tmp[r * d..(r + 1) * d];
            for ((o, &a), &b) in drow.iter_mut().zip(dxrow).zip(trow) {
                *o = a + b;
            }
        }
    }

    /// Forward pass over all nodes at once.
    #[must_use]
    pub fn forward(&self, graph: &NodeGraph, h: &Matrix) -> (Matrix, SagePoolCache) {
        let mut cache = SagePoolCache::empty();
        self.forward_into(graph, h, &mut cache, KernelPolicy::default());
        (cache.out.clone(), cache)
    }

    /// Backward pass: given `d_out = ∂L/∂h'`, returns
    /// `(∂L/∂h, [∂L/∂W_pool, ∂L/∂b_pool, ∂L/∂W, ∂L/∂b])`.
    #[must_use]
    pub fn backward(
        &self,
        graph: &NodeGraph,
        cache: &SagePoolCache,
        d_out: &Matrix,
    ) -> (Matrix, [Matrix; 4]) {
        let mut dh = Matrix::zeros(0, 0);
        let mut dw_pool = Matrix::zeros(0, 0);
        let mut db_pool = Matrix::zeros(0, 0);
        let mut dw = Matrix::zeros(0, 0);
        let mut db = Matrix::zeros(0, 0);
        let mut scratch = LayerScratch::new();
        self.backward_into(
            graph,
            cache,
            d_out,
            &mut dh,
            &mut dw_pool,
            &mut db_pool,
            &mut dw,
            &mut db,
            &mut scratch,
            KernelPolicy::default(),
        );
        (dh, [dw_pool, db_pool, dw, db])
    }

    /// Output dimension.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }
}

/// GCN layer (symmetric-normalised propagation + linear + ReLU).
#[derive(Debug, Clone)]
pub struct GcnLayer {
    /// Weight of shape `(in_dim, out_dim)`.
    pub w: Matrix,
    /// Bias of shape `(1, out_dim)`.
    pub b: Matrix,
}

/// Forward-pass intermediates needed by [`GcnLayer::backward`].
#[derive(Debug, Clone, Default)]
pub struct GcnCache {
    /// Propagated input `N·h`.
    pub(crate) p: Matrix,
    /// Post-activation layer output.
    pub(crate) out: Matrix,
}

impl GcnCache {
    /// Empty cache; buffers are shaped by `forward_into`.
    #[must_use]
    pub fn empty() -> Self {
        GcnCache::default()
    }
}

impl GcnLayer {
    /// Xavier-initialised layer.
    #[must_use]
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        GcnLayer { w: Matrix::xavier_seeded(in_dim, out_dim, seed), b: Matrix::zeros(1, out_dim) }
    }

    /// Allocation-free forward pass into a reusable cache; the output lives
    /// in `cache.out`.
    pub fn forward_into(
        &self,
        graph: &NodeGraph,
        h: &Matrix,
        cache: &mut GcnCache,
        pol: KernelPolicy,
    ) {
        let n = h.rows();
        let d = h.cols();
        let od = self.w.cols();
        cache.p.resize_to(n, d);
        kernels::gcn_propagate_into(graph, h.data(), d, cache.p.data_mut(), pol);
        cache.out.resize_to(n, od);
        kernels::gemm(cache.p.data(), self.w.data(), cache.out.data_mut(), n, d, od, pol);
        kernels::bias_relu(cache.out.data_mut(), self.b.data());
    }

    /// Allocation-free backward pass writing `∂L/∂h` into `dh` and the
    /// parameter gradients into `dw` / `db`. Uses the symmetry of the
    /// normalised adjacency (`Nᵀ = N`).
    pub fn backward_into(
        &self,
        graph: &NodeGraph,
        cache: &GcnCache,
        d_out: &Matrix,
        dh: &mut Matrix,
        dw: &mut Matrix,
        db: &mut Matrix,
        scratch: &mut LayerScratch,
        pol: KernelPolicy,
    ) {
        let n = d_out.rows();
        let d = self.w.rows();
        let od = self.w.cols();
        scratch.dz.resize_to(n, od);
        kernels::relu_gate(cache.out.data(), d_out.data(), scratch.dz.data_mut());
        dw.resize_to(d, od);
        kernels::gemm_tn(
            cache.p.data(),
            scratch.dz.data(),
            dw.data_mut(),
            n,
            d,
            od,
            d,
            &mut scratch.red,
            pol,
        );
        db.resize_to(1, od);
        kernels::col_sums(scratch.dz.data(), od, db.data_mut());
        scratch.dp.resize_to(n, d);
        kernels::gemm_nt(scratch.dz.data(), self.w.data(), scratch.dp.data_mut(), n, od, d, pol);
        dh.resize_to(n, d);
        kernels::gcn_propagate_into(graph, scratch.dp.data(), d, dh.data_mut(), pol);
    }

    /// Forward pass over all nodes at once.
    #[must_use]
    pub fn forward(&self, graph: &NodeGraph, h: &Matrix) -> (Matrix, GcnCache) {
        let mut cache = GcnCache::empty();
        self.forward_into(graph, h, &mut cache, KernelPolicy::default());
        (cache.out.clone(), cache)
    }

    /// Backward pass: given `d_out = ∂L/∂h'`, returns
    /// `(∂L/∂h, ∂L/∂W, ∂L/∂b)`.
    #[must_use]
    pub fn backward(
        &self,
        graph: &NodeGraph,
        cache: &GcnCache,
        d_out: &Matrix,
    ) -> (Matrix, Matrix, Matrix) {
        let mut dh = Matrix::zeros(0, 0);
        let mut dw = Matrix::zeros(0, 0);
        let mut db = Matrix::zeros(0, 0);
        let mut scratch = LayerScratch::new();
        self.backward_into(graph, cache, d_out, &mut dh, &mut dw, &mut db, &mut scratch, KernelPolicy::default());
        (dh, dw, db)
    }

    /// Output dimension.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }
}

/// Linear scoring head producing one value per node (no activation; the
/// loss applies the sigmoid for classification).
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight of shape `(in_dim, 1)`.
    pub w: Matrix,
    /// Bias of shape `(1, 1)`.
    pub b: Matrix,
}

/// Forward-pass intermediates needed by [`Linear::backward`].
#[derive(Debug, Clone)]
pub struct LinearCache {
    x: Matrix,
}

impl Linear {
    /// Xavier-initialised head.
    #[must_use]
    pub fn new(in_dim: usize, seed: u64) -> Self {
        Linear { w: Matrix::xavier_seeded(in_dim, 1, seed), b: Matrix::zeros(1, 1) }
    }

    /// Forward pass; returns per-node scores as an `n×1` matrix.
    #[must_use]
    pub fn forward(&self, h: &Matrix) -> (Matrix, LinearCache) {
        let mut z = h.matmul(&self.w);
        z.add_row_vec(&self.b);
        (z, LinearCache { x: h.clone() })
    }

    /// Backward pass: given `d_out = ∂L/∂scores` (`n×1`), returns
    /// `(∂L/∂h, ∂L/∂W, ∂L/∂b)`.
    #[must_use]
    pub fn backward(&self, cache: &LinearCache, d_out: &Matrix) -> (Matrix, Matrix, Matrix) {
        let dw = cache.x.t_matmul(d_out);
        let db = d_out.col_sums();
        let dh = d_out.matmul_t(&self.w);
        (dh, dw, db)
    }
}

// Keep `relu`/`relu_grad` referenced for the documented public surface of
// `matrix` even though the fused kernels no longer call them here.
const _: fn(f32) -> f32 = relu;
const _: fn(f32) -> f32 = relu_grad;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NeighborMode;

    fn tiny_graph() -> NodeGraph {
        NodeGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 2)], NeighborMode::Undirected)
    }

    /// Numerically checks ∂L/∂W for a scalar loss L = sum(out).
    fn check_sage_weight_grad() -> (f32, f32) {
        let g = tiny_graph();
        let h = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32 * 0.1 - 0.4);
        let layer = SageLayer::new(3, 2, 7);
        let loss_of = |l: &SageLayer| -> f32 {
            let (out, _) = l.forward(&g, &h);
            out.data().iter().sum()
        };
        let (out, cache) = layer.forward(&g, &h);
        let d_out = Matrix::from_fn(out.rows(), out.cols(), |_, _| 1.0);
        let (_, dw, _) = layer.backward(&g, &cache, &d_out);
        // numeric grad for W[0,0]
        let eps = 1e-3;
        let mut lp = layer.clone();
        lp.w.set(0, 0, layer.w.at(0, 0) + eps);
        let mut lm = layer.clone();
        lm.w.set(0, 0, layer.w.at(0, 0) - eps);
        let numeric = (loss_of(&lp) - loss_of(&lm)) / (2.0 * eps);
        (dw.at(0, 0), numeric)
    }

    #[test]
    fn sage_weight_gradient_matches_numeric() {
        let (analytic, numeric) = check_sage_weight_grad();
        assert!(
            (analytic - numeric).abs() < 1e-2 * numeric.abs().max(1.0),
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn sage_input_gradient_matches_numeric() {
        let g = tiny_graph();
        let h = Matrix::from_fn(4, 3, |r, c| ((r + c) as f32).sin());
        let layer = SageLayer::new(3, 2, 3);
        let loss_of = |h: &Matrix| -> f32 {
            let (out, _) = layer.forward(&g, h);
            out.data().iter().sum()
        };
        let (out, cache) = layer.forward(&g, &h);
        let d_out = Matrix::from_fn(out.rows(), out.cols(), |_, _| 1.0);
        let (dh, _, _) = layer.backward(&g, &cache, &d_out);
        let eps = 1e-3;
        for (r, c) in [(0, 0), (2, 1), (3, 2)] {
            let mut hp = h.clone();
            hp.set(r, c, h.at(r, c) + eps);
            let mut hm = h.clone();
            hm.set(r, c, h.at(r, c) - eps);
            let numeric = (loss_of(&hp) - loss_of(&hm)) / (2.0 * eps);
            let analytic = dh.at(r, c);
            assert!(
                (analytic - numeric).abs() < 2e-2 * numeric.abs().max(1.0),
                "dH[{r},{c}] analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn gcn_gradients_match_numeric() {
        let g = tiny_graph();
        let h = Matrix::from_fn(4, 2, |r, c| (r as f32 - c as f32) * 0.3);
        let layer = GcnLayer::new(2, 2, 11);
        let loss_of = |l: &GcnLayer, h: &Matrix| -> f32 {
            let (out, _) = l.forward(&g, h);
            out.data().iter().sum()
        };
        let (out, cache) = layer.forward(&g, &h);
        let d_out = Matrix::from_fn(out.rows(), out.cols(), |_, _| 1.0);
        let (dh, dw, _) = layer.backward(&g, &cache, &d_out);
        let eps = 1e-3;
        // weight grad
        let mut lp = layer.clone();
        lp.w.set(1, 0, layer.w.at(1, 0) + eps);
        let mut lm = layer.clone();
        lm.w.set(1, 0, layer.w.at(1, 0) - eps);
        let numeric = (loss_of(&lp, &h) - loss_of(&lm, &h)) / (2.0 * eps);
        assert!((dw.at(1, 0) - numeric).abs() < 2e-2 * numeric.abs().max(1.0));
        // input grad
        let mut hp = h.clone();
        hp.set(1, 1, h.at(1, 1) + eps);
        let mut hm = h.clone();
        hm.set(1, 1, h.at(1, 1) - eps);
        let numeric = (loss_of(&layer, &hp) - loss_of(&layer, &hm)) / (2.0 * eps);
        assert!((dh.at(1, 1) - numeric).abs() < 2e-2 * numeric.abs().max(1.0));
    }

    #[test]
    fn sage_pool_gradients_match_numeric() {
        let g = tiny_graph();
        let h = Matrix::from_fn(4, 3, |r, c| ((r * 3 + c) as f32 * 0.37).sin());
        let layer = SagePoolLayer::new(3, 2, 13);
        let loss_of = |l: &SagePoolLayer, h: &Matrix| -> f32 {
            let (out, _) = l.forward(&g, h);
            out.data().iter().sum()
        };
        let (out, cache) = layer.forward(&g, &h);
        let d_out = Matrix::from_fn(out.rows(), out.cols(), |_, _| 1.0);
        let (dh, [dw_pool, _, dw, _]) = layer.backward(&g, &cache, &d_out);
        let eps = 1e-3;
        // combine weight
        let mut lp = layer.clone();
        lp.w.set(0, 0, layer.w.at(0, 0) + eps);
        let mut lm = layer.clone();
        lm.w.set(0, 0, layer.w.at(0, 0) - eps);
        let numeric = (loss_of(&lp, &h) - loss_of(&lm, &h)) / (2.0 * eps);
        assert!(
            (dw.at(0, 0) - numeric).abs() < 2e-2 * numeric.abs().max(1.0),
            "dW {} vs {numeric}",
            dw.at(0, 0)
        );
        // pool weight (max gating makes this the interesting one)
        let mut lp = layer.clone();
        lp.w_pool.set(1, 1, layer.w_pool.at(1, 1) + eps);
        let mut lm = layer.clone();
        lm.w_pool.set(1, 1, layer.w_pool.at(1, 1) - eps);
        let numeric = (loss_of(&lp, &h) - loss_of(&lm, &h)) / (2.0 * eps);
        assert!(
            (dw_pool.at(1, 1) - numeric).abs() < 3e-2 * numeric.abs().max(1.0),
            "dW_pool {} vs {numeric}",
            dw_pool.at(1, 1)
        );
        // input gradient
        let mut hp = h.clone();
        hp.set(2, 1, h.at(2, 1) + eps);
        let mut hm = h.clone();
        hm.set(2, 1, h.at(2, 1) - eps);
        let numeric = (loss_of(&layer, &hp) - loss_of(&layer, &hm)) / (2.0 * eps);
        assert!(
            (dh.at(2, 1) - numeric).abs() < 3e-2 * numeric.abs().max(1.0),
            "dh {} vs {numeric}",
            dh.at(2, 1)
        );
    }

    #[test]
    fn sage_pool_isolated_node_aggregates_zero() {
        let g = NodeGraph::from_edges(3, &[(0, 1)], NeighborMode::Undirected);
        let h = Matrix::from_fn(3, 2, |_, _| 1.0);
        let layer = SagePoolLayer::new(2, 2, 4);
        let (out, cache) = layer.forward(&g, &h);
        assert_eq!(out.rows(), 3);
        // node 2 is isolated: every argmax entry is the sentinel
        let dp = layer.w_pool.cols();
        for c in 0..dp {
            assert_eq!(cache.argmax[2 * dp + c], u32::MAX);
        }
        // backward must not panic and must route no gradient through node 2
        let d_out = Matrix::from_fn(3, 2, |_, _| 1.0);
        let (dh, _) = layer.backward(&g, &cache, &d_out);
        assert_eq!(dh.rows(), 3);
    }

    #[test]
    fn linear_backward_shapes_and_values() {
        let h = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let head = Linear::new(2, 1);
        let (scores, cache) = head.forward(&h);
        assert_eq!(scores.rows(), 3);
        assert_eq!(scores.cols(), 1);
        let d = Matrix::from_vec(3, 1, vec![1.0, 0.0, -1.0]);
        let (dh, dw, db) = head.backward(&cache, &d);
        assert_eq!(dh.rows(), 3);
        assert_eq!(dw.rows(), 2);
        assert_eq!(db.at(0, 0), 0.0);
        // dW = Xᵀ d = [1*1 + 3*0 + 5*(-1); 2*1 + 4*0 + 6*(-1)] = [-4, -4]
        assert_eq!(dw.at(0, 0), -4.0);
        assert_eq!(dw.at(1, 0), -4.0);
    }

    #[test]
    fn relu_gates_backward_flow() {
        // With a bias pushing all pre-activations negative, gradients die.
        let g = tiny_graph();
        let h = Matrix::from_fn(4, 2, |_, _| 0.1);
        let mut layer = SageLayer::new(2, 2, 5);
        layer.b = Matrix::from_vec(1, 2, vec![-100.0, -100.0]);
        let (out, cache) = layer.forward(&g, &h);
        assert!(out.data().iter().all(|&v| v == 0.0));
        let d_out = Matrix::from_fn(4, 2, |_, _| 1.0);
        let (dh, dw, db) = layer.backward(&g, &cache, &d_out);
        assert!(dh.data().iter().all(|&v| v == 0.0));
        assert!(dw.data().iter().all(|&v| v == 0.0));
        assert!(db.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn forward_into_reuses_buffers_across_calls() {
        let g = tiny_graph();
        let h = Matrix::from_fn(4, 3, |r, c| (r + c) as f32 * 0.2);
        let layer = SageLayer::new(3, 2, 8);
        let mut cache = SageCache::empty();
        layer.forward_into(&g, &h, &mut cache, KernelPolicy::default());
        let first = cache.out.clone();
        layer.forward_into(&g, &h, &mut cache, KernelPolicy::default());
        assert_eq!(first.data(), cache.out.data(), "repeat call must be identical");
    }
}
