//! CSR node graphs for neighborhood aggregation.
//!
//! [`NodeGraph`] stores the neighborhood structure a GNN aggregates over.
//! Circuit timing graphs are directed, but GraphSAGE's neighborhoods are
//! conventionally undirected; [`NeighborMode`] makes the choice explicit and
//! ablatable.

use crate::matrix::Matrix;

/// Which neighbors a node aggregates from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NeighborMode {
    /// Union of fan-in and fan-out (the usual GraphSAGE setting).
    #[default]
    Undirected,
    /// Fan-in only (mirrors forward timing propagation).
    In,
    /// Fan-out only (mirrors required-time propagation).
    Out,
}

/// An immutable CSR adjacency used for mean aggregation.
///
/// Besides the forward CSR, construction precomputes the *transpose* CSR
/// (`t_offsets`/`t_sources`: for each node, the list of nodes that aggregate
/// from it, in the exact order the sequential adjoint scatter would visit
/// them) plus the `1/|N(i)|` and `1/√(|N(i)|+1)` scalings. This lets the
/// kernel layer run the aggregation adjoint as a race-free row-parallel
/// gather that is bit-identical to the scatter reference.
#[derive(Debug, Clone)]
pub struct NodeGraph {
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
    /// Transpose CSR offsets (who aggregates *from* node `j`).
    t_offsets: Vec<u32>,
    /// Transpose CSR sources, per destination in ascending `(source,
    /// position)` order — the adjoint scatter's addition order.
    t_sources: Vec<u32>,
    /// `1/|N(i)|` (0 for isolated nodes).
    inv_deg: Vec<f32>,
    /// `1/√(|N(i)|+1)` — the GCN symmetric normalisation.
    inv_sqrt_deg: Vec<f32>,
    nodes: usize,
}

impl NodeGraph {
    /// Builds the graph from directed edges `(from, to)` over `nodes`
    /// vertices, collecting neighbors per `mode`. Duplicate edges are kept
    /// (weighting parallel arcs slightly higher, which is harmless for mean
    /// aggregation).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= nodes`.
    #[must_use]
    pub fn from_edges(nodes: usize, edges: &[(u32, u32)], mode: NeighborMode) -> Self {
        let mut deg = vec![0u32; nodes];
        let mut push_count = |n: u32| {
            assert!((n as usize) < nodes, "edge endpoint out of range");
            deg[n as usize] += 1;
        };
        for &(f, t) in edges {
            match mode {
                NeighborMode::Undirected => {
                    push_count(f);
                    push_count(t);
                }
                NeighborMode::In => push_count(t),
                NeighborMode::Out => push_count(f),
            }
        }
        let mut offsets = vec![0u32; nodes + 1];
        for i in 0..nodes {
            offsets[i + 1] = offsets[i] + deg[i];
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0u32; offsets[nodes] as usize];
        let mut put = |at: u32, v: u32, cursor: &mut Vec<u32>| {
            neighbors[cursor[at as usize] as usize] = v;
            cursor[at as usize] += 1;
        };
        for &(f, t) in edges {
            match mode {
                NeighborMode::Undirected => {
                    put(f, t, &mut cursor);
                    put(t, f, &mut cursor);
                }
                NeighborMode::In => put(t, f, &mut cursor),
                NeighborMode::Out => put(f, t, &mut cursor),
            }
        }
        // Transpose CSR via a stable counting sort: visiting sources in
        // ascending order (and their adjacency positions in ascending order)
        // makes each destination's source list reproduce the sequential
        // adjoint scatter's exact addition order.
        let mut t_deg = vec![0u32; nodes];
        for &j in &neighbors {
            t_deg[j as usize] += 1;
        }
        let mut t_offsets = vec![0u32; nodes + 1];
        for i in 0..nodes {
            t_offsets[i + 1] = t_offsets[i] + t_deg[i];
        }
        let mut t_cursor = t_offsets.clone();
        let mut t_sources = vec![0u32; neighbors.len()];
        for i in 0..nodes {
            for &j in &neighbors[offsets[i] as usize..offsets[i + 1] as usize] {
                t_sources[t_cursor[j as usize] as usize] = i as u32;
                t_cursor[j as usize] += 1;
            }
        }
        let inv_deg = (0..nodes)
            .map(|i| {
                let len = (offsets[i + 1] - offsets[i]) as usize;
                if len == 0 {
                    0.0
                } else {
                    1.0 / len as f32
                }
            })
            .collect();
        let inv_sqrt_deg = (0..nodes)
            .map(|i| {
                let len = (offsets[i + 1] - offsets[i]) as usize;
                1.0 / ((len + 1) as f32).sqrt()
            })
            .collect();
        NodeGraph { offsets, neighbors, t_offsets, t_sources, inv_deg, inv_sqrt_deg, nodes }
    }

    /// Number of nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Total stored neighbor entries.
    #[must_use]
    pub fn neighbor_entries(&self) -> usize {
        self.neighbors.len()
    }

    /// Neighbors of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    #[inline]
    #[must_use]
    pub fn neighbors(&self, n: usize) -> &[u32] {
        &self.neighbors[self.offsets[n] as usize..self.offsets[n + 1] as usize]
    }

    /// Sources that aggregate *from* node `j` (transpose CSR row), in the
    /// adjoint scatter's addition order.
    #[inline]
    pub(crate) fn t_sources(&self, j: usize) -> &[u32] {
        &self.t_sources[self.t_offsets[j] as usize..self.t_offsets[j + 1] as usize]
    }

    /// Precomputed `1/|N(i)|` per node (0 for isolated nodes).
    #[inline]
    pub(crate) fn inv_deg(&self) -> &[f32] {
        &self.inv_deg
    }

    /// Precomputed `1/√(|N(i)|+1)` per node.
    #[inline]
    pub(crate) fn inv_sqrt_deg(&self) -> &[f32] {
        &self.inv_sqrt_deg
    }

    /// Mean-aggregates node features: `out[i] = mean(features[j] for j in
    /// N(i))`, zero for isolated nodes.
    ///
    /// # Panics
    ///
    /// Panics if `features.rows() != self.nodes()`.
    #[must_use]
    pub fn mean_aggregate(&self, features: &Matrix) -> Matrix {
        assert_eq!(features.rows(), self.nodes);
        let cols = features.cols();
        let mut out = Matrix::zeros(self.nodes, cols);
        crate::kernels::mean_aggregate_into(
            self,
            features.data(),
            cols,
            out.data_mut(),
            crate::kernels::KernelPolicy::default(),
        );
        out
    }

    /// Transpose of the mean-aggregation operator applied to gradients:
    /// `out[j] += grad[i] / |N(i)|` for every `j ∈ N(i)`. This is the exact
    /// adjoint used in backprop.
    ///
    /// # Panics
    ///
    /// Panics if `grad.rows() != self.nodes()`.
    #[must_use]
    pub fn mean_aggregate_adjoint(&self, grad: &Matrix) -> Matrix {
        assert_eq!(grad.rows(), self.nodes);
        let cols = grad.cols();
        let mut out = Matrix::zeros(self.nodes, cols);
        crate::kernels::mean_aggregate_adjoint_into(
            self,
            grad.data(),
            cols,
            out.data_mut(),
            crate::kernels::KernelPolicy::default(),
        );
        out
    }

    /// Symmetric-normalised propagation `D^{-1/2}(A+I)D^{-1/2} · features`
    /// used by GCN layers (self-loops included).
    ///
    /// # Panics
    ///
    /// Panics if `features.rows() != self.nodes()`.
    #[must_use]
    pub fn gcn_propagate(&self, features: &Matrix) -> Matrix {
        assert_eq!(features.rows(), self.nodes);
        let cols = features.cols();
        let mut out = Matrix::zeros(self.nodes, cols);
        crate::kernels::gcn_propagate_into(
            self,
            features.data(),
            cols,
            out.data_mut(),
            crate::kernels::KernelPolicy::default(),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3(mode: NeighborMode) -> NodeGraph {
        // 0 -> 1 -> 2
        NodeGraph::from_edges(3, &[(0, 1), (1, 2)], mode)
    }

    #[test]
    fn undirected_neighbors() {
        let g = path3(NeighborMode::Undirected);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[1]);
        assert_eq!(g.neighbor_entries(), 4);
    }

    #[test]
    fn directed_modes() {
        let g_in = path3(NeighborMode::In);
        assert_eq!(g_in.neighbors(0), &[] as &[u32]);
        assert_eq!(g_in.neighbors(1), &[0]);
        let g_out = path3(NeighborMode::Out);
        assert_eq!(g_out.neighbors(2), &[] as &[u32]);
        assert_eq!(g_out.neighbors(1), &[2]);
    }

    #[test]
    fn mean_aggregate_averages() {
        let g = path3(NeighborMode::Undirected);
        let x = Matrix::from_vec(3, 1, vec![1.0, 10.0, 100.0]);
        let agg = g.mean_aggregate(&x);
        assert_eq!(agg.at(0, 0), 10.0);
        assert!((agg.at(1, 0) - 50.5).abs() < 1e-6);
        assert_eq!(agg.at(2, 0), 10.0);
    }

    #[test]
    fn isolated_node_aggregates_zero() {
        let g = NodeGraph::from_edges(3, &[(0, 1)], NeighborMode::Undirected);
        let x = Matrix::from_vec(3, 1, vec![5.0, 5.0, 5.0]);
        let agg = g.mean_aggregate(&x);
        assert_eq!(agg.at(2, 0), 0.0);
    }

    #[test]
    fn adjoint_is_true_transpose() {
        // <A x, y> == <x, Aᵀ y> for random-ish vectors.
        let g = NodeGraph::from_edges(
            4,
            &[(0, 1), (1, 2), (2, 3), (0, 3)],
            NeighborMode::Undirected,
        );
        let x = Matrix::from_vec(4, 1, vec![1.0, -2.0, 3.0, 0.5]);
        let y = Matrix::from_vec(4, 1, vec![0.3, 1.7, -0.4, 2.0]);
        let ax = g.mean_aggregate(&x);
        let aty = g.mean_aggregate_adjoint(&y);
        let dot = |a: &Matrix, b: &Matrix| -> f32 {
            a.data().iter().zip(b.data()).map(|(p, q)| p * q).sum()
        };
        assert!((dot(&ax, &y) - dot(&x, &aty)).abs() < 1e-5);
    }

    #[test]
    fn gcn_propagate_is_symmetric_operator() {
        let g = NodeGraph::from_edges(3, &[(0, 1), (1, 2)], NeighborMode::Undirected);
        let x = Matrix::from_vec(3, 1, vec![1.0, 0.0, 0.0]);
        let y = Matrix::from_vec(3, 1, vec![0.0, 0.0, 1.0]);
        let dot = |a: &Matrix, b: &Matrix| -> f32 {
            a.data().iter().zip(b.data()).map(|(p, q)| p * q).sum()
        };
        let nx = g.gcn_propagate(&x);
        let ny = g.gcn_propagate(&y);
        assert!((dot(&nx, &y) - dot(&x, &ny)).abs() < 1e-6, "N must be symmetric");
        // propagation of a constant stays positive, finite, and bounded by
        // the maximum degree-normalised mass (√(d+1) worst case)
        let ones = Matrix::from_vec(3, 1, vec![1.0; 3]);
        let n1 = g.gcn_propagate(&ones);
        assert!(n1.data().iter().all(|&v| v > 0.0 && v.is_finite() && v < 2.0));
    }

    #[test]
    #[should_panic(expected = "edge endpoint out of range")]
    fn rejects_out_of_range_edges() {
        let _ = NodeGraph::from_edges(2, &[(0, 5)], NeighborMode::Undirected);
    }
}
