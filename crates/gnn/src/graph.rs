//! CSR node graphs for neighborhood aggregation.
//!
//! [`NodeGraph`] stores the neighborhood structure a GNN aggregates over.
//! Circuit timing graphs are directed, but GraphSAGE's neighborhoods are
//! conventionally undirected; [`NeighborMode`] makes the choice explicit and
//! ablatable.

use crate::matrix::Matrix;

/// Which neighbors a node aggregates from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NeighborMode {
    /// Union of fan-in and fan-out (the usual GraphSAGE setting).
    #[default]
    Undirected,
    /// Fan-in only (mirrors forward timing propagation).
    In,
    /// Fan-out only (mirrors required-time propagation).
    Out,
}

/// An immutable CSR adjacency used for mean aggregation.
#[derive(Debug, Clone)]
pub struct NodeGraph {
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
    nodes: usize,
}

impl NodeGraph {
    /// Builds the graph from directed edges `(from, to)` over `nodes`
    /// vertices, collecting neighbors per `mode`. Duplicate edges are kept
    /// (weighting parallel arcs slightly higher, which is harmless for mean
    /// aggregation).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= nodes`.
    #[must_use]
    pub fn from_edges(nodes: usize, edges: &[(u32, u32)], mode: NeighborMode) -> Self {
        let mut deg = vec![0u32; nodes];
        let mut push_count = |n: u32| {
            assert!((n as usize) < nodes, "edge endpoint out of range");
            deg[n as usize] += 1;
        };
        for &(f, t) in edges {
            match mode {
                NeighborMode::Undirected => {
                    push_count(f);
                    push_count(t);
                }
                NeighborMode::In => push_count(t),
                NeighborMode::Out => push_count(f),
            }
        }
        let mut offsets = vec![0u32; nodes + 1];
        for i in 0..nodes {
            offsets[i + 1] = offsets[i] + deg[i];
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0u32; offsets[nodes] as usize];
        let mut put = |at: u32, v: u32, cursor: &mut Vec<u32>| {
            neighbors[cursor[at as usize] as usize] = v;
            cursor[at as usize] += 1;
        };
        for &(f, t) in edges {
            match mode {
                NeighborMode::Undirected => {
                    put(f, t, &mut cursor);
                    put(t, f, &mut cursor);
                }
                NeighborMode::In => put(t, f, &mut cursor),
                NeighborMode::Out => put(f, t, &mut cursor),
            }
        }
        NodeGraph { offsets, neighbors, nodes }
    }

    /// Number of nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Total stored neighbor entries.
    #[must_use]
    pub fn neighbor_entries(&self) -> usize {
        self.neighbors.len()
    }

    /// Neighbors of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    #[must_use]
    pub fn neighbors(&self, n: usize) -> &[u32] {
        &self.neighbors[self.offsets[n] as usize..self.offsets[n + 1] as usize]
    }

    /// Mean-aggregates node features: `out[i] = mean(features[j] for j in
    /// N(i))`, zero for isolated nodes.
    ///
    /// # Panics
    ///
    /// Panics if `features.rows() != self.nodes()`.
    #[must_use]
    pub fn mean_aggregate(&self, features: &Matrix) -> Matrix {
        assert_eq!(features.rows(), self.nodes);
        let cols = features.cols();
        let mut out = Matrix::zeros(self.nodes, cols);
        for i in 0..self.nodes {
            let nbrs = self.neighbors(i);
            if nbrs.is_empty() {
                continue;
            }
            let inv = 1.0 / nbrs.len() as f32;
            let row = out.row_mut(i);
            for &j in nbrs {
                for (o, &v) in row.iter_mut().zip(features.row(j as usize)) {
                    *o += v;
                }
            }
            for o in row.iter_mut() {
                *o *= inv;
            }
        }
        out
    }

    /// Transpose of the mean-aggregation operator applied to gradients:
    /// `out[j] += grad[i] / |N(i)|` for every `j ∈ N(i)`. This is the exact
    /// adjoint used in backprop.
    ///
    /// # Panics
    ///
    /// Panics if `grad.rows() != self.nodes()`.
    #[must_use]
    pub fn mean_aggregate_adjoint(&self, grad: &Matrix) -> Matrix {
        assert_eq!(grad.rows(), self.nodes);
        let cols = grad.cols();
        let mut out = Matrix::zeros(self.nodes, cols);
        for i in 0..self.nodes {
            let nbrs = self.neighbors(i);
            if nbrs.is_empty() {
                continue;
            }
            let inv = 1.0 / nbrs.len() as f32;
            for &j in nbrs {
                let src = grad.row(i);
                let dst = out.row_mut(j as usize);
                for (o, &v) in dst.iter_mut().zip(src) {
                    *o += v * inv;
                }
            }
        }
        out
    }

    /// Symmetric-normalised propagation `D^{-1/2}(A+I)D^{-1/2} · features`
    /// used by GCN layers (self-loops included).
    ///
    /// # Panics
    ///
    /// Panics if `features.rows() != self.nodes()`.
    #[must_use]
    pub fn gcn_propagate(&self, features: &Matrix) -> Matrix {
        assert_eq!(features.rows(), self.nodes);
        let cols = features.cols();
        let inv_sqrt: Vec<f32> = (0..self.nodes)
            .map(|i| 1.0 / ((self.neighbors(i).len() + 1) as f32).sqrt())
            .collect();
        let mut out = Matrix::zeros(self.nodes, cols);
        for i in 0..self.nodes {
            let di = inv_sqrt[i];
            // self loop
            {
                let src = features.row(i);
                let dst = out.row_mut(i);
                let w = di * di;
                for (o, &v) in dst.iter_mut().zip(src) {
                    *o += w * v;
                }
            }
            for &j in self.neighbors(i) {
                let w = di * inv_sqrt[j as usize];
                let src = features.row(j as usize);
                let dst = out.row_mut(i);
                for (o, &v) in dst.iter_mut().zip(src) {
                    *o += w * v;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3(mode: NeighborMode) -> NodeGraph {
        // 0 -> 1 -> 2
        NodeGraph::from_edges(3, &[(0, 1), (1, 2)], mode)
    }

    #[test]
    fn undirected_neighbors() {
        let g = path3(NeighborMode::Undirected);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[1]);
        assert_eq!(g.neighbor_entries(), 4);
    }

    #[test]
    fn directed_modes() {
        let g_in = path3(NeighborMode::In);
        assert_eq!(g_in.neighbors(0), &[] as &[u32]);
        assert_eq!(g_in.neighbors(1), &[0]);
        let g_out = path3(NeighborMode::Out);
        assert_eq!(g_out.neighbors(2), &[] as &[u32]);
        assert_eq!(g_out.neighbors(1), &[2]);
    }

    #[test]
    fn mean_aggregate_averages() {
        let g = path3(NeighborMode::Undirected);
        let x = Matrix::from_vec(3, 1, vec![1.0, 10.0, 100.0]);
        let agg = g.mean_aggregate(&x);
        assert_eq!(agg.at(0, 0), 10.0);
        assert!((agg.at(1, 0) - 50.5).abs() < 1e-6);
        assert_eq!(agg.at(2, 0), 10.0);
    }

    #[test]
    fn isolated_node_aggregates_zero() {
        let g = NodeGraph::from_edges(3, &[(0, 1)], NeighborMode::Undirected);
        let x = Matrix::from_vec(3, 1, vec![5.0, 5.0, 5.0]);
        let agg = g.mean_aggregate(&x);
        assert_eq!(agg.at(2, 0), 0.0);
    }

    #[test]
    fn adjoint_is_true_transpose() {
        // <A x, y> == <x, Aᵀ y> for random-ish vectors.
        let g = NodeGraph::from_edges(
            4,
            &[(0, 1), (1, 2), (2, 3), (0, 3)],
            NeighborMode::Undirected,
        );
        let x = Matrix::from_vec(4, 1, vec![1.0, -2.0, 3.0, 0.5]);
        let y = Matrix::from_vec(4, 1, vec![0.3, 1.7, -0.4, 2.0]);
        let ax = g.mean_aggregate(&x);
        let aty = g.mean_aggregate_adjoint(&y);
        let dot = |a: &Matrix, b: &Matrix| -> f32 {
            a.data().iter().zip(b.data()).map(|(p, q)| p * q).sum()
        };
        assert!((dot(&ax, &y) - dot(&x, &aty)).abs() < 1e-5);
    }

    #[test]
    fn gcn_propagate_is_symmetric_operator() {
        let g = NodeGraph::from_edges(3, &[(0, 1), (1, 2)], NeighborMode::Undirected);
        let x = Matrix::from_vec(3, 1, vec![1.0, 0.0, 0.0]);
        let y = Matrix::from_vec(3, 1, vec![0.0, 0.0, 1.0]);
        let dot = |a: &Matrix, b: &Matrix| -> f32 {
            a.data().iter().zip(b.data()).map(|(p, q)| p * q).sum()
        };
        let nx = g.gcn_propagate(&x);
        let ny = g.gcn_propagate(&y);
        assert!((dot(&nx, &y) - dot(&x, &ny)).abs() < 1e-6, "N must be symmetric");
        // propagation of a constant stays positive, finite, and bounded by
        // the maximum degree-normalised mass (√(d+1) worst case)
        let ones = Matrix::from_vec(3, 1, vec![1.0; 3]);
        let n1 = g.gcn_propagate(&ones);
        assert!(n1.data().iter().all(|&v| v > 0.0 && v.is_finite() && v < 2.0));
    }

    #[test]
    #[should_panic(expected = "edge endpoint out of range")]
    fn rejects_out_of_range_edges() {
        let _ = NodeGraph::from_edges(2, &[(0, 5)], NeighborMode::Undirected);
    }
}
