//! The full GNN model: stacked GraphSAGE (or GCN) layers plus a linear
//! scoring head, trained full-batch with Adam.
//!
//! The paper trains a pin classifier (label 1 ⇔ non-zero timing
//! sensitivity) on several small designs and runs inference on much larger
//! unseen designs; [`GnnModel::train`] therefore takes a *set* of
//! [`TrainSample`]s and performs one optimisation step per design per epoch.
//! §5.3's regression variant (predicting the TS value itself) is selected
//! with [`Task::Regression`].

use crate::graph::NodeGraph;
use crate::kernels::{self, Backend, KernelPolicy};
use crate::layers::{
    GcnCache, GcnLayer, LayerScratch, Linear, SageCache, SageLayer, SagePoolCache, SagePoolLayer,
};
use crate::loss::{auto_pos_weight, bce_with_logits_into, mse_into};
use crate::matrix::{sigmoid, Matrix};
use crate::optim::Adam;
use tmm_ckpt::{CkptError, StageStore};

/// Stage name under which [`GnnModel::train_resumable`] records epoch
/// checkpoints in its [`StageStore`].
pub const TRAIN_STAGE: &str = "train";

/// Epoch-checkpointing hook for [`GnnModel::train_resumable`]: where to
/// persist mid-training state and how often.
pub struct CkptHook<'a> {
    /// Destination store (an on-disk `tmm_ckpt::Session` in the CLI, an
    /// in-memory store in tests).
    pub store: &'a mut dyn StageStore,
    /// Save a checkpoint every this many epochs (`0` disables saving;
    /// resume from an existing checkpoint still works).
    pub every: usize,
}

impl std::fmt::Debug for CkptHook<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CkptHook").field("every", &self.every).finish()
    }
}

/// Which GNN engine backs the model (§5.1: "other existing GNN models such
/// as GCN … could also be embedded with our framework").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Engine {
    /// GraphSAGE with mean aggregation (the paper's main engine).
    #[default]
    GraphSage,
    /// GraphSAGE with learned max-pool aggregation (Hamilton et al. §3.3).
    GraphSagePool,
    /// Graph convolutional network (Kipf & Welling).
    Gcn,
}

/// Prediction task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Task {
    /// Binary classification: is the pin timing-variant?
    #[default]
    Classification,
    /// Regression on the timing-sensitivity value itself (§5.3).
    Regression,
}

/// Model hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelConfig {
    /// Hidden width of each GNN layer.
    pub hidden: usize,
    /// Number of stacked GNN layers (receptive-field hops).
    pub layers: usize,
    /// GNN engine.
    pub engine: Engine,
    /// Prediction task.
    pub task: Task,
    /// Weight-initialisation seed.
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig { hidden: 32, layers: 2, engine: Engine::GraphSage, task: Task::Classification, seed: 1 }
    }
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the sample set.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
    /// Positive-class weight; `None` derives it from the label imbalance.
    pub pos_weight: Option<f32>,
    /// Early stopping: abort when the held-out validation loss has not
    /// improved for this many epochs. `None` disables the hold-out split
    /// entirely (all nodes train).
    pub patience: Option<usize>,
    /// Fraction of trainable nodes held out for validation when `patience`
    /// is set (deterministic split keyed on node index).
    pub val_fraction: f32,
    /// Divergence recovery: how many times a run whose loss or weights go
    /// non-finite is restarted from the initial weights with a backed-off
    /// learning rate. `0` disables retries (the run still rolls back).
    pub max_retries: usize,
    /// Multiplicative learning-rate factor applied per divergence retry.
    pub lr_backoff: f32,
    /// Worker threads for the compute kernels (`0` = all available cores).
    /// Results are bit-identical at any thread count.
    pub threads: usize,
    /// Kernel backend; [`Backend::Naive`] retains the reference
    /// implementations for equivalence testing.
    pub backend: Backend,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 120,
            lr: 0.01,
            weight_decay: 1e-4,
            pos_weight: None,
            patience: None,
            val_fraction: 0.15,
            max_retries: 2,
            lr_backoff: 0.1,
            threads: 1,
            backend: Backend::Blocked,
        }
    }
}

/// One training design: its aggregation graph, node features and labels.
#[derive(Debug, Clone)]
pub struct TrainSample {
    /// Aggregation neighborhood structure.
    pub graph: NodeGraph,
    /// `n × f` node feature matrix.
    pub features: Matrix,
    /// Per-node labels (0/1 for classification, TS values for regression).
    pub labels: Vec<f32>,
    /// Optional training mask (`false` nodes contribute no loss).
    pub mask: Option<Vec<bool>>,
}

/// Loss trajectory of one training run.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Mean loss per epoch (averaged over samples).
    pub history: Vec<f32>,
    /// Loss of the final epoch.
    pub final_loss: f32,
    /// Mean held-out validation loss per epoch (empty without `patience`).
    pub val_history: Vec<f32>,
    /// Whether early stopping triggered before `epochs` elapsed.
    pub stopped_early: bool,
    /// Number of divergence-triggered restarts (learning-rate backoff).
    pub retries: usize,
    /// Whether the weights were rolled back to the best finite-loss
    /// checkpoint (or the initial weights) after unrecoverable divergence.
    pub rolled_back: bool,
    /// Whether training ultimately diverged. When `true` the model holds
    /// rolled-back weights and callers should treat it as unhealthy.
    pub diverged: bool,
}

enum LayerKind {
    Sage(SageLayer),
    SagePool(SagePoolLayer),
    Gcn(GcnLayer),
}

enum CacheKind {
    Sage(SageCache),
    SagePool(SagePoolCache),
    Gcn(GcnCache),
}

impl CacheKind {
    /// The cached post-activation layer output.
    fn out(&self) -> &Matrix {
        match self {
            CacheKind::Sage(c) => &c.out,
            CacheKind::SagePool(c) => &c.out,
            CacheKind::Gcn(c) => &c.out,
        }
    }
}

/// Reusable training/inference buffers for one [`GnnModel`].
///
/// Holds every intermediate the forward/backward passes and the
/// early-stopping checkpoint need, so that after the first epoch sizes the
/// buffers, steady-state epochs perform no heap allocation at all. Create
/// one per model with [`Workspace::new`] and thread it through repeated
/// training runs; buffers grow to the largest sample and stay there.
pub struct Workspace {
    caches: Vec<CacheKind>,
    scores: Matrix,
    d_scores: Matrix,
    dh_a: Matrix,
    dh_b: Matrix,
    grads: Vec<Matrix>,
    scratch: LayerScratch,
    best_weights: Vec<Matrix>,
    best_loss: f32,
    has_best: bool,
}

impl std::fmt::Debug for Workspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workspace")
            .field("layers", &self.caches.len())
            .field("grads", &self.grads.len())
            .field("has_best", &self.has_best)
            .finish()
    }
}

impl Workspace {
    /// Creates an (empty) workspace matching `model`'s architecture.
    #[must_use]
    pub fn new(model: &GnnModel) -> Self {
        let caches = model
            .layers
            .iter()
            .map(|l| match l {
                LayerKind::Sage(_) => CacheKind::Sage(SageCache::empty()),
                LayerKind::SagePool(_) => CacheKind::SagePool(SagePoolCache::empty()),
                LayerKind::Gcn(_) => CacheKind::Gcn(GcnCache::empty()),
            })
            .collect();
        let grads = (0..model.param_slots()).map(|_| Matrix::zeros(0, 0)).collect();
        Workspace {
            caches,
            scores: Matrix::zeros(0, 0),
            d_scores: Matrix::zeros(0, 0),
            dh_a: Matrix::zeros(0, 0),
            dh_b: Matrix::zeros(0, 0),
            grads,
            scratch: LayerScratch::new(),
            best_weights: Vec::new(),
            best_loss: f32::INFINITY,
            has_best: false,
        }
    }
}

/// A trained (or trainable) pin-scoring GNN.
pub struct GnnModel {
    config: ModelConfig,
    in_dim: usize,
    layers: Vec<LayerKind>,
    head: Linear,
}

impl std::fmt::Debug for GnnModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GnnModel")
            .field("config", &self.config)
            .field("in_dim", &self.in_dim)
            .field("params", &self.param_count())
            .finish()
    }
}

impl GnnModel {
    /// Creates a freshly initialised model for `in_dim` input features.
    #[must_use]
    pub fn new(in_dim: usize, config: ModelConfig) -> Self {
        let mut layers = Vec::with_capacity(config.layers);
        let mut dim = in_dim;
        for l in 0..config.layers {
            let seed = config.seed.wrapping_mul(0x9e37_79b9).wrapping_add(l as u64);
            match config.engine {
                Engine::GraphSage => {
                    layers.push(LayerKind::Sage(SageLayer::new(dim, config.hidden, seed)));
                }
                Engine::GraphSagePool => {
                    layers.push(LayerKind::SagePool(SagePoolLayer::new(dim, config.hidden, seed)));
                }
                Engine::Gcn => {
                    layers.push(LayerKind::Gcn(GcnLayer::new(dim, config.hidden, seed)));
                }
            }
            dim = config.hidden;
        }
        let head = Linear::new(dim, config.seed.wrapping_add(0xbeef));
        GnnModel { config, in_dim, layers, head }
    }

    /// Input feature dimension the model expects.
    #[must_use]
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Model configuration.
    #[must_use]
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Total trainable parameter count.
    #[must_use]
    pub fn param_count(&self) -> usize {
        let layer_params: usize = self
            .layers
            .iter()
            .map(|l| match l {
                LayerKind::Sage(s) => s.w.rows() * s.w.cols() + s.b.cols(),
                LayerKind::SagePool(s) => {
                    s.w.rows() * s.w.cols()
                        + s.b.cols()
                        + s.w_pool.rows() * s.w_pool.cols()
                        + s.b_pool.cols()
                }
                LayerKind::Gcn(g) => g.w.rows() * g.w.cols() + g.b.cols(),
            })
            .sum();
        layer_params + self.head.w.rows() + 1
    }

    /// Number of parameter slots in the canonical order
    /// (layer₀ params …, head.W, head.b).
    fn param_slots(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                LayerKind::SagePool(_) => 4,
                _ => 2,
            })
            .sum::<usize>()
            + 2
    }

    /// Allocation-free forward pass: layer outputs land in `caches`, raw
    /// per-node scores in `scores` (`n × 1`).
    fn forward_ws(
        &self,
        graph: &NodeGraph,
        features: &Matrix,
        caches: &mut [CacheKind],
        scores: &mut Matrix,
        pol: KernelPolicy,
    ) {
        assert_eq!(caches.len(), self.layers.len(), "workspace/model mismatch");
        for (li, layer) in self.layers.iter().enumerate() {
            let (done, rest) = caches.split_at_mut(li);
            let h: &Matrix = if li == 0 { features } else { done[li - 1].out() };
            match (layer, &mut rest[0]) {
                (LayerKind::Sage(s), CacheKind::Sage(c)) => s.forward_into(graph, h, c, pol),
                (LayerKind::SagePool(s), CacheKind::SagePool(c)) => {
                    s.forward_into(graph, h, c, pol);
                }
                (LayerKind::Gcn(g), CacheKind::Gcn(c)) => g.forward_into(graph, h, c, pol),
                _ => unreachable!("cache kind always matches layer kind"),
            }
        }
        let h_final: &Matrix =
            if self.layers.is_empty() { features } else { caches[self.layers.len() - 1].out() };
        let n = h_final.rows();
        scores.resize_to(n, 1);
        kernels::gemm(
            h_final.data(),
            self.head.w.data(),
            scores.data_mut(),
            n,
            self.head.w.rows(),
            1,
            pol,
        );
        let b0 = self.head.b.at(0, 0);
        for v in scores.data_mut() {
            *v += b0;
        }
    }

    /// Per-node predictions: probabilities for classification, values for
    /// regression.
    ///
    /// # Panics
    ///
    /// Panics if `features.cols() != self.in_dim()` or the graph size does
    /// not match the feature rows.
    #[must_use]
    pub fn predict(&self, graph: &NodeGraph, features: &Matrix) -> Vec<f32> {
        self.predict_par(graph, features, 1)
    }

    /// [`GnnModel::predict`] with an explicit worker-thread count. Results
    /// are bit-identical at any thread count (`0` = all available cores).
    ///
    /// # Panics
    ///
    /// Panics if `features.cols() != self.in_dim()` or the graph size does
    /// not match the feature rows.
    #[must_use]
    pub fn predict_par(&self, graph: &NodeGraph, features: &Matrix, threads: usize) -> Vec<f32> {
        assert_eq!(features.cols(), self.in_dim, "feature dimension mismatch");
        let mut ws = Workspace::new(self);
        let pol = KernelPolicy::with_threads(threads);
        self.forward_ws(graph, features, &mut ws.caches, &mut ws.scores, pol);
        match self.config.task {
            Task::Classification => ws.scores.data().iter().map(|&z| sigmoid(z)).collect(),
            Task::Regression => ws.scores.data().to_vec(),
        }
    }

    /// Allocation-free backward pass writing gradients into `grads` in the
    /// canonical parameter order (layer₀ params …, head.W, head.b).
    #[allow(clippy::too_many_arguments)]
    fn backward_ws(
        &self,
        graph: &NodeGraph,
        features: &Matrix,
        caches: &[CacheKind],
        d_scores: &Matrix,
        dh_a: &mut Matrix,
        dh_b: &mut Matrix,
        grads: &mut [Matrix],
        scratch: &mut LayerScratch,
        pol: KernelPolicy,
    ) {
        let slots = grads.len();
        let hd = self.head.w.rows();
        let n = d_scores.rows();
        let h_final: &Matrix =
            if self.layers.is_empty() { features } else { caches[self.layers.len() - 1].out() };
        {
            let (_, head_grads) = grads.split_at_mut(slots - 2);
            let [dw_head, db_head] = head_grads else {
                unreachable!("head always has two parameter slots")
            };
            dw_head.resize_to(hd, 1);
            kernels::gemm_tn(
                h_final.data(),
                d_scores.data(),
                dw_head.data_mut(),
                n,
                hd,
                1,
                hd,
                &mut scratch.red,
                pol,
            );
            db_head.resize_to(1, 1);
            kernels::col_sums(d_scores.data(), 1, db_head.data_mut());
        }
        dh_a.resize_to(n, hd);
        kernels::gemm_nt(d_scores.data(), self.head.w.data(), dh_a.data_mut(), n, 1, hd, pol);
        let mut d_out: &mut Matrix = dh_a;
        let mut dh: &mut Matrix = dh_b;
        let mut base = slots - 2;
        for (layer, cache) in self.layers.iter().zip(caches).rev() {
            let cnt = match layer {
                LayerKind::SagePool(_) => 4,
                _ => 2,
            };
            base -= cnt;
            let lg = &mut grads[base..base + cnt];
            match (layer, cache) {
                (LayerKind::Sage(s), CacheKind::Sage(c)) => {
                    let [dw, db] = lg else { unreachable!("sage has two slots") };
                    s.backward_into(graph, c, d_out, dh, dw, db, scratch, pol);
                }
                (LayerKind::SagePool(s), CacheKind::SagePool(c)) => {
                    let [dw_pool, db_pool, dw, db] = lg else {
                        unreachable!("pool has four slots")
                    };
                    s.backward_into(graph, c, d_out, dh, dw_pool, db_pool, dw, db, scratch, pol);
                }
                (LayerKind::Gcn(g), CacheKind::Gcn(c)) => {
                    let [dw, db] = lg else { unreachable!("gcn has two slots") };
                    g.backward_into(graph, c, d_out, dh, dw, db, scratch, pol);
                }
                _ => unreachable!("cache kind always matches layer kind"),
            }
            std::mem::swap(&mut d_out, &mut dh);
        }
    }

    /// Visits every parameter in the canonical order without allocating.
    fn for_each_param<F: FnMut(usize, &Matrix)>(&self, mut f: F) {
        let mut i = 0usize;
        for layer in &self.layers {
            match layer {
                LayerKind::Sage(s) => {
                    f(i, &s.w);
                    f(i + 1, &s.b);
                    i += 2;
                }
                LayerKind::SagePool(s) => {
                    f(i, &s.w_pool);
                    f(i + 1, &s.b_pool);
                    f(i + 2, &s.w);
                    f(i + 3, &s.b);
                    i += 4;
                }
                LayerKind::Gcn(g) => {
                    f(i, &g.w);
                    f(i + 1, &g.b);
                    i += 2;
                }
            }
        }
        f(i, &self.head.w);
        f(i + 1, &self.head.b);
    }

    /// Mutable counterpart of [`Self::for_each_param`], same order.
    fn for_each_param_mut<F: FnMut(usize, &mut Matrix)>(&mut self, mut f: F) {
        let mut i = 0usize;
        for layer in &mut self.layers {
            match layer {
                LayerKind::Sage(s) => {
                    f(i, &mut s.w);
                    f(i + 1, &mut s.b);
                    i += 2;
                }
                LayerKind::SagePool(s) => {
                    f(i, &mut s.w_pool);
                    f(i + 1, &mut s.b_pool);
                    f(i + 2, &mut s.w);
                    f(i + 3, &mut s.b);
                    i += 4;
                }
                LayerKind::Gcn(g) => {
                    f(i, &mut g.w);
                    f(i + 1, &mut g.b);
                    i += 2;
                }
            }
        }
        f(i, &mut self.head.w);
        f(i + 1, &mut self.head.b);
    }

    #[cfg(test)]
    fn params(&self) -> Vec<&Matrix> {
        let mut v: Vec<&Matrix> = Vec::with_capacity(self.param_slots());
        for layer in &self.layers {
            match layer {
                LayerKind::Sage(s) => {
                    v.push(&s.w);
                    v.push(&s.b);
                }
                LayerKind::SagePool(s) => {
                    v.push(&s.w_pool);
                    v.push(&s.b_pool);
                    v.push(&s.w);
                    v.push(&s.b);
                }
                LayerKind::Gcn(g) => {
                    v.push(&g.w);
                    v.push(&g.b);
                }
            }
        }
        v.push(&self.head.w);
        v.push(&self.head.b);
        v
    }

    /// `true` when every weight is finite. A model that fails this check
    /// produces garbage scores and must not be used for prediction.
    #[must_use]
    pub fn weights_finite(&self) -> bool {
        let mut ok = true;
        self.for_each_param(|_, m| {
            if ok && !m.data().iter().all(|v| v.is_finite()) {
                ok = false;
            }
        });
        ok
    }

    /// Clones all parameter matrices in the canonical order.
    fn snapshot(&self) -> Vec<Matrix> {
        let mut v = Vec::with_capacity(self.param_slots());
        self.for_each_param(|_, m| v.push(m.clone()));
        v
    }

    /// Copies all parameters into `buf` without allocating once `buf` has
    /// been filled by a previous call (clones on first use).
    fn snapshot_into(&self, buf: &mut Vec<Matrix>) {
        if buf.is_empty() {
            self.for_each_param(|_, m| buf.push(m.clone()));
        } else {
            assert_eq!(buf.len(), self.param_slots(), "snapshot shape mismatch");
            self.for_each_param(|idx, m| buf[idx].copy_from(m));
        }
    }

    /// Restores parameters captured by [`Self::snapshot`] or
    /// [`Self::snapshot_into`].
    fn restore(&mut self, snap: &[Matrix]) {
        let mut count = 0usize;
        self.for_each_param_mut(|idx, p| {
            p.copy_from(&snap[idx]);
            count = count.max(idx + 1);
        });
        assert_eq!(count, snap.len(), "snapshot shape mismatch");
    }

    /// Trains the model full-batch over `samples`, one Adam step per sample
    /// per epoch.
    ///
    /// # Panics
    ///
    /// Panics if any sample's feature dimension differs from the model's.
    pub fn train(&mut self, samples: &[TrainSample], cfg: &TrainConfig) -> TrainReport {
        match self.train_resumable(samples, cfg, None) {
            Ok(report) => report,
            Err(e) => unreachable!("training without a checkpoint store cannot fail: {e}"),
        }
    }

    /// [`GnnModel::train`] with crash-safe epoch checkpointing: when a
    /// `hook` is supplied, full optimiser state (weights, Adam moments,
    /// best-epoch snapshot, early-stopping counters, loss history) is
    /// persisted every `hook.every` epochs under the [`TRAIN_STAGE`]
    /// stage, and an existing checkpoint in the store is loaded so
    /// training continues from it. A resumed run is **bit-identical** to
    /// one that was never interrupted — including divergence retries,
    /// since the checkpoint carries the retry count and backed-off
    /// learning rate, and a retry restarts from the seed-deterministic
    /// initial weights.
    ///
    /// # Errors
    ///
    /// [`CkptError`] when a checkpoint fails to persist, load, or parse
    /// (never with `hook = None` — the hookless path is infallible).
    ///
    /// # Panics
    ///
    /// Panics if any sample's feature dimension differs from the model's.
    pub fn train_resumable(
        &mut self,
        samples: &[TrainSample],
        cfg: &TrainConfig,
        mut hook: Option<&mut CkptHook<'_>>,
    ) -> Result<TrainReport, CkptError> {
        assert!(!samples.is_empty(), "training requires at least one sample");
        for s in samples {
            assert_eq!(s.features.cols(), self.in_dim, "feature dimension mismatch");
            assert_eq!(s.features.rows(), s.graph.nodes(), "graph/feature size mismatch");
            assert_eq!(s.labels.len(), s.graph.nodes(), "label count mismatch");
        }
        let pos_weight = cfg.pos_weight.unwrap_or_else(|| {
            // Average the auto weight over samples.
            let ws: f32 = samples
                .iter()
                .map(|s| auto_pos_weight(&s.labels, s.mask.as_deref()))
                .sum::<f32>()
                / samples.len() as f32;
            ws
        });
        // Optional deterministic hold-out split for early stopping: node i
        // validates when a cheap integer hash of (i, seed) lands below the
        // validation fraction.
        let splits: Option<Vec<(Vec<bool>, Vec<bool>)>> = cfg.patience.map(|_| {
            samples
                .iter()
                .map(|s| {
                    let n = s.graph.nodes();
                    let mut train_mask = vec![false; n];
                    let mut val_mask = vec![false; n];
                    for i in 0..n {
                        let trainable = s.mask.as_ref().is_none_or(|m| m[i]);
                        if !trainable {
                            continue;
                        }
                        let h = (i as u64)
                            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                            .wrapping_add(self.config.seed)
                            .rotate_left(17);
                        let frac = (h % 10_000) as f32 / 10_000.0;
                        if frac < cfg.val_fraction {
                            val_mask[i] = true;
                        } else {
                            train_mask[i] = true;
                        }
                    }
                    (train_mask, val_mask)
                })
                .collect()
        });

        // Divergence recovery: run attempts with a progressively backed-off
        // learning rate. Each attempt restarts from the initial weights; an
        // attempt whose loss or weights go non-finite is abandoned. When
        // every retry is exhausted the weights roll back to the best
        // finite-loss checkpoint seen (or the initial weights) and the
        // report flags the run as diverged so callers can quarantine it.
        let mut span = tmm_obs::span("gnn_train", "gnn");
        let mut ws = Workspace::new(self);
        // The initial snapshot MUST come from the fresh seed-deterministic
        // weights, before any checkpoint restore: a divergence retry after
        // resume restarts from the same place an uninterrupted run would.
        let initial = self.snapshot();
        let mut lr = cfg.lr;
        let mut retries = 0usize;
        let mut next_seq: u64 = 0;
        let mut resume: Option<TrainCheckpoint> = None;
        if let Some(h) = hook.as_mut() {
            if let Some(seq) = h.store.latest(TRAIN_STAGE) {
                if let Some(payload) = h.store.load(TRAIN_STAGE, seq)? {
                    let ck = TrainCheckpoint::from_text(&payload).map_err(|e| {
                        CkptError::Corrupt(format!("train checkpoint {TRAIN_STAGE}/{seq}: {e}"))
                    })?;
                    lr = ck.lr;
                    retries = ck.retries;
                    next_seq = seq + 1;
                    tmm_obs::counter_add("tmm_gnn_ckpt_resumes_total", &[], 1);
                    tmm_obs::info(
                        &[
                            ("stage", "training"),
                            ("epoch", &ck.epoch.to_string()),
                            ("retries", &retries.to_string()),
                        ],
                        "resuming training from epoch checkpoint",
                    );
                    resume = Some(ck);
                }
            }
        }
        loop {
            match self.train_attempt(
                samples,
                cfg,
                pos_weight,
                splits.as_deref(),
                lr,
                retries,
                resume.take(),
                hook.as_deref_mut(),
                &mut next_seq,
                &mut ws,
            )? {
                Attempt::Completed(mut report) => {
                    report.retries = retries;
                    span.arg_f64("epochs", report.history.len() as f64);
                    span.arg_f64("retries", retries as f64);
                    return Ok(report);
                }
                Attempt::Diverged(mut report) => {
                    if retries < cfg.max_retries {
                        retries += 1;
                        lr *= cfg.lr_backoff;
                        tmm_obs::counter_add("tmm_gnn_retries_total", &[], 1);
                        tmm_obs::warn(
                            &[
                                ("stage", "training"),
                                ("retry", &retries.to_string()),
                                ("lr", &format!("{lr:.3e}")),
                            ],
                            "training attempt diverged; restarting with backed-off learning rate",
                        );
                        self.restore(&initial);
                        continue;
                    }
                    report.retries = retries;
                    report.diverged = true;
                    report.rolled_back = true;
                    tmm_obs::counter_add("tmm_gnn_diverged_total", &[], 1);
                    tmm_obs::warn(
                        &[("stage", "training"), ("retries", &retries.to_string())],
                        "training diverged after all retries; rolled back to best checkpoint",
                    );
                    if ws.has_best {
                        self.restore(&ws.best_weights);
                        report.final_loss = ws.best_loss;
                    } else {
                        self.restore(&initial);
                    }
                    span.arg("outcome", "diverged");
                    return Ok(report);
                }
            }
        }
    }

    /// One optimization run at a fixed learning rate; aborts on the first
    /// epoch whose mean loss or resulting weights are non-finite. The best
    /// finite-loss checkpoint is copied into the workspace's preallocated
    /// snapshot buffers; apart from the first epoch sizing the workspace,
    /// steady-state epochs perform no heap allocation.
    #[allow(clippy::too_many_arguments)] // internal seam between train_resumable and the epoch loop
    fn train_attempt(
        &mut self,
        samples: &[TrainSample],
        cfg: &TrainConfig,
        pos_weight: f32,
        splits: Option<&[(Vec<bool>, Vec<bool>)]>,
        lr: f32,
        retries: usize,
        resume: Option<TrainCheckpoint>,
        mut hook: Option<&mut CkptHook<'_>>,
        next_seq: &mut u64,
        ws: &mut Workspace,
    ) -> Result<Attempt, CkptError> {
        let pol = KernelPolicy { threads: cfg.threads, backend: cfg.backend };
        let mut opt = Adam::new(lr, cfg.weight_decay);
        let mut history = Vec::with_capacity(cfg.epochs);
        let mut val_history =
            Vec::with_capacity(if cfg.patience.is_some() { cfg.epochs } else { 0 });
        let mut best_val = f32::INFINITY;
        let mut since_best = 0usize;
        let mut stopped_early = false;
        ws.has_best = false;
        ws.best_loss = f32::INFINITY;
        let mut start_epoch = 0usize;
        if let Some(ck) = resume {
            if ck.params.len() != self.param_slots() {
                return Err(CkptError::Corrupt(format!(
                    "train checkpoint has {} parameter matrices, model has {}",
                    ck.params.len(),
                    self.param_slots()
                )));
            }
            self.restore(&ck.params);
            opt.restore_state(ck.opt_t, ck.opt_m, ck.opt_v);
            if ck.has_best {
                ws.best_weights = ck.best_weights;
                ws.best_loss = ck.best_loss;
                ws.has_best = true;
            }
            best_val = ck.best_val;
            since_best = ck.since_best;
            history = ck.history;
            val_history = ck.val_history;
            start_epoch = ck.epoch;
        }
        // Epoch-granular instrumentation: while metrics are disabled this
        // is one relaxed load per epoch — no clocks, no allocation — which
        // keeps the steady-state zero-allocation guarantee intact.
        let obs_rows: usize = samples.iter().map(|s| s.features.rows()).sum();
        // Live heartbeat: one unit per epoch (inert unless --status-addr).
        let heartbeat = tmm_obs::progress_start("gnn_train", "", cfg.epochs as u64);
        heartbeat.set_done(start_epoch as u64);
        for epoch in start_epoch..cfg.epochs {
            let epoch_start =
                if tmm_obs::metrics_enabled() { Some(std::time::Instant::now()) } else { None };
            let mut epoch_loss = 0.0f32;
            let mut epoch_val = 0.0f32;
            for (si, sample) in samples.iter().enumerate() {
                let train_mask: Option<&[bool]> = match splits {
                    Some(sp) => Some(&sp[si].0),
                    None => sample.mask.as_deref(),
                };
                let Workspace { caches, scores, d_scores, dh_a, dh_b, grads, scratch, .. } = ws;
                self.forward_ws(&sample.graph, &sample.features, caches, scores, pol);
                d_scores.resize_to(scores.rows(), 1);
                // Validation loss first: it shares the gradient buffer with
                // the training loss, whose gradient must survive until the
                // backward pass.
                if let Some(sp) = splits {
                    epoch_val += match self.config.task {
                        Task::Classification => bce_with_logits_into(
                            scores.data(),
                            &sample.labels,
                            Some(&sp[si].1),
                            pos_weight,
                            d_scores.data_mut(),
                        ),
                        Task::Regression => mse_into(
                            scores.data(),
                            &sample.labels,
                            Some(&sp[si].1),
                            d_scores.data_mut(),
                        ),
                    };
                }
                let loss = match self.config.task {
                    Task::Classification => bce_with_logits_into(
                        scores.data(),
                        &sample.labels,
                        train_mask,
                        pos_weight,
                        d_scores.data_mut(),
                    ),
                    Task::Regression => {
                        mse_into(scores.data(), &sample.labels, train_mask, d_scores.data_mut())
                    }
                };
                epoch_loss += loss;
                self.backward_ws(
                    &sample.graph,
                    &sample.features,
                    caches,
                    d_scores,
                    dh_a,
                    dh_b,
                    grads,
                    scratch,
                    pol,
                );
                opt.begin_step();
                self.for_each_param_mut(|idx, p| opt.update_param(idx, p, &grads[idx]));
            }
            let mean_loss = epoch_loss / samples.len() as f32;
            heartbeat.add(1);
            tmm_obs::rate_add("tmm_gnn_rows_trained", obs_rows as u64);
            if let Some(start) = epoch_start {
                let secs = start.elapsed().as_secs_f64();
                // Gradient norm of the last backward pass of the epoch;
                // computed only while metrics are on.
                let grad_sq: f64 = ws
                    .grads
                    .iter()
                    .map(|g| g.data().iter().map(|&v| f64::from(v) * f64::from(v)).sum::<f64>())
                    .sum();
                tmm_obs::counter_add("tmm_gnn_epochs_total", &[], 1);
                tmm_obs::gauge_set("tmm_gnn_epoch_loss", &[], f64::from(mean_loss));
                tmm_obs::gauge_set("tmm_gnn_grad_norm", &[], grad_sq.sqrt());
                if secs > 0.0 {
                    tmm_obs::gauge_set("tmm_gnn_rows_per_sec", &[], obs_rows as f64 / secs);
                }
            }
            history.push(mean_loss);
            if !mean_loss.is_finite() || !self.weights_finite() {
                let report = TrainReport {
                    history,
                    final_loss: f32::NAN,
                    val_history,
                    ..TrainReport::default()
                };
                return Ok(Attempt::Diverged(report));
            }
            if !ws.has_best || mean_loss < ws.best_loss {
                self.snapshot_into(&mut ws.best_weights);
                ws.best_loss = mean_loss;
                ws.has_best = true;
            }
            if let Some(patience) = cfg.patience {
                let val = epoch_val / samples.len() as f32;
                val_history.push(val);
                if val + 1e-6 < best_val {
                    best_val = val;
                    since_best = 0;
                } else {
                    since_best += 1;
                    if since_best >= patience {
                        stopped_early = true;
                        break;
                    }
                }
            }
            // Persist a resumable checkpoint on the epoch boundary. The
            // hookless path is one `Option` check per epoch — no clocks,
            // no allocation — preserving the zero-allocation guarantee.
            if let Some(h) = hook.as_mut() {
                if h.every > 0 && (epoch + 1) % h.every == 0 && epoch + 1 < cfg.epochs {
                    let (m, v) = opt.moments();
                    let ck = TrainCheckpoint {
                        epoch: epoch + 1,
                        retries,
                        lr,
                        params: self.snapshot(),
                        opt_t: opt.timestep(),
                        opt_m: m.to_vec(),
                        opt_v: v.to_vec(),
                        best_weights: if ws.has_best { ws.best_weights.clone() } else { Vec::new() },
                        best_loss: ws.best_loss,
                        has_best: ws.has_best,
                        best_val,
                        since_best,
                        history: history.clone(),
                        val_history: val_history.clone(),
                    };
                    h.store.save(TRAIN_STAGE, *next_seq, &ck.to_text())?;
                    *next_seq += 1;
                }
            }
        }
        // Early stopping is a legitimate completion; divergence above
        // returns without completing so the slot reads as interrupted.
        heartbeat.complete();
        let final_loss = history.last().copied().unwrap_or(0.0);
        Ok(Attempt::Completed(TrainReport {
            history,
            final_loss,
            val_history,
            stopped_early,
            ..TrainReport::default()
        }))
    }
}

/// Outcome of one fixed-learning-rate training attempt.
enum Attempt {
    /// All epochs ran with finite losses and weights.
    Completed(TrainReport),
    /// A non-finite loss or weight appeared; the workspace holds the
    /// weights and mean loss of the best finite epoch, when one existed.
    Diverged(TrainReport),
}

/// Error parsing a serialised model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModelError(String);

impl std::fmt::Display for ParseModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot parse gnn model: {}", self.0)
    }
}

impl std::error::Error for ParseModelError {}

/// Whitespace token cursor for the model text format.
struct Tokens<'a> {
    it: std::str::SplitWhitespace<'a>,
}

impl<'a> Tokens<'a> {
    fn next(&mut self) -> Result<&'a str, ParseModelError> {
        self.it.next().ok_or_else(|| ParseModelError("unexpected end of input".into()))
    }

    fn expect(&mut self, kw: &str) -> Result<(), ParseModelError> {
        let t = self.next()?;
        if t == kw {
            Ok(())
        } else {
            Err(ParseModelError(format!("expected `{kw}`, found `{t}`")))
        }
    }

    fn usize(&mut self) -> Result<usize, ParseModelError> {
        let t = self.next()?;
        t.parse().map_err(|_| ParseModelError(format!("bad integer `{t}`")))
    }

    fn u64(&mut self) -> Result<u64, ParseModelError> {
        let t = self.next()?;
        t.parse().map_err(|_| ParseModelError(format!("bad integer `{t}`")))
    }

    fn f32(&mut self) -> Result<f32, ParseModelError> {
        let t = self.next()?;
        t.parse().map_err(|_| ParseModelError(format!("bad float `{t}`")))
    }

    fn matrix(&mut self) -> Result<Matrix, ParseModelError> {
        let rows = self.usize()?;
        let cols = self.usize()?;
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            let t = self.next()?;
            data.push(t.parse::<f32>().map_err(|_| ParseModelError(format!("bad float `{t}`")))?);
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }
}

fn write_matrix(out: &mut String, m: &Matrix) {
    use std::fmt::Write as _;
    let _ = write!(out, "{} {}", m.rows(), m.cols());
    for v in m.data() {
        let _ = write!(out, " {v:e}");
    }
    let _ = writeln!(out);
}

/// Full mid-training state at one epoch boundary: everything
/// [`GnnModel::train_resumable`] needs so a resumed run is bit-identical
/// to an uninterrupted one. Serialised with the same `{v:e}` exact-f32
/// text grammar as the model itself (`gnn_ckpt v1`).
struct TrainCheckpoint {
    epoch: usize,
    retries: usize,
    lr: f32,
    params: Vec<Matrix>,
    opt_t: u64,
    opt_m: Vec<Matrix>,
    opt_v: Vec<Matrix>,
    best_weights: Vec<Matrix>,
    best_loss: f32,
    has_best: bool,
    best_val: f32,
    since_best: usize,
    history: Vec<f32>,
    val_history: Vec<f32>,
}

fn write_matrix_group(out: &mut String, key: &str, ms: &[Matrix]) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "{key} {}", ms.len());
    for m in ms {
        write_matrix(out, m);
    }
}

fn write_float_group(out: &mut String, key: &str, vs: &[f32]) {
    use std::fmt::Write as _;
    let _ = write!(out, "{key} {}", vs.len());
    for v in vs {
        let _ = write!(out, " {v:e}");
    }
    let _ = writeln!(out);
}

fn read_matrix_group(t: &mut Tokens<'_>, key: &str) -> Result<Vec<Matrix>, ParseModelError> {
    t.expect(key)?;
    let n = t.usize()?;
    (0..n).map(|_| t.matrix()).collect()
}

fn read_float_group(t: &mut Tokens<'_>, key: &str) -> Result<Vec<f32>, ParseModelError> {
    t.expect(key)?;
    let n = t.usize()?;
    (0..n).map(|_| t.f32()).collect()
}

impl TrainCheckpoint {
    fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(64 * 1024);
        let _ = writeln!(
            out,
            "gnn_ckpt v1 epoch {} retries {} lr {:e} opt_t {}",
            self.epoch, self.retries, self.lr, self.opt_t
        );
        write_matrix_group(&mut out, "params", &self.params);
        write_matrix_group(&mut out, "opt_m", &self.opt_m);
        write_matrix_group(&mut out, "opt_v", &self.opt_v);
        let _ = writeln!(
            out,
            "best {} loss {:e} val {:e} since {}",
            u8::from(self.has_best),
            self.best_loss,
            self.best_val,
            self.since_best
        );
        write_matrix_group(&mut out, "best_weights", &self.best_weights);
        write_float_group(&mut out, "history", &self.history);
        write_float_group(&mut out, "val_history", &self.val_history);
        out.push_str("end\n");
        out
    }

    fn from_text(src: &str) -> Result<TrainCheckpoint, ParseModelError> {
        let mut t = Tokens { it: src.split_whitespace() };
        t.expect("gnn_ckpt")?;
        t.expect("v1")?;
        t.expect("epoch")?;
        let epoch = t.usize()?;
        t.expect("retries")?;
        let retries = t.usize()?;
        t.expect("lr")?;
        let lr = t.f32()?;
        t.expect("opt_t")?;
        let opt_t = t.u64()?;
        let params = read_matrix_group(&mut t, "params")?;
        let opt_m = read_matrix_group(&mut t, "opt_m")?;
        let opt_v = read_matrix_group(&mut t, "opt_v")?;
        t.expect("best")?;
        let has_best = t.usize()? != 0;
        t.expect("loss")?;
        let best_loss = t.f32()?;
        t.expect("val")?;
        let best_val = t.f32()?;
        t.expect("since")?;
        let since_best = t.usize()?;
        let best_weights = read_matrix_group(&mut t, "best_weights")?;
        let history = read_float_group(&mut t, "history")?;
        let val_history = read_float_group(&mut t, "val_history")?;
        t.expect("end")?;
        if opt_m.len() != opt_v.len() {
            return Err(ParseModelError("optimiser moment counts disagree".into()));
        }
        if has_best && best_weights.len() != params.len() {
            return Err(ParseModelError("best-weight count disagrees with params".into()));
        }
        Ok(TrainCheckpoint {
            epoch,
            retries,
            lr,
            params,
            opt_t,
            opt_m,
            opt_v,
            best_weights,
            best_loss,
            has_best,
            best_val,
            since_best,
            history,
            val_history,
        })
    }
}

impl GnnModel {
    /// Serialises the trained model (architecture + weights) to text so it
    /// can be stored next to a design library and reloaded without
    /// retraining. `f32` values round-trip exactly.
    #[must_use]
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(64 * 1024);
        let engine = match self.config.engine {
            Engine::GraphSage => "sage",
            Engine::GraphSagePool => "pool",
            Engine::Gcn => "gcn",
        };
        let task = match self.config.task {
            Task::Classification => "classification",
            Task::Regression => "regression",
        };
        let _ = writeln!(
            out,
            "gnn_model v1 hidden {} layers {} engine {engine} task {task} seed {} in_dim {}",
            self.config.hidden, self.config.layers, self.config.seed, self.in_dim
        );
        for layer in &self.layers {
            match layer {
                LayerKind::Sage(s) => {
                    out.push_str("layer sage w ");
                    write_matrix(&mut out, &s.w);
                    out.push_str("b ");
                    write_matrix(&mut out, &s.b);
                }
                LayerKind::SagePool(s) => {
                    out.push_str("layer pool wp ");
                    write_matrix(&mut out, &s.w_pool);
                    out.push_str("bp ");
                    write_matrix(&mut out, &s.b_pool);
                    out.push_str("w ");
                    write_matrix(&mut out, &s.w);
                    out.push_str("b ");
                    write_matrix(&mut out, &s.b);
                }
                LayerKind::Gcn(g) => {
                    out.push_str("layer gcn w ");
                    write_matrix(&mut out, &g.w);
                    out.push_str("b ");
                    write_matrix(&mut out, &g.b);
                }
            }
        }
        out.push_str("head w ");
        write_matrix(&mut out, &self.head.w);
        out.push_str("b ");
        write_matrix(&mut out, &self.head.b);
        out.push_str("end\n");
        out
    }

    /// Reconstructs a model from [`GnnModel::to_text`] output.
    ///
    /// # Errors
    ///
    /// Returns [`ParseModelError`] on malformed input.
    pub fn from_text(src: &str) -> Result<GnnModel, ParseModelError> {
        let mut t = Tokens { it: src.split_whitespace() };
        t.expect("gnn_model")?;
        t.expect("v1")?;
        t.expect("hidden")?;
        let hidden = t.usize()?;
        t.expect("layers")?;
        let n_layers = t.usize()?;
        t.expect("engine")?;
        let engine = match t.next()? {
            "sage" => Engine::GraphSage,
            "pool" => Engine::GraphSagePool,
            "gcn" => Engine::Gcn,
            other => return Err(ParseModelError(format!("unknown engine `{other}`"))),
        };
        t.expect("task")?;
        let task = match t.next()? {
            "classification" => Task::Classification,
            "regression" => Task::Regression,
            other => return Err(ParseModelError(format!("unknown task `{other}`"))),
        };
        t.expect("seed")?;
        let seed = t.u64()?;
        t.expect("in_dim")?;
        let in_dim = t.usize()?;

        let mut layers = Vec::with_capacity(n_layers);
        for _ in 0..n_layers {
            t.expect("layer")?;
            match t.next()? {
                "sage" => {
                    t.expect("w")?;
                    let w = t.matrix()?;
                    t.expect("b")?;
                    let b = t.matrix()?;
                    layers.push(LayerKind::Sage(SageLayer { w, b }));
                }
                "pool" => {
                    t.expect("wp")?;
                    let w_pool = t.matrix()?;
                    t.expect("bp")?;
                    let b_pool = t.matrix()?;
                    t.expect("w")?;
                    let w = t.matrix()?;
                    t.expect("b")?;
                    let b = t.matrix()?;
                    layers.push(LayerKind::SagePool(SagePoolLayer { w_pool, b_pool, w, b }));
                }
                "gcn" => {
                    t.expect("w")?;
                    let w = t.matrix()?;
                    t.expect("b")?;
                    let b = t.matrix()?;
                    layers.push(LayerKind::Gcn(GcnLayer { w, b }));
                }
                other => return Err(ParseModelError(format!("unknown layer `{other}`"))),
            }
        }
        t.expect("head")?;
        t.expect("w")?;
        let w = t.matrix()?;
        t.expect("b")?;
        let b = t.matrix()?;
        t.expect("end")?;
        Ok(GnnModel {
            config: ModelConfig { hidden, layers: n_layers, engine, task, seed },
            in_dim,
            layers,
            head: Linear { w, b },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NeighborMode;
    use crate::metrics::classify_metrics;

    /// A toy task: nodes on a ring; label 1 iff feature 0 of the node or a
    /// neighbor exceeds 0.5 (requires 1-hop aggregation to solve).
    fn toy_sample(n: usize, seed: u64) -> TrainSample {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let edges: Vec<(u32, u32)> =
            (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        let graph = NodeGraph::from_edges(n, &edges, NeighborMode::Undirected);
        let feat: Vec<f32> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        let features = Matrix::from_fn(n, 2, |r, c| if c == 0 { feat[r] } else { 1.0 });
        let labels: Vec<f32> = (0..n)
            .map(|i| {
                let prev = (i + n - 1) % n;
                let next = (i + 1) % n;
                if feat[i] > 0.5 || feat[prev] > 0.5 || feat[next] > 0.5 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        TrainSample { graph, features, labels, mask: None }
    }

    #[test]
    fn absurd_lr_recovers_via_backoff() {
        // lr = 1e30 overflows the f32 weights on the very first Adam step
        // (the step magnitude is ≈ lr); with a strong backoff each retry
        // divides it back into sane territory.
        let train = toy_sample(80, 4);
        let mut model =
            GnnModel::new(2, ModelConfig { hidden: 8, layers: 1, ..Default::default() });
        let report = model.train(
            std::slice::from_ref(&train),
            &TrainConfig {
                epochs: 30,
                lr: 1e30,
                max_retries: 8,
                lr_backoff: 1e-8,
                ..Default::default()
            },
        );
        assert!(report.retries > 0, "expected at least one divergence retry");
        assert!(!report.diverged, "backoff should have recovered: {report:?}");
        assert!(model.weights_finite());
        assert!(report.final_loss.is_finite());
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        use tmm_ckpt::MemStore;
        let samples = vec![toy_sample(60, 7), toy_sample(40, 8)];
        let mcfg = ModelConfig { hidden: 8, layers: 2, ..Default::default() };
        let tcfg = TrainConfig { epochs: 24, patience: Some(50), ..Default::default() };

        // Uninterrupted reference run, checkpointing every 4 epochs.
        let mut full_store = MemStore::new();
        let mut full_model = GnnModel::new(2, mcfg);
        let full_report = full_model
            .train_resumable(
                &samples,
                &tcfg,
                Some(&mut CkptHook { store: &mut full_store, every: 4 }),
            )
            .unwrap();
        let saves = full_store.saves();
        assert!(saves >= 2, "expected several checkpoints, got {saves}");

        // Simulate a kill after each checkpoint prefix: resume from the
        // truncated store and demand bit-identical weights and history.
        for kept in 0..=saves {
            let mut store = full_store.truncated(kept);
            let mut model = GnnModel::new(2, mcfg);
            let report = model
                .train_resumable(
                    &samples,
                    &tcfg,
                    Some(&mut CkptHook { store: &mut store, every: 4 }),
                )
                .unwrap();
            assert_eq!(model.to_text(), full_model.to_text(), "weights differ at kept={kept}");
            assert_eq!(report.history, full_report.history, "history differs at kept={kept}");
            assert_eq!(report.val_history, full_report.val_history, "kept={kept}");
            assert_eq!(
                report.final_loss.to_bits(),
                full_report.final_loss.to_bits(),
                "final loss differs at kept={kept}"
            );
        }
    }

    #[test]
    fn checkpoint_resume_preserves_divergence_retries() {
        use tmm_ckpt::MemStore;
        let train = toy_sample(80, 4);
        let mcfg = ModelConfig { hidden: 8, layers: 1, ..Default::default() };
        let tcfg = TrainConfig {
            epochs: 30,
            lr: 1e30,
            max_retries: 8,
            lr_backoff: 1e-8,
            ..Default::default()
        };
        let mut full_store = MemStore::new();
        let mut full_model = GnnModel::new(2, mcfg);
        let full_report = full_model
            .train_resumable(
                std::slice::from_ref(&train),
                &tcfg,
                Some(&mut CkptHook { store: &mut full_store, every: 8 }),
            )
            .unwrap();
        assert!(full_report.retries > 0, "setup must trigger retries");
        let saves = full_store.saves();
        assert!(saves >= 1, "the recovered attempt must have checkpointed");

        // Resuming mid-recovered-attempt must restore the backed-off lr
        // and retry count, reproducing the uninterrupted run exactly.
        for kept in 1..=saves {
            let mut store = full_store.truncated(kept);
            let mut model = GnnModel::new(2, mcfg);
            let report = model
                .train_resumable(
                    std::slice::from_ref(&train),
                    &tcfg,
                    Some(&mut CkptHook { store: &mut store, every: 8 }),
                )
                .unwrap();
            assert_eq!(report.retries, full_report.retries, "kept={kept}");
            assert_eq!(model.to_text(), full_model.to_text(), "weights differ at kept={kept}");
            assert_eq!(
                report.final_loss.to_bits(),
                full_report.final_loss.to_bits(),
                "kept={kept}"
            );
        }
    }

    #[test]
    fn nan_features_roll_back_and_flag_divergence() {
        let mut train = toy_sample(80, 5);
        let n = train.features.rows();
        train.features = Matrix::from_fn(n, 2, |_, _| f32::NAN);
        let mut model =
            GnnModel::new(2, ModelConfig { hidden: 8, layers: 1, ..Default::default() });
        let before = model.snapshot();
        let report = model.train(
            std::slice::from_ref(&train),
            &TrainConfig { epochs: 10, max_retries: 2, ..Default::default() },
        );
        assert!(report.diverged, "NaN features cannot converge: {report:?}");
        assert!(report.rolled_back);
        assert_eq!(report.retries, 2);
        // No finite checkpoint ever existed, so the initial weights return.
        assert!(model.weights_finite());
        for (p, b) in model.params().into_iter().zip(&before) {
            assert_eq!(p.data(), b.data(), "weights were not rolled back");
        }
    }

    #[test]
    fn healthy_run_reports_no_retries() {
        let train = toy_sample(60, 6);
        let mut model =
            GnnModel::new(2, ModelConfig { hidden: 8, layers: 1, ..Default::default() });
        let report = model.train(
            std::slice::from_ref(&train),
            &TrainConfig { epochs: 20, ..Default::default() },
        );
        assert_eq!(report.retries, 0);
        assert!(!report.diverged);
        assert!(!report.rolled_back);
    }

    #[test]
    fn sage_learns_neighborhood_rule() {
        let train = toy_sample(160, 1);
        let test = toy_sample(160, 2);
        let mut model = GnnModel::new(2, ModelConfig { hidden: 16, layers: 2, ..Default::default() });
        let report = model.train(
            std::slice::from_ref(&train),
            &TrainConfig { epochs: 250, lr: 0.02, ..Default::default() },
        );
        assert!(
            report.final_loss < report.history[0] * 0.5,
            "loss should halve: {} -> {}",
            report.history[0],
            report.final_loss
        );
        let probs = model.predict(&test.graph, &test.features);
        let m = classify_metrics(&probs, &test.labels, None, 0.5);
        assert!(m.f1() > 0.85, "generalisation F1 {} too low", m.f1());
    }

    #[test]
    fn sage_pool_engine_learns_neighborhood_rule() {
        let train = toy_sample(160, 9);
        let mut model = GnnModel::new(
            2,
            ModelConfig {
                hidden: 16,
                layers: 2,
                engine: Engine::GraphSagePool,
                ..Default::default()
            },
        );
        let report = model.train(
            std::slice::from_ref(&train),
            &TrainConfig { epochs: 250, lr: 0.02, ..Default::default() },
        );
        let probs = model.predict(&train.graph, &train.features);
        let m = classify_metrics(&probs, &train.labels, None, 0.5);
        assert!(
            m.f1() > 0.85,
            "pool engine F1 {} too low (loss {})",
            m.f1(),
            report.final_loss
        );
    }

    #[test]
    fn gcn_engine_also_trains() {
        let train = toy_sample(120, 3);
        let mut model = GnnModel::new(
            2,
            ModelConfig { hidden: 16, layers: 2, engine: Engine::Gcn, ..Default::default() },
        );
        let report = model.train(
            std::slice::from_ref(&train),
            &TrainConfig { epochs: 250, lr: 0.02, ..Default::default() },
        );
        let probs = model.predict(&train.graph, &train.features);
        let m = classify_metrics(&probs, &train.labels, None, 0.5);
        assert!(m.f1() > 0.8, "GCN train F1 {} too low (loss {})", m.f1(), report.final_loss);
    }

    #[test]
    fn regression_reduces_mse() {
        let mut sample = toy_sample(100, 4);
        // regression targets: feature value itself (trivially learnable)
        sample.labels = (0..100).map(|i| sample.features.at(i, 0)).collect();
        let mut model = GnnModel::new(
            2,
            ModelConfig { task: Task::Regression, hidden: 8, layers: 1, ..Default::default() },
        );
        let report = model.train(
            std::slice::from_ref(&sample),
            &TrainConfig { epochs: 200, lr: 0.02, ..Default::default() },
        );
        assert!(report.final_loss < 0.02, "final mse {}", report.final_loss);
    }

    #[test]
    fn early_stopping_halts_on_plateau() {
        let train = toy_sample(120, 11);
        let mut model =
            GnnModel::new(2, ModelConfig { hidden: 16, layers: 2, ..Default::default() });
        let report = model.train(
            std::slice::from_ref(&train),
            &TrainConfig {
                epochs: 2000,
                lr: 0.03,
                patience: Some(20),
                val_fraction: 0.2,
                ..Default::default()
            },
        );
        assert!(report.stopped_early, "a plateau must appear before 2000 epochs");
        assert!(report.history.len() < 2000);
        assert_eq!(report.val_history.len(), report.history.len());
        // validation loss improved from its starting point
        assert!(report.val_history.last().unwrap() < report.val_history.first().unwrap());
    }

    #[test]
    fn without_patience_no_validation_history() {
        let train = toy_sample(60, 12);
        let mut model = GnnModel::new(2, ModelConfig::default());
        let report = model.train(
            std::slice::from_ref(&train),
            &TrainConfig { epochs: 10, ..Default::default() },
        );
        assert!(report.val_history.is_empty());
        assert!(!report.stopped_early);
        assert_eq!(report.history.len(), 10);
    }

    #[test]
    fn multi_sample_training_runs() {
        let samples = vec![toy_sample(60, 5), toy_sample(80, 6)];
        let mut model = GnnModel::new(2, ModelConfig::default());
        let report =
            model.train(&samples, &TrainConfig { epochs: 30, ..Default::default() });
        assert_eq!(report.history.len(), 30);
        assert!(report.final_loss.is_finite());
    }

    #[test]
    fn predict_checks_dimensions() {
        let model = GnnModel::new(3, ModelConfig::default());
        assert_eq!(model.in_dim(), 3);
        assert!(model.param_count() > 0);
        let sample = toy_sample(10, 7);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            model.predict(&sample.graph, &sample.features)
        }));
        assert!(result.is_err(), "2-feature input into 3-feature model must panic");
    }

    #[test]
    fn model_text_round_trip_predicts_identically() {
        for engine in [Engine::GraphSage, Engine::GraphSagePool, Engine::Gcn] {
            let sample = toy_sample(60, 21);
            let mut model = GnnModel::new(
                2,
                ModelConfig { hidden: 8, layers: 2, engine, ..Default::default() },
            );
            model.train(
                std::slice::from_ref(&sample),
                &TrainConfig { epochs: 30, ..Default::default() },
            );
            let text = model.to_text();
            let back = GnnModel::from_text(&text).unwrap();
            assert_eq!(back.in_dim(), model.in_dim());
            assert_eq!(back.param_count(), model.param_count());
            let a = model.predict(&sample.graph, &sample.features);
            let b = back.predict(&sample.graph, &sample.features);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits(), "engine {engine:?}");
            }
        }
    }

    #[test]
    fn model_parse_rejects_garbage() {
        assert!(GnnModel::from_text("").is_err());
        assert!(GnnModel::from_text("gnn_model v1 hidden x").is_err());
        assert!(GnnModel::from_text("gnn_model v2").is_err());
        let err = GnnModel::from_text("gnn_model v1 hidden 4 layers 1 engine alien").unwrap_err();
        assert!(err.to_string().contains("alien"));
    }

    #[test]
    fn deterministic_given_seed() {
        let sample = toy_sample(50, 8);
        let run = || {
            let mut m = GnnModel::new(2, ModelConfig { seed: 42, ..Default::default() });
            m.train(
                std::slice::from_ref(&sample),
                &TrainConfig { epochs: 10, ..Default::default() },
            )
            .final_loss
        };
        assert_eq!(run(), run());
    }
}
