//! Property-based tests of the GNN framework's numerical invariants.

// Integration-test harness code: the clippy.toml test exemptions do not
// reach helper fns outside #[test], so state the exemption explicitly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use tmm_gnn::graph::{NeighborMode, NodeGraph};
use tmm_gnn::loss::{auto_pos_weight, bce_with_logits, mse};
use tmm_gnn::matrix::{sigmoid, Matrix};
use tmm_gnn::model::{GnnModel, ModelConfig, TrainConfig, TrainSample};
use tmm_gnn::Engine;

fn small_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-2.0f32..2.0))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// (A·B)·C == A·(B·C) within float tolerance.
    #[test]
    fn matmul_is_associative(
        m in 1usize..6, n in 1usize..6, k in 1usize..6, p in 1usize..6, seed in 0u64..1000
    ) {
        let a = small_matrix(m, n, seed);
        let b = small_matrix(n, k, seed + 1);
        let c = small_matrix(k, p, seed + 2);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// hsplit(hcat(a, b)) == (a, b) exactly.
    #[test]
    fn hcat_hsplit_inverse(rows in 1usize..8, c1 in 1usize..5, c2 in 1usize..5, seed in 0u64..500) {
        let a = small_matrix(rows, c1, seed);
        let b = small_matrix(rows, c2, seed + 7);
        let (l, r) = a.hcat(&b).hsplit(c1);
        prop_assert_eq!(l.data(), a.data());
        prop_assert_eq!(r.data(), b.data());
    }

    /// t_matmul and matmul_t agree with explicit transposition semantics:
    /// (Aᵀ·B)ᵀ == Bᵀ·A.
    #[test]
    fn transpose_products_agree(m in 1usize..5, n in 1usize..5, k in 1usize..5, seed in 0u64..500) {
        let a = small_matrix(m, n, seed);
        let b = small_matrix(m, k, seed + 3);
        let atb = a.t_matmul(&b); // n×k
        let bta = b.t_matmul(&a); // k×n
        for i in 0..atb.rows() {
            for j in 0..atb.cols() {
                prop_assert!((atb.at(i, j) - bta.at(j, i)).abs() < 1e-4);
            }
        }
    }

    /// sigmoid maps into [0,1] (strictly inside before f32 saturation) and
    /// is monotone.
    #[test]
    fn sigmoid_properties(x in -50.0f32..50.0, dx in 0.001f32..10.0) {
        let y = sigmoid(x);
        prop_assert!((0.0..=1.0).contains(&y));
        if x.abs() < 15.0 {
            prop_assert!(y > 0.0 && y < 1.0, "unsaturated region must be strict");
        }
        prop_assert!(sigmoid(x + dx) >= y);
    }

    /// BCE loss is non-negative, zero gradient at perfect confident
    /// prediction, and its gradient sign pushes towards the label.
    #[test]
    fn bce_gradient_signs(z in -5.0f32..5.0, y in proptest::bool::ANY, w in 1.0f32..10.0) {
        let label = if y { 1.0f32 } else { 0.0 };
        let (loss, grad) = bce_with_logits(&[z], &[label], None, w);
        prop_assert!(loss >= 0.0);
        if label > 0.5 {
            prop_assert!(grad[0] <= 0.0, "positive label pulls logit up");
        } else {
            prop_assert!(grad[0] >= 0.0, "negative label pushes logit down");
        }
    }

    /// MSE is zero iff predictions equal labels.
    #[test]
    fn mse_zero_iff_equal(v in -10.0f32..10.0, delta in 0.01f32..5.0) {
        let (zero, _) = mse(&[v, v], &[v, v], None);
        prop_assert_eq!(zero, 0.0);
        let (nonzero, _) = mse(&[v + delta], &[v], None);
        prop_assert!(nonzero > 0.0);
    }

    /// auto_pos_weight is always in [1, 20].
    #[test]
    fn auto_pos_weight_bounds(pos in 0usize..50, neg in 0usize..50) {
        let labels: Vec<f32> = std::iter::repeat(1.0f32).take(pos)
            .chain(std::iter::repeat(0.0f32).take(neg))
            .collect();
        let w = auto_pos_weight(&labels, None);
        prop_assert!((1.0..=20.0).contains(&w));
    }

    /// Training any engine on random data never produces NaN losses or
    /// predictions outside the valid range.
    #[test]
    fn training_is_numerically_stable(
        nodes in 4usize..30,
        seed in 0u64..200,
        engine_pick in 0u8..3,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let edges: Vec<(u32, u32)> = (0..nodes as u32 - 1).map(|i| (i, i + 1)).collect();
        let graph = NodeGraph::from_edges(nodes, &edges, NeighborMode::Undirected);
        let features = Matrix::from_fn(nodes, 3, |_, _| rng.gen_range(-1.0f32..1.0));
        let labels: Vec<f32> = (0..nodes).map(|_| f32::from(u8::from(rng.gen_bool(0.3)))).collect();
        let engine = match engine_pick {
            0 => Engine::GraphSage,
            1 => Engine::GraphSagePool,
            _ => Engine::Gcn,
        };
        let mut model = GnnModel::new(3, ModelConfig { hidden: 8, layers: 2, engine, ..Default::default() });
        let sample = TrainSample { graph, features, labels, mask: None };
        let report = model.train(
            std::slice::from_ref(&sample),
            &TrainConfig { epochs: 15, lr: 0.05, ..Default::default() },
        );
        for l in &report.history {
            prop_assert!(l.is_finite(), "loss went NaN");
        }
        for p in model.predict(&sample.graph, &sample.features) {
            prop_assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        }
    }
}
