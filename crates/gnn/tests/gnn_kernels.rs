//! Property-based equivalence suite for the GNN kernel layer.
//!
//! Every blocked/parallel kernel must be **bit-identical** to its retained
//! naive reference implementation across shapes, thread counts, and CSR
//! graphs (including empty-neighborhood nodes) — determinism is a hard
//! contract here, not a tolerance. The suite closes with end-to-end
//! training bit-identity: weights, loss histories, and predictions must
//! not change with `threads` or with the Naive↔Blocked backend switch.

// Integration-test harness code: the clippy.toml test exemptions do not
// reach helper fns outside #[test], so state the exemption explicitly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use tmm_gnn::graph::{NeighborMode, NodeGraph};
use tmm_gnn::kernels::{self, naive, KernelPolicy};
use tmm_gnn::matrix::Matrix;
use tmm_gnn::model::{GnnModel, ModelConfig, TrainConfig, TrainSample};
use tmm_gnn::{Backend, Engine};

/// Deterministic pseudo-random data without touching the global RNG state.
fn pseudo(len: usize, seed: u64) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 2_000) as f32 / 500.0 - 2.0
        })
        .collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// A random graph over `nodes` nodes with roughly `edge_factor` edges per
/// node; nodes can easily end up isolated (empty neighborhoods).
fn random_graph(nodes: usize, edge_factor: usize, seed: u64, mode: NeighborMode) -> NodeGraph {
    let mut s = seed.wrapping_mul(0x2545_f491_4f6c_dd1d) | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let n_edges = nodes * edge_factor / 2;
    let edges: Vec<(u32, u32)> = (0..n_edges)
        .map(|_| ((next() % nodes as u64) as u32, (next() % nodes as u64) as u32))
        .filter(|(a, b)| a != b)
        .collect();
    NodeGraph::from_edges(nodes, &edges, mode)
}

const THREADS: [usize; 3] = [1, 2, 8];

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    /// Blocked GEMM == naive GEMM, bit for bit, at every thread count.
    #[test]
    fn gemm_matches_naive(m in 1usize..40, k in 0usize..24, n in 1usize..24, seed in 0u64..1000) {
        let a = pseudo(m * k, seed);
        let b = pseudo(k * n, seed + 1);
        let mut want = vec![0.0f32; m * n];
        naive::gemm(&a, &b, &mut want, m, k, n);
        for t in THREADS {
            let mut got = vec![0.0f32; m * n];
            kernels::gemm(&a, &b, &mut got, m, k, n, KernelPolicy::with_threads(t));
            prop_assert_eq!(bits(&got), bits(&want), "threads={}", t);
        }
    }

    /// GEMM-T (the chunked-reduction kernel) is thread-invariant and
    /// matches the naive streaming reference, including the a-stride
    /// (partial-column) form.
    #[test]
    fn gemm_tn_matches_naive(
        k_rows in 1usize..600, m in 1usize..8, n in 1usize..6,
        extra in 0usize..3, seed in 0u64..1000
    ) {
        let a_stride = m + extra;
        let a = pseudo(k_rows * a_stride, seed);
        let b = pseudo(k_rows * n, seed + 2);
        let mut want = vec![0.0f32; m * n];
        let mut scratch = Vec::new();
        naive::gemm_tn(&a, &b, &mut want, k_rows, m, n, a_stride, &mut scratch);
        for t in THREADS {
            let mut got = vec![0.0f32; m * n];
            let mut sc = Vec::new();
            kernels::gemm_tn(&a, &b, &mut got, k_rows, m, n, a_stride, &mut sc,
                             KernelPolicy::with_threads(t));
            prop_assert_eq!(bits(&got), bits(&want), "threads={}", t);
        }
    }

    /// GEMM with transposed right operand matches its naive reference.
    #[test]
    fn gemm_nt_matches_naive(m in 1usize..40, k in 1usize..8, n in 1usize..24, seed in 0u64..1000) {
        let a = pseudo(m * k, seed);
        let b = pseudo(n * k, seed + 3);
        let mut want = vec![0.0f32; m * n];
        naive::gemm_nt(&a, &b, &mut want, m, k, n);
        for t in THREADS {
            let mut got = vec![0.0f32; m * n];
            kernels::gemm_nt(&a, &b, &mut got, m, k, n, KernelPolicy::with_threads(t));
            prop_assert_eq!(bits(&got), bits(&want), "threads={}", t);
        }
    }

    /// All CSR kernels match their naive references on random graphs that
    /// include isolated nodes, at every thread count.
    #[test]
    fn csr_kernels_match_naive(
        nodes in 1usize..80, edge_factor in 0usize..5,
        cols in 1usize..6, seed in 0u64..1000
    ) {
        let g = random_graph(nodes, edge_factor, seed, NeighborMode::Undirected);
        let h = pseudo(nodes * cols, seed + 4);
        let grad = pseudo(nodes * cols, seed + 5);
        let dx = pseudo(nodes * 2 * cols, seed + 6);
        let p = pseudo(nodes * cols, seed + 7);

        let mut want = vec![0.0f32; nodes * cols];
        naive::mean_aggregate(&g, &h, cols, &mut want);
        let mut want_adj = vec![0.0f32; nodes * cols];
        naive::mean_aggregate_adjoint(&g, &grad, cols, &mut want_adj);
        let mut want_gcn = vec![0.0f32; nodes * cols];
        naive::gcn_propagate(&g, &h, cols, &mut want_gcn);
        let mut want_gather = vec![0.0f32; nodes * 2 * cols];
        naive::sage_gather(&g, &h, cols, &mut want_gather);
        let mut want_sadj = vec![0.0f32; nodes * cols];
        naive::sage_adjoint(&g, &dx, cols, &mut want_sadj);
        let mut want_pool = vec![0.0f32; nodes * 2 * cols];
        let mut want_arg = vec![0u32; nodes * cols];
        naive::pool_max(&g, &p, cols, &h, cols, &mut want_pool, &mut want_arg);

        for t in THREADS {
            let pol = KernelPolicy::with_threads(t);
            let mut got = vec![0.0f32; nodes * cols];
            kernels::mean_aggregate_into(&g, &h, cols, &mut got, pol);
            prop_assert_eq!(bits(&got), bits(&want), "mean_aggregate threads={}", t);
            let mut got = vec![0.0f32; nodes * cols];
            kernels::mean_aggregate_adjoint_into(&g, &grad, cols, &mut got, pol);
            prop_assert_eq!(bits(&got), bits(&want_adj), "adjoint threads={}", t);
            let mut got = vec![0.0f32; nodes * cols];
            kernels::gcn_propagate_into(&g, &h, cols, &mut got, pol);
            prop_assert_eq!(bits(&got), bits(&want_gcn), "gcn threads={}", t);
            let mut got = vec![0.0f32; nodes * 2 * cols];
            kernels::sage_gather(&g, &h, cols, &mut got, pol);
            prop_assert_eq!(bits(&got), bits(&want_gather), "gather threads={}", t);
            let mut got = vec![0.0f32; nodes * cols];
            kernels::sage_adjoint(&g, &dx, cols, &mut got, pol);
            prop_assert_eq!(bits(&got), bits(&want_sadj), "sage_adjoint threads={}", t);
            let mut got = vec![0.0f32; nodes * 2 * cols];
            let mut arg = vec![0u32; nodes * cols];
            kernels::pool_max(&g, &p, cols, &h, cols, &mut got, &mut arg, pol);
            prop_assert_eq!(bits(&got), bits(&want_pool), "pool threads={}", t);
            prop_assert_eq!(arg, want_arg.clone(), "argmax threads={}", t);
        }
    }

    /// The directed neighbor mode also builds a consistent transpose CSR
    /// (the adjoint still matches the sequential scatter).
    #[test]
    fn directed_adjoint_matches_naive(nodes in 2usize..40, seed in 0u64..500) {
        let g = random_graph(nodes, 3, seed, NeighborMode::In);
        let grad = pseudo(nodes * 3, seed + 9);
        let mut want = vec![0.0f32; nodes * 3];
        naive::mean_aggregate_adjoint(&g, &grad, 3, &mut want);
        for t in THREADS {
            let mut got = vec![0.0f32; nodes * 3];
            kernels::mean_aggregate_adjoint_into(&g, &grad, 3, &mut got,
                                                 KernelPolicy::with_threads(t));
            prop_assert_eq!(bits(&got), bits(&want), "threads={}", t);
        }
    }
}

/// Ring-graph toy task shared by the end-to-end bit-identity tests.
fn toy_sample(n: usize, seed: u64) -> TrainSample {
    let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
    let graph = NodeGraph::from_edges(n, &edges, NeighborMode::Undirected);
    let feat = pseudo(n, seed);
    let features = Matrix::from_fn(n, 2, |r, c| if c == 0 { feat[r] } else { 1.0 });
    let labels: Vec<f32> = (0..n)
        .map(|i| {
            let prev = (i + n - 1) % n;
            let next = (i + 1) % n;
            if feat[i] > 0.5 || feat[prev] > 0.5 || feat[next] > 0.5 { 1.0 } else { 0.0 }
        })
        .collect();
    TrainSample { graph, features, labels, mask: None }
}

/// Trains one model and returns everything an acceptance check cares
/// about: serialised weights, loss histories, and raw predictions.
fn train_fingerprint(engine: Engine, threads: usize, backend: Backend) -> (String, Vec<u32>, Vec<u32>, Vec<u32>) {
    let sample = toy_sample(96, 7);
    let mut model = GnnModel::new(
        2,
        ModelConfig { hidden: 8, layers: 2, engine, seed: 11, ..Default::default() },
    );
    let report = model.train(
        std::slice::from_ref(&sample),
        &TrainConfig {
            epochs: 25,
            patience: Some(10),
            threads,
            backend,
            ..Default::default()
        },
    );
    let preds = model.predict_par(&sample.graph, &sample.features, threads);
    (model.to_text(), bits(&report.history), bits(&report.val_history), bits(&preds))
}

/// Acceptance criterion: training output (weights, TrainReport losses,
/// predictions) is bit-identical across `--threads 1/2/8`.
#[test]
fn training_is_bit_identical_across_thread_counts() {
    for engine in [Engine::GraphSage, Engine::GraphSagePool, Engine::Gcn] {
        let base = train_fingerprint(engine, 1, Backend::Blocked);
        for t in [2usize, 8] {
            let other = train_fingerprint(engine, t, Backend::Blocked);
            assert_eq!(base, other, "engine {engine:?} diverged at {t} threads");
        }
    }
}

/// Acceptance criterion: the blocked kernels train bit-identically to the
/// retained naive reference kernels.
#[test]
fn training_is_bit_identical_to_naive_backend() {
    for engine in [Engine::GraphSage, Engine::GraphSagePool, Engine::Gcn] {
        let blocked = train_fingerprint(engine, 4, Backend::Blocked);
        let naive = train_fingerprint(engine, 1, Backend::Naive);
        assert_eq!(blocked, naive, "engine {engine:?}: blocked != naive reference");
    }
}
