//! Steady-state training epochs must perform **zero heap allocations**.
//!
//! The workspace architecture promises that after the first epoch sizes
//! every buffer, subsequent epochs reuse them all: forward caches, gradient
//! matrices, loss-gradient buffer, Adam moments, and the early-stopping
//! snapshot. This harness installs a counting global allocator and asserts
//! that a run with 40 epochs allocates exactly as many times as a run with
//! 8 epochs — i.e. the 32 extra epochs allocate nothing.
//!
//! Lives in its own integration-test binary so no other test's allocations
//! pollute the counter. Runs with `threads = 1` because spawning scoped
//! worker threads necessarily allocates (stacks, join handles); the
//! thread-count *determinism* contract is covered by `gnn_kernels.rs`.
//!
//! The `tmm-obs` metrics registry is compiled into the training loop
//! (per-epoch loss/grad-norm/rows-per-sec gauges) but left *disabled*
//! here, which this test doubles as a guard for: the disabled entry
//! points must cost one relaxed atomic load and **no allocation**, or
//! the 32 extra epochs would show up in the counter.

// Integration-test harness code: the clippy.toml test exemptions do not
// reach helper fns outside #[test], so state the exemption explicitly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; only adds a relaxed counter.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

fn alloc_count<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let r = f();
    (ALLOCS.load(Ordering::Relaxed) - before, r)
}

use tmm_gnn::graph::{NeighborMode, NodeGraph};
use tmm_gnn::matrix::Matrix;
use tmm_gnn::model::{GnnModel, ModelConfig, TrainConfig, TrainSample};
use tmm_gnn::Engine;

fn toy_sample(n: usize) -> TrainSample {
    let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
    let graph = NodeGraph::from_edges(n, &edges, NeighborMode::Undirected);
    let features = Matrix::from_fn(n, 2, |r, c| {
        if c == 0 {
            ((r * 37 % 100) as f32) / 100.0
        } else {
            1.0
        }
    });
    let labels: Vec<f32> =
        (0..n).map(|i| if (i * 37 % 100) as f32 / 100.0 > 0.5 { 1.0 } else { 0.0 }).collect();
    TrainSample { graph, features, labels, mask: None }
}

fn allocs_for(engine: Engine, epochs: usize, sample: &TrainSample) -> u64 {
    let mut model = GnnModel::new(
        2,
        ModelConfig { hidden: 8, layers: 2, engine, seed: 3, ..Default::default() },
    );
    let cfg = TrainConfig { epochs, patience: None, threads: 1, ..Default::default() };
    let (count, report) = alloc_count(|| model.train(std::slice::from_ref(sample), &cfg));
    assert!(report.final_loss.is_finite());
    assert_eq!(report.retries, 0, "a healthy run must not retry");
    count
}

/// 8-epoch and 40-epoch runs allocate identically: every allocation
/// belongs to one-time setup (workspace sizing, initial snapshot, Adam
/// moments, history capacity), none to the steady-state epochs.
#[test]
fn steady_state_epochs_allocate_nothing() {
    let sample = toy_sample(120);
    for engine in [Engine::GraphSage, Engine::GraphSagePool, Engine::Gcn] {
        let short = allocs_for(engine, 8, &sample);
        let long = allocs_for(engine, 40, &sample);
        assert_eq!(
            short, long,
            "engine {engine:?}: 32 extra epochs allocated {} extra times",
            long.saturating_sub(short)
        );
        assert!(short > 0, "sanity: setup must allocate at least once");
    }
}

/// Repeated prediction into a fresh workspace allocates, but the kernel
/// delegation itself must not regress into per-op temporaries: two
/// predictions allocate exactly twice the single-prediction count.
#[test]
fn predict_allocation_is_linear_in_calls() {
    let sample = toy_sample(64);
    let mut model = GnnModel::new(
        2,
        ModelConfig { hidden: 8, layers: 2, seed: 5, ..Default::default() },
    );
    model.train(
        std::slice::from_ref(&sample),
        &TrainConfig { epochs: 5, threads: 1, ..Default::default() },
    );
    let (one, _) = alloc_count(|| model.predict(&sample.graph, &sample.features));
    let (two, _) = alloc_count(|| {
        let _ = model.predict(&sample.graph, &sample.features);
        model.predict(&sample.graph, &sample.features)
    });
    assert_eq!(two, 2 * one, "prediction allocations must be call-linear");
}
