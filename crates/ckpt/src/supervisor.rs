//! Per-stage deadline supervision: a process-global heartbeat that every
//! unit of pipeline progress bumps (checkpoint saves, TS chunks, GNN
//! epochs, merge passes), and a watchdog thread that fires when the
//! heartbeat goes silent for longer than the deadline. Firing either
//! exits the process with a classed code — the checkpoint manifest is
//! already durable, so the run stays resumable — or sets a flag for
//! in-process tests.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

fn origin() -> Instant {
    static T0: OnceLock<Instant> = OnceLock::new();
    *T0.get_or_init(Instant::now)
}

static LAST_BEAT_MS: AtomicU64 = AtomicU64::new(0);

/// Records pipeline progress. Cheap (one clock read + one relaxed
/// store); called from checkpoint saves, TS chunk boundaries, training
/// epochs, and merge passes.
pub fn heartbeat() {
    let now = u64::try_from(origin().elapsed().as_millis()).unwrap_or(u64::MAX);
    LAST_BEAT_MS.store(now, Ordering::Relaxed);
}

fn stage_cell() -> &'static Mutex<String> {
    static STAGE: OnceLock<Mutex<String>> = OnceLock::new();
    STAGE.get_or_init(|| Mutex::new(String::new()))
}

/// Names the stage currently running, so a deadline abort can say *what*
/// hung. Also beats the heartbeat — entering a stage is progress.
pub fn set_stage(name: &str) {
    heartbeat();
    *stage_cell().lock().unwrap_or_else(PoisonError::into_inner) = name.to_string();
}

/// The most recently [`set_stage`]d name (empty before the first).
#[must_use]
pub fn current_stage() -> String {
    stage_cell().lock().unwrap_or_else(PoisonError::into_inner).clone()
}

/// What the watchdog does when the deadline expires.
#[derive(Debug, Clone)]
pub enum DeadlineAction {
    /// Report the hung stage on stderr and exit the process with this
    /// code (the `tmm` CLI uses 6). Checkpoints on disk stay resumable.
    Exit(u8),
    /// Set the flag and stop watching — the in-process testable action.
    Flag(Arc<AtomicBool>),
}

/// A running deadline watchdog; dropping it stops the watch.
#[derive(Debug)]
pub struct StageSupervisor {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl StageSupervisor {
    /// Starts watching: if no [`heartbeat`] arrives for `deadline`, the
    /// `action` fires. `what` names the supervised activity in the abort
    /// message (the hung *stage* comes from [`set_stage`]).
    #[must_use]
    pub fn start(what: &str, deadline: Duration, action: DeadlineAction) -> StageSupervisor {
        heartbeat(); // starting the watch is itself progress
        let stop = Arc::new(AtomicBool::new(false));
        let watched = Arc::clone(&stop);
        let what = what.to_string();
        let deadline_ms = u64::try_from(deadline.as_millis()).unwrap_or(u64::MAX);
        let poll = (deadline / 8).clamp(Duration::from_millis(5), Duration::from_millis(250));
        let handle = std::thread::Builder::new()
            .name("tmm-deadline".to_string())
            .spawn(move || loop {
                std::thread::sleep(poll);
                if watched.load(Ordering::Relaxed) {
                    return;
                }
                let now = u64::try_from(origin().elapsed().as_millis()).unwrap_or(u64::MAX);
                let last = LAST_BEAT_MS.load(Ordering::Relaxed);
                if now.saturating_sub(last) > deadline_ms {
                    let stage = current_stage();
                    tmm_obs::error(
                        &[("stage", &stage), ("deadline_ms", &deadline_ms.to_string())],
                        "stage deadline exceeded",
                    );
                    match &action {
                        DeadlineAction::Exit(code) => {
                            eprintln!(
                                "tmm: deadline of {deadline_ms} ms exceeded in stage \
                                 `{stage}` during {what}; aborting (checkpoints on disk \
                                 remain resumable)"
                            );
                            std::process::exit(i32::from(*code));
                        }
                        DeadlineAction::Flag(flag) => {
                            flag.store(true, Ordering::SeqCst);
                            return;
                        }
                    }
                }
            });
        match handle {
            Ok(h) => StageSupervisor { stop, handle: Some(h) },
            // Thread spawn failure: run unsupervised rather than fail the
            // pipeline over a watchdog.
            Err(_) => StageSupervisor { stop, handle: None },
        }
    }
}

impl Drop for StageSupervisor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silent_stage_trips_the_flag() {
        set_stage("supervisor-test-hang");
        let flag = Arc::new(AtomicBool::new(false));
        let _watch = StageSupervisor::start(
            "unit test",
            Duration::from_millis(40),
            DeadlineAction::Flag(Arc::clone(&flag)),
        );
        // This thread never beats; concurrent tests in this binary might
        // (the heartbeat is process-global), so wait generously for the
        // silence to accrue instead of sleeping a fixed interval.
        let t0 = Instant::now();
        while !flag.load(Ordering::SeqCst) && t0.elapsed() < Duration::from_secs(10) {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(flag.load(Ordering::SeqCst), "watchdog must fire on silence");
    }

    #[test]
    fn heartbeats_keep_the_watchdog_quiet() {
        let flag = Arc::new(AtomicBool::new(false));
        let watch = StageSupervisor::start(
            "unit test",
            Duration::from_millis(120),
            DeadlineAction::Flag(Arc::clone(&flag)),
        );
        for _ in 0..10 {
            heartbeat();
            std::thread::sleep(Duration::from_millis(20));
        }
        drop(watch);
        assert!(!flag.load(Ordering::SeqCst), "steady heartbeats must not trip");
    }

    #[test]
    fn current_stage_tracks_set_stage() {
        set_stage("training");
        assert_eq!(current_stage(), "training");
    }
}
