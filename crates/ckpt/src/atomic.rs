//! Atomic file writes: sibling temp file + `fsync` + rename, then a
//! best-effort directory sync. A reader (or a resumed run) can never
//! observe a half-written artifact — it sees either the old file, the
//! new file, or no file.

use crate::CkptError;
use std::io::Write as _;
use std::path::Path;

/// Atomically replaces `path` with `bytes`.
///
/// # Errors
///
/// [`CkptError::Io`] when any filesystem step fails; on failure the
/// destination file is untouched (a stale temp file may remain).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), CkptError> {
    let name = path
        .file_name()
        .map_or_else(|| "artifact".to_string(), |n| n.to_string_lossy().into_owned());
    let tmp = path.with_file_name(format!(".{name}.tmp"));
    let io = |what: &str, p: &Path, e: std::io::Error| {
        CkptError::Io(format!("cannot {what} {}: {e}", p.display()))
    };
    let mut f = std::fs::File::create(&tmp).map_err(|e| io("create", &tmp, e))?;
    f.write_all(bytes).map_err(|e| io("write", &tmp, e))?;
    // Flush file contents to stable storage *before* the rename makes the
    // file visible under its final name.
    f.sync_all().map_err(|e| io("sync", &tmp, e))?;
    drop(f);
    std::fs::rename(&tmp, path).map_err(|e| io("rename into", path, e))?;
    // Persist the rename itself. Directory fsync is best-effort: some
    // filesystems/platforms refuse to open directories for syncing.
    if let Some(dir) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// [`atomic_write`] for text content.
///
/// # Errors
///
/// [`CkptError::Io`] when any filesystem step fails.
pub fn atomic_write_str(path: impl AsRef<Path>, text: &str) -> Result<(), CkptError> {
    atomic_write(path.as_ref(), text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("tmm-ckpt-atomic-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_then_overwrite_replaces_content() {
        let dir = scratch_dir("overwrite");
        let path = dir.join("a.txt");
        atomic_write_str(&path, "first").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first");
        atomic_write_str(&path, "second, longer content").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second, longer content");
        // The temp file must not linger after a successful write.
        assert!(!dir.join(".a.txt.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_a_classed_io_error() {
        let path = scratch_dir("missing").join("no-such-subdir").join("a.txt");
        let err = atomic_write_str(&path, "x").unwrap_err();
        assert_eq!(err.class(), "io");
    }
}
