//! The per-run checkpoint manifest (`tmm-ckpt-manifest/v1`): binds a
//! checkpoint directory to one (config fingerprint, design) pair,
//! indexes every artifact with its payload checksum, records per-stage
//! completion markers and free-form notes, and carries a trailing
//! checksum over its own body so a torn manifest is detected — a resumed
//! run trusts nothing it cannot verify.

use crate::CkptError;
use tmm_obs::fingerprint;

/// Manifest schema tag.
pub const SCHEMA: &str = "tmm-ckpt-manifest/v1";

/// A parsed, verified manifest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Config fingerprint of the producing run.
    pub config: String,
    /// Design name the checkpoints belong to.
    pub design: String,
    entries: Vec<(String, u64, String, String)>, // stage, seq, file, payload sum
    done: Vec<String>,
    notes: Vec<(String, String)>,
}

impl Manifest {
    /// Fresh manifest for one (config, design) run.
    #[must_use]
    pub fn new(config: &str, design: &str) -> Self {
        Manifest { config: config.to_string(), design: design.to_string(), ..Default::default() }
    }

    /// Highest recorded sequence number for `stage`.
    #[must_use]
    pub fn latest(&self, stage: &str) -> Option<u64> {
        self.entries.iter().filter(|(s, ..)| s == stage).map(|&(_, seq, ..)| seq).max()
    }

    /// File name and payload checksum of one artifact entry.
    #[must_use]
    pub fn entry(&self, stage: &str, seq: u64) -> Option<(&str, &str)> {
        self.entries
            .iter()
            .find(|(s, q, ..)| s == stage && *q == seq)
            .map(|(_, _, file, sum)| (file.as_str(), sum.as_str()))
    }

    /// Number of artifact entries.
    #[must_use]
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Adds or replaces one artifact entry.
    pub fn upsert(&mut self, stage: &str, seq: u64, file: &str, sum: &str) {
        if let Some(e) = self.entries.iter_mut().find(|(s, q, ..)| s == stage && *q == seq) {
            e.2 = file.to_string();
            e.3 = sum.to_string();
        } else {
            self.entries.push((stage.to_string(), seq, file.to_string(), sum.to_string()));
        }
    }

    /// Marks `stage` complete.
    pub fn mark_done(&mut self, stage: &str) {
        if !self.is_done(stage) {
            self.done.push(stage.to_string());
        }
    }

    /// Whether `stage` is marked complete.
    #[must_use]
    pub fn is_done(&self, stage: &str) -> bool {
        self.done.iter().any(|s| s == stage)
    }

    /// Sets (or replaces) a free-form note, e.g. the final macro model's
    /// checksum.
    pub fn set_note(&mut self, key: &str, value: &str) {
        if let Some(n) = self.notes.iter_mut().find(|(k, _)| k == key) {
            n.1 = value.to_string();
        } else {
            self.notes.push((key.to_string(), value.to_string()));
        }
    }

    /// Looks up a note.
    #[must_use]
    pub fn note(&self, key: &str) -> Option<&str> {
        self.notes.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Renders the manifest, trailing self-checksum included.
    #[must_use]
    pub fn render(&self) -> String {
        let mut body = format!("{SCHEMA}\nconfig {}\ndesign {}\n", self.config, self.design);
        for (stage, seq, file, sum) in &self.entries {
            body.push_str(&format!("entry {stage} {seq} {file} {sum}\n"));
        }
        for stage in &self.done {
            body.push_str(&format!("done {stage}\n"));
        }
        for (k, v) in &self.notes {
            body.push_str(&format!("note {k} {v}\n"));
        }
        let sum = fingerprint(&body);
        body.push_str(&format!("sum {sum}\n"));
        body
    }

    /// Parses and verifies a manifest.
    ///
    /// # Errors
    ///
    /// [`CkptError::Corrupt`] on a bad schema tag, malformed line, or
    /// trailing-checksum mismatch (torn or edited file).
    pub fn parse(text: &str) -> Result<Manifest, CkptError> {
        let corrupt = |what: String| CkptError::Corrupt(format!("manifest: {what}"));
        let trimmed = text
            .strip_suffix('\n')
            .ok_or_else(|| corrupt("not newline-terminated (truncated write)".to_string()))?;
        let (head, last) = trimmed
            .rsplit_once('\n')
            .ok_or_else(|| corrupt("missing trailing sum line".to_string()))?;
        let sum = last
            .strip_prefix("sum ")
            .ok_or_else(|| corrupt("missing trailing sum line".to_string()))?;
        let body = format!("{head}\n");
        if fingerprint(&body) != sum {
            return Err(corrupt("body checksum mismatch (torn or edited file)".to_string()));
        }
        let mut lines = body.lines();
        if lines.next() != Some(SCHEMA) {
            return Err(corrupt(format!("schema tag is not `{SCHEMA}`")));
        }
        let mut m = Manifest::default();
        let rest_of = |line: &str, key: &str| -> Option<String> {
            let r = line.strip_prefix(key)?;
            Some(r.strip_prefix(' ').unwrap_or(r).to_string())
        };
        for line in lines {
            if let Some(v) = rest_of(line, "config") {
                m.config = v;
            } else if let Some(v) = rest_of(line, "design") {
                m.design = v;
            } else if let Some(v) = rest_of(line, "entry") {
                let mut t = v.split_whitespace();
                let (Some(stage), Some(seq), Some(file), Some(sum)) =
                    (t.next(), t.next(), t.next(), t.next())
                else {
                    return Err(corrupt(format!("malformed entry line `{line}`")));
                };
                let seq: u64 =
                    seq.parse().map_err(|_| corrupt(format!("bad entry seq in `{line}`")))?;
                m.entries.push((stage.to_string(), seq, file.to_string(), sum.to_string()));
            } else if let Some(v) = rest_of(line, "done") {
                m.done.push(v);
            } else if let Some(v) = rest_of(line, "note") {
                match v.split_once(' ') {
                    Some((k, val)) => m.notes.push((k.to_string(), val.to_string())),
                    None => m.notes.push((v, String::new())),
                }
            } else {
                return Err(corrupt(format!("unknown line `{line}`")));
            }
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        let mut m = Manifest::new("cafef00dcafef00d", "osu_design 3");
        m.upsert("ts.d", 0, "ts.d.0.ckpt", "0011223344556677");
        m.upsert("ts.d", 1, "ts.d.1.ckpt", "8899aabbccddeeff");
        m.mark_done("ts.d");
        m.set_note("macro_model_sum", "1122334455667788");
        m
    }

    #[test]
    fn round_trips() {
        let m = sample();
        let parsed = Manifest::parse(&m.render()).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(parsed.latest("ts.d"), Some(1));
        assert_eq!(parsed.entry("ts.d", 1).unwrap().0, "ts.d.1.ckpt");
        assert!(parsed.is_done("ts.d"));
        assert_eq!(parsed.note("macro_model_sum"), Some("1122334455667788"));
    }

    #[test]
    fn upsert_replaces_in_place() {
        let mut m = sample();
        m.upsert("ts.d", 1, "ts.d.1.ckpt", "ffffffffffffffff");
        assert_eq!(m.entry_count(), 2);
        assert_eq!(m.entry("ts.d", 1).unwrap().1, "ffffffffffffffff");
    }

    #[test]
    fn every_truncation_is_rejected() {
        let text = sample().render();
        for cut in 0..text.len() {
            assert!(
                Manifest::parse(&text[..cut]).is_err(),
                "cut at {cut} must fail verification"
            );
        }
    }

    #[test]
    fn edited_body_is_rejected() {
        let text = sample().render().replace("ts.d.1.ckpt", "ts.d.9.ckpt");
        assert_eq!(Manifest::parse(&text).unwrap_err().class(), "corrupt");
    }
}
