//! # tmm-ckpt — crash-safe checkpoint/resume substrate
//!
//! Every long-running pipeline stage (TS sweeps, GNN training epochs,
//! macro merging) persists its progress through this crate so that a run
//! killed at *any* point and resumed is **bit-identical** to an
//! uninterrupted run. The design leans entirely on the determinism the
//! rest of the stack already guarantees: a checkpoint never stores
//! anything that a deterministic recompute could not reproduce — it only
//! stores it so the recompute can be *skipped*.
//!
//! Building blocks:
//!
//! * [`atomic_write`] — temp-file + `fsync` + rename, so no artifact is
//!   ever observable in a torn state;
//! * [`Artifact`] — one versioned, length- and checksum-guarded
//!   checkpoint payload (`tmm-ckpt/v1`);
//! * [`Manifest`] — the per-run index (`tmm-ckpt-manifest/v1`) recording
//!   the config fingerprint + design name, every artifact's checksum,
//!   per-stage completion markers, and free-form notes, itself
//!   checksummed;
//! * [`Session`] — an on-disk [`StageStore`] bound to one checkpoint
//!   directory; stale or mismatched checkpoints are rejected with a
//!   classed [`CkptError`], never silently loaded;
//! * [`crash_point`] — deterministic seeded crash injection
//!   (`TMM_CRASH_AT=<point>:<n>` or `*:<n>`), the mechanism behind
//!   `tmm ckptcheck`;
//! * [`StageSupervisor`] — heartbeat-based per-stage deadline watchdog
//!   with a classed exit (or a testable flag) instead of a hang.

pub mod artifact;
pub mod atomic;
pub mod crash;
pub mod manifest;
pub mod session;
pub mod supervisor;

pub use artifact::Artifact;
pub use atomic::{atomic_write, atomic_write_str};
pub use crash::{crash_point, render_tally, tally, total_hits, write_tally_if_requested};
pub use manifest::Manifest;
pub use session::Session;
pub use supervisor::{current_stage, heartbeat, set_stage, DeadlineAction, StageSupervisor};

use std::collections::BTreeMap;
use std::fmt;

/// Classed checkpoint failure. The class determines how callers react:
/// `Io` is an environment problem, `Corrupt` means an artifact failed its
/// length/checksum/format guards (a torn or edited file), `Mismatch`
/// means a well-formed checkpoint belongs to a different configuration
/// or design and must not be reused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// Filesystem failure (unreadable/unwritable checkpoint directory).
    Io(String),
    /// Artifact or manifest failed verification (torn/edited file).
    Corrupt(String),
    /// Checkpoint belongs to a different config fingerprint or design.
    Mismatch(String),
}

impl CkptError {
    /// Stable lowercase class name for diagnostics and metrics labels.
    #[must_use]
    pub fn class(&self) -> &'static str {
        match self {
            CkptError::Io(_) => "io",
            CkptError::Corrupt(_) => "corrupt",
            CkptError::Mismatch(_) => "mismatch",
        }
    }
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(m) => write!(f, "checkpoint I/O error: {m}"),
            CkptError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
            CkptError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for CkptError {}

/// Sequenced per-stage checkpoint storage. Stages are free-form string
/// keys (`"train"`, `"ts.<design>"`, `"merge"`); within a stage,
/// artifacts carry monotonically interpretable sequence numbers (epoch
/// bucket, chunk index, merge pass). Implementations must make `save`
/// atomic: after a crash, `load` either returns the full payload or
/// reports the artifact missing/corrupt — never a prefix.
pub trait StageStore {
    /// Highest sequence number saved for `stage`, if any.
    fn latest(&self, stage: &str) -> Option<u64>;
    /// Loads one artifact's payload; `Ok(None)` when never saved.
    ///
    /// # Errors
    ///
    /// [`CkptError::Corrupt`] when the artifact fails verification,
    /// [`CkptError::Io`] when the backing storage fails.
    fn load(&mut self, stage: &str, seq: u64) -> Result<Option<String>, CkptError>;
    /// Durably stores one artifact payload.
    ///
    /// # Errors
    ///
    /// [`CkptError::Io`] when the backing storage fails.
    fn save(&mut self, stage: &str, seq: u64, payload: &str) -> Result<(), CkptError>;
    /// Marks `stage` complete (resume skips it wholesale).
    ///
    /// # Errors
    ///
    /// [`CkptError::Io`] when the backing storage fails.
    fn mark_done(&mut self, stage: &str) -> Result<(), CkptError>;
    /// Whether `stage` was marked complete.
    fn is_done(&self, stage: &str) -> bool;
}

/// The no-checkpointing store: remembers nothing, every `load` misses.
/// Lets checkpoint-aware entry points serve the plain un-checkpointed
/// call paths without duplication.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullStore;

impl StageStore for NullStore {
    fn latest(&self, _stage: &str) -> Option<u64> {
        None
    }
    fn load(&mut self, _stage: &str, _seq: u64) -> Result<Option<String>, CkptError> {
        Ok(None)
    }
    fn save(&mut self, _stage: &str, _seq: u64, _payload: &str) -> Result<(), CkptError> {
        Ok(())
    }
    fn mark_done(&mut self, _stage: &str) -> Result<(), CkptError> {
        Ok(())
    }
    fn is_done(&self, _stage: &str) -> bool {
        false
    }
}

/// In-memory store that additionally records save *order*, so tests and
/// the diffcheck `ckpt-replay` check can simulate a kill-at-point-N by
/// truncating to a prefix of the writes a full run performed.
#[derive(Debug, Default, Clone)]
pub struct MemStore {
    entries: BTreeMap<(String, u64), String>,
    done: Vec<String>,
    order: Vec<(String, u64)>,
}

impl MemStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        MemStore::default()
    }

    /// Number of distinct save operations recorded.
    #[must_use]
    pub fn saves(&self) -> usize {
        self.order.len()
    }

    /// A copy holding only the first `n` saves and *no* completion
    /// markers — the state a process killed right after its `n`-th
    /// checkpoint write would leave on disk.
    #[must_use]
    pub fn truncated(&self, n: usize) -> MemStore {
        let order: Vec<(String, u64)> = self.order.iter().take(n).cloned().collect();
        let keep: std::collections::BTreeSet<&(String, u64)> = order.iter().collect();
        MemStore {
            entries: self
                .entries
                .iter()
                .filter(|(k, _)| keep.contains(k))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            done: Vec::new(),
            order,
        }
    }
}

impl StageStore for MemStore {
    fn latest(&self, stage: &str) -> Option<u64> {
        self.entries
            .keys()
            .filter(|(s, _)| s == stage)
            .map(|&(_, seq)| seq)
            .max()
    }
    fn load(&mut self, stage: &str, seq: u64) -> Result<Option<String>, CkptError> {
        Ok(self.entries.get(&(stage.to_string(), seq)).cloned())
    }
    fn save(&mut self, stage: &str, seq: u64, payload: &str) -> Result<(), CkptError> {
        let key = (stage.to_string(), seq);
        if self.entries.insert(key.clone(), payload.to_string()).is_none() {
            self.order.push(key);
        }
        Ok(())
    }
    fn mark_done(&mut self, stage: &str) -> Result<(), CkptError> {
        if !self.is_done(stage) {
            self.done.push(stage.to_string());
        }
        Ok(())
    }
    fn is_done(&self, stage: &str) -> bool {
        self.done.iter().any(|s| s == stage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_store_never_hits() {
        let mut s = NullStore;
        s.save("a", 0, "x").unwrap();
        assert_eq!(s.load("a", 0).unwrap(), None);
        assert_eq!(s.latest("a"), None);
        s.mark_done("a").unwrap();
        assert!(!s.is_done("a"));
    }

    #[test]
    fn mem_store_round_trips_and_truncates() {
        let mut s = MemStore::new();
        s.save("ts", 0, "chunk0").unwrap();
        s.save("ts", 1, "chunk1").unwrap();
        s.save("train", 0, "epoch10").unwrap();
        s.mark_done("ts").unwrap();
        assert_eq!(s.saves(), 3);
        assert_eq!(s.latest("ts"), Some(1));
        assert_eq!(s.load("ts", 1).unwrap().as_deref(), Some("chunk1"));
        assert!(s.is_done("ts"));

        let cut = s.truncated(2);
        assert_eq!(cut.saves(), 2);
        assert_eq!(cut.latest("ts"), Some(1));
        assert_eq!(cut.latest("train"), None);
        assert!(!cut.is_done("ts"), "a kill drops completion markers");
    }

    #[test]
    fn error_classes_are_stable() {
        assert_eq!(CkptError::Io(String::new()).class(), "io");
        assert_eq!(CkptError::Corrupt(String::new()).class(), "corrupt");
        assert_eq!(CkptError::Mismatch(String::new()).class(), "mismatch");
    }
}
