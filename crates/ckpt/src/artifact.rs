//! One checkpoint artifact (`tmm-ckpt/v1`): a single-line header binding
//! the payload to its stage, sequence number, and the run's config
//! fingerprint, plus a byte length and FNV-1a checksum so truncation and
//! bit-rot are detected at load time, never silently replayed.

use crate::CkptError;
use tmm_obs::fingerprint;

/// Artifact schema tag.
pub const SCHEMA: &str = "tmm-ckpt/v1";

/// A parsed checkpoint artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    /// Stage key (whitespace-free; see `Session`'s sanitizer).
    pub stage: String,
    /// Sequence number within the stage.
    pub seq: u64,
    /// Config fingerprint of the run that wrote it.
    pub config: String,
    /// Opaque stage-defined payload.
    pub payload: String,
}

impl Artifact {
    /// Renders header + payload without an intermediate [`Artifact`].
    #[must_use]
    pub fn render_parts(stage: &str, seq: u64, config: &str, payload: &str) -> String {
        let mut out = format!(
            "{SCHEMA} stage {stage} seq {seq} config {config} len {} sum {}\n",
            payload.len(),
            fingerprint(payload)
        );
        out.push_str(payload);
        out
    }

    /// Renders this artifact.
    #[must_use]
    pub fn render(&self) -> String {
        Artifact::render_parts(&self.stage, self.seq, &self.config, &self.payload)
    }

    /// Parses and fully verifies an artifact.
    ///
    /// # Errors
    ///
    /// [`CkptError::Corrupt`] on a bad schema tag, malformed header,
    /// payload length mismatch (truncation), or checksum mismatch.
    pub fn parse(text: &str) -> Result<Artifact, CkptError> {
        let (header, payload) = text
            .split_once('\n')
            .ok_or_else(|| CkptError::Corrupt("artifact has no header line".to_string()))?;
        let mut toks = header.split_whitespace();
        if toks.next() != Some(SCHEMA) {
            return Err(CkptError::Corrupt(format!(
                "artifact schema tag is not `{SCHEMA}`"
            )));
        }
        let mut field = |key: &str| -> Result<&str, CkptError> {
            if toks.next() != Some(key) {
                return Err(CkptError::Corrupt(format!(
                    "artifact header: expected `{key}` field"
                )));
            }
            toks.next()
                .ok_or_else(|| CkptError::Corrupt(format!("artifact header: missing `{key}` value")))
        };
        let stage = field("stage")?.to_string();
        let seq: u64 = field("seq")?
            .parse()
            .map_err(|_| CkptError::Corrupt("artifact header: bad `seq`".to_string()))?;
        let config = field("config")?.to_string();
        let len: usize = field("len")?
            .parse()
            .map_err(|_| CkptError::Corrupt("artifact header: bad `len`".to_string()))?;
        let sum = field("sum")?.to_string();
        if payload.len() != len {
            return Err(CkptError::Corrupt(format!(
                "artifact truncated: header promises {len} payload bytes, file has {}",
                payload.len()
            )));
        }
        if fingerprint(payload) != sum {
            return Err(CkptError::Corrupt(
                "artifact payload checksum mismatch".to_string(),
            ));
        }
        Ok(Artifact { stage, seq, config, payload: payload.to_string() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Artifact {
        Artifact {
            stage: "ts.d1".to_string(),
            seq: 7,
            config: "deadbeefdeadbeef".to_string(),
            payload: "pin 3 ok 1.5e0\npin 4 fail cannot bypass\n".to_string(),
        }
    }

    #[test]
    fn round_trips() {
        let a = sample();
        assert_eq!(Artifact::parse(&a.render()).unwrap(), a);
        // Empty payload is legal (e.g. an empty TS chunk).
        let empty = Artifact { payload: String::new(), ..sample() };
        assert_eq!(Artifact::parse(&empty.render()).unwrap(), empty);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let text = sample().render();
        for cut in 0..text.len() {
            if !text.is_char_boundary(cut) {
                continue;
            }
            let err = Artifact::parse(&text[..cut]).unwrap_err();
            assert_eq!(err.class(), "corrupt", "cut at {cut} must be corrupt, got {err}");
        }
    }

    #[test]
    fn payload_bitflip_is_rejected() {
        let a = sample();
        let flipped = a.render().replace("1.5e0", "1.6e0");
        assert_eq!(Artifact::parse(&flipped).unwrap_err().class(), "corrupt");
    }
}
