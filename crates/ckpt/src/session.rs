//! The on-disk checkpoint session: one directory, one manifest, one
//! (config fingerprint, design) pair. Implements [`StageStore`] with
//! atomic artifact + manifest writes and crash-injection points at every
//! durable transition, so `tmm ckptcheck` can kill a run between any two
//! filesystem effects and resume must still converge bit-identically.

use crate::artifact::Artifact;
use crate::manifest::Manifest;
use crate::{atomic, crash, supervisor, CkptError, StageStore};
use std::path::{Path, PathBuf};
use tmm_obs::fingerprint;

/// Manifest file name inside a checkpoint directory.
pub const MANIFEST_FILE: &str = "manifest.tmm";

/// Replaces anything that would break the whitespace-delimited artifact
/// and manifest grammars with `_`.
fn sanitize(stage: &str) -> String {
    stage
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '.' | '-' | '_') { c } else { '_' })
        .collect()
}

/// An open checkpoint session (see module docs).
#[derive(Debug)]
pub struct Session {
    dir: PathBuf,
    manifest: Manifest,
    resumed: usize,
}

impl Session {
    /// Opens a checkpoint session in `dir`, creating the directory as
    /// needed.
    ///
    /// With `resume = false` a fresh manifest is written (pre-existing
    /// checkpoints are ignored and overwritten as the run progresses).
    /// With `resume = true` an existing manifest is loaded and verified;
    /// a missing manifest starts fresh — there is simply nothing to
    /// resume.
    ///
    /// # Errors
    ///
    /// [`CkptError::Mismatch`] when the existing manifest belongs to a
    /// different config fingerprint or design (stale checkpoints are
    /// rejected, never silently reused); [`CkptError::Corrupt`] when the
    /// manifest fails verification; [`CkptError::Io`] on filesystem
    /// failure.
    pub fn open(
        dir: impl Into<PathBuf>,
        config: &str,
        design: &str,
        resume: bool,
    ) -> Result<Session, CkptError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| {
            CkptError::Io(format!("cannot create checkpoint dir {}: {e}", dir.display()))
        })?;
        let mpath = dir.join(MANIFEST_FILE);
        if resume && mpath.exists() {
            let text = std::fs::read_to_string(&mpath).map_err(|e| {
                CkptError::Io(format!("cannot read manifest {}: {e}", mpath.display()))
            })?;
            let manifest = Manifest::parse(&text)?;
            if manifest.config != config || manifest.design != design {
                return Err(CkptError::Mismatch(format!(
                    "checkpoints in {} were written by config {} for design `{}`; this run is \
                     config {config} for design `{design}` — refusing to resume",
                    dir.display(),
                    manifest.config,
                    manifest.design
                )));
            }
            let resumed = manifest.entry_count();
            tmm_obs::info(
                &[("dir", &dir.display().to_string()), ("entries", &resumed.to_string())],
                "resuming from checkpoint manifest",
            );
            tmm_obs::counter_add("tmm_ckpt_sessions_resumed_total", &[], 1);
            return Ok(Session { dir, manifest, resumed });
        }
        let session = Session { dir, manifest: Manifest::new(config, design), resumed: 0 };
        session.persist()?;
        Ok(session)
    }

    /// The checkpoint directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of manifest entries found at resume time (0 for fresh).
    #[must_use]
    pub fn resumed_entries(&self) -> usize {
        self.resumed
    }

    /// Read access to the manifest (for harnesses and diagnostics).
    #[must_use]
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Records a free-form manifest note and persists it.
    ///
    /// # Errors
    ///
    /// [`CkptError::Io`] on filesystem failure.
    pub fn note(&mut self, key: &str, value: &str) -> Result<(), CkptError> {
        self.manifest.set_note(&sanitize(key), value);
        self.persist()
    }

    fn persist(&self) -> Result<(), CkptError> {
        atomic::atomic_write_str(self.dir.join(MANIFEST_FILE), &self.manifest.render())
    }
}

impl StageStore for Session {
    fn latest(&self, stage: &str) -> Option<u64> {
        self.manifest.latest(&sanitize(stage))
    }

    fn load(&mut self, stage: &str, seq: u64) -> Result<Option<String>, CkptError> {
        let stage = sanitize(stage);
        let Some((file, sum)) = self.manifest.entry(&stage, seq) else {
            return Ok(None);
        };
        let path = self.dir.join(file);
        let text = std::fs::read_to_string(&path).map_err(|e| {
            CkptError::Corrupt(format!(
                "manifest lists {} but it cannot be read: {e}",
                path.display()
            ))
        })?;
        let art = Artifact::parse(&text)?;
        if art.stage != stage || art.seq != seq || art.config != self.manifest.config {
            return Err(CkptError::Corrupt(format!(
                "{} is artifact {}/{} (config {}), manifest expected {stage}/{seq} (config {})",
                path.display(),
                art.stage,
                art.seq,
                art.config,
                self.manifest.config
            )));
        }
        if fingerprint(&art.payload) != sum {
            return Err(CkptError::Corrupt(format!(
                "{} payload checksum disagrees with the manifest",
                path.display()
            )));
        }
        tmm_obs::counter_add("tmm_ckpt_loads_total", &[], 1);
        tmm_obs::debug(&[("stage", &stage), ("seq", &seq.to_string())], "checkpoint loaded");
        Ok(Some(art.payload))
    }

    fn save(&mut self, stage: &str, seq: u64, payload: &str) -> Result<(), CkptError> {
        let stage = sanitize(stage);
        // Kill window 1: nothing durable yet — resume recomputes this
        // artifact from the previous one.
        crash::crash_point(&format!("ckpt.{stage}.save"));
        let file = format!("{stage}.{seq}.ckpt");
        let text = Artifact::render_parts(&stage, seq, &self.manifest.config, payload);
        atomic::atomic_write_str(self.dir.join(&file), &text)?;
        // Kill window 2: artifact durable, manifest not — the orphaned
        // file is invisible to resume (the manifest is the index) and
        // gets overwritten by the recompute.
        crash::crash_point(&format!("ckpt.{stage}.commit"));
        self.manifest.upsert(&stage, seq, &file, &fingerprint(payload));
        self.persist()?;
        supervisor::heartbeat();
        tmm_obs::counter_add("tmm_ckpt_saves_total", &[], 1);
        Ok(())
    }

    fn mark_done(&mut self, stage: &str) -> Result<(), CkptError> {
        let stage = sanitize(stage);
        // Kill window 3: all stage artifacts durable, completion marker
        // not — resume replays the stage from its artifacts.
        crash::crash_point(&format!("ckpt.{stage}.done"));
        self.manifest.mark_done(&stage);
        self.persist()?;
        supervisor::heartbeat();
        Ok(())
    }

    fn is_done(&self, stage: &str) -> bool {
        self.manifest.is_done(&sanitize(stage))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tmm-ckpt-session-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_resume_round_trip() {
        let dir = scratch("roundtrip");
        let mut s = Session::open(&dir, "fp1", "d1", false).unwrap();
        s.save("ts.d1", 0, "chunk zero").unwrap();
        s.save("ts.d1", 1, "chunk one").unwrap();
        s.mark_done("ts.d1").unwrap();
        s.note("macro_model_sum", "abcd").unwrap();
        drop(s);

        let mut r = Session::open(&dir, "fp1", "d1", true).unwrap();
        assert_eq!(r.resumed_entries(), 2);
        assert_eq!(r.latest("ts.d1"), Some(1));
        assert_eq!(r.load("ts.d1", 0).unwrap().as_deref(), Some("chunk zero"));
        assert!(r.is_done("ts.d1"));
        assert_eq!(r.manifest().note("macro_model_sum"), Some("abcd"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_fingerprint_is_rejected() {
        let dir = scratch("mismatch");
        drop(Session::open(&dir, "fp1", "d1", false).unwrap());
        let err = Session::open(&dir, "fp2", "d1", true).unwrap_err();
        assert_eq!(err.class(), "mismatch");
        let err = Session::open(&dir, "fp1", "other", true).unwrap_err();
        assert_eq!(err.class(), "mismatch");
        // A fresh (non-resume) open of the same dir is always allowed.
        assert!(Session::open(&dir, "fp2", "d2", false).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_without_manifest_starts_fresh() {
        let dir = scratch("fresh");
        let s = Session::open(&dir, "fp1", "d1", true).unwrap();
        assert_eq!(s.resumed_entries(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_artifact_is_rejected_at_load() {
        let dir = scratch("corrupt");
        let mut s = Session::open(&dir, "fp1", "d1", false).unwrap();
        s.save("merge", 0, "pass zero trace").unwrap();
        // Tear the artifact behind the manifest's back.
        let path = dir.join("merge.0.ckpt");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        let mut r = Session::open(&dir, "fp1", "d1", true).unwrap();
        assert_eq!(r.load("merge", 0).unwrap_err().class(), "corrupt");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stage_names_are_sanitized() {
        let dir = scratch("sanitize");
        let mut s = Session::open(&dir, "fp1", "d1", false).unwrap();
        s.save("ts my design/2", 0, "x").unwrap();
        assert_eq!(s.latest("ts my design/2"), Some(0));
        assert_eq!(s.load("ts_my_design_2", 0).unwrap().as_deref(), Some("x"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
