//! Deterministic crash injection for the resume-equivalence harness.
//!
//! The pipeline calls [`crash_point`] at every durable transition (before
//! an artifact write, after it, at completion markers). Normally that is
//! a counter bump; when `TMM_CRASH_AT=<point>:<n>` (kill at the n-th hit
//! of one named point) or `TMM_CRASH_AT=*:<n>` (kill at the n-th hit
//! overall) is set, the process aborts there — exactly the way `kill -9`
//! mid-write would, but seeded and reproducible. `tmm ckptcheck`
//! enumerates the points of an uninterrupted run via
//! `TMM_CKPT_TALLY_OUT` and then replays kills across them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Schema tag of the tally file written via `TMM_CKPT_TALLY_OUT`.
pub const TALLY_SCHEMA: &str = "tmm-crash-tally/v1";

fn armed() -> Option<&'static (String, u64)> {
    static SPEC: OnceLock<Option<(String, u64)>> = OnceLock::new();
    SPEC.get_or_init(|| {
        let raw = std::env::var("TMM_CRASH_AT").ok()?;
        let (point, n) = raw.rsplit_once(':')?;
        let n: u64 = n.parse().ok()?;
        if point.is_empty() || n == 0 {
            return None;
        }
        Some((point.to_string(), n))
    })
    .as_ref()
}

fn hits() -> &'static Mutex<BTreeMap<String, u64>> {
    static HITS: OnceLock<Mutex<BTreeMap<String, u64>>> = OnceLock::new();
    HITS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

static TOTAL: AtomicU64 = AtomicU64::new(0);

/// The pure arming decision, factored out so it is unit-testable (the
/// abort in [`crash_point`] is not). `named_hit`/`total_hit` are 1-based.
#[must_use]
pub fn should_crash(spec: &(String, u64), name: &str, named_hit: u64, total_hit: u64) -> bool {
    if spec.0 == "*" {
        total_hit == spec.1
    } else {
        spec.0 == name && named_hit == spec.1
    }
}

/// Marks one durable transition. Counts the hit (see [`tally`]), beats
/// the deadline heartbeat, and — when `TMM_CRASH_AT` arms this hit —
/// aborts the process, simulating a kill at exactly this point.
pub fn crash_point(name: &str) {
    crate::supervisor::heartbeat();
    let total = TOTAL.fetch_add(1, Ordering::SeqCst) + 1;
    let named = {
        let mut map = hits().lock().unwrap_or_else(PoisonError::into_inner);
        let c = map.entry(name.to_string()).or_insert(0);
        *c += 1;
        *c
    };
    if let Some(spec) = armed() {
        if should_crash(spec, name, named, total) {
            eprintln!(
                "tmm-ckpt: injected crash at point `{name}` (hit {total}, TMM_CRASH_AT={}:{})",
                spec.0, spec.1
            );
            std::process::abort();
        }
    }
}

/// Total crash-point hits so far, across all points.
#[must_use]
pub fn total_hits() -> u64 {
    TOTAL.load(Ordering::SeqCst)
}

/// Per-point hit counts, sorted by point name.
#[must_use]
pub fn tally() -> Vec<(String, u64)> {
    hits()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|(k, &v)| (k.clone(), v))
        .collect()
}

/// Renders the tally document (`tmm-crash-tally/v1`).
#[must_use]
pub fn render_tally() -> String {
    let mut out = format!("{TALLY_SCHEMA}\ntotal {}\n", total_hits());
    for (name, count) in tally() {
        out.push_str(&format!("point {name} {count}\n"));
    }
    out
}

/// Writes the tally to `$TMM_CKPT_TALLY_OUT` when that variable is set
/// (atomic write; failures go to stderr — the tally is diagnostics, not
/// pipeline state). Called at the end of `tmm main` on every path.
pub fn write_tally_if_requested() {
    let Ok(path) = std::env::var("TMM_CKPT_TALLY_OUT") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    if let Err(e) = crate::atomic::atomic_write_str(&path, &render_tally()) {
        eprintln!("tmm-ckpt: cannot write crash tally to {path}: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wildcard_spec_matches_total_hit_index_only() {
        let spec = ("*".to_string(), 3);
        assert!(!should_crash(&spec, "a", 1, 1));
        assert!(!should_crash(&spec, "b", 2, 2));
        assert!(should_crash(&spec, "a", 2, 3));
        assert!(!should_crash(&spec, "a", 3, 4));
    }

    #[test]
    fn named_spec_matches_per_point_hit_index() {
        let spec = ("ckpt.train.save".to_string(), 2);
        assert!(!should_crash(&spec, "ckpt.train.save", 1, 10));
        assert!(should_crash(&spec, "ckpt.train.save", 2, 99));
        assert!(!should_crash(&spec, "ckpt.merge.save", 2, 2));
    }

    #[test]
    fn unarmed_points_only_count() {
        // No TMM_CRASH_AT in the test environment: hitting points must
        // not abort, and the tally must reflect them.
        crash_point("test.point.a");
        crash_point("test.point.a");
        crash_point("test.point.b");
        let t = tally();
        let get = |n: &str| t.iter().find(|(k, _)| k == n).map(|&(_, v)| v);
        assert!(get("test.point.a").unwrap() >= 2);
        assert!(get("test.point.b").unwrap() >= 1);
        assert!(total_hits() >= 3);
        let doc = render_tally();
        assert!(doc.starts_with(TALLY_SCHEMA));
        assert!(doc.contains("point test.point.a "));
    }
}
