//! Seeded, replayable ECO (engineering change order) edit streams.
//!
//! Where [`crate::FaultOp`] models *damage* — corruption a robust
//! pipeline must reject — an [`EcoOp`] models *legitimate change*: the
//! small, local netlist edits a physical-design flow emits after timing
//! closure (cell resizes, buffer insertions, cell deletions). The
//! streaming-ECO pipeline replays these against a frozen
//! [`DesignCore`] as [`GraphView`] overlay edits and regenerates the
//! macro model incrementally; the differential checker then asserts the
//! incremental result is byte-identical to a from-scratch rebuild after
//! every prefix of the stream.
//!
//! Determinism contract: an [`EcoStream`] is a pure function of
//! `(core, edit count, seed)`. Edit `k` is drawn from an RNG seeded by
//! `seed ^ (k · 0x9E37_79B9)` against the view state *after* edits
//! `0..k`, so every prefix of a stream equals the stream generated with
//! that prefix length — the property the prefix-replay oracle depends
//! on. All operators are data-path only: clock arcs, clock-network
//! nodes, ports and flip-flop pins are never touched, which keeps
//! boundary reachability (and with it the TS denominator structure)
//! intact across the stream.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use tmm_sta::graph::{ArcId, NodeId};
use tmm_sta::view::{DesignCore, GraphView, TimingGraph};

/// One ECO operator kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EcoOp {
    /// Replace a cell arc with a copy whose delay/slew tables are scaled
    /// by a factor (modelling a drive-strength swap).
    CellResize,
    /// Split an arc `u → v` into `u → b → v` with a new buffer node `b`.
    BufferInsert,
    /// Remove a bypassable internal node, serially merging its arcs.
    CellDelete,
}

impl EcoOp {
    /// Every operator, in a stable order.
    pub const ALL: [EcoOp; 3] = [EcoOp::CellResize, EcoOp::BufferInsert, EcoOp::CellDelete];

    /// Stable lower-case name for reports and bench records.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EcoOp::CellResize => "cell-resize",
            EcoOp::BufferInsert => "buffer-insert",
            EcoOp::CellDelete => "cell-delete",
        }
    }
}

/// One concrete, fully-resolved edit of an [`EcoStream`].
///
/// Targets are stored as raw ids against the deterministic id sequence
/// of the stream's core: edit `k` may reference arcs/nodes created by
/// edits `0..k` (replacement arcs and buffer nodes get ids continuing
/// after the core's slots, in creation order).
#[derive(Debug, Clone, PartialEq)]
pub enum EcoEdit {
    /// Scale arc `arc`'s timing by `factor`.
    CellResize {
        /// Target arc id.
        arc: u32,
        /// Finite, positive scale factor.
        factor: f64,
    },
    /// Insert buffer node `name` on arc `arc` with a trailing wire of
    /// `wire_delay` ps.
    BufferInsert {
        /// Target arc id.
        arc: u32,
        /// Name of the new buffer node.
        name: String,
        /// Wire delay (ps) of the buffer-to-sink arc.
        wire_delay: f64,
    },
    /// Bypass (serially merge away) node `node`.
    CellDelete {
        /// Target node id.
        node: u32,
    },
}

impl EcoEdit {
    /// The operator kind of this edit.
    #[must_use]
    pub fn op(&self) -> EcoOp {
        match self {
            EcoEdit::CellResize { .. } => EcoOp::CellResize,
            EcoEdit::BufferInsert { .. } => EcoOp::BufferInsert,
            EcoEdit::CellDelete { .. } => EcoOp::CellDelete,
        }
    }

    /// Applies this edit to `view`.
    ///
    /// # Errors
    ///
    /// Propagates [`tmm_sta::StaError::IllegalEdit`] when the target is
    /// no longer eligible — impossible when the edits of a stream are
    /// applied in prefix order to a fresh view of the stream's core.
    pub fn apply(&self, view: &mut GraphView) -> tmm_sta::Result<()> {
        match self {
            EcoEdit::CellResize { arc, factor } => {
                view.resize_arc(ArcId(*arc), *factor).map(|_| ())
            }
            EcoEdit::BufferInsert { arc, name, wire_delay } => {
                view.insert_node_on_arc(ArcId(*arc), name, *wire_delay).map(|_| ())
            }
            EcoEdit::CellDelete { node } => view.bypass_node(NodeId(*node)),
        }
    }

    /// One-line human-readable description, stable across runs.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            EcoEdit::CellResize { arc, factor } => {
                format!("{} arc {} x{:.4}", self.op().name(), arc, factor)
            }
            EcoEdit::BufferInsert { arc, name, wire_delay } => {
                format!("{} arc {} {} +{:.2}ps", self.op().name(), arc, name, wire_delay)
            }
            EcoEdit::CellDelete { node } => format!("{} node {}", self.op().name(), node),
        }
    }
}

/// A deterministic sequence of ECO edits over one frozen core.
#[derive(Debug, Clone)]
pub struct EcoStream {
    seed: u64,
    edits: Vec<EcoEdit>,
}

impl EcoStream {
    /// Generates a stream of up to `count` edits against `core`,
    /// deterministically in `seed`. Each edit is drawn against the view
    /// state left by its predecessors, so it is guaranteed to apply
    /// cleanly in sequence; generation stops early only when the design
    /// runs out of eligible edit sites (tiny designs under heavy
    /// deletion).
    #[must_use]
    pub fn generate(core: &Arc<DesignCore>, count: usize, seed: u64) -> EcoStream {
        let mut sim = GraphView::new(core.clone());
        let mut edits = Vec::with_capacity(count);
        for idx in 0..count {
            let mut rng = StdRng::seed_from_u64(seed ^ (idx as u64).wrapping_mul(0x9E37_79B9));
            let Some(edit) = next_edit(&mut sim, &mut rng, idx) else {
                break;
            };
            if edit.apply(&mut sim).is_err() {
                break;
            }
            edits.push(edit);
        }
        EcoStream { seed, edits }
    }

    /// The seed this stream was generated with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The edits, in application order.
    #[must_use]
    pub fn edits(&self) -> &[EcoEdit] {
        &self.edits
    }

    /// Number of edits in the stream.
    #[must_use]
    pub fn len(&self) -> usize {
        self.edits.len()
    }

    /// `true` when the stream holds no edits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }

    /// Applies the first `prefix` edits to a fresh view of `core` and
    /// returns it.
    ///
    /// # Errors
    ///
    /// Propagates the first failing edit (impossible when `core` is the
    /// stream's own core and `prefix ≤ len()`).
    pub fn apply_prefix(
        &self,
        core: &Arc<DesignCore>,
        prefix: usize,
    ) -> tmm_sta::Result<GraphView> {
        let mut view = GraphView::new(core.clone());
        for edit in &self.edits[..prefix.min(self.edits.len())] {
            edit.apply(&mut view)?;
        }
        Ok(view)
    }
}

/// Arc ids currently eligible for a data-path edit: live, not hidden,
/// not on the clock network, both endpoints live.
fn eligible_arcs(view: &GraphView) -> Vec<u32> {
    let total = view.core().arc_count() + view.extra_arc_ids().count();
    (0..total as u32)
        .filter(|&i| {
            let id = ArcId(i);
            if view.arc_hidden(id) {
                return false;
            }
            let arc = TimingGraph::arc(view, id);
            !arc.dead
                && !arc.is_clock
                && !TimingGraph::node_dead(view, arc.from)
                && !TimingGraph::node_dead(view, arc.to)
        })
        .collect()
}

/// Node ids currently eligible for deletion: bypassable internal
/// data-path nodes with at least one fan-in *and* one fan-out, so the
/// merge preserves every through-path (and with it boundary
/// reachability).
fn eligible_deletes(view: &GraphView) -> Vec<u32> {
    (0..view.core().node_count() as u32)
        .filter(|&i| {
            let n = NodeId(i);
            view.can_bypass(n)
                && !view.node_is_clock_network(n)
                && TimingGraph::in_degree(view, n) >= 1
                && TimingGraph::out_degree(view, n) >= 1
        })
        .collect()
}

fn next_edit(sim: &mut GraphView, rng: &mut StdRng, idx: usize) -> Option<EcoEdit> {
    // Weighted draw: resizes dominate real ECO streams; deletions are
    // rarest because each one permanently shrinks the candidate pool.
    let roll = rng.gen_range(0u32..10);
    let preferred = if roll < 5 {
        EcoOp::CellResize
    } else if roll < 8 {
        EcoOp::BufferInsert
    } else {
        EcoOp::CellDelete
    };
    // Deterministic fallback order when the preferred op has no site.
    let order = [preferred, EcoOp::CellResize, EcoOp::BufferInsert, EcoOp::CellDelete];
    for op in order {
        match op {
            EcoOp::CellResize => {
                let arcs = eligible_arcs(sim);
                if arcs.is_empty() {
                    continue;
                }
                let arc = arcs[rng.gen_range(0..arcs.len())];
                // 0.6..0.95 models an upsize (faster), 1.05..1.5 a
                // downsize; skip the no-op band around 1.0.
                let factor = if rng.gen_bool(0.5) {
                    rng.gen_range(0.60..0.95)
                } else {
                    rng.gen_range(1.05..1.50)
                };
                return Some(EcoEdit::CellResize { arc, factor });
            }
            EcoOp::BufferInsert => {
                let arcs = eligible_arcs(sim);
                if arcs.is_empty() {
                    continue;
                }
                let arc = arcs[rng.gen_range(0..arcs.len())];
                let wire_delay = rng.gen_range(0.5..6.0);
                return Some(EcoEdit::BufferInsert {
                    arc,
                    name: format!("eco_buf_{idx}"),
                    wire_delay,
                });
            }
            EcoOp::CellDelete => {
                let nodes = eligible_deletes(sim);
                if nodes.is_empty() {
                    continue;
                }
                let node = nodes[rng.gen_range(0..nodes.len())];
                return Some(EcoEdit::CellDelete { node });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmm_sta::constraints::Context;
    use tmm_sta::graph::ArcGraph;
    use tmm_sta::liberty::Library;
    use tmm_sta::propagate::Analysis;

    fn demo_core() -> (ArcGraph, Arc<DesignCore>) {
        let lib = Library::synthetic(5);
        let netlist = tmm_circuits::CircuitSpec::new("eco_demo")
            .inputs(3)
            .outputs(3)
            .register_banks(1, 3)
            .cloud(2, 4)
            .seed(41)
            .generate(&lib)
            .unwrap();
        let g = ArcGraph::from_netlist(&netlist, &lib).unwrap();
        let core = DesignCore::freeze(&g);
        (g, core)
    }

    #[test]
    fn streams_are_replay_deterministic_and_prefix_stable() {
        let (_, core) = demo_core();
        let a = EcoStream::generate(&core, 25, 7);
        let b = EcoStream::generate(&core, 25, 7);
        assert_eq!(a.edits(), b.edits(), "same seed must replay identically");
        assert!(!a.is_empty());
        // Prefix property: the first k edits of a longer stream equal
        // the k-edit stream.
        let short = EcoStream::generate(&core, 10, 7);
        assert_eq!(&a.edits()[..short.len()], short.edits());
        // A different seed must eventually diverge.
        let c = EcoStream::generate(&core, 25, 8);
        assert_ne!(a.edits(), c.edits());
    }

    #[test]
    fn every_prefix_applies_cleanly_and_times() {
        let (g, core) = demo_core();
        let stream = EcoStream::generate(&core, 15, 3);
        let ctx = Context::nominal(&g);
        for prefix in 0..=stream.len() {
            let view = stream.apply_prefix(&core, prefix).unwrap();
            let m = view.materialize().unwrap();
            m.validate().unwrap();
            let a = Analysis::run(&view, &ctx).unwrap();
            let b = Analysis::run(&m, &ctx).unwrap();
            assert_eq!(
                a.boundary().diff(b.boundary()).max,
                0.0,
                "prefix {prefix} view and materialization diverged"
            );
        }
    }

    #[test]
    fn edits_stay_on_the_data_path() {
        let (_, core) = demo_core();
        let stream = EcoStream::generate(&core, 25, 11);
        let mut view = GraphView::new(core.clone());
        for edit in stream.edits() {
            match edit {
                EcoEdit::CellResize { arc, .. } | EcoEdit::BufferInsert { arc, .. } => {
                    let a = TimingGraph::arc(&view, ArcId(*arc));
                    assert!(!a.is_clock, "{} targets a clock arc", edit.describe());
                }
                EcoEdit::CellDelete { node } => {
                    assert!(
                        !view.node_is_clock_network(NodeId(*node)),
                        "{} targets the clock network",
                        edit.describe()
                    );
                }
            }
            edit.apply(&mut view).unwrap();
        }
    }
}
