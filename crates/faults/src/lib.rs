//! Deterministic fault injection for the timing-macro-modeling stack.
//!
//! A hardened pipeline is only as trustworthy as the failures it has
//! been tested against. This crate provides seed-parameterized
//! *corruption operators* in two flavours:
//!
//! - **Textual** ([`corrupt_text`]): mangle serialized artifacts
//!   (library, netlist, macro model text) before they reach a parser.
//!   Every operator has a textual interpretation, so parser robustness
//!   can be swept across the full operator × seed matrix.
//! - **Structural** ([`corrupt_library`], [`corrupt_graph`]): build
//!   in-memory structures that are *well-formed but semantically
//!   poisoned* — NaN LUT entries, permuted axes, negative caps,
//!   combinational cycles, dropped clocks — the kind of damage that
//!   slips past constructors and must be caught by
//!   `tmm_sta::validate`.
//!
//! All operators are pure functions of `(input, seed)`: the same seed
//! always produces the same corruption, so every failure found by a
//! fuzz sweep is replayable as a one-line regression test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eco;

pub use eco::{EcoEdit, EcoOp, EcoStream};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use tmm_sta::graph::{ArcGraph, ArcTiming, NodeId, NodeKind};
use tmm_sta::liberty::{ArcTables, Library, Lut2, TimingSense};
use tmm_sta::Split;

/// One corruption operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// Cut the text off at a random position.
    TruncateText,
    /// Overwrite a random span with random printable junk.
    GarbleText,
    /// Delete one random line.
    DeleteLine,
    /// Duplicate one random line in place.
    DuplicateLine,
    /// Swap two random whitespace-separated tokens.
    SwapTokens,
    /// Replace a numeric token with `NaN`.
    InjectNanToken,
    /// Poison lookup-table entries with NaN.
    NanLutEntries,
    /// Poison lookup-table entries with infinity.
    InfLutEntries,
    /// Swap two entries of a lookup-table axis, breaking monotonicity.
    PermuteLutAxis,
    /// Make a pin capacitance (or node load) negative.
    NegativePinCap,
    /// Duplicate a net declaration (textual) — double-connected pins.
    DuplicateNet,
    /// Orphan a pin: textually delete a token, structurally add a
    /// disconnected node.
    DanglingPin,
    /// Rewire connectivity into a combinational cycle.
    CyclicRewire,
    /// Remove the clock: delete clock lines or kill the clock source.
    DropClock,
}

impl FaultOp {
    /// Every operator, in a stable order.
    pub const ALL: [FaultOp; 14] = [
        FaultOp::TruncateText,
        FaultOp::GarbleText,
        FaultOp::DeleteLine,
        FaultOp::DuplicateLine,
        FaultOp::SwapTokens,
        FaultOp::InjectNanToken,
        FaultOp::NanLutEntries,
        FaultOp::InfLutEntries,
        FaultOp::PermuteLutAxis,
        FaultOp::NegativePinCap,
        FaultOp::DuplicateNet,
        FaultOp::DanglingPin,
        FaultOp::CyclicRewire,
        FaultOp::DropClock,
    ];

    /// Operators with an in-memory [`Library`] interpretation.
    pub const LIBRARY: [FaultOp; 4] = [
        FaultOp::NanLutEntries,
        FaultOp::InfLutEntries,
        FaultOp::PermuteLutAxis,
        FaultOp::NegativePinCap,
    ];

    /// Operators with an in-memory [`ArcGraph`] interpretation.
    pub const GRAPH: [FaultOp; 7] = [
        FaultOp::NanLutEntries,
        FaultOp::InfLutEntries,
        FaultOp::PermuteLutAxis,
        FaultOp::NegativePinCap,
        FaultOp::DanglingPin,
        FaultOp::CyclicRewire,
        FaultOp::DropClock,
    ];

    /// Stable lower-case name for reports and CLI flags.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultOp::TruncateText => "truncate-text",
            FaultOp::GarbleText => "garble-text",
            FaultOp::DeleteLine => "delete-line",
            FaultOp::DuplicateLine => "duplicate-line",
            FaultOp::SwapTokens => "swap-tokens",
            FaultOp::InjectNanToken => "inject-nan-token",
            FaultOp::NanLutEntries => "nan-lut-entries",
            FaultOp::InfLutEntries => "inf-lut-entries",
            FaultOp::PermuteLutAxis => "permute-lut-axis",
            FaultOp::NegativePinCap => "negative-pin-cap",
            FaultOp::DuplicateNet => "duplicate-net",
            FaultOp::DanglingPin => "dangling-pin",
            FaultOp::CyclicRewire => "cyclic-rewire",
            FaultOp::DropClock => "drop-clock",
        }
    }
}

// ---------------------------------------------------------------------
// Textual corruption.
// ---------------------------------------------------------------------

/// Byte ranges of whitespace-separated tokens.
fn token_spans(text: &str) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut start = None;
    for (i, c) in text.char_indices() {
        if c.is_whitespace() {
            if let Some(s) = start.take() {
                spans.push((s, i));
            }
        } else if start.is_none() {
            start = Some(i);
        }
    }
    if let Some(s) = start {
        spans.push((s, text.len()));
    }
    spans
}

fn looks_numeric(tok: &str) -> bool {
    let t = tok.trim_end_matches([',', ';', ')']);
    !t.is_empty() && t.parse::<f64>().is_ok()
}

/// Replaces the token at `span` with `replacement`.
fn splice(text: &str, span: (usize, usize), replacement: &str) -> String {
    let mut out = String::with_capacity(text.len());
    out.push_str(&text[..span.0]);
    out.push_str(replacement);
    out.push_str(&text[span.1..]);
    out
}

/// Swaps the contents of two non-overlapping token spans.
fn swap_spans(text: &str, a: (usize, usize), b: (usize, usize)) -> String {
    let (first, second) = if a.0 <= b.0 { (a, b) } else { (b, a) };
    let mut out = String::with_capacity(text.len());
    out.push_str(&text[..first.0]);
    out.push_str(&text[second.0..second.1]);
    out.push_str(&text[first.1..second.0]);
    out.push_str(&text[first.0..first.1]);
    out.push_str(&text[second.1..]);
    out
}

fn pick_span<F: Fn(&str) -> bool>(
    text: &str,
    rng: &mut StdRng,
    accept: F,
) -> Option<(usize, usize)> {
    let spans: Vec<_> = token_spans(text)
        .into_iter()
        .filter(|&(s, e)| accept(&text[s..e]))
        .collect();
    spans.as_slice().choose(rng).copied()
}

/// Applies `op`'s textual interpretation to `text`, deterministically
/// in `seed`. Operators that find no applicable site (e.g. no numeric
/// token to poison) return the input unchanged; callers can detect this
/// by comparison when they need a guaranteed mutation.
#[must_use]
pub fn corrupt_text(op: FaultOp, text: &str, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed ^ (op as u64).wrapping_mul(0x9E37_79B9));
    let lines: Vec<&str> = text.lines().collect();
    match op {
        FaultOp::TruncateText => {
            if text.is_empty() {
                return String::new();
            }
            let mut cut = rng.gen_range(0..text.len());
            while cut > 0 && !text.is_char_boundary(cut) {
                cut -= 1;
            }
            text[..cut].to_string()
        }
        FaultOp::GarbleText => {
            if text.is_empty() {
                return String::new();
            }
            let mut start = rng.gen_range(0..text.len());
            while start > 0 && !text.is_char_boundary(start) {
                start -= 1;
            }
            let mut end = (start + rng.gen_range(1..32usize)).min(text.len());
            while end < text.len() && !text.is_char_boundary(end) {
                end += 1;
            }
            let junk: String = (0..(end - start))
                .map(|_| {
                    // Printable ASCII, biased away from whitespace so the
                    // garbage tends to fuse tokens.
                    char::from(rng.gen_range(33u8..127))
                })
                .collect();
            splice(text, (start, end), &junk)
        }
        FaultOp::DeleteLine => {
            if lines.is_empty() {
                return String::new();
            }
            let victim = rng.gen_range(0..lines.len());
            lines
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != victim)
                .map(|(_, l)| *l)
                .collect::<Vec<_>>()
                .join("\n")
        }
        FaultOp::DuplicateLine => {
            if lines.is_empty() {
                return String::new();
            }
            let victim = rng.gen_range(0..lines.len());
            let mut out: Vec<&str> = Vec::with_capacity(lines.len() + 1);
            for (i, l) in lines.iter().enumerate() {
                out.push(l);
                if i == victim {
                    out.push(l);
                }
            }
            out.join("\n")
        }
        FaultOp::SwapTokens => {
            let spans = token_spans(text);
            if spans.len() < 2 {
                return text.to_string();
            }
            let a = spans[rng.gen_range(0..spans.len())];
            let b = spans[rng.gen_range(0..spans.len())];
            if a == b {
                return text.to_string();
            }
            swap_spans(text, a, b)
        }
        FaultOp::InjectNanToken | FaultOp::NanLutEntries => {
            match pick_span(text, &mut rng, looks_numeric) {
                Some(span) => splice(text, span, "NaN"),
                None => text.to_string(),
            }
        }
        FaultOp::InfLutEntries => match pick_span(text, &mut rng, looks_numeric) {
            Some(span) => splice(text, span, "inf"),
            None => text.to_string(),
        },
        FaultOp::PermuteLutAxis => {
            // Swap two numeric tokens on the same line, preferring lines
            // with several numbers (axis/value rows).
            let numeric_lines: Vec<usize> = lines
                .iter()
                .enumerate()
                .filter(|(_, l)| token_spans(l).iter().filter(|&&(s, e)| looks_numeric(&l[s..e])).count() >= 2)
                .map(|(i, _)| i)
                .collect();
            let Some(&li) = numeric_lines.as_slice().choose(&mut rng) else {
                return text.to_string();
            };
            let line = lines[li];
            let spans: Vec<_> = token_spans(line)
                .into_iter()
                .filter(|&(s, e)| looks_numeric(&line[s..e]))
                .collect();
            let a = spans[rng.gen_range(0..spans.len())];
            let b = spans[rng.gen_range(0..spans.len())];
            let new_line = if a == b { line.to_string() } else { swap_spans(line, a, b) };
            lines
                .iter()
                .enumerate()
                .map(|(i, l)| if i == li { new_line.as_str() } else { *l })
                .collect::<Vec<_>>()
                .join("\n")
        }
        FaultOp::NegativePinCap => match pick_span(text, &mut rng, |t| {
            looks_numeric(t) && !t.starts_with('-')
        }) {
            Some(span) => {
                let negated = format!("-{}", &text[span.0..span.1]);
                splice(text, span, &negated)
            }
            None => text.to_string(),
        },
        FaultOp::DuplicateNet => {
            let candidates: Vec<usize> = lines
                .iter()
                .enumerate()
                .filter(|(_, l)| l.contains("net") || l.contains("connect"))
                .map(|(i, _)| i)
                .collect();
            let victim = match candidates.as_slice().choose(&mut rng) {
                Some(&i) => i,
                None if !lines.is_empty() => rng.gen_range(0..lines.len()),
                None => return String::new(),
            };
            let mut out: Vec<&str> = Vec::with_capacity(lines.len() + 1);
            for (i, l) in lines.iter().enumerate() {
                out.push(l);
                if i == victim {
                    out.push(l);
                }
            }
            out.join("\n")
        }
        FaultOp::DanglingPin => {
            let spans = token_spans(text);
            match spans.as_slice().choose(&mut rng) {
                Some(&span) => splice(text, span, ""),
                None => text.to_string(),
            }
        }
        FaultOp::CyclicRewire => {
            // Swap two identifier (non-numeric) tokens, crossing wires.
            let spans: Vec<_> = token_spans(text)
                .into_iter()
                .filter(|&(s, e)| !looks_numeric(&text[s..e]))
                .collect();
            if spans.len() < 2 {
                return text.to_string();
            }
            let a = spans[rng.gen_range(0..spans.len())];
            let b = spans[rng.gen_range(0..spans.len())];
            if a == b {
                return text.to_string();
            }
            swap_spans(text, a, b)
        }
        FaultOp::DropClock => {
            let keep: Vec<&str> = lines
                .iter()
                .filter(|l| !l.to_ascii_lowercase().contains("clock"))
                .copied()
                .collect();
            if keep.len() == lines.len() && !lines.is_empty() {
                // No clock lines: fall back to deleting a random line.
                let victim = rng.gen_range(0..lines.len());
                return lines
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != victim)
                    .map(|(_, l)| *l)
                    .collect::<Vec<_>>()
                    .join("\n");
            }
            keep.join("\n")
        }
    }
}

// ---------------------------------------------------------------------
// Structural corruption.
// ---------------------------------------------------------------------

/// Rebuilds one LUT of `tables` with `poison` applied.
fn poison_tables(
    tables: &ArcTables,
    rng: &mut StdRng,
    poison: impl Fn(&Lut2, &mut StdRng) -> Lut2,
) -> ArcTables {
    let mut out = tables.clone();
    let which = rng.gen_range(0u32..4);
    let lut = match which {
        0 => &mut out.delay.rise,
        1 => &mut out.delay.fall,
        2 => &mut out.slew.rise,
        _ => &mut out.slew.fall,
    };
    *lut = poison(lut, rng);
    out
}

fn poison_value(lut: &Lut2, rng: &mut StdRng, bad: f64) -> Lut2 {
    let mut values = lut.values().to_vec();
    let i = rng.gen_range(0..values.len());
    values[i] = bad;
    Lut2::new_unchecked(lut.slew_axis().to_vec(), lut.load_axis().to_vec(), values)
}

fn permute_axis(lut: &Lut2, rng: &mut StdRng) -> Lut2 {
    let mut slew = lut.slew_axis().to_vec();
    let mut load = lut.load_axis().to_vec();
    let axis: &mut Vec<f64> = if rng.gen_bool(0.5) { &mut slew } else { &mut load };
    if axis.len() >= 2 {
        let i = rng.gen_range(0..axis.len() - 1);
        axis.swap(i, i + 1);
    }
    Lut2::new_unchecked(slew, load, lut.values().to_vec())
}

/// Applies `op`'s [`Library`] interpretation, returning the corrupted
/// copy, or `None` when `op` has no library interpretation (see
/// [`FaultOp::LIBRARY`]).
#[must_use]
pub fn corrupt_library(op: FaultOp, library: &Library, seed: u64) -> Option<Library> {
    if !FaultOp::LIBRARY.contains(&op) {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed ^ (op as u64).wrapping_mul(0x9E37_79B9));
    let templates = library.templates();
    if templates.is_empty() {
        return Some(library.clone());
    }
    let victim = rng.gen_range(0..templates.len());
    let mut out = Library::empty(library.name());
    for (ti, tmpl) in templates.iter().enumerate() {
        let mut t = tmpl.clone();
        if ti == victim {
            match op {
                FaultOp::NegativePinCap => {
                    if let Some(pin) = t.pins.iter_mut().find(|p| p.cap > 0.0) {
                        pin.cap = -pin.cap;
                    } else if let Some(pin) = t.pins.first_mut() {
                        pin.cap = -1.0;
                    }
                }
                FaultOp::NanLutEntries | FaultOp::InfLutEntries | FaultOp::PermuteLutAxis => {
                    if let Some(arc) = t.arcs.as_mut_slice().choose_mut(&mut rng) {
                        let bad = if op == FaultOp::NanLutEntries {
                            f64::NAN
                        } else {
                            f64::INFINITY
                        };
                        let side = rng.gen_bool(0.5);
                        let target = if side { &arc.tables.early } else { &arc.tables.late };
                        let poisoned = if op == FaultOp::PermuteLutAxis {
                            poison_tables(target, &mut rng, |l, r| permute_axis(l, r))
                        } else {
                            poison_tables(target, &mut rng, |l, r| poison_value(l, r, bad))
                        };
                        let poisoned = Arc::new(poisoned);
                        arc.tables = if side {
                            Split::new(poisoned, arc.tables.late.clone())
                        } else {
                            Split::new(arc.tables.early.clone(), poisoned)
                        };
                    }
                }
                _ => unreachable!("filtered by FaultOp::LIBRARY"),
            }
        }
        out.add_template(t).ok()?;
    }
    Some(out)
}

/// Applies `op`'s [`ArcGraph`] interpretation in place. Returns `true`
/// when the graph was mutated, `false` when `op` has no graph
/// interpretation (see [`FaultOp::GRAPH`]) or found no applicable site.
pub fn corrupt_graph(op: FaultOp, graph: &mut ArcGraph, seed: u64) -> bool {
    if !FaultOp::GRAPH.contains(&op) {
        return false;
    }
    let mut rng = StdRng::seed_from_u64(seed ^ (op as u64).wrapping_mul(0x9E37_79B9));
    let live_nodes: Vec<NodeId> = (0..graph.node_count() as u32)
        .map(NodeId)
        .filter(|&n| !graph.node(n).dead)
        .collect();
    if live_nodes.is_empty() {
        return false;
    }
    match op {
        FaultOp::NegativePinCap => {
            let Some(&victim) = live_nodes.as_slice().choose(&mut rng) else {
                return false;
            };
            graph.node_mut(victim).base_load = -1.0;
            true
        }
        FaultOp::NanLutEntries | FaultOp::InfLutEntries | FaultOp::PermuteLutAxis => {
            let bad = if op == FaultOp::InfLutEntries { f64::INFINITY } else { f64::NAN };
            let table_arcs: Vec<usize> = graph
                .arcs()
                .iter()
                .enumerate()
                .filter(|(_, a)| !a.dead && a.timing.tables().is_some())
                .map(|(i, _)| i)
                .collect();
            if let Some(&ai) = table_arcs.as_slice().choose(&mut rng) {
                let arc = graph.arc_mut(tmm_sta::graph::ArcId(ai as u32));
                let Some(split) = arc.timing.tables() else { return false };
                let side = rng.gen_bool(0.5);
                let target = if side { &split.early } else { &split.late };
                let poisoned = Arc::new(if op == FaultOp::PermuteLutAxis {
                    poison_tables(target, &mut rng, |l, r| permute_axis(l, r))
                } else {
                    poison_tables(target, &mut rng, |l, r| poison_value(l, r, bad))
                });
                let new_split = if side {
                    Split::new(poisoned, split.late.clone())
                } else {
                    Split::new(split.early.clone(), poisoned)
                };
                arc.timing = ArcTiming::Table(new_split);
                true
            } else {
                // No table arcs: poison a wire delay instead.
                let wire_arcs: Vec<usize> = graph
                    .arcs()
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| !a.dead && matches!(a.timing, ArcTiming::Wire { .. }))
                    .map(|(i, _)| i)
                    .collect();
                let Some(&ai) = wire_arcs.as_slice().choose(&mut rng) else {
                    return false;
                };
                let arc = graph.arc_mut(tmm_sta::graph::ArcId(ai as u32));
                arc.timing = ArcTiming::Wire { delay: bad, degrade: 1.0 };
                true
            }
        }
        FaultOp::DanglingPin => {
            graph.add_node(format!("__fault_orphan_{seed}"), NodeKind::Internal);
            true
        }
        FaultOp::CyclicRewire => {
            let live_arcs: Vec<usize> = graph
                .arcs()
                .iter()
                .enumerate()
                .filter(|(_, a)| {
                    !a.dead
                        && a.from != a.to
                        && !graph.node(a.from).dead
                        && !graph.node(a.to).dead
                })
                .map(|(i, _)| i)
                .collect();
            let Some(&ai) = live_arcs.as_slice().choose(&mut rng) else {
                return false;
            };
            let (from, to) = {
                let a = &graph.arcs()[ai];
                (a.from, a.to)
            };
            // Close the loop: add the reverse arc.
            graph.add_arc(
                to,
                from,
                TimingSense::PositiveUnate,
                ArcTiming::Wire { delay: 0.0, degrade: 1.0 },
                false,
            );
            true
        }
        FaultOp::DropClock => {
            match graph.clock_source() {
                Some(src) => {
                    graph.node_mut(src).dead = true;
                    // The topo order may now reference a dead node; that is
                    // exactly the kind of damage the validator must flag.
                    true
                }
                None => {
                    // No clock to drop: orphan a check's clock node instead
                    // by severing its fanin, if any checks exist.
                    let Some(ck) = graph.checks().first().map(|c| c.ck) else {
                        return false;
                    };
                    let fanin: Vec<_> = graph.fanin(ck).collect();
                    for ai in &fanin {
                        graph.arc_mut(*ai).dead = true;
                    }
                    !fanin.is_empty()
                }
            }
        }
        _ => unreachable!("filtered by FaultOp::GRAPH"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmm_sta::validate::{validate_arc_graph, validate_library};

    fn demo_text() -> String {
        "library demo\ncell INVX1 { pin A cap 1.5 }\naxis 1.0 2.0 4.0 8.0\nnet n0 a u0.A\nclock ck\n"
            .to_string()
    }

    #[test]
    fn textual_ops_are_deterministic() {
        let text = demo_text();
        for op in FaultOp::ALL {
            let a = corrupt_text(op, &text, 17);
            let b = corrupt_text(op, &text, 17);
            assert_eq!(a, b, "{} is not deterministic", op.name());
        }
    }

    #[test]
    fn textual_ops_usually_mutate() {
        let text = demo_text();
        for op in FaultOp::ALL {
            let changed = (0..32).any(|seed| corrupt_text(op, &text, seed) != text);
            assert!(changed, "{} never mutated the text in 32 seeds", op.name());
        }
    }

    #[test]
    fn library_ops_produce_validator_errors() {
        let lib = Library::synthetic(5);
        assert!(validate_library(&lib).is_clean());
        for op in FaultOp::LIBRARY {
            let found = (0..8).any(|seed| {
                let bad = corrupt_library(op, &lib, seed).expect("library op");
                !validate_library(&bad).is_clean()
            });
            assert!(found, "{} never tripped the library validator", op.name());
        }
    }

    #[test]
    fn graph_ops_produce_validator_diagnostics() {
        let lib = Library::synthetic(5);
        let netlist = tmm_circuits::CircuitSpec::new("faulted")
            .inputs(3)
            .outputs(3)
            .register_banks(1, 3)
            .cloud(2, 4)
            .seed(7)
            .generate(&lib)
            .unwrap();
        let clean = ArcGraph::from_netlist(&netlist, &lib).unwrap();
        assert!(validate_arc_graph(&clean).is_clean());
        for op in FaultOp::GRAPH {
            let found = (0..8).any(|seed| {
                let mut g = clean.clone();
                corrupt_graph(op, &mut g, seed)
                    && !validate_arc_graph(&g).diagnostics().is_empty()
            });
            assert!(found, "{} never tripped the graph validator", op.name());
        }
    }

    #[test]
    fn non_library_ops_return_none() {
        let lib = Library::synthetic(1);
        assert!(corrupt_library(FaultOp::TruncateText, &lib, 0).is_none());
        assert!(corrupt_library(FaultOp::DuplicateNet, &lib, 0).is_none());
    }

    #[test]
    fn truncate_respects_char_boundaries() {
        let text = "axis 1.0 2.0 µ-token 3.0\n".repeat(4);
        for seed in 0..64 {
            let _ = corrupt_text(FaultOp::TruncateText, &text, seed);
            let _ = corrupt_text(FaultOp::GarbleText, &text, seed);
        }
    }
}
