//! Robustness guarantee: every corruption operator, applied to every
//! text artifact the pipeline exchanges, must drive the parsers into a
//! structured `Err` (or a benign `Ok` when the corruption happens to
//! keep the artifact well-formed) — never a panic.
//!
//! The exhaustive sweep covers all 14 operators × 256 seeds × 3 parsers
//! deterministically; a property test on top samples a much wider seed
//! space.

// Integration-test harness code: the clippy.toml test exemptions do not
// reach helper fns outside #[test], so state the exemption explicitly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use tmm_faults::{corrupt_text, FaultOp};
use tmm_macromodel::{MacroModel, MacroModelOptions};
use tmm_sta::graph::ArcGraph;
use tmm_sta::io::{parse_library, parse_netlist, write_library, write_netlist};
use tmm_sta::liberty::Library;

/// Small but representative artifacts: a library, a sequential design
/// with a logic cloud, and a generated macro model.
fn artifacts() -> (Library, String, String, String) {
    let lib = Library::synthetic(11);
    let netlist = tmm_circuits::CircuitSpec::new("fuzzed")
        .inputs(2)
        .outputs(2)
        .register_banks(1, 2)
        .cloud(1, 3)
        .seed(23)
        .generate(&lib)
        .unwrap();
    let flat = ArcGraph::from_netlist(&netlist, &lib).unwrap();
    let model =
        MacroModel::generate(&flat, &vec![true; flat.node_count()], &MacroModelOptions::default())
            .unwrap();
    let lib_text = write_library(&lib);
    let net_text = write_netlist(&netlist);
    let model_text = model.serialize();
    (lib, lib_text, net_text, model_text)
}

/// Runs all three parsers over the corrupted artifacts for one
/// `(op, seed)` pair. Any panic fails the enclosing test.
fn exercise(lib: &Library, lib_text: &str, net_text: &str, model_text: &str, op: FaultOp, seed: u64) {
    let bad_lib = corrupt_text(op, lib_text, seed);
    let _ = parse_library(&bad_lib);

    let bad_net = corrupt_text(op, net_text, seed);
    let _ = parse_netlist(&bad_net, lib);

    let bad_model = corrupt_text(op, model_text, seed);
    let _ = MacroModel::parse(&bad_model);
}

#[test]
fn all_ops_256_seeds_never_panic() {
    let (lib, lib_text, net_text, model_text) = artifacts();
    for op in FaultOp::ALL {
        for seed in 0..256u64 {
            exercise(&lib, &lib_text, &net_text, &model_text, op, seed);
        }
    }
}

/// A corrupted library that still parses must also survive validation
/// and re-serialisation (no panic on semantically poisoned data).
#[test]
fn reparsed_corrupt_libraries_survive_validation() {
    let (_, lib_text, _, _) = artifacts();
    for op in FaultOp::ALL {
        for seed in 0..64u64 {
            if let Ok(lib) = parse_library(&corrupt_text(op, &lib_text, seed)) {
                let _ = tmm_sta::validate::validate_library(&lib);
                let _ = write_library(&lib);
            }
        }
    }
}

/// A corrupted model that still parses must survive validation — the
/// round-trip check inside `MacroModel::validate` re-serialises and
/// re-parses, so this also fuzzes the writer.
#[test]
fn reparsed_corrupt_models_survive_validation() {
    let (_, _, _, model_text) = artifacts();
    for op in FaultOp::ALL {
        for seed in 0..64u64 {
            if let Ok(model) = MacroModel::parse(&corrupt_text(op, &model_text, seed)) {
                let _ = model.validate();
            }
        }
    }
}

/// ECO operators: generating and applying a seeded stream must never
/// panic, for any seed, and the same seed must replay the identical
/// edit stream (the contract the prefix-replay oracle builds on).
#[test]
fn eco_streams_never_panic_and_replay_deterministically() {
    use tmm_faults::EcoStream;
    use tmm_sta::view::DesignCore;

    let lib = Library::synthetic(11);
    let netlist = tmm_circuits::CircuitSpec::new("eco_fuzzed")
        .inputs(2)
        .outputs(2)
        .register_banks(1, 2)
        .cloud(1, 3)
        .seed(23)
        .generate(&lib)
        .unwrap();
    let flat = ArcGraph::from_netlist(&netlist, &lib).unwrap();
    let core = DesignCore::freeze(&flat);

    for seed in 0..96u64 {
        let stream = EcoStream::generate(&core, 12, seed);
        let replay = EcoStream::generate(&core, 12, seed);
        assert_eq!(
            stream.edits(),
            replay.edits(),
            "seed {seed} did not replay the identical edit stream"
        );
        // Applying the full stream (and materialising the result) must
        // never panic; the materialised graph must stay valid.
        let view = stream.apply_prefix(&core, stream.len()).unwrap();
        let edited = view.materialize().unwrap();
        edited.validate().unwrap();
    }
}

/// Tiny degenerate designs must exhaust their edit sites gracefully
/// (shorter stream), never panic or loop.
#[test]
fn eco_streams_on_tiny_designs_stop_gracefully() {
    use tmm_faults::EcoStream;
    use tmm_sta::view::DesignCore;

    let lib = Library::synthetic(3);
    let netlist = tmm_circuits::CircuitSpec::new("eco_tiny")
        .inputs(1)
        .outputs(1)
        .register_banks(0, 1)
        .cloud(1, 1)
        .seed(5)
        .generate(&lib)
        .unwrap();
    let flat = ArcGraph::from_netlist(&netlist, &lib).unwrap();
    let core = DesignCore::freeze(&flat);
    for seed in 0..32u64 {
        let stream = EcoStream::generate(&core, 200, seed);
        assert!(stream.len() <= 200);
        let view = stream.apply_prefix(&core, stream.len()).unwrap();
        view.materialize().unwrap().validate().unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..Default::default() })]

    /// Wide-seed sampling on top of the exhaustive sweep; every case
    /// covers all 14 ops at one randomly drawn seed.
    #[test]
    fn random_seeds_never_panic(seed in 0u64..u64::MAX / 2) {
        use std::sync::OnceLock;
        static ARTIFACTS: OnceLock<(Library, String, String, String)> = OnceLock::new();
        let (lib, lib_text, net_text, model_text) = ARTIFACTS.get_or_init(artifacts);
        for op in FaultOp::ALL {
            exercise(lib, lib_text, net_text, model_text, op, seed);
        }
    }

    /// Wide-seed ECO stream sampling: generation, replay equality and
    /// prefix application never panic at any seed.
    #[test]
    fn random_eco_seeds_never_panic(seed in 0u64..u64::MAX / 2) {
        use std::sync::OnceLock;
        use tmm_faults::EcoStream;
        use tmm_sta::view::DesignCore;
        static CORE: OnceLock<std::sync::Arc<DesignCore>> = OnceLock::new();
        let core = CORE.get_or_init(|| {
            let lib = Library::synthetic(11);
            let netlist = tmm_circuits::CircuitSpec::new("eco_prop")
                .inputs(2)
                .outputs(2)
                .register_banks(1, 2)
                .cloud(1, 3)
                .seed(23)
                .generate(&lib)
                .unwrap();
            DesignCore::freeze(&ArcGraph::from_netlist(&netlist, &lib).unwrap())
        });
        let stream = EcoStream::generate(core, 8, seed);
        prop_assert_eq!(stream.edits(), EcoStream::generate(core, 8, seed).edits());
        let view = stream.apply_prefix(core, stream.len()).unwrap();
        let _ = view.materialize().unwrap();
    }
}
