//! The differential-check catalog.
//!
//! Every check compares two or more independent ways of computing the same
//! timing quantity, or asserts a semantic invariant no single engine can
//! self-check. Checks report a divergence as a human-readable detail
//! string; `None` means the design passed. An *error* from an engine under
//! test is itself a divergence — a corrupted design must be rejected
//! loudly, not analyzed differently.
//!
//! Cross-engine equality is *bit* equality over the full boundary
//! snapshot, with NaN compared by pattern (all NaNs equal): the plain
//! [`BoundarySnapshot::diff`] statistic skips non-finite pairs, which
//! would let a corruption that turns one engine's numbers into NaN slide
//! through unnoticed.

use crate::design::DiffDesign;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tmm_gnn::{GnnModel, ModelConfig, NeighborMode, NodeGraph, TrainConfig, TrainSample};
use tmm_faults::EcoStream;
use tmm_macromodel::eval::{evaluate, EvalOptions};
use tmm_macromodel::{
    reduce_graph_via_view_ckpt, LutCache, MacroModel, MacroModelOptions, ReducePolicy,
};
use tmm_sensitivity::{
    dirty_probe_set, evaluate_ts, evaluate_ts_incremental, evaluate_ts_with_core,
    evaluate_ts_with_core_ckpt, extract_features, pin_graph_edges, TsEngine, TsOptions, TsResult,
};
use tmm_sta::compare::BoundarySnapshot;
use tmm_sta::constraints::Context;
use tmm_sta::cppr::CpprReport;
use tmm_sta::graph::{NodeId, NodeKind};
use tmm_sta::propagate::{Analysis, AnalysisOptions};
use tmm_sta::report::critical_paths;
use tmm_sta::retime::ReferenceAnalysis;
use tmm_sta::split::{mode_edge_iter, Edge};
use tmm_sta::view::{DesignCore, GraphView};

/// Absolute tolerance for the semantic (non-bit) invariants.
pub const SEM_TOL: f64 = 1e-9;

/// Stable names of every check, in execution order. These names appear in
/// reports, repro artifacts, and metrics labels, and are the replay keys.
pub const CHECK_NAMES: [&str; 11] = [
    "engine-equality",
    "retime-equality",
    "ts-threads",
    "ts-mem-budget",
    "gnn-backend",
    "slack-conservation",
    "ts-monotone-merge",
    "ilm-boundary",
    "cppr-credit",
    "ckpt-replay",
    "eco-equality",
];

/// Per-check tuning knobs (kept small: differential coverage comes from
/// many designs, not exhaustive per-design work).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckOptions {
    /// Boundary contexts per TS evaluation.
    pub ts_contexts: usize,
    /// Worker-thread count for the parallel side of `ts-threads`.
    pub threads: usize,
    /// Bypass probes per design in `retime-equality`.
    pub probes: usize,
    /// Length of the seeded ECO edit stream driven by `eco-equality`.
    pub eco_edits: usize,
    /// Deliberately carry one stale dirty pin per edit in
    /// `eco-equality`'s incremental sweep — the suite's self-test that
    /// the prefix-replay oracle catches (and shrinks) a stale carry.
    pub eco_stale_carry: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            ts_contexts: 2,
            threads: 3,
            probes: 4,
            eco_edits: 3,
            eco_stale_carry: false,
        }
    }
}

/// One confirmed disagreement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Which check fired (an entry of [`CHECK_NAMES`]).
    pub check: &'static str,
    /// Human-readable description of the mismatch.
    pub detail: String,
}

/// Runs every check against `design`, collecting all divergences (one per
/// check at most — each check stops at its first finding).
#[must_use]
pub fn run_all(design: &DiffDesign, opts: &CheckOptions) -> Vec<Divergence> {
    CHECK_NAMES
        .iter()
        .filter_map(|&name| {
            let mut span = tmm_obs::span("diffcheck_check", "diffcheck");
            span.arg("check", name);
            span.arg("design", &design.name);
            tmm_obs::counter_add("tmm_diffcheck_checks_total", &[("check", name)], 1);
            let detail = run_named(design, name, opts)?;
            tmm_obs::counter_add("tmm_diffcheck_divergences_total", &[("check", name)], 1);
            Some(Divergence { check: name, detail })
        })
        .collect()
}

/// Runs one check by name (the shrinker's and replayer's entry point).
/// Unknown names report themselves as a divergence so a corrupted repro
/// file cannot silently "pass".
#[must_use]
pub fn run_named(design: &DiffDesign, name: &str, opts: &CheckOptions) -> Option<String> {
    match name {
        "engine-equality" => engine_equality(design),
        "retime-equality" => retime_equality(design, opts),
        "ts-threads" => ts_threads(design, opts),
        "ts-mem-budget" => ts_mem_budget(design, opts),
        "gnn-backend" => gnn_backend(design),
        "slack-conservation" => slack_conservation(design),
        "ts-monotone-merge" => ts_monotone_merge(design, opts),
        "ilm-boundary" => ilm_boundary(design),
        "cppr-credit" => cppr_credit(design),
        "ckpt-replay" => ckpt_replay(design, opts),
        "eco-equality" => eco_equality(design, opts),
        other => Some(format!("unknown check '{other}'")),
    }
}

/// Canonical bit pattern: all NaNs compare equal, everything else exact.
fn fbits(x: f64) -> u64 {
    if x.is_nan() {
        u64::MAX
    } else {
        x.to_bits()
    }
}

/// Bit-level comparison of two boundary snapshots (NaN-pattern aware,
/// matched by name). Returns the first mismatch rendered.
fn boundary_bit_diff(a: &BoundarySnapshot, b: &BoundarySnapshot) -> Option<String> {
    if a.po.len() != b.po.len() || a.pi.len() != b.pi.len() || a.checks.len() != b.checks.len()
    {
        return Some(format!(
            "boundary shape differs: {}/{}/{} vs {}/{}/{} (po/pi/checks)",
            a.po.len(),
            a.pi.len(),
            a.checks.len(),
            b.po.len(),
            b.pi.len(),
            b.checks.len()
        ));
    }
    let b_po: std::collections::HashMap<&str, usize> =
        b.po.iter().enumerate().map(|(i, p)| (p.name.as_str(), i)).collect();
    for p in &a.po {
        let Some(&j) = b_po.get(p.name.as_str()) else {
            return Some(format!("PO {} missing from one side", p.name));
        };
        let q = &b.po[j];
        for (m, e) in mode_edge_iter() {
            for (what, x, y) in [
                ("at", p.at[m][e], q.at[m][e]),
                ("slew", p.slew[m][e], q.slew[m][e]),
                ("rat", p.rat[m][e], q.rat[m][e]),
                ("slack", p.slack[m][e], q.slack[m][e]),
            ] {
                if fbits(x) != fbits(y) {
                    return Some(format!("PO {} {what}[{m:?}][{e:?}]: {x} vs {y}", p.name));
                }
            }
        }
    }
    let b_pi: std::collections::HashMap<&str, usize> =
        b.pi.iter().enumerate().map(|(i, p)| (p.name.as_str(), i)).collect();
    for p in &a.pi {
        let Some(&j) = b_pi.get(p.name.as_str()) else {
            return Some(format!("PI {} missing from one side", p.name));
        };
        for (m, e) in mode_edge_iter() {
            let (x, y) = (p.rat[m][e], b.pi[j].rat[m][e]);
            if fbits(x) != fbits(y) {
                return Some(format!("PI {} rat[{m:?}][{e:?}]: {x} vs {y}", p.name));
            }
        }
    }
    let b_ck: std::collections::HashMap<&str, usize> =
        b.checks.iter().enumerate().map(|(i, c)| (c.name.as_str(), i)).collect();
    for c in &a.checks {
        let Some(&j) = b_ck.get(c.name.as_str()) else {
            return Some(format!("check {} missing from one side", c.name));
        };
        let q = &b.checks[j];
        for e in Edge::ALL {
            for (what, x, y) in [
                ("setup_slack", c.setup_slack[e], q.setup_slack[e]),
                ("hold_slack", c.hold_slack[e], q.hold_slack[e]),
                ("setup_credit", c.setup_credit[e], q.setup_credit[e]),
                ("hold_credit", c.hold_credit[e], q.hold_credit[e]),
            ] {
                if fbits(x) != fbits(y) {
                    return Some(format!("check {} {what}[{e:?}]: {x} vs {y}", c.name));
                }
            }
        }
    }
    None
}

/// The four (CPPR × AOCV) analysis-option corners.
const OPTION_CORNERS: [(bool, bool); 4] =
    [(false, false), (true, false), (false, true), (true, true)];

/// Flat [`Analysis`] vs pristine [`GraphView`] analysis vs
/// [`ReferenceAnalysis`] — all three must agree bit-for-bit at every
/// option corner. The clean graph is the oracle; the (possibly tainted)
/// twin feeds the view engines.
fn engine_equality(d: &DiffDesign) -> Option<String> {
    let ctx = Context::nominal(&d.flat);
    for (cppr, aocv) in OPTION_CORNERS {
        let o = AnalysisOptions { cppr, aocv };
        let oracle = match Analysis::run_with_options(&d.flat, &ctx, o) {
            Ok(a) => a,
            Err(e) => return Some(format!("flat analysis failed (cppr={cppr} aocv={aocv}): {e}")),
        };
        let core = DesignCore::freeze(&d.tainted);
        let view = GraphView::new(core.clone());
        let viewed = match Analysis::run_with_options(&view, &ctx, o) {
            Ok(a) => a,
            Err(e) => return Some(format!("view analysis failed (cppr={cppr} aocv={aocv}): {e}")),
        };
        if let Some(diff) = boundary_bit_diff(oracle.boundary(), viewed.boundary()) {
            return Some(format!("flat vs view (cppr={cppr} aocv={aocv}): {diff}"));
        }
        let reference = match ReferenceAnalysis::new(core, ctx.clone(), o) {
            Ok(r) => r,
            Err(e) => {
                return Some(format!("reference analysis failed (cppr={cppr} aocv={aocv}): {e}"))
            }
        };
        if let Some(diff) = boundary_bit_diff(oracle.boundary(), reference.boundary()) {
            return Some(format!("flat vs reference (cppr={cppr} aocv={aocv}): {diff}"));
        }
    }
    None
}

/// Deterministically spread `k` probe pins over the design's bypassable
/// internal nodes.
fn probe_nodes(graph: &tmm_sta::graph::ArcGraph, k: usize) -> Vec<NodeId> {
    let all: Vec<NodeId> = (0..graph.node_count())
        .map(|i| NodeId(i as u32))
        .filter(|&n| {
            !graph.node(n).dead
                && graph.node(n).kind == NodeKind::Internal
                && graph.can_bypass(n)
        })
        .collect();
    if all.is_empty() {
        return all;
    }
    let stride = (all.len() / k.max(1)).max(1);
    all.into_iter().step_by(stride).take(k).collect()
}

/// Cone-limited retime vs full view analysis on single-pin bypasses, at
/// three option corners (the AOCV corner exercises the full-analysis
/// fallback). Also asserts the probe-accounting invariant: every probe
/// lands in exactly one of the cone/fallback stat buckets.
fn retime_equality(d: &DiffDesign, opts: &CheckOptions) -> Option<String> {
    let ctx = Context::nominal(&d.flat);
    let core = DesignCore::freeze(&d.tainted);
    let probes = probe_nodes(&d.tainted, opts.probes);
    for (cppr, aocv) in [(false, false), (true, false), (false, true)] {
        let o = AnalysisOptions { cppr, aocv };
        let reference = match ReferenceAnalysis::new(core.clone(), ctx.clone(), o) {
            Ok(r) => r,
            Err(e) => return Some(format!("reference failed (cppr={cppr} aocv={aocv}): {e}")),
        };
        let mut scratch = reference.scratch();
        let mut served = 0usize;
        for &n in &probes {
            let mut view = GraphView::new(core.clone());
            if view.bypass_node(n).is_err() {
                continue;
            }
            let cone = match reference.retime(&view, &mut scratch) {
                Ok(b) => b,
                Err(e) => {
                    return Some(format!(
                        "retime failed at node {} (cppr={cppr} aocv={aocv}): {e}",
                        n.index()
                    ))
                }
            };
            served += 1;
            let full = match Analysis::run_with_options(&view, &ctx, o) {
                Ok(a) => a,
                Err(e) => {
                    return Some(format!(
                        "full view analysis failed at node {} (cppr={cppr} aocv={aocv}): {e}",
                        n.index()
                    ))
                }
            };
            if let Some(diff) = boundary_bit_diff(full.boundary(), &cone) {
                return Some(format!(
                    "retime vs full at node {} (cppr={cppr} aocv={aocv}): {diff}",
                    n.index()
                ));
            }
        }
        let s = scratch.stats();
        if s.retimes + s.full_fallbacks != served {
            return Some(format!(
                "probe accounting (cppr={cppr} aocv={aocv}): {} cone + {} fallback != {served} probes served",
                s.retimes, s.full_fallbacks
            ));
        }
        if aocv && served > 0 && s.full_fallbacks != served {
            return Some(format!(
                "AOCV probes must all fall back: {} of {served} did",
                s.full_fallbacks
            ));
        }
    }
    None
}

/// Live internal pins (the TS candidate set).
fn internal_candidates(graph: &tmm_sta::graph::ArcGraph) -> Vec<bool> {
    (0..graph.node_count())
        .map(|i| {
            let n = NodeId(i as u32);
            !graph.node(n).dead && graph.node(n).kind == NodeKind::Internal
        })
        .collect()
}

/// Renders the first difference between two TS sweeps, or `None`.
fn ts_bit_diff(a: &TsResult, b: &TsResult, what: &str) -> Option<String> {
    if a.evaluated != b.evaluated || a.skipped != b.skipped {
        return Some(format!(
            "{what}: evaluated/skipped {} / {} vs {} / {}",
            a.evaluated, b.evaluated, a.skipped, b.skipped
        ));
    }
    if a.failures.len() != b.failures.len()
        || a.failures
            .iter()
            .zip(&b.failures)
            .any(|(x, y)| x.node != y.node || x.cause != y.cause)
    {
        return Some(format!(
            "{what}: quarantine attribution differs ({} vs {} failures)",
            a.failures.len(),
            b.failures.len()
        ));
    }
    for (i, (x, y)) in a.ts.iter().zip(&b.ts).enumerate() {
        if fbits(*x) != fbits(*y) {
            return Some(format!("{what}: ts[{i}] {x} vs {y}"));
        }
    }
    None
}

/// TS sweep: serial vs multi-threaded (view engine), and view engine vs
/// the clone-per-pin oracle — all three bit-identical, including the
/// quarantine lists.
fn ts_threads(d: &DiffDesign, opts: &CheckOptions) -> Option<String> {
    let cand = internal_candidates(&d.tainted);
    let base = TsOptions {
        contexts: opts.ts_contexts.max(1),
        threads: 1,
        engine: TsEngine::View,
        ..Default::default()
    };
    let serial = match evaluate_ts(&d.tainted, &cand, &base) {
        Ok(r) => r,
        Err(e) => return Some(format!("serial view sweep failed: {e}")),
    };
    let par = match evaluate_ts(
        &d.tainted,
        &cand,
        &TsOptions { threads: opts.threads.max(2), ..base },
    ) {
        Ok(r) => r,
        Err(e) => return Some(format!("parallel view sweep failed: {e}")),
    };
    if let Some(diff) = ts_bit_diff(&serial, &par, "serial vs parallel") {
        return Some(diff);
    }
    let clone = match evaluate_ts(&d.tainted, &cand, &TsOptions { engine: TsEngine::Clone, ..base })
    {
        Ok(r) => r,
        Err(e) => return Some(format!("clone sweep failed: {e}")),
    };
    ts_bit_diff(&serial, &clone, "view vs clone")
}

/// Budget-chunked vs unbounded TS: the sweep under a 1 MiB budget must
/// match the all-contexts-resident sweep byte-for-byte (running totals are
/// chained across groups in context order; only the final divide differs
/// from no division of work at all). Diffcheck designs are deliberately
/// small — often small enough that every context fits a 1 MiB budget — so
/// the context count is raised via [`ts_min_chunked_contexts`] until the
/// grouped path is guaranteed to split into at least two groups.
fn ts_mem_budget(d: &DiffDesign, opts: &CheckOptions) -> Option<String> {
    let cand = internal_candidates(&d.tainted);
    let core = DesignCore::freeze(&d.tainted);
    // `ts_min_chunked_contexts` is bounded: one reference analysis costs at
    // least ~4 KiB, so 1 MiB never asks for more than ~260 contexts.
    let contexts = tmm_sensitivity::ts_min_chunked_contexts(&core, 1).max(opts.ts_contexts.max(2));
    let base = TsOptions {
        contexts,
        threads: 1,
        engine: TsEngine::View,
        ..Default::default()
    };
    let unbounded = match evaluate_ts_with_core(&core, &cand, &base) {
        Ok(r) => r,
        Err(e) => return Some(format!("unbounded sweep failed: {e}")),
    };
    let chunked = match evaluate_ts_with_core(
        &core,
        &cand,
        &TsOptions { mem_budget_mb: 1, ..base },
    ) {
        Ok(r) => r,
        Err(e) => return Some(format!("budget-chunked sweep failed: {e}")),
    };
    if let Some(diff) = ts_bit_diff(&unbounded, &chunked, "unbounded vs 1 MiB budget") {
        return Some(diff);
    }
    // The parallel chunked sweep must agree too — grouping changes the
    // work-list shape the workers see.
    let par = match evaluate_ts_with_core(
        &core,
        &cand,
        &TsOptions { mem_budget_mb: 1, threads: opts.threads.max(2), ..base },
    ) {
        Ok(r) => r,
        Err(e) => return Some(format!("parallel budget-chunked sweep failed: {e}")),
    };
    ts_bit_diff(&unbounded, &par, "unbounded vs parallel 1 MiB budget")
}

/// Naive vs blocked GNN kernels: identical training trajectory and
/// predictions (bit-for-bit over f32) on the design's pin graph with
/// deterministic pseudo-labels.
fn gnn_backend(d: &DiffDesign) -> Option<String> {
    let n = d.tainted.node_count();
    let features = extract_features(&d.tainted, false);
    let graph = NodeGraph::from_edges(n, &pin_graph_edges(&d.tainted), NeighborMode::Undirected);
    let mut rng = StdRng::seed_from_u64(d.params.seed ^ 0x6e6e_6e6e);
    let labels: Vec<f32> = (0..n).map(|_| f32::from(u8::from(rng.gen_bool(0.3)))).collect();
    let sample = TrainSample { graph, features, labels, mask: None };
    let in_dim = sample.features.cols();
    let run = |backend| {
        let mut model = GnnModel::new(
            in_dim,
            ModelConfig { hidden: 8, layers: 2, ..Default::default() },
        );
        model.train(
            std::slice::from_ref(&sample),
            &TrainConfig { epochs: 6, threads: 1, backend, ..Default::default() },
        );
        model.predict(&sample.graph, &sample.features)
    };
    let naive = run(tmm_gnn::Backend::Naive);
    let blocked = run(tmm_gnn::Backend::Blocked);
    for (i, (a, b)) in naive.iter().zip(&blocked).enumerate() {
        let (xa, xb) = (a.to_bits(), b.to_bits());
        let same = xa == xb || (a.is_nan() && b.is_nan());
        if !same {
            return Some(format!("naive vs blocked prediction at node {i}: {a} vs {b}"));
        }
    }
    None
}

/// Semantic invariants of a single analysis: the boundary snapshot's slack
/// must equal `rat − at` (late) / `at − rat` (early) bit-for-bit, the
/// snapshot must cover every boundary object, and arrivals along traced
/// critical paths must be non-decreasing (delays are never negative).
fn slack_conservation(d: &DiffDesign) -> Option<String> {
    let ctx = Context::nominal(&d.flat);
    let an = match Analysis::run_with_options(
        &d.tainted,
        &ctx,
        AnalysisOptions { cppr: true, aocv: false },
    ) {
        Ok(a) => a,
        Err(e) => return Some(format!("analysis failed: {e}")),
    };
    let b = an.boundary();
    if b.po.len() != d.tainted.primary_outputs().len() {
        return Some(format!(
            "snapshot covers {} of {} POs",
            b.po.len(),
            d.tainted.primary_outputs().len()
        ));
    }
    if b.checks.len() != d.tainted.checks().iter().filter(|c| !d.tainted.node(c.d).dead).count()
    {
        return Some("snapshot check coverage differs from live graph checks".into());
    }
    for po in &b.po {
        for (m, e) in mode_edge_iter() {
            let (at, rat) = (po.at[m][e], po.rat[m][e]);
            let expected = if at.is_finite() && rat.is_finite() {
                match m {
                    tmm_sta::Mode::Late => rat - at,
                    tmm_sta::Mode::Early => at - rat,
                }
            } else {
                f64::NAN
            };
            if fbits(po.slack[m][e]) != fbits(expected) {
                return Some(format!(
                    "PO {} slack[{m:?}][{e:?}] = {} but rat - at = {expected}",
                    po.name, po.slack[m][e]
                ));
            }
        }
    }
    for path in critical_paths(&d.tainted, &an, &ctx, 3) {
        for w in path.steps.windows(2) {
            if w[1].incr < -SEM_TOL {
                return Some(format!(
                    "arrival decreases along critical path to {}: {} -> {} at {}",
                    path.endpoint, w[0].at, w[1].at, w[1].name
                ));
            }
        }
    }
    None
}

/// Progressively merging pins in ascending-TS order must not *shrink* the
/// boundary error: each larger merge set contains the smaller ones, so the
/// error envelope is non-decreasing (within tolerance — exact cancellation
/// across merges is theoretically possible but indicates an engine bug at
/// any observable magnitude).
fn ts_monotone_merge(d: &DiffDesign, opts: &CheckOptions) -> Option<String> {
    let cand = internal_candidates(&d.tainted);
    let core = DesignCore::freeze(&d.tainted);
    let ts_opts = TsOptions { contexts: opts.ts_contexts.max(1), ..Default::default() };
    let r = match evaluate_ts_with_core(&core, &cand, &ts_opts) {
        Ok(r) => r,
        Err(e) => return Some(format!("TS sweep failed: {e}")),
    };
    let mut ranked = r.ranked_pins();
    ranked.reverse(); // ascending TS: merge the least sensitive pins first
    let ctx = Context::nominal(&d.flat);
    let reference = match ReferenceAnalysis::new(core.clone(), ctx, AnalysisOptions::default()) {
        Ok(rf) => rf,
        Err(e) => return Some(format!("reference failed: {e}")),
    };
    let mut scratch = reference.scratch();
    let mut view = GraphView::new(core);
    let mut envelope = 0.0f64;
    let mut merged = 0usize;
    let mut queue = ranked.into_iter();
    for target in [1usize, 2, 4, 8, 16] {
        while merged < target {
            let Some(i) = queue.next() else { break };
            let n = NodeId(i as u32);
            if view.can_bypass(n) && view.bypass_node(n).is_ok() {
                merged += 1;
            }
        }
        if merged == 0 {
            break;
        }
        let edited = match reference.retime(&view, &mut scratch) {
            Ok(b) => b,
            Err(e) => return Some(format!("retime of {merged}-pin merge failed: {e}")),
        };
        let diff = reference.boundary().diff(&edited).max;
        if diff + SEM_TOL < envelope {
            return Some(format!(
                "boundary error shrank from {envelope} to {diff} after merging {merged} lowest-TS pins"
            ));
        }
        envelope = envelope.max(diff);
        if merged < target {
            break; // ran out of mergeable pins
        }
    }
    None
}

/// ILM exactness: a keep-all, uncompressed macro model must reproduce the
/// boundary exactly (≤ [`SEM_TOL`]) before and after generation, with and
/// without CPPR — and must actually have comparable boundary values.
fn ilm_boundary(d: &DiffDesign) -> Option<String> {
    let keep = vec![true; d.tainted.node_count()];
    let model = match MacroModel::generate(
        &d.tainted,
        &keep,
        &MacroModelOptions { compress_luts: false, ..Default::default() },
    ) {
        Ok(m) => m,
        Err(e) => return Some(format!("macro generation failed: {e}")),
    };
    for cppr in [false, true] {
        let r = match evaluate(
            &d.tainted,
            &model,
            &EvalOptions { contexts: 2, cppr, ..Default::default() },
        ) {
            Ok(r) => r,
            Err(e) => return Some(format!("evaluation failed (cppr={cppr}): {e}")),
        };
        if r.accuracy.count == 0 {
            return Some(format!(
                "no comparable finite boundary values between flat and macro (cppr={cppr})"
            ));
        }
        if r.accuracy.max > SEM_TOL {
            return Some(format!(
                "keep-all macro boundary error {} ps exceeds {SEM_TOL} (cppr={cppr})",
                r.accuracy.max
            ));
        }
    }
    None
}

/// CPPR invariants: every credit is non-negative (at every common point /
/// check), bounded by the late/early clock gap at the capture pin, and
/// enabling CPPR can only *improve* check slacks.
fn cppr_credit(d: &DiffDesign) -> Option<String> {
    if d.tainted.checks().is_empty() {
        return None; // combinational design: nothing to credit
    }
    let ctx = Context::nominal(&d.flat);
    let with = match Analysis::run_with_options(
        &d.tainted,
        &ctx,
        AnalysisOptions { cppr: true, aocv: false },
    ) {
        Ok(a) => a,
        Err(e) => return Some(format!("CPPR analysis failed: {e}")),
    };
    let without = match Analysis::run_with_options(&d.tainted, &ctx, AnalysisOptions::default()) {
        Ok(a) => a,
        Err(e) => return Some(format!("non-CPPR analysis failed: {e}")),
    };
    for (ci, credit) in with.credits().iter().enumerate() {
        for e in Edge::ALL {
            for (what, c) in [("setup", credit.setup[e]), ("hold", credit.hold[e])] {
                // `!(c >= 0)` also catches NaN credits.
                if !(c >= 0.0) {
                    return Some(format!("check #{ci} {what} credit[{e:?}] = {c} is not >= 0"));
                }
            }
        }
    }
    let report = CpprReport::from_analysis(&d.tainted, &with);
    for (check, cp) in d.tainted.checks().iter().zip(&report.checks) {
        let gap =
            with.at(check.ck).late.rise - with.at(check.ck).early.rise;
        if gap.is_finite() && cp.setup_credit > gap + SEM_TOL {
            return Some(format!(
                "check {} setup credit {} exceeds clock-path gap {gap}",
                check.name, cp.setup_credit
            ));
        }
    }
    let without_by_name: std::collections::HashMap<&str, usize> = without
        .boundary()
        .checks
        .iter()
        .enumerate()
        .map(|(i, c)| (c.name.as_str(), i))
        .collect();
    for c in &with.boundary().checks {
        let Some(&j) = without_by_name.get(c.name.as_str()) else {
            return Some(format!("check {} present only with CPPR", c.name));
        };
        let base = &without.boundary().checks[j];
        for e in Edge::ALL {
            for (what, cp, np) in [
                ("setup", c.setup_slack[e], base.setup_slack[e]),
                ("hold", c.hold_slack[e], base.hold_slack[e]),
            ] {
                if cp.is_finite() && np.is_finite() && cp + SEM_TOL < np {
                    return Some(format!(
                        "check {} {what} slack[{e:?}] degrades under CPPR: {np} -> {cp}",
                        c.name
                    ));
                }
            }
        }
    }
    None
}

/// Checkpoint replay equivalence: a TS sweep and a via-view reduction
/// resumed from a *truncated prefix* of their own checkpoint writes (the
/// state a kill mid-run leaves behind, completion markers dropped) must be
/// bit-identical to the uninterrupted runs — same TS values, same
/// quarantine attribution, same merge decisions, same reduced-graph
/// boundary timing.
fn ckpt_replay(d: &DiffDesign, opts: &CheckOptions) -> Option<String> {
    use tmm_ckpt::MemStore;

    // TS sweep: uninterrupted checkpointed run vs resumes from prefixes.
    let cand = internal_candidates(&d.tainted);
    let core = DesignCore::freeze(&d.tainted);
    let ts_opts = TsOptions {
        contexts: opts.ts_contexts.max(1),
        engine: TsEngine::View,
        ..Default::default()
    };
    let mut full = MemStore::new();
    let complete = match evaluate_ts_with_core_ckpt(&core, &cand, &ts_opts, &mut full, "ts") {
        Ok(r) => r,
        Err(e) => return Some(format!("checkpointed TS sweep failed: {e}")),
    };
    for cut in [0, full.saves() / 2, full.saves().saturating_sub(1)] {
        let mut store = full.truncated(cut);
        let resumed = match evaluate_ts_with_core_ckpt(&core, &cand, &ts_opts, &mut store, "ts")
        {
            Ok(r) => r,
            Err(e) => return Some(format!("TS resume from {cut} saved chunk(s) failed: {e}")),
        };
        if let Some(diff) =
            ts_bit_diff(&complete, &resumed, &format!("TS resume from {cut} chunk(s)"))
        {
            return Some(diff);
        }
    }

    // Via-view reduction: merge every other internal pin, kill between
    // merge passes, resume, and require identical decisions and boundary.
    let keep: Vec<bool> = (0..d.tainted.node_count())
        .map(|i| !cand[i] || i % 2 == 0)
        .collect();
    let policy = ReducePolicy::default();
    let mut rfull = MemStore::new();
    let complete_red = match reduce_graph_via_view_ckpt(&core, &keep, &policy, &mut rfull, "merge")
    {
        Ok(r) => r,
        Err(e) => return Some(format!("checkpointed reduction failed: {e}")),
    };
    let ctx = Context::nominal(&complete_red.graph);
    let complete_an =
        match Analysis::run_with_options(&complete_red.graph, &ctx, AnalysisOptions::default()) {
            Ok(a) => a,
            Err(e) => return Some(format!("analysis of the reduced graph failed: {e}")),
        };
    for cut in [0, rfull.saves() / 2, rfull.saves().saturating_sub(1)] {
        let mut store = rfull.truncated(cut);
        let resumed = match reduce_graph_via_view_ckpt(&core, &keep, &policy, &mut store, "merge")
        {
            Ok(r) => r,
            Err(e) => return Some(format!("reduction resume from {cut} pass(es) failed: {e}")),
        };
        if resumed.stats != complete_red.stats {
            return Some(format!(
                "reduction resume from {cut} pass(es): stats {:?} vs {:?}",
                resumed.stats, complete_red.stats
            ));
        }
        if resumed.graph.live_nodes() != complete_red.graph.live_nodes()
            || resumed.graph.live_arcs() != complete_red.graph.live_arcs()
        {
            return Some(format!(
                "reduction resume from {cut} pass(es): {}/{} live nodes/arcs vs {}/{}",
                resumed.graph.live_nodes(),
                resumed.graph.live_arcs(),
                complete_red.graph.live_nodes(),
                complete_red.graph.live_arcs()
            ));
        }
        let resumed_an =
            match Analysis::run_with_options(&resumed.graph, &ctx, AnalysisOptions::default()) {
                Ok(a) => a,
                Err(e) => {
                    return Some(format!(
                        "analysis of the resumed reduction ({cut} pass(es)) failed: {e}"
                    ))
                }
            };
        if let Some(diff) = boundary_bit_diff(complete_an.boundary(), resumed_an.boundary()) {
            return Some(format!("reduction resume from {cut} pass(es): {diff}"));
        }
    }
    None
}

/// The frozen core of the tainted twin plus the design's deterministic
/// ECO stream (a pure function of the design seed and the edit budget).
fn eco_stream_for(
    d: &DiffDesign,
    opts: &CheckOptions,
) -> (std::sync::Arc<DesignCore>, EcoStream) {
    let core = DesignCore::freeze(&d.tainted);
    let stream = EcoStream::generate(&core, opts.eco_edits, d.params.seed ^ 0xec0);
    (core, stream)
}

/// Deterministic keep mask from a TS sweep: non-candidate pins are always
/// kept; a candidate is kept when its TS clears the median of the finite
/// TS values. Both the median and the comparison use `f64::total_cmp`, so
/// bit-identical sweeps yield identical masks — any mask difference traces
/// back to a TS bit difference.
fn keep_from_ts(ts: &TsResult, cand: &[bool]) -> Vec<bool> {
    let mut finite: Vec<f64> = ts.ts.iter().copied().filter(|t| t.is_finite()).collect();
    finite.sort_by(f64::total_cmp);
    let threshold = finite.get(finite.len() / 2).copied();
    cand.iter()
        .enumerate()
        .map(|(i, &c)| {
            if !c {
                return true;
            }
            let t = ts.ts[i];
            match threshold {
                Some(th) => {
                    !t.is_finite() || t.total_cmp(&th) != std::cmp::Ordering::Less
                }
                None => true,
            }
        })
        .collect()
}

/// Streaming-ECO prefix-replay oracle, optionally restricted to the edits
/// selected by `mask` (`None` = the whole stream).
///
/// Each selected edit is applied as a [`GraphView`] overlay edit over the
/// previous core and re-frozen; the TS sweep is then run both
/// *incrementally* (carrying every pin outside the edit's dirty cone from
/// the previous sweep) and *from scratch*, and the macro model is
/// regenerated both *patched* (LUT-fit cache carried across edits) and
/// *from scratch*. The TS pair must agree bit-for-bit and the model pair
/// byte-for-byte after every prefix.
///
/// With a partial mask, a masked-out edit may strand a survivor whose
/// target (a buffer node or replacement arc created by the dropped edit)
/// never came to exist; such edits are skipped, which is what makes the
/// mask usable for delta-debugging a failing sequence.
#[must_use]
pub fn eco_equality_masked(
    d: &DiffDesign,
    opts: &CheckOptions,
    mask: Option<&[bool]>,
) -> Option<String> {
    let ts_opts = TsOptions { contexts: opts.ts_contexts.max(1), ..Default::default() };
    let mm_opts = MacroModelOptions::default();
    let (core0, stream) = eco_stream_for(d, opts);
    if stream.is_empty() {
        return None;
    }
    let cand0 = internal_candidates(&d.tainted);
    let mut previous = match evaluate_ts_with_core(&core0, &cand0, &ts_opts) {
        Ok(r) => r,
        Err(e) => return Some(format!("baseline TS sweep failed: {e}")),
    };
    let mut core = core0;
    let mut cache = LutCache::new();
    for (k, edit) in stream.edits().iter().enumerate() {
        if mask.is_some_and(|m| !m.get(k).copied().unwrap_or(false)) {
            continue;
        }
        let what = format!("edit {k} ({})", edit.describe());
        let mut view = GraphView::new(core.clone());
        if let Err(e) = edit.apply(&mut view) {
            if mask.is_none() {
                // The full stream applies cleanly by construction; an
                // apply failure means id stability broke somewhere.
                return Some(format!("{what}: failed to apply: {e}"));
            }
            continue;
        }
        let changed = view.edited_nodes();
        let edited = match view.materialize() {
            Ok(g) => g,
            Err(e) => return Some(format!("{what}: materialize failed: {e}")),
        };
        let new_core = DesignCore::freeze(&edited);
        let cand = internal_candidates(&edited);
        let old_nodes = tmm_sta::view::TimingGraph::node_count(&*core);
        let mut dirty = dirty_probe_set(&new_core, &changed, old_nodes);
        if opts.eco_stale_carry {
            // Injected bug: declare the first recomputable dirty pin
            // clean, so the incremental sweep carries its stale value.
            if let Some(i) = (0..dirty.len()).find(|&i| {
                dirty[i] && cand[i] && previous.ts.get(i).is_some_and(|t| t.is_finite())
            }) {
                dirty[i] = false;
            }
        }
        let inc = match evaluate_ts_incremental(&new_core, &cand, &ts_opts, &previous, &dirty) {
            Ok(r) => r,
            Err(e) => return Some(format!("{what}: incremental TS sweep failed: {e}")),
        };
        let scratch = match evaluate_ts_with_core(&new_core, &cand, &ts_opts) {
            Ok(r) => r,
            Err(e) => return Some(format!("{what}: from-scratch TS sweep failed: {e}")),
        };
        if let Some(diff) =
            ts_bit_diff(&inc, &scratch, &format!("{what}: incremental vs scratch TS"))
        {
            return Some(diff);
        }
        let keep_inc = keep_from_ts(&inc, &cand);
        let keep_scratch = keep_from_ts(&scratch, &cand);
        let patched = match MacroModel::generate_patched(&edited, &keep_inc, &mm_opts, &mut cache)
        {
            Ok(m) => m,
            Err(e) => return Some(format!("{what}: patched generation failed: {e}")),
        };
        let rebuilt = match MacroModel::generate(&edited, &keep_scratch, &mm_opts) {
            Ok(m) => m,
            Err(e) => return Some(format!("{what}: from-scratch generation failed: {e}")),
        };
        let (pa, pb) = (patched.serialize(), rebuilt.serialize());
        if pa != pb {
            return Some(format!(
                "{what}: patched macro differs from a from-scratch rebuild ({} vs {} bytes)",
                pa.len(),
                pb.len()
            ));
        }
        previous = inc;
        core = new_core;
    }
    None
}

/// Delta-debugs a failing edit stream to a locally minimal failing
/// subsequence: classic ddmin over the edit-inclusion mask, re-running
/// the prefix-replay oracle on each candidate subset.
fn ddmin_edit_mask(
    d: &DiffDesign,
    opts: &CheckOptions,
    len: usize,
    full_detail: String,
) -> (Vec<bool>, String) {
    let mut mask = vec![true; len];
    let mut detail = full_detail;
    let mut granularity = 2usize;
    loop {
        let active: Vec<usize> = (0..len).filter(|&i| mask[i]).collect();
        if active.len() <= 1 {
            break;
        }
        let gran = granularity.min(active.len());
        let chunk = active.len().div_ceil(gran);
        let mut reduced = false;
        for part in active.chunks(chunk) {
            let mut trial = mask.clone();
            for &i in part {
                trial[i] = false;
            }
            if let Some(dd) = eco_equality_masked(d, opts, Some(&trial)) {
                mask = trial;
                detail = dd;
                reduced = true;
                break;
            }
        }
        if reduced {
            granularity = 2;
        } else if gran >= active.len() {
            break;
        } else {
            granularity = (gran * 2).min(active.len());
        }
    }
    (mask, detail)
}

/// Streaming-ECO equality: after every prefix of the design's seeded ECO
/// stream, the incrementally regenerated macro (cone-limited TS carry +
/// cached LUT fits) must be byte-identical to a from-scratch rebuild. On
/// divergence the edit stream is delta-debugged to a minimal failing
/// subsequence, which is reported in the detail (and thus lands in the
/// repro artifact).
fn eco_equality(d: &DiffDesign, opts: &CheckOptions) -> Option<String> {
    let detail = eco_equality_masked(d, opts, None)?;
    let (_, stream) = eco_stream_for(d, opts);
    let (mask, min_detail) = ddmin_edit_mask(d, opts, stream.len(), detail);
    let kept: Vec<String> = stream
        .edits()
        .iter()
        .enumerate()
        .filter(|(i, _)| mask.get(*i).copied().unwrap_or(false))
        .map(|(i, e)| format!("#{i} {}", e.describe()))
        .collect();
    Some(format!(
        "minimal failing edit sequence [{}] of {} edits: {min_detail}",
        kept.join(", "),
        stream.len(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{sample_params, design_rng, DiffDesign};
    use tmm_faults::FaultOp;
    use tmm_sta::liberty::Library;

    fn clean_design(idx: usize) -> DiffDesign {
        let lib = Library::synthetic(1);
        let params = sample_params(&mut design_rng(42, idx));
        DiffDesign::build(&lib, "chk", &params, None).unwrap()
    }

    #[test]
    fn clean_designs_pass_every_check() {
        let opts = CheckOptions::default();
        for idx in 0..3 {
            let d = clean_design(idx);
            let divergences = run_all(&d, &opts);
            assert!(
                divergences.is_empty(),
                "design {idx} ({:?}) diverged: {divergences:?}",
                d.params
            );
        }
    }

    #[test]
    fn nan_lut_injection_is_caught() {
        let lib = Library::synthetic(1);
        let params = sample_params(&mut design_rng(42, 1));
        let d = DiffDesign::build(&lib, "inj", &params, Some((FaultOp::NanLutEntries, 9))).unwrap();
        assert!(d.injected);
        let divergences = run_all(&d, &CheckOptions::default());
        assert!(
            divergences.iter().any(|dv| dv.check == "engine-equality"),
            "engine equality must flag a NaN-corrupted twin, got {divergences:?}"
        );
    }

    #[test]
    fn unknown_check_is_a_divergence() {
        let d = clean_design(0);
        assert!(run_named(&d, "no-such-check", &CheckOptions::default()).is_some());
    }

    /// The oracle's own self-test: deliberately carrying one stale dirty
    /// pin per edit must be caught, and the reported detail must carry a
    /// delta-debugged minimal edit subsequence.
    #[test]
    fn eco_stale_carry_injection_is_caught_and_shrunk() {
        let opts = CheckOptions { eco_stale_carry: true, eco_edits: 6, ..Default::default() };
        let mut caught = false;
        for idx in 0..4 {
            let d = clean_design(idx);
            let Some(detail) = run_named(&d, "eco-equality", &opts) else { continue };
            assert!(
                detail.contains("minimal failing edit sequence"),
                "divergence must be shrunk to a minimal sequence: {detail}"
            );
            assert!(
                detail.contains("incremental vs scratch TS"),
                "a stale carry must surface as a TS bit difference: {detail}"
            );
            caught = true;
            break;
        }
        assert!(caught, "stale-carry injection must diverge on at least one design");
    }

    /// A fully masked-out stream runs no edits and therefore passes even
    /// with the staleness bug armed — the mask is a faithful subset
    /// selector, not an approximation.
    #[test]
    fn empty_edit_mask_is_trivially_clean() {
        let opts = CheckOptions { eco_stale_carry: true, eco_edits: 6, ..Default::default() };
        let d = clean_design(1);
        let (_, stream) = super::eco_stream_for(&d, &opts);
        let mask = vec![false; stream.len()];
        assert_eq!(eco_equality_masked(&d, &opts, Some(&mask)), None);
    }
}
