//! Delta-debugging shrinker for failing designs.
//!
//! A divergence found on a randomly sampled design is only actionable once
//! the design is small enough to read. The shrinker minimises the
//! *generator parameter vector* rather than the netlist itself: every
//! candidate is re-generated from scratch and re-checked, so the shrunk
//! repro is always a well-formed design the generator can reproduce — no
//! dangling nets, no hand-invented structures.
//!
//! The search is a per-dimension greedy descent: for each dimension of
//! [`SpecParams::dims`], first try jumping straight to the generator's
//! floor, and if the failure disappears, binary-search the smallest still-
//! failing value. Passes repeat until a full pass changes nothing
//! (fixpoint). With injection, a candidate on which the fault operator no
//! longer applies counts as *passing* — shrinking must preserve the fault,
//! not outrun it.

use crate::checks::{run_named, CheckOptions};
use crate::design::DiffDesign;
use tmm_circuits::{SpecParams, SPEC_DIMS};
use tmm_faults::FaultOp;
use tmm_sta::liberty::Library;

/// Outcome of a shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The minimised parameter vector (still failing the check).
    pub params: SpecParams,
    /// Cell count of the shrunk design.
    pub cells: usize,
    /// Divergence detail reported by the shrunk design.
    pub detail: String,
    /// Number of candidate designs generated and checked.
    pub candidates: usize,
    /// Number of full passes over the dimensions until fixpoint.
    pub passes: usize,
}

/// Re-generates a candidate and reports its failure detail, or `None` if
/// the candidate passes (or the fault no longer applies to it).
fn probe(
    library: &Library,
    name: &str,
    params: &SpecParams,
    check: &str,
    inject: Option<(FaultOp, u64)>,
    opts: &CheckOptions,
) -> Option<String> {
    let design = DiffDesign::build(library, name, params, inject).ok()?;
    if inject.is_some() && !design.injected {
        return None;
    }
    run_named(&design, check, opts)
}

/// Shrinks `start` (known to fail `check`) to a locally minimal failing
/// parameter vector. `start` itself is returned if no smaller vector
/// reproduces the failure.
#[must_use]
pub fn shrink_design(
    library: &Library,
    name: &str,
    start: &SpecParams,
    check: &str,
    inject: Option<(FaultOp, u64)>,
    opts: &CheckOptions,
) -> ShrinkResult {
    let mut span = tmm_obs::span("diffcheck_shrink", "diffcheck");
    span.arg("check", check);
    let mut cur = *start;
    let mut detail = String::new();
    let mut candidates = 0usize;
    let mut passes = 0usize;
    // A pass per dimension, repeated to fixpoint. SPEC_DIMS is tiny and
    // each dimension only ever decreases, so this terminates fast; the
    // pass cap is a safety net, not a tuning knob.
    while passes < 8 {
        passes += 1;
        let mut changed = false;
        for i in 0..SPEC_DIMS {
            let (_, val, floor) = cur.dims()[i];
            if val <= floor {
                continue;
            }
            candidates += 1;
            if let Some(d) = probe(library, name, &cur.with_dim(i, floor), check, inject, opts)
            {
                cur = cur.with_dim(i, floor);
                detail = d;
                changed = true;
                continue;
            }
            // Floor passes but `val` fails: binary-search the smallest
            // failing value in (floor, val].
            let (mut lo, mut hi) = (floor, val);
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                candidates += 1;
                match probe(library, name, &cur.with_dim(i, mid), check, inject, opts) {
                    Some(d) => {
                        hi = mid;
                        detail = d;
                    }
                    None => lo = mid,
                }
            }
            if hi < val {
                cur = cur.with_dim(i, hi);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Rebuild the winner once for its cell count (and its detail when no
    // dimension ever moved).
    let (cells, final_detail) = match DiffDesign::build(library, name, &cur, inject) {
        Ok(d) => {
            let detail_now = run_named(&d, check, opts);
            (d.cells(), detail_now)
        }
        Err(e) => (0, Some(format!("shrunk design failed to rebuild: {e}"))),
    };
    if let Some(d) = final_detail {
        detail = d;
    }
    span.arg("cells", &cells.to_string());
    tmm_obs::counter_add("tmm_diffcheck_shrink_candidates_total", &[], candidates as u64);
    ShrinkResult { params: cur, cells, detail, candidates, passes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{design_rng, sample_params};

    /// Killing the clock fails engine-equality on any clocked design, so
    /// the shrinker should drive every dimension to (or near) its floor.
    #[test]
    fn injected_fault_shrinks_to_a_tiny_design() {
        let lib = Library::synthetic(1);
        let params = sample_params(&mut design_rng(0, 2));
        let inject = Some((FaultOp::DropClock, 11));
        let d = DiffDesign::build(&lib, "s", &params, inject).unwrap();
        assert!(d.injected);
        let opts = CheckOptions::default();
        let detail = run_named(&d, "engine-equality", &opts);
        assert!(detail.is_some(), "seed design must fail before shrinking");
        let r = shrink_design(&lib, "s", &params, "engine-equality", inject, &opts);
        assert!(!r.detail.is_empty(), "shrunk design still reports the divergence");
        assert!(r.cells <= 20, "shrunk to {} cells: {:?}", r.cells, r.params);
        assert!(r.cells > 0);
        assert!(r.candidates > 0);
        // The shrunk vector is never larger than the start in any dimension.
        for (s, c) in params.dims().iter().zip(r.params.dims()) {
            assert!(c.1 <= s.1, "dim {} grew: {} -> {}", s.0, s.1, c.1);
        }
    }

    /// A clean design has nothing to shrink: the probe never fails, so the
    /// start vector survives unchanged.
    #[test]
    fn clean_design_is_a_fixpoint() {
        let lib = Library::synthetic(1);
        let params = sample_params(&mut design_rng(0, 0));
        let r = shrink_design(&lib, "c", &params, "engine-equality", None, &CheckOptions::default());
        assert_eq!(r.params, params);
    }
}
