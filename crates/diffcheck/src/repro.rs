//! Self-contained repro artifacts (`.repro.ron`).
//!
//! A repro records everything needed to re-run one confirmed divergence
//! years later with no access to the sweep that found it: the check name,
//! the shrunk generator parameter vector, the fault injection (if any),
//! and — for human inspection and as a tamper check — the full netlist
//! text of the shrunk design. The format is a small, stable RON-like
//! dialect written and parsed by hand (the container carries no serde);
//! [`Repro::replay`] re-generates the design from its parameters, verifies
//! the embedded netlist still matches, and re-runs the named check.

use crate::checks::{run_named, CheckOptions};
use crate::design::{graph_fault_by_name, DiffDesign};
use tmm_circuits::SpecParams;
use tmm_sta::io::{parse_netlist, write_netlist};
use tmm_sta::liberty::Library;

/// Schema tag written into (and required from) every artifact.
pub const SCHEMA: &str = "tmm-repro/v1";

/// One divergence, reduced and packaged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Repro {
    /// Which differential check fired ([`crate::checks::CHECK_NAMES`]).
    pub check: String,
    /// Design display name.
    pub design: String,
    /// Synthetic-library seed the design was generated against.
    pub library: u64,
    /// Sweep seed that discovered the failure (provenance only).
    pub sweep_seed: u64,
    /// Injected fault, as `(operator name, fault seed)`; `None` for an
    /// organic divergence.
    pub inject: Option<(String, u64)>,
    /// Shrunk generator parameter vector.
    pub params: SpecParams,
    /// Cell count of the shrunk design.
    pub cells: usize,
    /// Divergence detail as reported by the check.
    pub detail: String,
    /// Netlist text of the shrunk (clean) design.
    pub netlist: String,
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '\\' => vec!['\\', '\\'],
            '"' => vec!['\\', '"'],
            '\n' => vec!['\\', 'n'],
            other => vec![other],
        })
        .collect()
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

impl Repro {
    /// Renders the artifact text.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "(");
        let _ = writeln!(out, "    schema: \"{SCHEMA}\",");
        let _ = writeln!(out, "    check: \"{}\",", self.check);
        let _ = writeln!(out, "    design: \"{}\",", self.design);
        let _ = writeln!(out, "    library: {},", self.library);
        let _ = writeln!(out, "    sweep_seed: {},", self.sweep_seed);
        match &self.inject {
            Some((op, seed)) => {
                let _ = writeln!(out, "    inject: (\"{op}\", {seed}),");
            }
            None => {
                let _ = writeln!(out, "    inject: none,");
            }
        }
        let _ = writeln!(out, "    params: (");
        for (name, value, _) in self.params.dims() {
            let _ = writeln!(out, "        {name}: {value},");
        }
        let _ = writeln!(out, "        seed: {},", self.params.seed);
        let _ = writeln!(out, "    ),");
        let _ = writeln!(out, "    cells: {},", self.cells);
        let _ = writeln!(out, "    detail: \"{}\",", escape(&self.detail));
        let _ = writeln!(out, "    netlist: r#\"");
        out.push_str(&self.netlist);
        if !self.netlist.ends_with('\n') {
            out.push('\n');
        }
        let _ = writeln!(out, "\"#,");
        let _ = writeln!(out, ")");
        out
    }

    /// Parses an artifact rendered by [`Repro::render`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or missing field.
    pub fn parse(src: &str) -> Result<Repro, String> {
        fn str_field(src: &str, key: &str) -> Result<String, String> {
            let tag = format!("{key}: \"");
            let start = src.find(&tag).ok_or_else(|| format!("missing field '{key}'"))?
                + tag.len();
            let rest = &src[start..];
            // Scan to the first unescaped quote.
            let mut end = None;
            let mut escaped = false;
            for (i, c) in rest.char_indices() {
                match c {
                    '\\' if !escaped => escaped = true,
                    '"' if !escaped => {
                        end = Some(i);
                        break;
                    }
                    _ => escaped = false,
                }
            }
            let end = end.ok_or_else(|| format!("unterminated string for '{key}'"))?;
            Ok(unescape(&rest[..end]))
        }
        fn num_field(src: &str, key: &str) -> Result<u64, String> {
            let tag = format!("{key}: ");
            let start = src.find(&tag).ok_or_else(|| format!("missing field '{key}'"))?
                + tag.len();
            let digits: String =
                src[start..].chars().take_while(char::is_ascii_digit).collect();
            digits.parse().map_err(|e| format!("bad number for '{key}': {e}"))
        }

        let schema = str_field(src, "schema")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema '{schema}' (expected '{SCHEMA}')"));
        }
        let inject = if src.contains("inject: none") {
            None
        } else {
            let start = src
                .find("inject: (\"")
                .ok_or_else(|| "missing field 'inject'".to_string())?;
            let rest = &src[start + "inject: (\"".len()..];
            let close =
                rest.find('"').ok_or_else(|| "malformed 'inject' field".to_string())?;
            let op = rest[..close].to_string();
            let after = rest[close + 1..]
                .strip_prefix(", ")
                .ok_or_else(|| "malformed 'inject' field".to_string())?;
            let digits: String = after.chars().take_while(char::is_ascii_digit).collect();
            let seed = digits.parse().map_err(|e| format!("bad inject seed: {e}"))?;
            Some((op, seed))
        };
        // The params block is the only nested group; scope numeric lookups
        // to it so `seed:` (also a top-level-sounding name) can't collide.
        let pstart =
            src.find("params: (").ok_or_else(|| "missing field 'params'".to_string())?;
        let pend = src[pstart..]
            .find("\n    ),")
            .map(|i| pstart + i)
            .ok_or_else(|| "unterminated 'params' block".to_string())?;
        let pblock = &src[pstart..pend];
        let pnum = |key: &str| num_field(pblock, key);
        let usize_of = |v: u64| -> usize { v as usize };
        let params = SpecParams {
            inputs: usize_of(pnum("inputs")?),
            outputs: usize_of(pnum("outputs")?),
            banks: usize_of(pnum("banks")?),
            regs_per_bank: usize_of(pnum("regs_per_bank")?),
            cloud_depth: usize_of(pnum("cloud_depth")?),
            cloud_width: usize_of(pnum("cloud_width")?),
            clock_fanout: usize_of(pnum("clock_fanout")?),
            seed: pnum("seed")?,
        };
        let nstart = src
            .find("netlist: r#\"")
            .ok_or_else(|| "missing field 'netlist'".to_string())?
            + "netlist: r#\"".len();
        let nend = src[nstart..]
            .find("\"#")
            .map(|i| nstart + i)
            .ok_or_else(|| "unterminated 'netlist' block".to_string())?;
        let netlist = src[nstart..nend].trim_start_matches('\n').to_string();
        Ok(Repro {
            check: str_field(src, "check")?,
            design: str_field(src, "design")?,
            library: num_field(src, "library")?,
            sweep_seed: num_field(src, "sweep_seed")?,
            inject,
            params,
            cells: usize_of(num_field(src, "cells")?),
            detail: str_field(src, "detail")?,
            netlist,
        })
    }

    /// Re-generates the design from the recorded parameters, verifies the
    /// embedded netlist still corresponds to it, and re-runs the recorded
    /// check. Returns the check's divergence detail (`None` = the failure
    /// no longer reproduces).
    ///
    /// # Errors
    ///
    /// Fails when the artifact is inconsistent: unknown fault operator, a
    /// fault that no longer applies, a netlist that does not parse against
    /// the recorded library, or a regenerated design that differs from the
    /// embedded one.
    pub fn replay(&self, opts: &CheckOptions) -> Result<Option<String>, String> {
        let library = Library::synthetic(self.library);
        let inject = match &self.inject {
            Some((name, seed)) => Some((
                graph_fault_by_name(name)
                    .ok_or_else(|| format!("unknown fault operator '{name}'"))?,
                *seed,
            )),
            None => None,
        };
        let design = DiffDesign::build(&library, &self.design, &self.params, inject)
            .map_err(|e| format!("design rebuild failed: {e}"))?;
        if inject.is_some() && !design.injected {
            return Err("recorded fault no longer applies to the rebuilt design".into());
        }
        let embedded = parse_netlist(&self.netlist, &library)
            .map_err(|e| format!("embedded netlist does not parse: {e}"))?;
        if write_netlist(&embedded) != write_netlist(&design.netlist) {
            return Err("embedded netlist differs from the regenerated design".into());
        }
        Ok(run_named(&design, &self.check, opts))
    }
}

/// Builds an artifact from a shrunk failing design.
#[must_use]
pub fn package(
    design: &DiffDesign,
    check: &str,
    library: u64,
    sweep_seed: u64,
    inject: Option<(&str, u64)>,
    detail: &str,
) -> Repro {
    Repro {
        check: check.to_string(),
        design: design.name.clone(),
        library,
        sweep_seed,
        inject: inject.map(|(op, s)| (op.to_string(), s)),
        params: design.params,
        cells: design.cells(),
        detail: detail.to_string(),
        netlist: write_netlist(&design.netlist),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{design_rng, sample_params};
    use tmm_faults::FaultOp;

    fn sample_repro(inject: Option<(FaultOp, u64)>) -> Repro {
        let lib = Library::synthetic(1);
        let params = sample_params(&mut design_rng(3, 0));
        let d = DiffDesign::build(&lib, "r0", &params, inject).unwrap();
        package(
            &d,
            "engine-equality",
            1,
            3,
            inject.map(|(op, s)| (op.name(), s)),
            "PO y at[Late][Rise]: NaN vs 12.5 \"quoted\"\nsecond line",
        )
    }

    #[test]
    fn render_parse_round_trip() {
        for inject in [None, Some((FaultOp::DropClock, 7))] {
            let r = sample_repro(inject);
            let parsed = Repro::parse(&r.render()).unwrap();
            assert_eq!(parsed, r);
        }
    }

    #[test]
    fn replay_reports_the_recorded_divergence() {
        let r = sample_repro(Some((FaultOp::DropClock, 7)));
        let outcome = r.replay(&CheckOptions::default()).unwrap();
        assert!(outcome.is_some(), "injected clock-drop divergence must replay");
        let clean = sample_repro(None);
        assert_eq!(clean.replay(&CheckOptions::default()).unwrap(), None);
    }

    /// Satellite of the crash-safety work: a torn or corrupted `.repro.ron`
    /// (the kind a killed writer or bit rot leaves behind) must surface as
    /// a classed parse/replay error — never a panic, never a silent
    /// "reproduces" on garbage.
    #[test]
    fn truncated_or_corrupt_artifacts_never_panic() {
        let r = sample_repro(None);
        let text = r.render();
        let mut check = |hurt: String, what: String| {
            let parsed = std::panic::catch_unwind(|| Repro::parse(&hurt));
            let Ok(parse_result) = parsed else {
                panic!("Repro::parse panicked on {what}");
            };
            if let Ok(repro) = parse_result {
                // Still-parseable damage must be caught by replay's own
                // consistency checks (or legitimately replay clean when
                // the damage hit only ignorable bytes).
                let replayed = std::panic::catch_unwind(|| repro.replay(&CheckOptions::default()));
                assert!(replayed.is_ok(), "replay panicked on {what}");
            }
        };
        // Byte truncations at every boundary-aligned cut.
        let step = (text.len() / 61).max(1);
        for cut in (0..text.len()).step_by(step) {
            if !text.is_char_boundary(cut) {
                continue;
            }
            check(text[..cut].to_string(), format!("truncation at byte {cut}"));
        }
        // Seeded fault-operator corruption (truncation at random points).
        for seed in 0..24 {
            check(
                tmm_faults::corrupt_text(FaultOp::TruncateText, &text, seed),
                format!("truncate-text seed {seed}"),
            );
        }
        // An outright truncated artifact must not parse at all.
        assert!(Repro::parse(&text[..text.len() / 2]).is_err());
    }

    #[test]
    fn tampered_artifacts_are_rejected() {
        let r = sample_repro(None);
        let text = r.render();
        assert!(Repro::parse(&text.replace(SCHEMA, "tmm-repro/v0")).is_err());
        assert!(Repro::parse(&text.replace("params: (", "pa: (")).is_err());
        // A netlist that belongs to a different design must fail replay.
        let mut other = sample_repro(None);
        other.params.seed ^= 1;
        let err = other.replay(&CheckOptions::default());
        assert!(err.is_err(), "mismatched netlist/params must not replay silently");
    }
}
