//! Design sampling and construction for differential checking.
//!
//! A [`DiffDesign`] bundles everything one differential-check round needs:
//! the generator parameter vector it came from, the synthesized netlist,
//! a *clean* lowered graph, and a *tainted* twin that optionally carries a
//! deterministic [`tmm_faults`] corruption. Without injection the twin is
//! an identical clone, so every cross-engine comparison degenerates to the
//! equivalence the engines are supposed to guarantee; with injection the
//! clean graph plays the oracle and the tainted one the engine under test.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use tmm_circuits::{CircuitSpec, SpecParams};
use tmm_faults::{corrupt_graph, FaultOp};
use tmm_sta::graph::ArcGraph;
use tmm_sta::liberty::Library;
use tmm_sta::netlist::Netlist;
use tmm_sta::Result;

/// One sampled (or shrunk, or replayed) design ready for checking.
#[derive(Debug)]
pub struct DiffDesign {
    /// Display name (stable across shrink iterations of the same find).
    pub name: String,
    /// Generator parameter vector the design was built from.
    pub params: SpecParams,
    /// The synthesized netlist (embedded into repro artifacts).
    pub netlist: Netlist,
    /// Clean lowered graph — the oracle side of every pairing.
    pub flat: ArcGraph,
    /// Twin graph handed to the engines under test; identical to `flat`
    /// unless a fault was injected.
    pub tainted: ArcGraph,
    /// Whether the requested fault actually applied to this design (some
    /// operators need a clock tree, LUT axes of a minimum size, …).
    pub injected: bool,
}

impl DiffDesign {
    /// Generates and lowers a design from `params`, optionally corrupting
    /// the tainted twin with `inject = (operator, fault seed)`.
    ///
    /// # Errors
    ///
    /// Propagates generation/lowering errors (a valid parameter vector
    /// against the synthetic library never fails in practice).
    pub fn build(
        library: &Library,
        name: &str,
        params: &SpecParams,
        inject: Option<(FaultOp, u64)>,
    ) -> Result<DiffDesign> {
        let netlist = CircuitSpec::from_params(name, params).generate(library)?;
        let flat = ArcGraph::from_netlist(&netlist, library)?;
        let mut tainted = flat.clone();
        let injected = match inject {
            Some((op, seed)) => corrupt_graph(op, &mut tainted, seed),
            None => false,
        };
        Ok(DiffDesign {
            name: name.to_string(),
            params: *params,
            netlist,
            flat,
            tainted,
            injected,
        })
    }

    /// Number of cells in the design (the shrink target metric).
    #[must_use]
    pub fn cells(&self) -> usize {
        self.netlist.stats().cells
    }
}

/// Samples a small random parameter vector from `rng`. The ranges are
/// deliberately modest — differential coverage comes from running many
/// diverse small designs, not a few big ones — while still producing every
/// structural feature the checks exercise: combinational and clocked
/// designs, multi-bank pipelines, reconvergent clouds, and shuffled clock
/// trees deep enough for non-trivial CPPR.
pub fn sample_params(rng: &mut StdRng) -> SpecParams {
    SpecParams {
        inputs: rng.gen_range(1..7),
        outputs: rng.gen_range(1..7),
        banks: rng.gen_range(0..4),
        regs_per_bank: rng.gen_range(1..7),
        cloud_depth: rng.gen_range(1..4),
        cloud_width: rng.gen_range(2..8),
        clock_fanout: rng.gen_range(2..5),
        seed: rng.next_u64(),
    }
}

/// Resolves a fault-operator name (the stable kebab-case names of
/// [`FaultOp::name`]) to the operator, restricted to the graph-level
/// operators differential checking can inject.
#[must_use]
pub fn graph_fault_by_name(name: &str) -> Option<FaultOp> {
    FaultOp::GRAPH.into_iter().find(|op| op.name() == name)
}

/// Deterministic StdRng seeded for design index `idx` of sweep seed
/// `seed`: every design is reproducible in isolation.
#[must_use]
pub fn design_rng(seed: u64, idx: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ 0x_d1ff_c4ec_u64.wrapping_mul(idx as u64 + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_per_design_index() {
        let a = sample_params(&mut design_rng(0, 3));
        let b = sample_params(&mut design_rng(0, 3));
        assert_eq!(a, b);
        let c = sample_params(&mut design_rng(0, 4));
        assert_ne!(a, c, "different design index, different params");
    }

    #[test]
    fn build_without_injection_yields_identical_twins() {
        let lib = Library::synthetic(1);
        let params = sample_params(&mut design_rng(7, 0));
        let d = DiffDesign::build(&lib, "t", &params, None).unwrap();
        assert!(!d.injected);
        assert_eq!(d.flat.node_count(), d.tainted.node_count());
        assert!(d.cells() > 0);
    }

    #[test]
    fn injection_marks_applicability() {
        let lib = Library::synthetic(1);
        let params = SpecParams {
            inputs: 2,
            outputs: 2,
            banks: 1,
            regs_per_bank: 2,
            cloud_depth: 1,
            cloud_width: 2,
            clock_fanout: 2,
            seed: 5,
        };
        let d =
            DiffDesign::build(&lib, "t", &params, Some((FaultOp::NanLutEntries, 3))).unwrap();
        assert!(d.injected, "NaN LUT corruption applies to any gate-bearing design");
    }

    #[test]
    fn fault_names_resolve_graph_ops_only() {
        assert_eq!(graph_fault_by_name("nan-lut-entries"), Some(FaultOp::NanLutEntries));
        assert_eq!(graph_fault_by_name("drop-clock"), Some(FaultOp::DropClock));
        assert_eq!(graph_fault_by_name("truncate-text"), None, "text ops are not injectable");
        assert_eq!(graph_fault_by_name("bogus"), None);
    }
}
