//! Randomized cross-engine differential checking for the TMM stack.
//!
//! Static timing has no external oracle: the only way to know the engines
//! are right is to make them disagree. This crate generates seeded random
//! designs with [`tmm_circuits`], runs every engine pairing the workspace
//! supports — flat [`Analysis`](tmm_sta::propagate::Analysis) vs
//! copy-on-write [`GraphView`](tmm_sta::view::GraphView) vs cone-limited
//! [`ReferenceAnalysis`](tmm_sta::retime::ReferenceAnalysis), with CPPR and
//! AOCV on and off; naive vs blocked GNN kernels; serial vs threaded and
//! view vs clone TS sweeps — and checks bit-equality plus semantic
//! invariants no single engine can self-check (slack conservation along
//! complete paths, a monotone error envelope under progressively larger
//! merges, ILM boundary exactness, CPPR credit non-negativity).
//!
//! On a mismatch the failing design is shrunk to a minimal repro by
//! delta-debugging the generator's parameter vector ([`shrink`]) and
//! packaged as a self-contained `.repro.ron` artifact ([`repro`]) that
//! replays without the sweep that found it. Deliberate bugs can be
//! injected with [`tmm_faults`] operators to prove the harness catches
//! them end to end.
//!
//! # Example
//!
//! ```
//! use tmm_diffcheck::{run_sweep, DiffcheckOptions};
//!
//! let outcome = run_sweep(&DiffcheckOptions { designs: 2, ..Default::default() }).unwrap();
//! assert_eq!(outcome.findings.len(), 0, "engines agree on clean designs");
//! assert_eq!(outcome.designs_run, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checks;
pub mod design;
pub mod repro;
pub mod shrink;

pub use checks::{
    eco_equality_masked, run_all, run_named, CheckOptions, Divergence, CHECK_NAMES,
};
pub use design::{design_rng, graph_fault_by_name, sample_params, DiffDesign};
pub use repro::{package, Repro, SCHEMA};
pub use shrink::{shrink_design, ShrinkResult};

use tmm_faults::FaultOp;
use tmm_sta::liberty::Library;
use tmm_sta::Result;

/// Sweep configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffcheckOptions {
    /// Sweep seed: design `i` is derived deterministically from
    /// `(seed, i)`, so any single design reproduces in isolation.
    pub seed: u64,
    /// Number of random designs to generate and check.
    pub designs: usize,
    /// Synthetic-library seed shared by all designs of the sweep.
    pub library: u64,
    /// Per-check tuning knobs.
    pub check: CheckOptions,
    /// Deliberate fault to inject into every design's tainted twin
    /// (operator + fault seed); `None` checks the engines as shipped.
    pub inject: Option<(FaultOp, u64)>,
    /// Stop the sweep after this many confirmed findings (each finding is
    /// shrunk and packaged, which dwarfs the per-design check cost).
    pub max_findings: usize,
    /// Per-stage deadline: when no design finishes (heartbeat) for this
    /// many milliseconds, the process exits with code 6 instead of
    /// hanging — the supervision nightly cron jobs rely on. `None`
    /// disables the watchdog.
    pub deadline_ms: Option<u64>,
}

impl Default for DiffcheckOptions {
    fn default() -> Self {
        DiffcheckOptions {
            seed: 0,
            designs: 50,
            library: 1,
            check: CheckOptions::default(),
            inject: None,
            max_findings: 3,
            deadline_ms: None,
        }
    }
}

/// One confirmed, shrunk, packaged divergence.
#[derive(Debug, Clone)]
pub struct SweepFinding {
    /// Index of the design (within the sweep) that first exposed it.
    pub design_index: usize,
    /// The first divergence the design reported.
    pub divergence: Divergence,
    /// Cell count before shrinking.
    pub original_cells: usize,
    /// Cell count after shrinking.
    pub shrunk_cells: usize,
    /// The packaged artifact (render with [`Repro::render`]).
    pub repro: Repro,
}

/// Aggregate result of one sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepOutcome {
    /// Designs generated and checked.
    pub designs_run: usize,
    /// Designs on which the requested fault actually applied (equals
    /// `designs_run` when nothing was injected).
    pub injections_applied: usize,
    /// Shrunk, packaged findings (at most `max_findings`).
    pub findings: Vec<SweepFinding>,
}

/// Runs a full differential sweep: generate → check → shrink → package.
///
/// # Errors
///
/// Propagates design generation failures (a sweep over valid parameter
/// ranges does not fail in practice); check divergences are *data*, not
/// errors, and come back in [`SweepOutcome::findings`].
pub fn run_sweep(opts: &DiffcheckOptions) -> Result<SweepOutcome> {
    let mut sweep_span = tmm_obs::span("diffcheck_sweep", "diffcheck");
    sweep_span.arg("designs", &opts.designs.to_string());
    // Completing a design beats the heartbeat (via set_stage); a single
    // design hanging past the deadline aborts with the classed exit code
    // 6 (the `tmm` CLI convention) instead of wedging the cron job.
    let _watchdog = opts.deadline_ms.map(|ms| {
        tmm_ckpt::StageSupervisor::start(
            "diffcheck sweep",
            std::time::Duration::from_millis(ms),
            tmm_ckpt::DeadlineAction::Exit(6),
        )
    });
    let library = Library::synthetic(opts.library);
    let mut outcome = SweepOutcome::default();
    for idx in 0..opts.designs {
        let params = sample_params(&mut design_rng(opts.seed, idx));
        let name = format!("d{idx}");
        tmm_ckpt::set_stage(&format!("diffcheck.{name}"));
        let design = DiffDesign::build(&library, &name, &params, opts.inject)?;
        outcome.designs_run += 1;
        if opts.inject.is_none() || design.injected {
            outcome.injections_applied += 1;
        } else {
            // The operator found nothing to corrupt (e.g. drop-clock on a
            // combinational design): twins are identical, nothing to learn.
            continue;
        }
        let divergences = run_all(&design, &opts.check);
        let Some(first) = divergences.into_iter().next() else { continue };
        tmm_obs::info(
            &[("stage", "diffcheck"), ("design", &name), ("check", first.check)],
            &format!("divergence: {}", first.detail),
        );
        let shrunk = shrink_design(
            &library,
            &name,
            &params,
            first.check,
            opts.inject,
            &opts.check,
        );
        let minimal = DiffDesign::build(&library, &name, &shrunk.params, opts.inject)?;
        let repro = package(
            &minimal,
            first.check,
            opts.library,
            opts.seed,
            opts.inject.map(|(op, s)| (op.name(), s)),
            &shrunk.detail,
        );
        outcome.findings.push(SweepFinding {
            design_index: idx,
            divergence: first,
            original_cells: design.cells(),
            shrunk_cells: shrunk.cells,
            repro,
        });
        if outcome.findings.len() >= opts.max_findings {
            tmm_obs::warn(
                &[("stage", "diffcheck")],
                &format!(
                    "stopping after {} findings ({} designs run)",
                    outcome.findings.len(),
                    outcome.designs_run
                ),
            );
            break;
        }
    }
    tmm_obs::counter_add(
        "tmm_diffcheck_designs_total",
        &[],
        outcome.designs_run as u64,
    );
    outcome
        .findings
        .iter()
        .for_each(|f| sweep_span.arg("finding", f.divergence.check));
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_sweep_over_a_handful_of_designs_is_quiet() {
        let outcome = run_sweep(&DiffcheckOptions {
            designs: 4,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(outcome.designs_run, 4);
        assert_eq!(outcome.injections_applied, 4);
        assert!(outcome.findings.is_empty(), "{:?}", outcome.findings);
    }

    #[test]
    fn injected_sweep_catches_shrinks_and_packages() {
        let outcome = run_sweep(&DiffcheckOptions {
            designs: 2,
            inject: Some((FaultOp::DropClock, 5)),
            max_findings: 1,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(outcome.findings.len(), 1);
        let f = &outcome.findings[0];
        assert!(f.shrunk_cells <= f.original_cells.max(1));
        assert!(f.shrunk_cells <= 20, "shrunk to {} cells", f.shrunk_cells);
        // The packaged artifact round-trips and replays the divergence.
        let parsed = Repro::parse(&f.repro.render()).unwrap();
        let replayed = parsed.replay(&CheckOptions::default()).unwrap();
        assert!(replayed.is_some(), "repro must still diverge on replay");
    }
}

