//! Property-based tests of the STA substrate's algebraic invariants.

// Integration-test harness code: the clippy.toml test exemptions do not
// reach helper fns outside #[test], so state the exemption explicitly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use tmm_sta::constraints::{Context, ContextSampler};
use tmm_sta::graph::{compose_sense, ArcGraph, NodeKind};
use tmm_sta::io::{parse_library, parse_netlist, write_library, write_netlist};
use tmm_sta::liberty::{Library, Lut2, TimingSense};
use tmm_sta::netlist::NetlistBuilder;
use tmm_sta::propagate::Analysis;
use tmm_sta::split::{Edge, Mode, Split, TransPair};

fn sense_strategy() -> impl Strategy<Value = TimingSense> {
    prop_oneof![
        Just(TimingSense::PositiveUnate),
        Just(TimingSense::NegativeUnate),
        Just(TimingSense::NonUnate),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Sense composition is associative with PositiveUnate as identity and
    /// NonUnate as absorbing element — the algebra serial merging relies on.
    #[test]
    fn sense_composition_is_a_monoid(
        a in sense_strategy(),
        b in sense_strategy(),
        c in sense_strategy(),
    ) {
        use TimingSense::{NonUnate, PositiveUnate};
        prop_assert_eq!(compose_sense(PositiveUnate, a), a);
        prop_assert_eq!(compose_sense(a, PositiveUnate), a);
        prop_assert_eq!(compose_sense(NonUnate, a), NonUnate);
        prop_assert_eq!(compose_sense(a, NonUnate), NonUnate);
        prop_assert_eq!(
            compose_sense(compose_sense(a, b), c),
            compose_sense(a, compose_sense(b, c))
        );
    }

    /// Bilinear interpolation of a monotone table is monotone along both
    /// axes inside the grid.
    #[test]
    fn monotone_tables_interpolate_monotonically(
        s1 in 5.0f64..320.0,
        s2 in 5.0f64..320.0,
        l in 1.0f64..64.0,
        k_s in 0.01f64..0.5,
        k_l in 0.1f64..3.0,
    ) {
        let lut = Lut2::from_fn(
            vec![5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0],
            vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0],
            |s, load| 2.0 + k_s * s + k_l * load + 0.001 * s * load,
        ).unwrap();
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        prop_assert!(lut.value(lo, l) <= lut.value(hi, l) + 1e-9);
    }

    /// Split/TransPair map+index laws: mapping then indexing equals
    /// indexing then applying.
    #[test]
    fn split_map_commutes_with_index(e in -100.0f64..100.0, l in -100.0f64..100.0) {
        let s = Split::new(e, l);
        let mapped = s.map(|v| v * 2.0 + 1.0);
        for mode in Mode::ALL {
            prop_assert_eq!(mapped[mode], s[mode] * 2.0 + 1.0);
        }
        let t = TransPair::new(e, l);
        let mapped = t.map(|v| v - 3.0);
        for edge in Edge::ALL {
            prop_assert_eq!(mapped[edge], t[edge] - 3.0);
        }
    }

    /// On a random-length inverter/buffer chain, arrivals increase strictly
    /// along the chain and the worst PI→PO slack matches at both ends.
    #[test]
    fn chain_analysis_invariants(
        n_cells in 1usize..12,
        seed in 0u64..200,
        use_buf in proptest::bool::ANY,
    ) {
        let lib = Library::synthetic(seed % 16);
        let mut b = NetlistBuilder::new("pchain", &lib);
        let a = b.input("a").unwrap();
        let z = b.output("z").unwrap();
        let mut prev = a;
        for i in 0..n_cells {
            let kind = if use_buf { "BUFX1" } else { "INVX1" };
            let c = b.cell(&format!("u{i}"), kind).unwrap();
            b.connect(&format!("n{i}"), prev, &[b.pin_of(c, "A").unwrap()]).unwrap();
            prev = b.pin_of(c, "Z").unwrap();
        }
        b.connect("n_end", prev, &[z]).unwrap();
        let g = ArcGraph::from_netlist(&b.finish().unwrap(), &lib).unwrap();
        let mut sampler = ContextSampler::new(seed);
        let ctx = sampler.sample(&g);
        let an = Analysis::run(&g, &ctx).unwrap();
        let po = g.primary_outputs()[0];
        let pi = g.primary_inputs()[0];
        for mode in Mode::ALL {
            for edge in Edge::ALL {
                prop_assert!(an.at(po)[mode][edge] > an.at(pi)[mode][edge]);
            }
        }
        let worst = |q: tmm_sta::split::Quad| q.late.rise.min(q.late.fall);
        prop_assert!((worst(an.slack(pi)) - worst(an.slack(po))).abs() < 1e-9);
    }

    /// Library text round-trips for any seed.
    #[test]
    fn library_io_round_trip(seed in 0u64..64) {
        let lib = Library::synthetic(seed);
        let back = parse_library(&write_library(&lib)).unwrap();
        prop_assert_eq!(back.templates().len(), lib.templates().len());
        for (a, b) in lib.templates().iter().zip(back.templates()) {
            prop_assert_eq!(&a.name, &b.name);
            for (aa, ab) in a.arcs.iter().zip(&b.arcs) {
                prop_assert_eq!(
                    aa.tables.late.delay.rise.values(),
                    ab.tables.late.delay.rise.values()
                );
            }
        }
    }

    /// Netlist text round-trips and re-times identically for random tiny
    /// fan-out structures.
    #[test]
    fn netlist_io_round_trip(seed in 0u64..64, fanout in 1usize..4) {
        let lib = Library::synthetic(3);
        let mut b = NetlistBuilder::new("rt", &lib);
        let a = b.input("a").unwrap();
        let mut sinks = Vec::new();
        let mut outs = Vec::new();
        for i in 0..fanout {
            let c = b.cell(&format!("c{i}"), if seed % 2 == 0 { "INVX1" } else { "BUFX2" }).unwrap();
            sinks.push(b.pin_of(c, "A").unwrap());
            outs.push(b.pin_of(c, "Z").unwrap());
        }
        b.connect("n0", a, &sinks).unwrap();
        for (i, o) in outs.iter().enumerate() {
            let z = b.output(&format!("z{i}")).unwrap();
            b.connect(&format!("nz{i}"), *o, &[z]).unwrap();
        }
        let netlist = b.finish().unwrap();
        let back = parse_netlist(&write_netlist(&netlist), &lib).unwrap();
        let g1 = ArcGraph::from_netlist(&netlist, &lib).unwrap();
        let g2 = ArcGraph::from_netlist(&back, &lib).unwrap();
        let ctx = Context::nominal(&g1);
        let d = Analysis::run(&g1, &ctx).unwrap().boundary()
            .diff(Analysis::run(&g2, &ctx).unwrap().boundary());
        prop_assert_eq!(d.max, 0.0);
    }

    /// Bypassing any eligible internal pin preserves the DAG invariants.
    #[test]
    fn bypass_preserves_validity(seed in 0u64..100, victim_idx in 0usize..64) {
        let lib = Library::synthetic(5);
        let mut b = NetlistBuilder::new("byp", &lib);
        let a = b.input("a").unwrap();
        let z = b.output("z").unwrap();
        let c1 = b.cell("c1", "NAND2X1").unwrap();
        let c2 = b.cell("c2", "INVX1").unwrap();
        let a2 = b.input("a2").unwrap();
        b.connect("n0", a, &[b.pin_of(c1, "A").unwrap()]).unwrap();
        b.connect("n1", a2, &[b.pin_of(c1, "B").unwrap()]).unwrap();
        b.connect("n2", b.pin_of(c1, "Z").unwrap(), &[b.pin_of(c2, "A").unwrap()]).unwrap();
        b.connect("n3", b.pin_of(c2, "Z").unwrap(), &[z]).unwrap();
        let mut g = ArcGraph::from_netlist(&b.finish().unwrap(), &lib).unwrap();
        let internals: Vec<_> = (0..g.node_count() as u32)
            .map(tmm_sta::graph::NodeId)
            .filter(|&n| g.node(n).kind == NodeKind::Internal && g.can_bypass(n))
            .collect();
        prop_assume!(!internals.is_empty());
        let victim = internals[(victim_idx + seed as usize) % internals.len()];
        g.bypass_node(victim).unwrap();
        g.validate().unwrap();
        // still analyzable
        let ctx = Context::nominal(&g);
        let an = Analysis::run(&g, &ctx).unwrap();
        let po = g.primary_outputs()[0];
        prop_assert!(an.at(po)[Mode::Late][Edge::Rise].is_finite());
    }
}
