//! Advanced on-chip variation (AOCV) — depth-based derating.
//!
//! Flat OCV margins (our early/late libraries) overconstrain deep paths:
//! stage-to-stage variation partially cancels along a long path, so the
//! margin per stage should shrink with logic depth. AOCV captures this with
//! a derate table indexed by depth. The paper names AOCV as one of the
//! advanced analysis modes its framework generalises to (§1, §3.2, §5.3):
//! the timing-sensitivity labels adapt automatically because TS is measured
//! under whichever analysis mode is active.
//!
//! This implementation applies graph-based AOCV: each cell arc's delay is
//! scaled by the derate at its target node's structural depth.

use crate::split::Mode;

/// One derate stage: applies to nodes at `min_depth` or deeper, until the
/// next stage takes over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AocvStage {
    /// Minimum structural depth this stage covers.
    pub min_depth: u32,
    /// Multiplier for early (min-delay) arcs, ≤ 1.
    pub early: f64,
    /// Multiplier for late (max-delay) arcs, ≥ 1.
    pub late: f64,
}

/// A depth-indexed derate table.
///
/// Stages must be sorted by `min_depth`; [`AocvSpec::new`] enforces it.
#[derive(Debug, Clone, PartialEq)]
pub struct AocvSpec {
    stages: Vec<AocvStage>,
}

impl AocvSpec {
    /// Creates a spec from stages (sorted by `min_depth` automatically).
    /// An empty table derates nothing.
    #[must_use]
    pub fn new(mut stages: Vec<AocvStage>) -> Self {
        stages.sort_by_key(|s| s.min_depth);
        AocvSpec { stages }
    }

    /// The standard table used by the experiments: ±7 % at the boundary,
    /// converging towards ±1 % for paths deeper than 16 stages — the usual
    /// square-root-of-depth shape, tabulated.
    #[must_use]
    pub fn standard() -> Self {
        AocvSpec::new(vec![
            AocvStage { min_depth: 0, early: 0.93, late: 1.07 },
            AocvStage { min_depth: 2, early: 0.95, late: 1.05 },
            AocvStage { min_depth: 4, early: 0.96, late: 1.04 },
            AocvStage { min_depth: 8, early: 0.98, late: 1.02 },
            AocvStage { min_depth: 16, early: 0.99, late: 1.01 },
        ])
    }

    /// A POCV-style statistical table: per-stage variation `sigma`
    /// (fraction of nominal delay) pools as `±3σ/√(depth+1)` — the
    /// parametric on-chip-variation mode the paper lists next to AOCV
    /// (§1, §3.2). Tabulated at power-of-two depths up to `max_depth`.
    #[must_use]
    pub fn pocv(sigma: f64, max_depth: u32) -> Self {
        let mut stages = Vec::new();
        let mut depth = 0u32;
        loop {
            let margin = 3.0 * sigma / f64::from(depth + 1).sqrt();
            stages.push(AocvStage {
                min_depth: depth,
                early: (1.0 - margin).max(0.05),
                late: 1.0 + margin,
            });
            if depth >= max_depth {
                break;
            }
            depth = if depth == 0 { 1 } else { depth * 2 };
        }
        AocvSpec::new(stages)
    }

    /// The derate multiplier for `mode` at structural depth `depth`.
    #[must_use]
    pub fn derate(&self, mode: Mode, depth: u32) -> f64 {
        let mut current = match mode {
            Mode::Early => 1.0,
            Mode::Late => 1.0,
        };
        for stage in &self.stages {
            if depth >= stage.min_depth {
                current = match mode {
                    Mode::Early => stage.early,
                    Mode::Late => stage.late,
                };
            } else {
                break;
            }
        }
        current
    }

    /// The configured stages.
    #[must_use]
    pub fn stages(&self) -> &[AocvStage] {
        &self.stages
    }
}

impl Default for AocvSpec {
    fn default() -> Self {
        AocvSpec::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_table_converges_with_depth() {
        let spec = AocvSpec::standard();
        let mut prev_late = f64::INFINITY;
        let mut prev_early = 0.0;
        for depth in [0u32, 2, 4, 8, 16, 64] {
            let late = spec.derate(Mode::Late, depth);
            let early = spec.derate(Mode::Early, depth);
            assert!(late >= 1.0 && late <= 1.07);
            assert!(early <= 1.0 && early >= 0.93);
            assert!(late <= prev_late, "late derate must shrink with depth");
            assert!(early >= prev_early, "early derate must grow with depth");
            prev_late = late;
            prev_early = early;
        }
    }

    #[test]
    fn empty_spec_is_identity() {
        let spec = AocvSpec::new(vec![]);
        assert_eq!(spec.derate(Mode::Late, 0), 1.0);
        assert_eq!(spec.derate(Mode::Early, 100), 1.0);
    }

    #[test]
    fn stages_are_sorted_on_construction() {
        let spec = AocvSpec::new(vec![
            AocvStage { min_depth: 8, early: 0.99, late: 1.01 },
            AocvStage { min_depth: 0, early: 0.9, late: 1.1 },
        ]);
        assert_eq!(spec.stages()[0].min_depth, 0);
        assert_eq!(spec.derate(Mode::Late, 3), 1.1);
        assert_eq!(spec.derate(Mode::Late, 9), 1.01);
    }

    #[test]
    fn pocv_margin_decays_as_inverse_sqrt_depth() {
        let spec = AocvSpec::pocv(0.03, 64);
        let m0 = spec.derate(Mode::Late, 0) - 1.0;
        let m3 = spec.derate(Mode::Late, 4) - 1.0;
        let m63 = spec.derate(Mode::Late, 64) - 1.0;
        assert!((m0 - 0.09).abs() < 1e-9, "3σ at depth 0");
        assert!(m3 < m0 && m63 < m3, "monotone decay");
        // √-law: margin at depth 63 ≈ margin at depth 0 / √64
        assert!((m63 - m0 / 65.0f64.sqrt()).abs() < 0.002, "{m63}");
        // early mirror
        assert!((1.0 - spec.derate(Mode::Early, 0) - 0.09).abs() < 1e-9);
    }

    #[test]
    fn pocv_early_never_goes_nonpositive() {
        let spec = AocvSpec::pocv(0.5, 4); // absurd sigma
        for d in [0u32, 1, 2, 4] {
            assert!(spec.derate(Mode::Early, d) >= 0.05);
        }
    }

    #[test]
    fn intermediate_depths_use_the_preceding_stage() {
        let spec = AocvSpec::standard();
        assert_eq!(spec.derate(Mode::Late, 3), spec.derate(Mode::Late, 2));
        assert_eq!(spec.derate(Mode::Late, 15), spec.derate(Mode::Late, 8));
    }
}
