//! Text interchange formats for libraries and netlists.
//!
//! The TAU contests exchange designs as Verilog + Liberty + SPEF + timing
//! assertion files. This module provides the equivalent for our substrate:
//! a self-describing text format for [`crate::liberty::Library`] and
//! [`crate::netlist::Netlist`] with full round-trip fidelity, so designs
//! and characterised libraries can be stored, diffed, and reloaded across
//! processes.
//!
//! - [`write_library`] / [`parse_library`] — Liberty-style cell libraries
//!   including every early/late NLDM table.
//! - [`write_netlist`] / [`parse_netlist`] — structural netlists with
//!   parasitics.
//!
//! # Example
//!
//! ```
//! use tmm_sta::io::{parse_library, write_library};
//! use tmm_sta::liberty::Library;
//!
//! # fn main() -> Result<(), tmm_sta::StaError> {
//! let lib = Library::synthetic(3);
//! let text = write_library(&lib);
//! let reloaded = parse_library(&text)?;
//! assert_eq!(reloaded.name(), lib.name());
//! assert_eq!(reloaded.templates().len(), lib.templates().len());
//! # Ok(())
//! # }
//! ```

mod context_fmt;
mod lexer;
mod liberty_fmt;
mod netlist_fmt;

pub use context_fmt::{parse_context, write_context};
pub use lexer::{Lexer, Token};
pub use liberty_fmt::{
    parse_corner, parse_library, parse_lut, parse_sense, sense_name, write_library, write_lut,
};
pub use netlist_fmt::{is_port_reference, parse_netlist, write_netlist};
