//! Structural text format for netlists (the Verilog + SPEF role of the
//! contest inputs).
//!
//! Pins are referenced as `"<port>"` or `"<instance>/<pin>"`. Parsing
//! rebuilds the netlist through [`NetlistBuilder`], so every structural
//! validation (drivers, double connections, floating pins) applies to
//! loaded files too.

use crate::io::lexer::Lexer;
use crate::liberty::Library;
use crate::netlist::{Netlist, NetlistBuilder, PinId, PortKind};
use crate::parasitics::NetParasitics;
use crate::Result;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Serialises a netlist to its text format.
#[must_use]
pub fn write_netlist(netlist: &Netlist) -> String {
    let mut out = String::with_capacity(64 * 1024);
    let _ = writeln!(
        out,
        "design \"{}\" library \"{}\" {{",
        netlist.name(),
        netlist.library_name()
    );
    for &pi in netlist.primary_inputs() {
        let _ = writeln!(out, "  input \"{}\";", netlist.pin(pi).name);
    }
    if let Some(clk) = netlist.clock_port() {
        let _ = writeln!(out, "  clock \"{}\";", netlist.pin(clk).name);
    }
    for &po in netlist.primary_outputs() {
        let _ = writeln!(out, "  output \"{}\";", netlist.pin(po).name);
    }
    for cell in netlist.cells() {
        // The template name is recovered through the library at parse time;
        // store the index-independent name by looking at any pin path.
        let _ = writeln!(out, "  cell \"{}\" template {};", cell.name, cell.template);
    }
    for net in netlist.nets() {
        let _ = write!(
            out,
            "  net \"{}\" driver \"{}\" sinks [",
            net.name,
            netlist.pin(net.driver).name
        );
        for &s in &net.sinks {
            let _ = write!(out, " \"{}\"", netlist.pin(s).name);
        }
        let _ = write!(out, " ] wire_cap {:e} sink_delays [", net.parasitics.wire_cap);
        for d in &net.parasitics.sink_delays {
            let _ = write!(out, " {d:e}");
        }
        let _ = writeln!(out, " ] degrade {:e};", net.parasitics.slew_degrade);
    }
    let _ = writeln!(out, "}}");
    out
}

/// Parses a netlist from its text format against `library` (which must be
/// the library the netlist was written with; template indices are stored).
///
/// # Errors
///
/// Returns [`crate::StaError::ParseFormat`] on malformed input and any
/// structural error [`NetlistBuilder`] reports.
pub fn parse_netlist(src: &str, library: &Library) -> Result<Netlist> {
    let mut lx = Lexer::new(src)?;
    lx.expect_ident("design")?;
    let name = lx.string()?;
    lx.expect_ident("library")?;
    let lib_name = lx.string()?;
    if lib_name != library.name() {
        return Err(lx.error(format!(
            "netlist was written against library `{lib_name}`, got `{}`",
            library.name()
        )));
    }
    lx.expect_punct('{')?;
    let mut builder = NetlistBuilder::new(name, library);
    // Pin references by full name.
    let mut pin_by_name: HashMap<String, PinId> = HashMap::new();
    while !lx.eat_punct('}') {
        match lx.ident()?.as_str() {
            "input" => {
                let pname = lx.string()?;
                let id = builder.input(&pname)?;
                pin_by_name.insert(pname, id);
                lx.expect_punct(';')?;
            }
            "clock" => {
                let pname = lx.string()?;
                let id = builder.clock_input(&pname)?;
                pin_by_name.insert(pname, id);
                lx.expect_punct(';')?;
            }
            "output" => {
                let pname = lx.string()?;
                let id = builder.output(&pname)?;
                pin_by_name.insert(pname, id);
                lx.expect_punct(';')?;
            }
            "cell" => {
                let inst = lx.string()?;
                lx.expect_ident("template")?;
                let tidx = lx.number()? as usize;
                lx.expect_punct(';')?;
                if tidx >= library.templates().len() {
                    return Err(lx.error(format!("template index {tidx} out of range")));
                }
                let template = &library.templates()[tidx];
                let cell = builder.cell(&inst, &template.name)?;
                for spec in &template.pins {
                    let id = builder.pin_of(cell, &spec.name)?;
                    pin_by_name.insert(format!("{inst}/{}", spec.name), id);
                }
            }
            "net" => {
                let nname = lx.string()?;
                lx.expect_ident("driver")?;
                let dname = lx.string()?;
                lx.expect_ident("sinks")?;
                let snames = lx.string_list()?;
                lx.expect_ident("wire_cap")?;
                let wire_cap = lx.number()?;
                lx.expect_ident("sink_delays")?;
                let sink_delays = lx.number_list()?;
                lx.expect_ident("degrade")?;
                let degrade = lx.number()?;
                lx.expect_punct(';')?;
                let resolve = |n: &str, lx: &Lexer| {
                    pin_by_name
                        .get(n)
                        .copied()
                        .ok_or_else(|| lx.error(format!("unknown pin `{n}`")))
                };
                let driver = resolve(&dname, &lx)?;
                let sinks: Vec<PinId> =
                    snames.iter().map(|s| resolve(s, &lx)).collect::<Result<_>>()?;
                builder.connect_with(
                    &nname,
                    driver,
                    &sinks,
                    NetParasitics { wire_cap, sink_delays, slew_degrade: degrade },
                )?;
            }
            other => return Err(lx.error(format!("unknown design item `{other}`"))),
        }
    }
    if !lx.at_end() {
        return Err(lx.error("trailing content after design"));
    }
    builder.finish()
}

/// Returns `true` when a pin name refers to a boundary port of `netlist`
/// (helper for tools reading pin references from files).
#[must_use]
pub fn is_port_reference(netlist: &Netlist, name: &str) -> bool {
    netlist
        .pins()
        .iter()
        .any(|p| p.name == name && matches!(p.port, Some(PortKind::Input | PortKind::Output | PortKind::Clock)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ArcGraph;
    use crate::constraints::Context;
    use crate::propagate::Analysis;

    fn sample() -> (Netlist, Library) {
        let lib = Library::synthetic(8);
        let mut b = NetlistBuilder::new("rt", &lib);
        let clk = b.clock_input("clk").unwrap();
        let a = b.input("a").unwrap();
        let z = b.output("z").unwrap();
        let inv = b.cell("inv", "INVX1").unwrap();
        let ff = b.cell("ff", "DFFX1").unwrap();
        let cb = b.cell("cb", "CLKBUFX2").unwrap();
        b.connect("n_clk", clk, &[b.pin_of(cb, "A").unwrap()]).unwrap();
        b.connect("n_ck", b.pin_of(cb, "Z").unwrap(), &[b.pin_of(ff, "CK").unwrap()]).unwrap();
        b.connect("n_a", a, &[b.pin_of(ff, "D").unwrap()]).unwrap();
        b.connect("n_q", b.pin_of(ff, "Q").unwrap(), &[b.pin_of(inv, "A").unwrap()]).unwrap();
        b.connect_with(
            "n_z",
            b.pin_of(inv, "Z").unwrap(),
            &[z],
            NetParasitics { wire_cap: 1.25, sink_delays: vec![0.5], slew_degrade: 1.01 },
        )
        .unwrap();
        (b.finish().unwrap(), lib)
    }

    #[test]
    fn round_trip_preserves_structure_and_timing() {
        let (netlist, lib) = sample();
        let text = write_netlist(&netlist);
        let back = parse_netlist(&text, &lib).unwrap();
        assert_eq!(back.stats(), netlist.stats());
        assert_eq!(back.name(), netlist.name());
        // Timing must be identical, not just structure.
        let g1 = ArcGraph::from_netlist(&netlist, &lib).unwrap();
        let g2 = ArcGraph::from_netlist(&back, &lib).unwrap();
        let ctx = Context::nominal(&g1);
        let a1 = Analysis::run(&g1, &ctx).unwrap();
        let a2 = Analysis::run(&g2, &ctx).unwrap();
        let d = a1.boundary().diff(a2.boundary());
        assert_eq!(d.max, 0.0, "round trip must be timing-exact");
        assert!(d.count > 0);
    }

    #[test]
    fn generated_designs_round_trip() {
        // The full generator output must survive the format.
        let lib = Library::synthetic(8);
        let netlist = {
            use tmm_circuits_shim::generate;
            generate(&lib)
        };
        let text = write_netlist(&netlist);
        let back = parse_netlist(&text, &lib).unwrap();
        assert_eq!(back.stats(), netlist.stats());
    }

    /// Local miniature generator to avoid a circular dev-dependency on
    /// tmm-circuits.
    mod tmm_circuits_shim {
        use super::super::*;
        pub fn generate(lib: &Library) -> Netlist {
            let mut b = NetlistBuilder::new("gen", lib);
            let a = b.input("a").unwrap();
            let bb = b.input("b").unwrap();
            let z = b.output("z").unwrap();
            let g1 = b.cell("g1", "NAND2X1").unwrap();
            let g2 = b.cell("g2", "XOR2X1").unwrap();
            b.connect("n0", a, &[b.pin_of(g1, "A").unwrap(), b.pin_of(g2, "A").unwrap()])
                .unwrap();
            b.connect("n1", bb, &[b.pin_of(g1, "B").unwrap()]).unwrap();
            b.connect("n2", b.pin_of(g1, "Z").unwrap(), &[b.pin_of(g2, "B").unwrap()])
                .unwrap();
            b.connect("n3", b.pin_of(g2, "Z").unwrap(), &[z]).unwrap();
            b.finish().unwrap()
        }
    }

    #[test]
    fn rejects_wrong_library() {
        let (netlist, _) = sample();
        let other = Library::synthetic(9999);
        let text = write_netlist(&netlist);
        // same name (both synthetic libs share a name), so forge one
        let forged = text.replace("tmm_synth_045", "other_lib");
        assert!(parse_netlist(&forged, &other).is_err());
    }

    #[test]
    fn rejects_unknown_pin_reference() {
        let (_, lib) = sample();
        let src = r#"design "x" library "tmm_synth_045" {
            input "a";
            net "n" driver "ghost" sinks [ ] wire_cap 0.0 sink_delays [ ] degrade 1.0;
        }"#;
        let err = parse_netlist(src, &lib).unwrap_err();
        assert!(err.to_string().contains("ghost"), "{err}");
    }

    #[test]
    fn port_reference_helper() {
        let (netlist, _) = sample();
        assert!(is_port_reference(&netlist, "a"));
        assert!(is_port_reference(&netlist, "clk"));
        assert!(!is_port_reference(&netlist, "inv/A"));
        assert!(!is_port_reference(&netlist, "nope"));
    }
}
